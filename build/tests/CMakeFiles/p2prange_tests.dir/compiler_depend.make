# Empty compiler generated dependencies file for p2prange_tests.
# This may be replaced when dependencies are built.
