
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/can/network_test.cc" "tests/CMakeFiles/p2prange_tests.dir/can/network_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/can/network_test.cc.o.d"
  "/root/repo/tests/can/zone_test.cc" "tests/CMakeFiles/p2prange_tests.dir/can/zone_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/can/zone_test.cc.o.d"
  "/root/repo/tests/chord/id_test.cc" "tests/CMakeFiles/p2prange_tests.dir/chord/id_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/chord/id_test.cc.o.d"
  "/root/repo/tests/chord/node_test.cc" "tests/CMakeFiles/p2prange_tests.dir/chord/node_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/chord/node_test.cc.o.d"
  "/root/repo/tests/chord/ring_test.cc" "tests/CMakeFiles/p2prange_tests.dir/chord/ring_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/chord/ring_test.cc.o.d"
  "/root/repo/tests/common/bit_utils_test.cc" "tests/CMakeFiles/p2prange_tests.dir/common/bit_utils_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/common/bit_utils_test.cc.o.d"
  "/root/repo/tests/common/random_test.cc" "tests/CMakeFiles/p2prange_tests.dir/common/random_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/common/random_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/p2prange_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/core/adaptive_padding_test.cc" "tests/CMakeFiles/p2prange_tests.dir/core/adaptive_padding_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/core/adaptive_padding_test.cc.o.d"
  "/root/repo/tests/core/column_stats_test.cc" "tests/CMakeFiles/p2prange_tests.dir/core/column_stats_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/core/column_stats_test.cc.o.d"
  "/root/repo/tests/core/coverage_test.cc" "tests/CMakeFiles/p2prange_tests.dir/core/coverage_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/core/coverage_test.cc.o.d"
  "/root/repo/tests/core/extensions_test.cc" "tests/CMakeFiles/p2prange_tests.dir/core/extensions_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/core/extensions_test.cc.o.d"
  "/root/repo/tests/core/multi_attribute_test.cc" "tests/CMakeFiles/p2prange_tests.dir/core/multi_attribute_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/core/multi_attribute_test.cc.o.d"
  "/root/repo/tests/core/peer_test.cc" "tests/CMakeFiles/p2prange_tests.dir/core/peer_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/core/peer_test.cc.o.d"
  "/root/repo/tests/core/query_e2e_test.cc" "tests/CMakeFiles/p2prange_tests.dir/core/query_e2e_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/core/query_e2e_test.cc.o.d"
  "/root/repo/tests/core/system_edge_test.cc" "tests/CMakeFiles/p2prange_tests.dir/core/system_edge_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/core/system_edge_test.cc.o.d"
  "/root/repo/tests/core/system_test.cc" "tests/CMakeFiles/p2prange_tests.dir/core/system_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/core/system_test.cc.o.d"
  "/root/repo/tests/hash/bit_permutation_test.cc" "tests/CMakeFiles/p2prange_tests.dir/hash/bit_permutation_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/hash/bit_permutation_test.cc.o.d"
  "/root/repo/tests/hash/lsh_test.cc" "tests/CMakeFiles/p2prange_tests.dir/hash/lsh_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/hash/lsh_test.cc.o.d"
  "/root/repo/tests/hash/minwise_test.cc" "tests/CMakeFiles/p2prange_tests.dir/hash/minwise_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/hash/minwise_test.cc.o.d"
  "/root/repo/tests/hash/range_test.cc" "tests/CMakeFiles/p2prange_tests.dir/hash/range_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/hash/range_test.cc.o.d"
  "/root/repo/tests/hash/sha1_test.cc" "tests/CMakeFiles/p2prange_tests.dir/hash/sha1_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/hash/sha1_test.cc.o.d"
  "/root/repo/tests/integration/config_matrix_test.cc" "tests/CMakeFiles/p2prange_tests.dir/integration/config_matrix_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/integration/config_matrix_test.cc.o.d"
  "/root/repo/tests/integration/message_loss_test.cc" "tests/CMakeFiles/p2prange_tests.dir/integration/message_loss_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/integration/message_loss_test.cc.o.d"
  "/root/repo/tests/integration/paper_workflow_test.cc" "tests/CMakeFiles/p2prange_tests.dir/integration/paper_workflow_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/integration/paper_workflow_test.cc.o.d"
  "/root/repo/tests/integration/random_query_test.cc" "tests/CMakeFiles/p2prange_tests.dir/integration/random_query_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/integration/random_query_test.cc.o.d"
  "/root/repo/tests/net/sim_network_test.cc" "tests/CMakeFiles/p2prange_tests.dir/net/sim_network_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/net/sim_network_test.cc.o.d"
  "/root/repo/tests/query/executor_test.cc" "tests/CMakeFiles/p2prange_tests.dir/query/executor_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/query/executor_test.cc.o.d"
  "/root/repo/tests/query/parser_test.cc" "tests/CMakeFiles/p2prange_tests.dir/query/parser_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/query/parser_test.cc.o.d"
  "/root/repo/tests/query/plan_test.cc" "tests/CMakeFiles/p2prange_tests.dir/query/plan_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/query/plan_test.cc.o.d"
  "/root/repo/tests/rel/catalog_test.cc" "tests/CMakeFiles/p2prange_tests.dir/rel/catalog_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/rel/catalog_test.cc.o.d"
  "/root/repo/tests/rel/csv_test.cc" "tests/CMakeFiles/p2prange_tests.dir/rel/csv_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/rel/csv_test.cc.o.d"
  "/root/repo/tests/rel/relation_test.cc" "tests/CMakeFiles/p2prange_tests.dir/rel/relation_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/rel/relation_test.cc.o.d"
  "/root/repo/tests/rel/schema_test.cc" "tests/CMakeFiles/p2prange_tests.dir/rel/schema_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/rel/schema_test.cc.o.d"
  "/root/repo/tests/rel/value_test.cc" "tests/CMakeFiles/p2prange_tests.dir/rel/value_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/rel/value_test.cc.o.d"
  "/root/repo/tests/sim/churn_sim_test.cc" "tests/CMakeFiles/p2prange_tests.dir/sim/churn_sim_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/sim/churn_sim_test.cc.o.d"
  "/root/repo/tests/stats/summary_test.cc" "tests/CMakeFiles/p2prange_tests.dir/stats/summary_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/stats/summary_test.cc.o.d"
  "/root/repo/tests/store/bucket_store_test.cc" "tests/CMakeFiles/p2prange_tests.dir/store/bucket_store_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/store/bucket_store_test.cc.o.d"
  "/root/repo/tests/store/interval_index_test.cc" "tests/CMakeFiles/p2prange_tests.dir/store/interval_index_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/store/interval_index_test.cc.o.d"
  "/root/repo/tests/tapestry/tapestry_test.cc" "tests/CMakeFiles/p2prange_tests.dir/tapestry/tapestry_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/tapestry/tapestry_test.cc.o.d"
  "/root/repo/tests/wire/serde_test.cc" "tests/CMakeFiles/p2prange_tests.dir/wire/serde_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/wire/serde_test.cc.o.d"
  "/root/repo/tests/workload/range_workload_test.cc" "tests/CMakeFiles/p2prange_tests.dir/workload/range_workload_test.cc.o" "gcc" "tests/CMakeFiles/p2prange_tests.dir/workload/range_workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/p2p_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p2p_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/p2p_query.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/p2p_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/p2p_store.dir/DependInfo.cmake"
  "/root/repo/build/src/chord/CMakeFiles/p2p_chord.dir/DependInfo.cmake"
  "/root/repo/build/src/can/CMakeFiles/p2p_can.dir/DependInfo.cmake"
  "/root/repo/build/src/tapestry/CMakeFiles/p2p_tapestry.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p2p_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/p2p_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/p2p_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/p2p_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/p2p_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p2p_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
