# Empty compiler generated dependencies file for churn_timeline.
# This may be replaced when dependencies are built.
