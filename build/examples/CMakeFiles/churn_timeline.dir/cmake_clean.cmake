file(REMOVE_RECURSE
  "CMakeFiles/churn_timeline.dir/churn_timeline.cpp.o"
  "CMakeFiles/churn_timeline.dir/churn_timeline.cpp.o.d"
  "churn_timeline"
  "churn_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
