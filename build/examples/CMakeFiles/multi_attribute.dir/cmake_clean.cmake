file(REMOVE_RECURSE
  "CMakeFiles/multi_attribute.dir/multi_attribute.cpp.o"
  "CMakeFiles/multi_attribute.dir/multi_attribute.cpp.o.d"
  "multi_attribute"
  "multi_attribute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_attribute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
