# Empty compiler generated dependencies file for multi_attribute.
# This may be replaced when dependencies are built.
