# Empty compiler generated dependencies file for broad_queries.
# This may be replaced when dependencies are built.
