file(REMOVE_RECURSE
  "CMakeFiles/broad_queries.dir/broad_queries.cpp.o"
  "CMakeFiles/broad_queries.dir/broad_queries.cpp.o.d"
  "broad_queries"
  "broad_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broad_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
