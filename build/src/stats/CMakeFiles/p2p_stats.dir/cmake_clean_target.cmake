file(REMOVE_RECURSE
  "libp2p_stats.a"
)
