file(REMOVE_RECURSE
  "CMakeFiles/p2p_stats.dir/summary.cc.o"
  "CMakeFiles/p2p_stats.dir/summary.cc.o.d"
  "CMakeFiles/p2p_stats.dir/table_printer.cc.o"
  "CMakeFiles/p2p_stats.dir/table_printer.cc.o.d"
  "libp2p_stats.a"
  "libp2p_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
