# Empty dependencies file for p2p_stats.
# This may be replaced when dependencies are built.
