# Empty compiler generated dependencies file for p2p_wire.
# This may be replaced when dependencies are built.
