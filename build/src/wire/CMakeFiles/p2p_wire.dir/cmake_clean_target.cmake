file(REMOVE_RECURSE
  "libp2p_wire.a"
)
