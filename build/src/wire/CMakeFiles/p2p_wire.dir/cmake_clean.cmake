file(REMOVE_RECURSE
  "CMakeFiles/p2p_wire.dir/serde.cc.o"
  "CMakeFiles/p2p_wire.dir/serde.cc.o.d"
  "libp2p_wire.a"
  "libp2p_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
