# Empty dependencies file for p2p_net.
# This may be replaced when dependencies are built.
