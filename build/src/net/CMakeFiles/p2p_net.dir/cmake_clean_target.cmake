file(REMOVE_RECURSE
  "libp2p_net.a"
)
