file(REMOVE_RECURSE
  "CMakeFiles/p2p_net.dir/address.cc.o"
  "CMakeFiles/p2p_net.dir/address.cc.o.d"
  "CMakeFiles/p2p_net.dir/sim_network.cc.o"
  "CMakeFiles/p2p_net.dir/sim_network.cc.o.d"
  "libp2p_net.a"
  "libp2p_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
