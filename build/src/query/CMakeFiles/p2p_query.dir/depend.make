# Empty dependencies file for p2p_query.
# This may be replaced when dependencies are built.
