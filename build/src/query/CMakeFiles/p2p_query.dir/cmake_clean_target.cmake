file(REMOVE_RECURSE
  "libp2p_query.a"
)
