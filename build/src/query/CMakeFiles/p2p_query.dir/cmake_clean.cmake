file(REMOVE_RECURSE
  "CMakeFiles/p2p_query.dir/executor.cc.o"
  "CMakeFiles/p2p_query.dir/executor.cc.o.d"
  "CMakeFiles/p2p_query.dir/parser.cc.o"
  "CMakeFiles/p2p_query.dir/parser.cc.o.d"
  "CMakeFiles/p2p_query.dir/plan.cc.o"
  "CMakeFiles/p2p_query.dir/plan.cc.o.d"
  "CMakeFiles/p2p_query.dir/tokenizer.cc.o"
  "CMakeFiles/p2p_query.dir/tokenizer.cc.o.d"
  "libp2p_query.a"
  "libp2p_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
