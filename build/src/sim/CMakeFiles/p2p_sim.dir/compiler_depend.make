# Empty compiler generated dependencies file for p2p_sim.
# This may be replaced when dependencies are built.
