file(REMOVE_RECURSE
  "libp2p_sim.a"
)
