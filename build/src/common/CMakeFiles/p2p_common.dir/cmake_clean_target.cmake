file(REMOVE_RECURSE
  "libp2p_common.a"
)
