# Empty compiler generated dependencies file for p2p_common.
# This may be replaced when dependencies are built.
