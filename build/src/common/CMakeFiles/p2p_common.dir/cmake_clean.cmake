file(REMOVE_RECURSE
  "CMakeFiles/p2p_common.dir/logging.cc.o"
  "CMakeFiles/p2p_common.dir/logging.cc.o.d"
  "CMakeFiles/p2p_common.dir/random.cc.o"
  "CMakeFiles/p2p_common.dir/random.cc.o.d"
  "CMakeFiles/p2p_common.dir/status.cc.o"
  "CMakeFiles/p2p_common.dir/status.cc.o.d"
  "libp2p_common.a"
  "libp2p_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
