# Empty compiler generated dependencies file for p2p_store.
# This may be replaced when dependencies are built.
