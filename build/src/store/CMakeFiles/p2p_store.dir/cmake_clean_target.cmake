file(REMOVE_RECURSE
  "libp2p_store.a"
)
