file(REMOVE_RECURSE
  "CMakeFiles/p2p_store.dir/bucket_store.cc.o"
  "CMakeFiles/p2p_store.dir/bucket_store.cc.o.d"
  "CMakeFiles/p2p_store.dir/interval_index.cc.o"
  "CMakeFiles/p2p_store.dir/interval_index.cc.o.d"
  "libp2p_store.a"
  "libp2p_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
