
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/bucket_store.cc" "src/store/CMakeFiles/p2p_store.dir/bucket_store.cc.o" "gcc" "src/store/CMakeFiles/p2p_store.dir/bucket_store.cc.o.d"
  "/root/repo/src/store/interval_index.cc" "src/store/CMakeFiles/p2p_store.dir/interval_index.cc.o" "gcc" "src/store/CMakeFiles/p2p_store.dir/interval_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2p_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/p2p_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p2p_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
