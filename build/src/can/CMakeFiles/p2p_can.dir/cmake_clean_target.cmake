file(REMOVE_RECURSE
  "libp2p_can.a"
)
