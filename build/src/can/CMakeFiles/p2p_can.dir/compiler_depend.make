# Empty compiler generated dependencies file for p2p_can.
# This may be replaced when dependencies are built.
