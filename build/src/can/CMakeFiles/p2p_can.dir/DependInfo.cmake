
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/can/network.cc" "src/can/CMakeFiles/p2p_can.dir/network.cc.o" "gcc" "src/can/CMakeFiles/p2p_can.dir/network.cc.o.d"
  "/root/repo/src/can/zone.cc" "src/can/CMakeFiles/p2p_can.dir/zone.cc.o" "gcc" "src/can/CMakeFiles/p2p_can.dir/zone.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2p_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p2p_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
