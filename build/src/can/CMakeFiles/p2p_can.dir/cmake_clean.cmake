file(REMOVE_RECURSE
  "CMakeFiles/p2p_can.dir/network.cc.o"
  "CMakeFiles/p2p_can.dir/network.cc.o.d"
  "CMakeFiles/p2p_can.dir/zone.cc.o"
  "CMakeFiles/p2p_can.dir/zone.cc.o.d"
  "libp2p_can.a"
  "libp2p_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
