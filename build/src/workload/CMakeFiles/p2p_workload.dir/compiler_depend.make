# Empty compiler generated dependencies file for p2p_workload.
# This may be replaced when dependencies are built.
