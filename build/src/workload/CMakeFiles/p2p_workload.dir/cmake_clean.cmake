file(REMOVE_RECURSE
  "CMakeFiles/p2p_workload.dir/range_workload.cc.o"
  "CMakeFiles/p2p_workload.dir/range_workload.cc.o.d"
  "libp2p_workload.a"
  "libp2p_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
