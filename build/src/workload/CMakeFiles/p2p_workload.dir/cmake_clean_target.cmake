file(REMOVE_RECURSE
  "libp2p_workload.a"
)
