file(REMOVE_RECURSE
  "CMakeFiles/p2p_tapestry.dir/tapestry.cc.o"
  "CMakeFiles/p2p_tapestry.dir/tapestry.cc.o.d"
  "libp2p_tapestry.a"
  "libp2p_tapestry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_tapestry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
