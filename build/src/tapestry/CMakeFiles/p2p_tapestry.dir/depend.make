# Empty dependencies file for p2p_tapestry.
# This may be replaced when dependencies are built.
