file(REMOVE_RECURSE
  "libp2p_tapestry.a"
)
