file(REMOVE_RECURSE
  "libp2p_chord.a"
)
