# Empty dependencies file for p2p_chord.
# This may be replaced when dependencies are built.
