file(REMOVE_RECURSE
  "CMakeFiles/p2p_chord.dir/node.cc.o"
  "CMakeFiles/p2p_chord.dir/node.cc.o.d"
  "CMakeFiles/p2p_chord.dir/ring.cc.o"
  "CMakeFiles/p2p_chord.dir/ring.cc.o.d"
  "libp2p_chord.a"
  "libp2p_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
