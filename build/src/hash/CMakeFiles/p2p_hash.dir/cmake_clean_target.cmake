file(REMOVE_RECURSE
  "libp2p_hash.a"
)
