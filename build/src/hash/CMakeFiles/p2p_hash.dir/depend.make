# Empty dependencies file for p2p_hash.
# This may be replaced when dependencies are built.
