
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/bit_permutation.cc" "src/hash/CMakeFiles/p2p_hash.dir/bit_permutation.cc.o" "gcc" "src/hash/CMakeFiles/p2p_hash.dir/bit_permutation.cc.o.d"
  "/root/repo/src/hash/lsh.cc" "src/hash/CMakeFiles/p2p_hash.dir/lsh.cc.o" "gcc" "src/hash/CMakeFiles/p2p_hash.dir/lsh.cc.o.d"
  "/root/repo/src/hash/minwise.cc" "src/hash/CMakeFiles/p2p_hash.dir/minwise.cc.o" "gcc" "src/hash/CMakeFiles/p2p_hash.dir/minwise.cc.o.d"
  "/root/repo/src/hash/range.cc" "src/hash/CMakeFiles/p2p_hash.dir/range.cc.o" "gcc" "src/hash/CMakeFiles/p2p_hash.dir/range.cc.o.d"
  "/root/repo/src/hash/sha1.cc" "src/hash/CMakeFiles/p2p_hash.dir/sha1.cc.o" "gcc" "src/hash/CMakeFiles/p2p_hash.dir/sha1.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2p_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
