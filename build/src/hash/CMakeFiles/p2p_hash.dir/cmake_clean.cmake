file(REMOVE_RECURSE
  "CMakeFiles/p2p_hash.dir/bit_permutation.cc.o"
  "CMakeFiles/p2p_hash.dir/bit_permutation.cc.o.d"
  "CMakeFiles/p2p_hash.dir/lsh.cc.o"
  "CMakeFiles/p2p_hash.dir/lsh.cc.o.d"
  "CMakeFiles/p2p_hash.dir/minwise.cc.o"
  "CMakeFiles/p2p_hash.dir/minwise.cc.o.d"
  "CMakeFiles/p2p_hash.dir/range.cc.o"
  "CMakeFiles/p2p_hash.dir/range.cc.o.d"
  "CMakeFiles/p2p_hash.dir/sha1.cc.o"
  "CMakeFiles/p2p_hash.dir/sha1.cc.o.d"
  "libp2p_hash.a"
  "libp2p_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
