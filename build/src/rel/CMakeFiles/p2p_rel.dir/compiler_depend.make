# Empty compiler generated dependencies file for p2p_rel.
# This may be replaced when dependencies are built.
