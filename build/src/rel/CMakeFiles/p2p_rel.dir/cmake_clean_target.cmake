file(REMOVE_RECURSE
  "libp2p_rel.a"
)
