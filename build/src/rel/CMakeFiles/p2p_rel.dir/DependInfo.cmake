
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rel/catalog.cc" "src/rel/CMakeFiles/p2p_rel.dir/catalog.cc.o" "gcc" "src/rel/CMakeFiles/p2p_rel.dir/catalog.cc.o.d"
  "/root/repo/src/rel/csv.cc" "src/rel/CMakeFiles/p2p_rel.dir/csv.cc.o" "gcc" "src/rel/CMakeFiles/p2p_rel.dir/csv.cc.o.d"
  "/root/repo/src/rel/generator.cc" "src/rel/CMakeFiles/p2p_rel.dir/generator.cc.o" "gcc" "src/rel/CMakeFiles/p2p_rel.dir/generator.cc.o.d"
  "/root/repo/src/rel/relation.cc" "src/rel/CMakeFiles/p2p_rel.dir/relation.cc.o" "gcc" "src/rel/CMakeFiles/p2p_rel.dir/relation.cc.o.d"
  "/root/repo/src/rel/schema.cc" "src/rel/CMakeFiles/p2p_rel.dir/schema.cc.o" "gcc" "src/rel/CMakeFiles/p2p_rel.dir/schema.cc.o.d"
  "/root/repo/src/rel/value.cc" "src/rel/CMakeFiles/p2p_rel.dir/value.cc.o" "gcc" "src/rel/CMakeFiles/p2p_rel.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2p_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/p2p_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
