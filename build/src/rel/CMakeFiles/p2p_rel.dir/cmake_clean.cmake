file(REMOVE_RECURSE
  "CMakeFiles/p2p_rel.dir/catalog.cc.o"
  "CMakeFiles/p2p_rel.dir/catalog.cc.o.d"
  "CMakeFiles/p2p_rel.dir/csv.cc.o"
  "CMakeFiles/p2p_rel.dir/csv.cc.o.d"
  "CMakeFiles/p2p_rel.dir/generator.cc.o"
  "CMakeFiles/p2p_rel.dir/generator.cc.o.d"
  "CMakeFiles/p2p_rel.dir/relation.cc.o"
  "CMakeFiles/p2p_rel.dir/relation.cc.o.d"
  "CMakeFiles/p2p_rel.dir/schema.cc.o"
  "CMakeFiles/p2p_rel.dir/schema.cc.o.d"
  "CMakeFiles/p2p_rel.dir/value.cc.o"
  "CMakeFiles/p2p_rel.dir/value.cc.o.d"
  "libp2p_rel.a"
  "libp2p_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
