file(REMOVE_RECURSE
  "CMakeFiles/p2p_core.dir/column_stats.cc.o"
  "CMakeFiles/p2p_core.dir/column_stats.cc.o.d"
  "CMakeFiles/p2p_core.dir/coverage.cc.o"
  "CMakeFiles/p2p_core.dir/coverage.cc.o.d"
  "CMakeFiles/p2p_core.dir/peer.cc.o"
  "CMakeFiles/p2p_core.dir/peer.cc.o.d"
  "CMakeFiles/p2p_core.dir/system.cc.o"
  "CMakeFiles/p2p_core.dir/system.cc.o.d"
  "libp2p_core.a"
  "libp2p_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
