# Empty compiler generated dependencies file for p2p_core.
# This may be replaced when dependencies are built.
