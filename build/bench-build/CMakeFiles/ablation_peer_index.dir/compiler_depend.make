# Empty compiler generated dependencies file for ablation_peer_index.
# This may be replaced when dependencies are built.
