file(REMOVE_RECURSE
  "../bench/ablation_peer_index"
  "../bench/ablation_peer_index.pdb"
  "CMakeFiles/ablation_peer_index.dir/ablation_peer_index.cc.o"
  "CMakeFiles/ablation_peer_index.dir/ablation_peer_index.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_peer_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
