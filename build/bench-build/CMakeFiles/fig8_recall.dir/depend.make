# Empty dependencies file for fig8_recall.
# This may be replaced when dependencies are built.
