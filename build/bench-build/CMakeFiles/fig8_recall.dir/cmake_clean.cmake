file(REMOVE_RECURSE
  "../bench/fig8_recall"
  "../bench/fig8_recall.pdb"
  "CMakeFiles/fig8_recall.dir/fig8_recall.cc.o"
  "CMakeFiles/fig8_recall.dir/fig8_recall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
