# Empty dependencies file for ablation_can_vs_chord.
# This may be replaced when dependencies are built.
