file(REMOVE_RECURSE
  "../bench/ablation_can_vs_chord"
  "../bench/ablation_can_vs_chord.pdb"
  "CMakeFiles/ablation_can_vs_chord.dir/ablation_can_vs_chord.cc.o"
  "CMakeFiles/ablation_can_vs_chord.dir/ablation_can_vs_chord.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_can_vs_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
