file(REMOVE_RECURSE
  "../bench/fig12_path_length"
  "../bench/fig12_path_length.pdb"
  "CMakeFiles/fig12_path_length.dir/fig12_path_length.cc.o"
  "CMakeFiles/fig12_path_length.dir/fig12_path_length.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_path_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
