# Empty dependencies file for ablation_traffic.
# This may be replaced when dependencies are built.
