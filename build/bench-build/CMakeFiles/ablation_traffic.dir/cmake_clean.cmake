file(REMOVE_RECURSE
  "../bench/ablation_traffic"
  "../bench/ablation_traffic.pdb"
  "CMakeFiles/ablation_traffic.dir/ablation_traffic.cc.o"
  "CMakeFiles/ablation_traffic.dir/ablation_traffic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
