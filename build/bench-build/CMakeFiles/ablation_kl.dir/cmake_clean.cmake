file(REMOVE_RECURSE
  "../bench/ablation_kl"
  "../bench/ablation_kl.pdb"
  "CMakeFiles/ablation_kl.dir/ablation_kl.cc.o"
  "CMakeFiles/ablation_kl.dir/ablation_kl.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
