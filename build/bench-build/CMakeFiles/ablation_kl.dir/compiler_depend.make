# Empty compiler generated dependencies file for ablation_kl.
# This may be replaced when dependencies are built.
