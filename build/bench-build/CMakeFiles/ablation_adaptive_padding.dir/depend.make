# Empty dependencies file for ablation_adaptive_padding.
# This may be replaced when dependencies are built.
