file(REMOVE_RECURSE
  "../bench/ablation_adaptive_padding"
  "../bench/ablation_adaptive_padding.pdb"
  "CMakeFiles/ablation_adaptive_padding.dir/ablation_adaptive_padding.cc.o"
  "CMakeFiles/ablation_adaptive_padding.dir/ablation_adaptive_padding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
