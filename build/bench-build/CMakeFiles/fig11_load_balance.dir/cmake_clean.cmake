file(REMOVE_RECURSE
  "../bench/fig11_load_balance"
  "../bench/fig11_load_balance.pdb"
  "CMakeFiles/fig11_load_balance.dir/fig11_load_balance.cc.o"
  "CMakeFiles/fig11_load_balance.dir/fig11_load_balance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
