file(REMOVE_RECURSE
  "../bench/ablation_prexor"
  "../bench/ablation_prexor.pdb"
  "CMakeFiles/ablation_prexor.dir/ablation_prexor.cc.o"
  "CMakeFiles/ablation_prexor.dir/ablation_prexor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prexor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
