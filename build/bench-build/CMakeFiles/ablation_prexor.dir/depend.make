# Empty dependencies file for ablation_prexor.
# This may be replaced when dependencies are built.
