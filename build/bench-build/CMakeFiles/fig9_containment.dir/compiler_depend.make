# Empty compiler generated dependencies file for fig9_containment.
# This may be replaced when dependencies are built.
