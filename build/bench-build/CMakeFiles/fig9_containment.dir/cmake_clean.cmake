file(REMOVE_RECURSE
  "../bench/fig9_containment"
  "../bench/fig9_containment.pdb"
  "CMakeFiles/fig9_containment.dir/fig9_containment.cc.o"
  "CMakeFiles/fig9_containment.dir/fig9_containment.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
