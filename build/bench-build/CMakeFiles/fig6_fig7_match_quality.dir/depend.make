# Empty dependencies file for fig6_fig7_match_quality.
# This may be replaced when dependencies are built.
