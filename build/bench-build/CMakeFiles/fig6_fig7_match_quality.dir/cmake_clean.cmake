file(REMOVE_RECURSE
  "../bench/fig6_fig7_match_quality"
  "../bench/fig6_fig7_match_quality.pdb"
  "CMakeFiles/fig6_fig7_match_quality.dir/fig6_fig7_match_quality.cc.o"
  "CMakeFiles/fig6_fig7_match_quality.dir/fig6_fig7_match_quality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fig7_match_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
