file(REMOVE_RECURSE
  "../bench/ablation_coverage"
  "../bench/ablation_coverage.pdb"
  "CMakeFiles/ablation_coverage.dir/ablation_coverage.cc.o"
  "CMakeFiles/ablation_coverage.dir/ablation_coverage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
