
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_hash_time.cc" "bench-build/CMakeFiles/fig5_hash_time.dir/fig5_hash_time.cc.o" "gcc" "bench-build/CMakeFiles/fig5_hash_time.dir/fig5_hash_time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/p2p_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p2p_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/p2p_query.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/p2p_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/p2p_store.dir/DependInfo.cmake"
  "/root/repo/build/src/chord/CMakeFiles/p2p_chord.dir/DependInfo.cmake"
  "/root/repo/build/src/can/CMakeFiles/p2p_can.dir/DependInfo.cmake"
  "/root/repo/build/src/tapestry/CMakeFiles/p2p_tapestry.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p2p_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/p2p_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/p2p_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/p2p_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p2p_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/p2p_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
