file(REMOVE_RECURSE
  "../bench/fig5_hash_time"
  "../bench/fig5_hash_time.pdb"
  "CMakeFiles/fig5_hash_time.dir/fig5_hash_time.cc.o"
  "CMakeFiles/fig5_hash_time.dir/fig5_hash_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hash_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
