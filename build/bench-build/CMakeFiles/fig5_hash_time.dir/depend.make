# Empty dependencies file for fig5_hash_time.
# This may be replaced when dependencies are built.
