file(REMOVE_RECURSE
  "../bench/fig10_padding"
  "../bench/fig10_padding.pdb"
  "CMakeFiles/fig10_padding.dir/fig10_padding.cc.o"
  "CMakeFiles/fig10_padding.dir/fig10_padding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
