# Empty compiler generated dependencies file for fig10_padding.
# This may be replaced when dependencies are built.
