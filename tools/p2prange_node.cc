// p2prange_node: one deployable peer process.
//
// Hosts a NodeService (durable descriptor store + materialized
// partitions) behind a TcpServer event loop. Every peer of a live ring
// is one of these processes; clients and other peers reach it with the
// framed RPC protocol of src/rpc.
//
// The daemon runs live membership (DESIGN.md §9): started with
// --join=HOST:PORT it enters an existing ring through that member,
// pulls the descriptor arc it now owns, and from then on the periodic
// probe/gossip/stabilize loop keeps its view converged while the
// re-replicator repairs descriptor placement after every membership
// change. Without --join it starts a ring of one that others may join.
//
//   p2prange_node --listen=127.0.0.1:7001
//       [--advertise=HOST:PORT] [--join=HOST:PORT] [--replication=2]
//       [--workers=0] [--queue_depth=128]
//       [--wal_dir=/var/lib/p2prange/n1]
//       [--store_capacity=0] [--checkpoint_every=64]
//       [--probe_ms=500] [--gossip_ms=1000] [--stabilize_ms=1000]
//       [--probe_timeout_ms=250] [--reconnect_ms=2000]
//       [--backoff_max_ms=5000] [--handoff_deadline_ms=5000]
//       [--max_conns=0] [--write_buffer_cap=33554432]
//       [--idle_timeout_ms=0] [--first_frame_timeout_ms=0]
//       [--metrics_json=/tmp/n1.json] [--quiet]
//
// --advertise names the address this node is known by on the ring
// when it differs from the bind address — e.g. when peers reach it
// through the chaos proxy (tools/p2prange_chaosproxy) or a NAT. The
// node's identity, membership entries, and redirect payloads all use
// the advertised address; the socket still binds --listen. A 0 port
// in --advertise inherits the bound port.
//
// --max_conns / --write_buffer_cap / --idle_timeout_ms /
// --first_frame_timeout_ms feed the transport resource guards of
// DESIGN.md §11 (accept shed, slow-reader eviction, slow-loris
// defense); 0 keeps a guard disabled except write_buffer_cap, where
// 0 means unbounded.
//
// With --workers=N (N >= 1) the data-path messages — ping, store,
// probe, fetch, and kMultiOp batches of them — are served by a pool of
// N worker threads behind a bounded work queue (--queue_depth), while
// the poll loop keeps sole ownership of the sockets and of membership.
// A full queue is admission control: the request is refused on the
// spot with ResourceExhausted instead of queueing without bound.
// --workers=0 (the default) keeps the classic single-loop daemon.
//
// SIGTERM / SIGINT shut the daemon down gracefully: with ring peers
// present the local descriptors are handed off to the successor and
// the departure announced (so lookups never miss), a final metrics
// snapshot is written, and the process exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <string>
#include <vector>

#include "rpc/executor.h"
#include "rpc/membership.h"
#include "rpc/multi_op.h"
#include "rpc/node_service.h"
#include "rpc/rereplicate.h"
#include "rpc/tcp.h"
#include "rpc/tcp_transport.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

struct Flags {
  std::string listen;
  std::string advertise;
  std::string join;
  std::string wal_dir;
  std::string metrics_json;
  size_t store_capacity = 0;
  uint64_t checkpoint_every = 64;
  int replication = 2;
  int workers = 0;
  size_t queue_depth = 128;
  double probe_ms = 500.0;
  double gossip_ms = 1000.0;
  double stabilize_ms = 1000.0;
  double probe_timeout_ms = 250.0;
  /// Period of the post-partition reconnect sweep (0 disables).
  double reconnect_ms = 2000.0;
  /// Cap on the probe-backoff period while probes keep missing. A
  /// partitioned node needs this bounded below strike_decay or its
  /// strikes go stale faster than they accumulate and the far side is
  /// never marked dead.
  double backoff_max_ms = 5000.0;
  double handoff_deadline_ms = 5000.0;
  size_t max_conns = 0;
  size_t write_buffer_cap = 32 * 1024 * 1024;
  double idle_timeout_ms = 0.0;
  double first_frame_timeout_ms = 0.0;
  bool quiet = false;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --listen=HOST:PORT [--advertise=HOST:PORT] "
               "[--join=HOST:PORT] "
               "[--replication=N] [--workers=N] [--queue_depth=N] "
               "[--wal_dir=DIR] "
               "[--store_capacity=N] [--checkpoint_every=N] "
               "[--probe_ms=MS] [--gossip_ms=MS] [--stabilize_ms=MS] "
               "[--probe_timeout_ms=MS] [--reconnect_ms=MS] "
               "[--backoff_max_ms=MS] [--handoff_deadline_ms=MS] "
               "[--max_conns=N] [--write_buffer_cap=BYTES] "
               "[--idle_timeout_ms=MS] [--first_frame_timeout_ms=MS] "
               "[--metrics_json=PATH] [--quiet]\n",
               argv0);
  return 2;
}

/// The member's incarnation: any value that grows across restarts of
/// the same address works; wall-clock startup ms is the simplest.
uint64_t StartupIncarnation() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2prange;

  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "listen", &flags.listen)) continue;
    if (ParseFlag(arg, "advertise", &flags.advertise)) continue;
    if (ParseFlag(arg, "join", &flags.join)) continue;
    if (ParseFlag(arg, "wal_dir", &flags.wal_dir)) continue;
    if (ParseFlag(arg, "metrics_json", &flags.metrics_json)) continue;
    if (ParseFlag(arg, "store_capacity", &value)) {
      flags.store_capacity = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
      continue;
    }
    if (ParseFlag(arg, "checkpoint_every", &value)) {
      flags.checkpoint_every = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (ParseFlag(arg, "replication", &value)) {
      flags.replication = std::atoi(value.c_str());
      continue;
    }
    if (ParseFlag(arg, "workers", &value)) {
      flags.workers = std::atoi(value.c_str());
      continue;
    }
    if (ParseFlag(arg, "queue_depth", &value)) {
      flags.queue_depth =
          static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
      continue;
    }
    if (ParseFlag(arg, "probe_ms", &value)) {
      flags.probe_ms = std::strtod(value.c_str(), nullptr);
      continue;
    }
    if (ParseFlag(arg, "gossip_ms", &value)) {
      flags.gossip_ms = std::strtod(value.c_str(), nullptr);
      continue;
    }
    if (ParseFlag(arg, "stabilize_ms", &value)) {
      flags.stabilize_ms = std::strtod(value.c_str(), nullptr);
      continue;
    }
    if (ParseFlag(arg, "reconnect_ms", &value)) {
      flags.reconnect_ms = std::strtod(value.c_str(), nullptr);
      continue;
    }
    if (ParseFlag(arg, "probe_timeout_ms", &value)) {
      flags.probe_timeout_ms = std::strtod(value.c_str(), nullptr);
      continue;
    }
    if (ParseFlag(arg, "backoff_max_ms", &value)) {
      flags.backoff_max_ms = std::strtod(value.c_str(), nullptr);
      continue;
    }
    if (ParseFlag(arg, "handoff_deadline_ms", &value)) {
      flags.handoff_deadline_ms = std::strtod(value.c_str(), nullptr);
      continue;
    }
    if (ParseFlag(arg, "max_conns", &value)) {
      flags.max_conns =
          static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
      continue;
    }
    if (ParseFlag(arg, "write_buffer_cap", &value)) {
      flags.write_buffer_cap =
          static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
      continue;
    }
    if (ParseFlag(arg, "idle_timeout_ms", &value)) {
      flags.idle_timeout_ms = std::strtod(value.c_str(), nullptr);
      continue;
    }
    if (ParseFlag(arg, "first_frame_timeout_ms", &value)) {
      flags.first_frame_timeout_ms = std::strtod(value.c_str(), nullptr);
      continue;
    }
    if (arg == "--quiet") {
      flags.quiet = true;
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    return Usage(argv[0]);
  }
  if (flags.listen.empty()) return Usage(argv[0]);

  auto listen_addr = rpc::ParseHostPort(flags.listen);
  if (!listen_addr.ok()) {
    std::fprintf(stderr, "--listen: %s\n",
                 listen_addr.status().ToString().c_str());
    return 2;
  }

  rpc::NodeServiceOptions service_options;
  service_options.store_capacity = flags.store_capacity;
  service_options.durability.checkpoint_every = flags.checkpoint_every;
  service_options.wal_dir = flags.wal_dir;
  service_options.descriptor_replication = flags.replication;

  // The server comes up first so a 0 port is resolved to the kernel's
  // ephemeral pick before the service derives its id from the address.
  // Requests cannot arrive before the poll loop below starts, so the
  // handler's service pointer is always set by the time it runs.
  rpc::NodeService* service_ptr = nullptr;
  rpc::TcpServer::Options server_options;
  server_options.max_out_buffer = flags.write_buffer_cap;
  server_options.read_idle_timeout_ms = flags.idle_timeout_ms;
  server_options.first_frame_timeout_ms = flags.first_frame_timeout_ms;
  server_options.max_connections = flags.max_conns;
  auto server = rpc::TcpServer::Listen(
      *listen_addr,
      [&service_ptr](rpc::MsgType type, std::string_view body) {
        return service_ptr->Handle(type, body);
      },
      server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "listen %s: %s\n", flags.listen.c_str(),
                 server.status().ToString().c_str());
    return 1;
  }

  // The ring identity: the advertised address when one is given (peers
  // then reach this node through a proxy/NAT at that address), the
  // bound address otherwise.
  NetAddress public_addr = server->address();
  if (!flags.advertise.empty()) {
    auto advertise_addr = rpc::ParseHostPort(flags.advertise);
    if (!advertise_addr.ok()) {
      std::fprintf(stderr, "--advertise: %s\n",
                   advertise_addr.status().ToString().c_str());
      return 2;
    }
    public_addr = *advertise_addr;
    if (public_addr.port == 0) public_addr.port = server->address().port;
  }

  auto service = rpc::NodeService::Make(public_addr, service_options);
  if (!service.ok()) {
    std::fprintf(stderr, "node service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  service_ptr = service->get();

  // Worker pool (--workers >= 1): the poll loop hands each data-path
  // request to the executor and keeps polling; workers run the handler
  // against the (thread-safe) service and the completed responses come
  // back through the completion queue, whose doorbell fd wakes poll().
  // Everything else — membership, metrics, handoff — stays inline on
  // the poll thread, which therefore remains LiveMembership's only
  // thread.
  std::unique_ptr<rpc::Executor> executor;
  if (flags.workers < 0) return Usage(argv[0]);
  if (flags.workers > 0) {
    rpc::Executor::Options exec_options;
    exec_options.workers = flags.workers;
    exec_options.queue_depth = flags.queue_depth;
    auto made = rpc::Executor::Make(exec_options);
    if (!made.ok()) {
      std::fprintf(stderr, "executor: %s\n", made.status().ToString().c_str());
      return 1;
    }
    executor = std::move(*made);
    server->AddWakeFd(executor->doorbell_fd());
    server->set_async_dispatch([&service_ptr, &executor, &server](
                                   uint64_t conn_id,
                                   const rpc::RpcEnvelope& env) {
      const rpc::MsgType type = env.header.type;
      if (!rpc::IsBatchableMsgType(type) && type != rpc::MsgType::kMultiOp) {
        return false;  // poll thread serves it inline
      }
      rpc::RpcHeader rh;
      rh.call_id = env.header.call_id;
      rh.type = type;
      rh.is_response = true;
      const bool admitted = executor->TrySubmit(
          conn_id, [service_ptr, type, body = env.body, rh]() {
            auto response = service_ptr->Handle(type, body);
            rpc::RpcHeader h = rh;
            std::string out_body;
            if (response.ok()) {
              out_body = std::move(*response);
            } else {
              h.status = response.status().code();
              out_body = response.status().message();
            }
            return rpc::EncodeEnvelope(h, out_body);
          });
      if (!admitted) {
        // Admission control: the queue is full, so the caller hears
        // "shed, retry later" now instead of waiting behind a backlog
        // that is already past the latency target.
        rpc::RpcHeader h = rh;
        h.status = StatusCode::kResourceExhausted;
        server->Respond(conn_id, rpc::EncodeEnvelope(h, "work queue full"));
      }
      return true;
    });
  }

  // Outbound half of the peer: membership exchanges and descriptor
  // re-replication ride their own client transport. Outbound sockets
  // bind the listen host as their source address so a per-link shaper
  // (the chaos proxy) can attribute this node's traffic.
  rpc::TcpTransport::Options transport_options;
  transport_options.bind_host = listen_addr->host;
  rpc::TcpTransport transport{transport_options};

  rpc::MembershipConfig membership_config;
  membership_config.probe_period_ms = flags.probe_ms;
  membership_config.gossip_period_ms = flags.gossip_ms;
  membership_config.stabilize_period_ms = flags.stabilize_ms;
  membership_config.probe_timeout_ms = flags.probe_timeout_ms;
  membership_config.reconnect_period_ms = flags.reconnect_ms;
  membership_config.backoff_max_ms = flags.backoff_max_ms;
  membership_config.seed = rpc::RingView::IdOf(public_addr);
  auto membership = rpc::LiveMembership::Make(
      public_addr, StartupIncarnation(), membership_config, &transport);
  if (!membership.ok()) {
    std::fprintf(stderr, "membership: %s\n",
                 membership.status().ToString().c_str());
    return 1;
  }
  (*service)->set_membership(&*membership);
  // From here on worker threads may consult the redirect decision, so
  // they get an immutable snapshot of the alive ring; the poll thread
  // re-publishes it after every membership tick.
  if (executor != nullptr) (*service)->PublishRedirectRing();

  rpc::RereplicateConfig rereplicate_config;
  rereplicate_config.replication = flags.replication;
  rereplicate_config.handoff_deadline_ms = flags.handoff_deadline_ms;
  auto rereplicator = rpc::Rereplicator::Make(service->get(), &*membership,
                                              &transport, rereplicate_config);
  if (!rereplicator.ok()) {
    std::fprintf(stderr, "rereplication: %s\n",
                 rereplicator.status().ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, HandleStop);
  std::signal(SIGINT, HandleStop);
  std::signal(SIGPIPE, SIG_IGN);

  if (!flags.quiet) {
    const auto& report = (*service)->recovery();
    std::fprintf(stderr,
                 "p2prange_node listening on %s (id=%u)"
                 " recovered=%zu wal_replayed=%zu\n",
                 server->address().ToString().c_str(), (*service)->id(),
                 report.descriptors_restored, report.wal_records_replayed);
  }

  if (!flags.join.empty()) {
    auto bootstrap = rpc::ParseHostPort(flags.join);
    if (!bootstrap.ok()) {
      std::fprintf(stderr, "--join: %s\n",
                   bootstrap.status().ToString().c_str());
      return 2;
    }
    // The bootstrap peer may still be coming up (rings are grown by
    // scripts that start daemons in quick succession): retry for ~10s.
    Status joined = Status::Unavailable("never attempted");
    for (int attempt = 0; attempt < 50 && g_stop == 0; ++attempt) {
      joined = membership->Join(*bootstrap, /*deadline_ms=*/1000.0);
      if (joined.ok()) break;
      ::usleep(200 * 1000);
    }
    if (!joined.ok()) {
      std::fprintf(stderr, "join %s: %s\n", flags.join.c_str(),
                   joined.ToString().c_str());
      return 1;
    }
    // Pull the arc this node now owns; push sweeps from the existing
    // members cover the rest, so a failed pull degrades, not fails.
    const Status pulled = rereplicator->PullPartition();
    if (!pulled.ok() && !flags.quiet) {
      std::fprintf(stderr, "pull partition: %s\n", pulled.ToString().c_str());
    }
    if (!flags.quiet) {
      std::fprintf(stderr, "p2prange_node %s: joined ring via %s (%zu alive)\n",
                   server->address().ToString().c_str(), flags.join.c_str(),
                   membership->num_alive());
    }
  }

  auto write_metrics = [&]() {
    if (flags.metrics_json.empty()) return;
    // Write-then-rename: a scraper reading mid-update must never see a
    // truncated half-written file, only the previous complete snapshot.
    const std::string tmp = flags.metrics_json + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      // The server observes no per-message latency model; its
      // NetworkStats half carries the byte totals.
      NetworkStats net;
      net.messages = server->stats().requests_served;
      net.bytes = server->stats().bytes_in + server->stats().bytes_out;
      std::string extra = ",\"membership\":" +
                          membership->counters().ToJson() +
                          // Live gauge, not a counter: how many ring
                          // members (self included) this node can see
                          // right now. The partition acceptance tests
                          // poll it to observe a split becoming total.
                          ",\"membership_alive\":" +
                          std::to_string(membership->num_alive()) +
                          ",\"rereplication\":" +
                          rereplicator->counters().ToJson();
      if (executor != nullptr) {
        const rpc::ExecutorStats exec = executor->snapshot();
        extra += ",\"executor\":{\"workers\":" + std::to_string(flags.workers) +
                 ",\"queue_depth\":" + std::to_string(flags.queue_depth) +
                 ",\"submitted\":" + std::to_string(exec.submitted) +
                 ",\"shed\":" + std::to_string(exec.shed) +
                 ",\"completed\":" + std::to_string(exec.completed) +
                 ",\"max_queue\":" + std::to_string(exec.max_queue) + "}";
      }
      out << (*service)->MetricsJson(net, server->stats(), extra) << "\n";
    }
    std::rename(tmp.c_str(), flags.metrics_json.c_str());
  };

  // Event loop: short poll timeout so the membership/re-replication
  // ticks and a stop signal are honored fast; metrics rewritten
  // periodically so scrapers always see fresh gauges.
  write_metrics();  // the file exists from the moment we are reachable
  int iterations_since_metrics = 0;
  while (g_stop == 0) {
    const Status st = server->PollOnce(/*timeout_ms=*/20);
    if (!st.ok()) {
      std::fprintf(stderr, "poll: %s\n", st.ToString().c_str());
      write_metrics();
      return 1;
    }
    if (executor != nullptr) {
      // Finished handler work comes home: frame each response back on
      // the connection that asked (gone connections drop theirs, as a
      // dead TCP peer would anyway).
      for (auto& done : executor->DrainCompletions()) {
        server->Respond(done.tag, done.payload);
      }
    }
    membership->Tick();
    rereplicator->Tick();
    if (executor != nullptr) (*service)->PublishRedirectRing();
    if (++iterations_since_metrics >= 50) {
      write_metrics();
      iterations_since_metrics = 0;
    }
  }

  // Stop intake, let the workers finish what was admitted, and flush
  // those last responses before the ring goodbye below.
  if (executor != nullptr) {
    executor->Shutdown();
    for (auto& done : executor->DrainCompletions()) {
      server->Respond(done.tag, done.payload);
    }
  }

  // Graceful leave: hand the local descriptors to the successor and
  // tell the neighbors, so the ring never serves a hole for them.
  if (membership->num_alive() > 1) {
    const Status handed = rereplicator->HandoffAll();
    if (!handed.ok() && !flags.quiet) {
      std::fprintf(stderr, "handoff: %s\n", handed.ToString().c_str());
    }
    membership->AnnounceLeave(/*deadline_ms=*/500.0);
  }

  write_metrics();
  if (!flags.quiet) {
    std::fprintf(stderr, "p2prange_node %s: graceful shutdown\n",
                 server->address().ToString().c_str());
  }
  return 0;
}
