// p2prange_node: one deployable peer process.
//
// Hosts a NodeService (durable descriptor store + materialized
// partitions) behind a TcpServer event loop. Every peer of a live ring
// is one of these processes; clients and other peers reach it with the
// framed RPC protocol of src/rpc.
//
//   p2prange_node --listen=127.0.0.1:7001
//       [--wal_dir=/var/lib/p2prange/n1]
//       [--store_capacity=0] [--checkpoint_every=64]
//       [--metrics_json=/tmp/n1.json] [--quiet]
//
// SIGTERM / SIGINT shut the daemon down gracefully: the loop drains,
// a final metrics snapshot is written, and the process exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "rpc/node_service.h"
#include "rpc/tcp.h"
#include "rpc/tcp_transport.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

struct Flags {
  std::string listen;
  std::string wal_dir;
  std::string metrics_json;
  size_t store_capacity = 0;
  uint64_t checkpoint_every = 64;
  bool quiet = false;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --listen=HOST:PORT [--wal_dir=DIR] "
               "[--store_capacity=N] [--checkpoint_every=N] "
               "[--metrics_json=PATH] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2prange;

  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "listen", &flags.listen)) continue;
    if (ParseFlag(arg, "wal_dir", &flags.wal_dir)) continue;
    if (ParseFlag(arg, "metrics_json", &flags.metrics_json)) continue;
    if (ParseFlag(arg, "store_capacity", &value)) {
      flags.store_capacity = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
      continue;
    }
    if (ParseFlag(arg, "checkpoint_every", &value)) {
      flags.checkpoint_every = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (arg == "--quiet") {
      flags.quiet = true;
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    return Usage(argv[0]);
  }
  if (flags.listen.empty()) return Usage(argv[0]);

  auto listen_addr = rpc::ParseHostPort(flags.listen);
  if (!listen_addr.ok()) {
    std::fprintf(stderr, "--listen: %s\n",
                 listen_addr.status().ToString().c_str());
    return 2;
  }

  rpc::NodeServiceOptions service_options;
  service_options.store_capacity = flags.store_capacity;
  service_options.durability.checkpoint_every = flags.checkpoint_every;
  service_options.wal_dir = flags.wal_dir;

  // The server comes up first so a 0 port is resolved to the kernel's
  // ephemeral pick before the service derives its id from the address.
  // Requests cannot arrive before the poll loop below starts, so the
  // handler's service pointer is always set by the time it runs.
  rpc::NodeService* service_ptr = nullptr;
  auto server = rpc::TcpServer::Listen(
      *listen_addr,
      [&service_ptr](rpc::MsgType type, std::string_view body) {
        return service_ptr->Handle(type, body);
      });
  if (!server.ok()) {
    std::fprintf(stderr, "listen %s: %s\n", flags.listen.c_str(),
                 server.status().ToString().c_str());
    return 1;
  }

  auto service = rpc::NodeService::Make(server->address(), service_options);
  if (!service.ok()) {
    std::fprintf(stderr, "node service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  service_ptr = service->get();

  std::signal(SIGTERM, HandleStop);
  std::signal(SIGINT, HandleStop);
  std::signal(SIGPIPE, SIG_IGN);

  if (!flags.quiet) {
    const auto& report = (*service)->recovery();
    std::fprintf(stderr,
                 "p2prange_node listening on %s (id=%u)"
                 " recovered=%zu wal_replayed=%zu\n",
                 server->address().ToString().c_str(), (*service)->id(),
                 report.descriptors_restored, report.wal_records_replayed);
  }

  auto write_metrics = [&]() {
    if (flags.metrics_json.empty()) return;
    // Write-then-rename: a scraper reading mid-update must never see a
    // truncated half-written file, only the previous complete snapshot.
    const std::string tmp = flags.metrics_json + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      // The server observes no per-message latency model; its
      // NetworkStats half carries the byte totals.
      NetworkStats net;
      net.messages = server->stats().requests_served;
      net.bytes = server->stats().bytes_in + server->stats().bytes_out;
      out << (*service)->MetricsJson(net, server->stats()) << "\n";
    }
    std::rename(tmp.c_str(), flags.metrics_json.c_str());
  };

  // Event loop: short poll timeout so a stop signal is honored fast;
  // metrics rewritten periodically so scrapers always see fresh gauges.
  write_metrics();  // the file exists from the moment we are reachable
  int iterations_since_metrics = 0;
  while (g_stop == 0) {
    const Status st = server->PollOnce(/*timeout_ms=*/100);
    if (!st.ok()) {
      std::fprintf(stderr, "poll: %s\n", st.ToString().c_str());
      write_metrics();
      return 1;
    }
    if (++iterations_since_metrics >= 10) {
      write_metrics();
      iterations_since_metrics = 0;
    }
  }

  write_metrics();
  if (!flags.quiet) {
    std::fprintf(stderr, "p2prange_node %s: graceful shutdown\n",
                 server->address().ToString().c_str());
  }
  return 0;
}
