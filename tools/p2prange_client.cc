// p2prange_client: drives a live ring of p2prange_node processes.
//
//   p2prange_client --members=H:P,H:P,... [common flags] COMMAND ...
//
// Commands:
//   ping ADDR                    one liveness round trip
//   metrics ADDR                 print a node's metrics JSON line
//   publish REL ATTR LO HI HOLDER   publish one partition descriptor
//   lookup REL ATTR LO HI        the §4 range lookup; prints the ranked
//                                matches and the best match's recall
//   workload --publishes=N --queries=N [--domain=LO:HI] [--wseed=S]
//                                the paper's uniform workload: publish
//                                N random ranges (holders round-robin
//                                over the members), query Q more, print
//                                summary recall/containment statistics
//
// Common flags: --lsh_k, --lsh_l, --lsh_seed (must match the
// publishers'), --criterion=jaccard|containment, --replication=N,
// --deadline_ms=D, --retries=N.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "rpc/ring_client.h"
#include "rpc/tcp.h"
#include "workload/range_workload.h"

namespace {

using namespace p2prange;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --members=H:P,... [--lsh_k=20] [--lsh_l=5] "
               "[--lsh_seed=1] [--criterion=jaccard|containment] "
               "[--replication=1] [--deadline_ms=1000] [--retries=3] "
               "COMMAND ...\n"
               "commands: ping ADDR | metrics ADDR | "
               "publish REL ATTR LO HI HOLDER | lookup REL ATTR LO HI | "
               "workload --publishes=N --queries=N [--domain=LO:HI] "
               "[--wseed=S]\n",
               argv0);
  return 2;
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Result<std::vector<NetAddress>> ParseMembers(const std::string& csv) {
  std::vector<NetAddress> members;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string item = csv.substr(start, comma - start);
    if (!item.empty()) {
      ASSIGN_OR_RETURN(NetAddress addr, rpc::ParseHostPort(item));
      members.push_back(addr);
    }
    start = comma + 1;
  }
  if (members.empty()) {
    return Status::InvalidArgument("--members is empty");
  }
  return members;
}

Result<PartitionKey> ParseKeyArgs(const std::vector<std::string>& args,
                                  size_t at) {
  if (at + 4 > args.size()) {
    return Status::InvalidArgument("expected REL ATTR LO HI");
  }
  const uint64_t lo = std::strtoull(args[at + 2].c_str(), nullptr, 10);
  const uint64_t hi = std::strtoull(args[at + 3].c_str(), nullptr, 10);
  if (lo > UINT32_MAX || hi > UINT32_MAX) {
    return Status::InvalidArgument("range endpoints must fit in 32 bits");
  }
  ASSIGN_OR_RETURN(Range range, Range::Make(static_cast<uint32_t>(lo),
                                            static_cast<uint32_t>(hi)));
  return PartitionKey{args[at], args[at + 1], range};
}

int RunWorkload(rpc::RingClient& client,
                const std::vector<NetAddress>& members, size_t publishes,
                size_t queries, uint32_t domain_lo, uint32_t domain_hi,
                uint64_t seed) {
  // Publish phase: the paper's uniform ranges, holders round-robin.
  UniformRangeGenerator gen(domain_lo, domain_hi, seed);
  size_t published = 0;
  for (size_t i = 0; i < publishes; ++i) {
    const Range r = gen.Next();
    const PartitionKey key{"T", "a", r};
    const NetAddress holder = members[i % members.size()];
    const Status st = client.Publish(key, holder);
    if (!st.ok()) {
      std::fprintf(stderr, "publish %s: %s\n", key.ToString().c_str(),
                   st.ToString().c_str());
      continue;
    }
    ++published;
  }

  // Query phase: fresh draws from the same distribution.
  UniformRangeGenerator qgen(domain_lo, domain_hi, seed ^ 0x9E3779B9);
  size_t answered = 0, hits = 0, exact = 0, degraded = 0;
  double recall_sum = 0.0, containment_sum = 0.0;
  for (size_t i = 0; i < queries; ++i) {
    const Range q = qgen.Next();
    const PartitionKey key{"T", "a", q};
    auto outcome = client.Lookup(key);
    if (!outcome.ok()) {
      std::fprintf(stderr, "lookup %s: %s\n", key.ToString().c_str(),
                   outcome.status().ToString().c_str());
      continue;
    }
    ++answered;
    if (outcome->probes_failed > 0) ++degraded;
    if (!outcome->ranked.empty()) {
      ++hits;
      const Range best = outcome->ranked.front().descriptor.key.range;
      if (best == q) ++exact;
      recall_sum += q.RecallFrom(best);
      containment_sum += q.ContainmentIn(best);
    }
  }

  std::printf(
      "{\"published\":%zu,\"queries\":%zu,\"answered\":%zu,\"hits\":%zu,"
      "\"exact\":%zu,\"degraded\":%zu,\"avg_recall\":%.6f,"
      "\"avg_containment\":%.6f,\"timeouts\":%llu,\"retransmits\":%llu}\n",
      published, queries, answered, hits, exact, degraded,
      hits > 0 ? recall_sum / static_cast<double>(hits) : 0.0,
      hits > 0 ? containment_sum / static_cast<double>(hits) : 0.0,
      static_cast<unsigned long long>(client.transport().rpc_stats().timeouts),
      static_cast<unsigned long long>(
          client.transport().rpc_stats().retransmits));
  return answered == queries ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string members_csv;
  rpc::RingClientOptions options;
  std::string criterion = "jaccard";
  std::vector<std::string> args;

  size_t publishes = 0, queries = 0;
  uint32_t domain_lo = 0, domain_hi = 1000;
  uint64_t wseed = 7;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "members", &members_csv)) continue;
    if (ParseFlag(arg, "lsh_k", &value)) {
      options.lsh.k = std::atoi(value.c_str());
      continue;
    }
    if (ParseFlag(arg, "lsh_l", &value)) {
      options.lsh.l = std::atoi(value.c_str());
      continue;
    }
    if (ParseFlag(arg, "lsh_seed", &value)) {
      options.lsh.seed = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    if (ParseFlag(arg, "criterion", &criterion)) continue;
    if (ParseFlag(arg, "replication", &value)) {
      options.descriptor_replication = std::atoi(value.c_str());
      continue;
    }
    if (ParseFlag(arg, "deadline_ms", &value)) {
      options.deadline_ms = std::atof(value.c_str());
      continue;
    }
    if (ParseFlag(arg, "retries", &value)) {
      options.fault.max_retries = std::atoi(value.c_str());
      continue;
    }
    if (ParseFlag(arg, "publishes", &value)) {
      publishes = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
      continue;
    }
    if (ParseFlag(arg, "queries", &value)) {
      queries = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
      continue;
    }
    if (ParseFlag(arg, "domain", &value)) {
      const size_t colon = value.find(':');
      if (colon == std::string::npos) return Usage(argv[0]);
      domain_lo = static_cast<uint32_t>(
          std::strtoul(value.substr(0, colon).c_str(), nullptr, 10));
      domain_hi = static_cast<uint32_t>(
          std::strtoul(value.substr(colon + 1).c_str(), nullptr, 10));
      continue;
    }
    if (ParseFlag(arg, "wseed", &value)) {
      wseed = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    args.push_back(arg);
  }

  if (members_csv.empty() || args.empty()) return Usage(argv[0]);
  if (criterion == "containment") {
    options.criterion = MatchCriterion::kContainment;
  } else if (criterion != "jaccard") {
    std::fprintf(stderr, "unknown criterion %s\n", criterion.c_str());
    return 2;
  }
  options.transport.default_deadline_ms = options.deadline_ms;

  auto members = ParseMembers(members_csv);
  if (!members.ok()) {
    std::fprintf(stderr, "--members: %s\n",
                 members.status().ToString().c_str());
    return 2;
  }
  auto client = rpc::RingClient::Make(*members, options);
  if (!client.ok()) {
    std::fprintf(stderr, "client: %s\n", client.status().ToString().c_str());
    return 1;
  }

  const std::string& command = args[0];
  if (command == "ping" && args.size() == 2) {
    auto addr = rpc::ParseHostPort(args[1]);
    if (!addr.ok()) {
      std::fprintf(stderr, "%s\n", addr.status().ToString().c_str());
      return 2;
    }
    auto latency = (*client)->Ping(*addr);
    if (!latency.ok()) {
      std::fprintf(stderr, "ping: %s\n", latency.status().ToString().c_str());
      return 1;
    }
    std::printf("pong from %s in %.3f ms\n", args[1].c_str(), *latency);
    return 0;
  }
  if (command == "metrics" && args.size() == 2) {
    auto addr = rpc::ParseHostPort(args[1]);
    if (!addr.ok()) {
      std::fprintf(stderr, "%s\n", addr.status().ToString().c_str());
      return 2;
    }
    auto json = (*client)->NodeMetrics(*addr);
    if (!json.ok()) {
      std::fprintf(stderr, "metrics: %s\n", json.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", json->c_str());
    return 0;
  }
  if (command == "publish" && args.size() == 6) {
    auto key = ParseKeyArgs(args, 1);
    auto holder = rpc::ParseHostPort(args[5]);
    if (!key.ok() || !holder.ok()) {
      std::fprintf(stderr, "publish: bad arguments\n");
      return 2;
    }
    const Status st = (*client)->Publish(*key, *holder);
    if (!st.ok()) {
      std::fprintf(stderr, "publish: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("published %s -> holder %s\n", key->ToString().c_str(),
                args[5].c_str());
    return 0;
  }
  if (command == "lookup" && args.size() == 5) {
    auto key = ParseKeyArgs(args, 1);
    if (!key.ok()) {
      std::fprintf(stderr, "lookup: %s\n", key.status().ToString().c_str());
      return 2;
    }
    auto outcome = (*client)->Lookup(*key);
    if (!outcome.ok()) {
      std::fprintf(stderr, "lookup: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("query %s: %zu match(es), %d probe(s) failed, %.3f ms\n",
                key->ToString().c_str(), outcome->ranked.size(),
                outcome->probes_failed, outcome->latency_ms);
    for (const MatchCandidate& c : outcome->ranked) {
      std::printf("  %-40s holder=%s score=%.4f recall=%.4f%s\n",
                  c.descriptor.key.ToString().c_str(),
                  c.descriptor.holder.ToString().c_str(), c.similarity,
                  key->range.RecallFrom(c.descriptor.key.range),
                  c.exact ? " exact" : "");
    }
    return 0;
  }
  if (command == "workload") {
    if (queries == 0 && publishes == 0) return Usage(argv[0]);
    return RunWorkload(**client, *members, publishes, queries, domain_lo,
                       domain_hi, wseed);
  }
  return Usage(argv[0]);
}
