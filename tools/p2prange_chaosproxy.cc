// p2prange_chaosproxy: a deterministic TCP fault-injection proxy for
// the live ring (DESIGN.md §11).
//
// The proxy fronts N daemons: listener i forwards to upstream i, and
// every proxied byte stream is shaped by a ChaosPlan (src/rpc/chaos.h)
// — scripted latency/jitter, probabilistic drop and corruption,
// bandwidth throttling (slow-loris when small), mid-stream RST, and
// simplex/duplex partitions with scheduled heal. Daemons run with
//
//   p2prange_node --listen=REAL_i --advertise=PROXY_i
//
// so every peer- and client-visible address is the proxy's; daemons
// bind their outbound source to their own IP (TcpTransport bind_host),
// which is how the proxy attributes a connection arriving at listener
// i to a directed link F->i (source IP matched against the upstream
// hosts; anything else is a client, link "c").
//
//   p2prange_chaosproxy --listen=A1,A2,... --upstream=U1,U2,...
//       [--plan=FILE | --rules='r1;r2;...'] [--seed=N]
//       [--metrics_json=PATH] [--quiet]
//
// --rules takes the plan grammar with ';' for newlines. SIGHUP
// re-reads --plan and restarts the schedule clock, so a harness can
// install "partition now" with an exact epoch. Determinism: shaping
// decisions come from Rngs seeded by (plan seed, link, connection
// serial), never from wall-clock entropy, so a replay of the same
// schedule over the same connection order makes the same choices.
//
// SIGTERM/SIGINT writes the per-link counters to --metrics_json and
// exits 0.

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <algorithm>
#include <chrono>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "rpc/chaos.h"
#include "rpc/tcp.h"

namespace {

using p2prange::NetAddress;
using p2prange::Rng;
using p2prange::rpc::ChaosPlan;
using p2prange::rpc::kChaosClient;
using p2prange::rpc::LinkEffects;

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_reload = 0;

void HandleStop(int) { g_stop = 1; }
void HandleReload(int) { g_reload = 1; }

/// Shaping quantum: effects are applied per segment of at most this
/// many bytes, so drop/corrupt probabilities have a stable unit and a
/// delayed stream still interleaves at sub-frame granularity.
constexpr size_t kSegmentBytes = 1024;
/// Per-direction ceiling on delayed + writable bytes; past it the
/// proxy stops reading from the source (backpressure instead of RSS).
constexpr size_t kMaxBuffered = 4 * 1024 * 1024;
/// Poll granularity: delays and rate release quantize to this.
constexpr int kTickMs = 5;

struct Flags {
  std::vector<std::string> listen;
  std::vector<std::string> upstream;
  std::string plan_file;
  std::string rules;
  std::string metrics_json;
  uint64_t seed = 0;  // 0 = keep the plan's seed
  bool seed_set = false;
  bool quiet = false;
};

struct Segment {
  double release_ms = 0.0;
  std::string bytes;
};

/// Counters of one directed link, accumulated across connections.
struct LinkStats {
  uint64_t conns = 0;
  uint64_t bytes_forwarded = 0;
  uint64_t bytes_blackholed = 0;
  uint64_t segments_dropped = 0;
  uint64_t segments_corrupted = 0;
  uint64_t resets = 0;
};

/// One direction of a proxied connection: read src, shape, write dst.
struct Flow {
  int src_fd = -1;
  int dst_fd = -1;
  int from = kChaosClient;
  int to = kChaosClient;
  Rng rng{1};
  std::deque<Segment> delayed;
  size_t delayed_bytes = 0;
  std::string out;          ///< released, waiting for the dst socket
  double credit = 0.0;      ///< rate-limiter token bucket (bytes)
  double credit_at_ms = 0.0;
  uint64_t forwarded = 0;   ///< bytes written to dst so far
  bool src_eof = false;
  bool dst_shut = false;    ///< SHUT_WR already sent to dst
};

struct ProxyConn {
  int client_fd = -1;
  int upstream_fd = -1;
  bool upstream_connected = false;
  int node = 0;             ///< index of the fronted daemon
  int peer = kChaosClient;  ///< who connected (node index or client)
  Flow inbound;             ///< peer -> node
  Flow outbound;            ///< node -> peer
  bool dead = false;
  bool reset = false;  ///< close with RST (SO_LINGER 0)
};

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --listen=H:P[,H:P...] --upstream=H:P[,H:P...] "
               "[--plan=FILE | --rules='RULE;RULE;...'] [--seed=N] "
               "[--metrics_json=PATH] [--quiet]\n",
               argv0);
  return 2;
}

class ChaosProxy {
 public:
  ChaosProxy(ChaosPlan plan, std::vector<NetAddress> upstreams, bool quiet)
      : plan_(std::move(plan)),
        upstreams_(std::move(upstreams)),
        quiet_(quiet),
        epoch_(Clock::now()) {
    link_stats_.resize((upstreams_.size() + 1) * (upstreams_.size() + 1));
  }

  void set_plan(ChaosPlan plan) {
    plan_ = std::move(plan);
    epoch_ = Clock::now();
  }

  void AddListener(int fd) { listeners_.push_back(fd); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - epoch_)
        .count();
  }

  /// One poll-loop iteration: accept, read+shape, release, write.
  void Tick() {
    PollSockets();
    const double elapsed = ElapsedMs();
    AcceptReady();
    for (auto& conn : conns_) {
      if (conn->dead) continue;
      FinishUpstream(*conn);
      PumpFlow(*conn, conn->inbound, elapsed);
      if (conn->dead) continue;
      PumpFlow(*conn, conn->outbound, elapsed);
      if (!conn->dead && BothDrained(*conn)) conn->dead = true;
    }
    Reap();
  }

  std::string MetricsJson() const {
    std::string out = "{\"accepted\":" + std::to_string(accepted_);
    out += ",\"open\":" + std::to_string(conns_.size());
    out += ",\"links\":[";
    bool first = true;
    const int n = static_cast<int>(upstreams_.size());
    for (int from = -1; from < n; ++from) {
      for (int to = -1; to < n; ++to) {
        const LinkStats& s = StatsFor(from < 0 ? kChaosClient : from,
                                      to < 0 ? kChaosClient : to);
        if (s.conns == 0 && s.bytes_forwarded == 0 && s.bytes_blackholed == 0 &&
            s.segments_dropped == 0 && s.resets == 0) {
          continue;
        }
        if (!first) out += ',';
        first = false;
        out += "{\"from\":\"" + EndpointName(from < 0 ? kChaosClient : from);
        out += "\",\"to\":\"" + EndpointName(to < 0 ? kChaosClient : to);
        out += "\",\"conns\":" + std::to_string(s.conns);
        out += ",\"bytes_forwarded\":" + std::to_string(s.bytes_forwarded);
        out += ",\"bytes_blackholed\":" + std::to_string(s.bytes_blackholed);
        out += ",\"segments_dropped\":" + std::to_string(s.segments_dropped);
        out += ",\"segments_corrupted\":" + std::to_string(s.segments_corrupted);
        out += ",\"resets\":" + std::to_string(s.resets);
        out += "}";
      }
    }
    out += "]}";
    return out;
  }

 private:
  using Clock = std::chrono::steady_clock;

  static std::string EndpointName(int e) {
    return e == kChaosClient ? std::string("c") : std::to_string(e);
  }

  /// Dense (from, to) -> stats slot; client maps to index 0.
  LinkStats& StatsFor(int from, int to) {
    const size_t n = upstreams_.size() + 1;
    const size_t f = from == kChaosClient ? 0 : static_cast<size_t>(from) + 1;
    const size_t t = to == kChaosClient ? 0 : static_cast<size_t>(to) + 1;
    return link_stats_[f * n + t];
  }
  const LinkStats& StatsFor(int from, int to) const {
    return const_cast<ChaosProxy*>(this)->StatsFor(from, to);
  }

  void PollSockets() {
    std::vector<pollfd> fds;
    fds.reserve(listeners_.size() + conns_.size() * 2);
    for (int fd : listeners_) fds.push_back({fd, POLLIN, 0});
    for (const auto& conn : conns_) {
      if (conn->dead) continue;
      short client_ev = POLLIN;
      if (!conn->outbound.out.empty()) client_ev |= POLLOUT;
      fds.push_back({conn->client_fd, client_ev, 0});
      short up_ev = POLLIN;
      if (!conn->upstream_connected || !conn->inbound.out.empty()) {
        up_ev |= POLLOUT;
      }
      fds.push_back({conn->upstream_fd, up_ev, 0});
    }
    // The tick is the clock for delays and rate release; poll is only
    // an early wake-up when bytes arrive.
    ::poll(fds.data(), fds.size(), kTickMs);
  }

  void AcceptReady() {
    for (size_t i = 0; i < listeners_.size(); ++i) {
      for (;;) {
        const int fd = ::accept4(listeners_[i], nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;
        NewConn(static_cast<int>(i), fd);
      }
    }
  }

  void NewConn(int node, int client_fd) {
    // Who connected? Daemons bind their outbound source to their own
    // IP, so the peer address names the directed link.
    int peer = kChaosClient;
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    if (::getpeername(client_fd, reinterpret_cast<sockaddr*>(&sa), &len) ==
        0) {
      const NetAddress src = p2prange::rpc::FromSockaddr(sa);
      for (size_t i = 0; i < upstreams_.size(); ++i) {
        if (upstreams_[i].host == src.host) {
          peer = static_cast<int>(i);
          break;
        }
      }
    }
    auto started = p2prange::rpc::StartConnect(upstreams_[static_cast<size_t>(node)]);
    if (!started.ok()) {
      ::close(client_fd);
      return;
    }
    auto conn = std::make_unique<ProxyConn>();
    conn->client_fd = client_fd;
    conn->upstream_fd = *started;
    conn->node = node;
    conn->peer = peer;
    const uint64_t serial = ++accepted_;
    conn->inbound.src_fd = client_fd;
    conn->inbound.dst_fd = conn->upstream_fd;
    conn->inbound.from = peer;
    conn->inbound.to = node;
    conn->inbound.rng = Rng(plan_.ShaperSeed(peer, node, serial));
    conn->outbound.src_fd = conn->upstream_fd;
    conn->outbound.dst_fd = client_fd;
    conn->outbound.from = node;
    conn->outbound.to = peer;
    conn->outbound.rng = Rng(plan_.ShaperSeed(node, peer, serial));
    ++StatsFor(peer, node).conns;
    if (!quiet_) {
      std::fprintf(stderr, "chaosproxy: conn #%llu %s->%d\n",
                   static_cast<unsigned long long>(serial),
                   EndpointName(peer).c_str(), node);
    }
    conns_.push_back(std::move(conn));
  }

  void FinishUpstream(ProxyConn& conn) {
    if (conn.upstream_connected) return;
    pollfd pfd{conn.upstream_fd, POLLOUT, 0};
    if (::poll(&pfd, 1, 0) <= 0) return;
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(conn.upstream_fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      conn.dead = true;  // upstream refused: drop the client too
      return;
    }
    conn.upstream_connected = true;
  }

  void KillWithReset(ProxyConn& conn) {
    conn.dead = true;
    conn.reset = true;
  }

  /// Read src, apply per-segment effects, release due segments, write
  /// dst under the rate limit, fire scheduled resets.
  void PumpFlow(ProxyConn& conn, Flow& flow, double elapsed) {
    const LinkEffects fx = plan_.EffectsAt(elapsed, flow.from, flow.to);
    LinkStats& stats = StatsFor(flow.from, flow.to);

    // Intake. Skipped while over the buffer cap: TCP backpressure on
    // the source instead of unbounded proxy memory.
    const bool writing_to_upstream = flow.dst_fd == conn.upstream_fd;
    if (!flow.src_eof && flow.delayed_bytes + flow.out.size() < kMaxBuffered) {
      char buf[16 * 1024];
      for (;;) {
        const ssize_t n = ::recv(flow.src_fd, buf, sizeof(buf), 0);
        if (n == 0) {
          flow.src_eof = true;
          break;
        }
        if (n < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          flow.src_eof = true;
          break;
        }
        for (ssize_t off = 0; off < n;
             off += static_cast<ssize_t>(kSegmentBytes)) {
          const size_t seg_len = std::min(
              kSegmentBytes, static_cast<size_t>(n - off));
          std::string seg(buf + off, seg_len);
          if (fx.blackhole) {
            stats.bytes_blackholed += seg.size();
            continue;
          }
          if (fx.drop_prob > 0.0 && flow.rng.NextBernoulli(fx.drop_prob)) {
            ++stats.segments_dropped;
            continue;
          }
          if (fx.corrupt_prob > 0.0 &&
              flow.rng.NextBernoulli(fx.corrupt_prob)) {
            const size_t byte = flow.rng.NextBounded(seg.size());
            seg[byte] = static_cast<char>(
                static_cast<uint8_t>(seg[byte]) ^
                (1u << flow.rng.NextBounded(8)));
            ++stats.segments_corrupted;
          }
          double release = elapsed;
          if (fx.delay_ms > 0.0 || fx.jitter_ms > 0.0) {
            release += fx.delay_ms + fx.jitter_ms * flow.rng.NextDouble();
          }
          flow.delayed_bytes += seg.size();
          flow.delayed.push_back(Segment{release, std::move(seg)});
        }
        if (static_cast<size_t>(n) < sizeof(buf)) break;
      }
    }

    // Release due segments into the write buffer.
    while (!flow.delayed.empty() && flow.delayed.front().release_ms <= elapsed) {
      flow.delayed_bytes -= flow.delayed.front().bytes.size();
      flow.out += flow.delayed.front().bytes;
      flow.delayed.pop_front();
    }

    // Write under the token bucket (bps = 0 means unlimited).
    const bool dst_ready = !writing_to_upstream || conn.upstream_connected;
    if (!flow.out.empty() && dst_ready) {
      size_t allowed = flow.out.size();
      if (fx.bytes_per_s > 0.0) {
        const double dt_s = (elapsed - flow.credit_at_ms) / 1000.0;
        if (dt_s > 0.0) flow.credit += fx.bytes_per_s * dt_s;
        // Bursts bounded to a quarter second of budget.
        flow.credit = std::min(flow.credit,
                               std::max(fx.bytes_per_s * 0.25, 64.0));
        allowed = std::min(allowed, static_cast<size_t>(flow.credit));
      }
      flow.credit_at_ms = elapsed;
      if (allowed > 0) {
        const ssize_t n =
            ::send(flow.dst_fd, flow.out.data(), allowed, MSG_NOSIGNAL);
        if (n > 0) {
          flow.out.erase(0, static_cast<size_t>(n));
          flow.forwarded += static_cast<uint64_t>(n);
          stats.bytes_forwarded += static_cast<uint64_t>(n);
          if (fx.bytes_per_s > 0.0) flow.credit -= static_cast<double>(n);
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
          conn.dead = true;
          return;
        }
      }
    }

    // Scheduled mid-stream reset.
    if (fx.reset_after_bytes > 0 && flow.forwarded >= fx.reset_after_bytes) {
      ++stats.resets;
      if (!quiet_) {
        std::fprintf(stderr, "chaosproxy: reset %s->%s after %llu bytes\n",
                     EndpointName(flow.from).c_str(),
                     EndpointName(flow.to).c_str(),
                     static_cast<unsigned long long>(flow.forwarded));
      }
      KillWithReset(conn);
      return;
    }

    // Half-close: source finished and everything shaped has drained.
    if (flow.src_eof && flow.delayed.empty() && flow.out.empty() &&
        !flow.dst_shut && dst_ready) {
      ::shutdown(flow.dst_fd, SHUT_WR);
      flow.dst_shut = true;
    }
  }

  static bool BothDrained(const ProxyConn& conn) {
    return conn.inbound.dst_shut && conn.outbound.dst_shut;
  }

  void Reap() {
    for (auto& conn : conns_) {
      if (!conn->dead) continue;
      if (conn->reset) {
        // SO_LINGER(0): close sends RST, the authentic mid-frame kill.
        linger lg{1, 0};
        ::setsockopt(conn->client_fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
        ::setsockopt(conn->upstream_fd, SOL_SOCKET, SO_LINGER, &lg,
                     sizeof(lg));
      }
      ::close(conn->client_fd);
      ::close(conn->upstream_fd);
    }
    std::erase_if(conns_,
                  [](const std::unique_ptr<ProxyConn>& c) { return c->dead; });
  }

  ChaosPlan plan_;
  std::vector<NetAddress> upstreams_;
  bool quiet_;
  Clock::time_point epoch_;
  std::vector<int> listeners_;
  std::vector<std::unique_ptr<ProxyConn>> conns_;
  std::vector<LinkStats> link_stats_;
  uint64_t accepted_ = 0;
};

p2prange::Result<ChaosPlan> LoadPlan(const Flags& flags) {
  std::string text;
  if (!flags.plan_file.empty()) {
    std::ifstream in(flags.plan_file);
    if (!in) {
      return p2prange::Status::IOError("cannot read plan file " +
                                       flags.plan_file);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  } else {
    text = flags.rules;
    for (char& c : text) {
      if (c == ';') c = '\n';
    }
  }
  ASSIGN_OR_RETURN(ChaosPlan plan, ChaosPlan::Parse(text));
  if (flags.seed_set) plan.seed = flags.seed;
  return plan;
}

void WriteMetrics(const std::string& path, const ChaosProxy& proxy) {
  if (path.empty()) return;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << proxy.MetricsJson() << "\n";
  }
  std::rename(tmp.c_str(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2prange;

  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "listen", &value)) {
      flags.listen = SplitCommas(value);
      continue;
    }
    if (ParseFlag(arg, "upstream", &value)) {
      flags.upstream = SplitCommas(value);
      continue;
    }
    if (ParseFlag(arg, "plan", &flags.plan_file)) continue;
    if (ParseFlag(arg, "rules", &flags.rules)) continue;
    if (ParseFlag(arg, "metrics_json", &flags.metrics_json)) continue;
    if (ParseFlag(arg, "seed", &value)) {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
      flags.seed_set = true;
      continue;
    }
    if (arg == "--quiet") {
      flags.quiet = true;
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    return Usage(argv[0]);
  }
  if (flags.listen.empty() || flags.listen.size() != flags.upstream.size()) {
    std::fprintf(stderr, "--listen and --upstream must pair up\n");
    return Usage(argv[0]);
  }
  if (!flags.plan_file.empty() && !flags.rules.empty()) {
    std::fprintf(stderr, "--plan and --rules are exclusive\n");
    return Usage(argv[0]);
  }

  auto plan = LoadPlan(flags);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 2;
  }

  std::vector<NetAddress> upstreams;
  for (const std::string& u : flags.upstream) {
    auto addr = rpc::ParseHostPort(u);
    if (!addr.ok()) {
      std::fprintf(stderr, "--upstream %s: %s\n", u.c_str(),
                   addr.status().ToString().c_str());
      return 2;
    }
    upstreams.push_back(*addr);
  }

  ChaosProxy proxy(std::move(*plan), upstreams, flags.quiet);
  for (size_t i = 0; i < flags.listen.size(); ++i) {
    auto addr = rpc::ParseHostPort(flags.listen[i]);
    if (!addr.ok()) {
      std::fprintf(stderr, "--listen %s: %s\n", flags.listen[i].c_str(),
                   addr.status().ToString().c_str());
      return 2;
    }
    auto listener = rpc::Listen(*addr);
    if (!listener.ok()) {
      std::fprintf(stderr, "listen %s: %s\n", flags.listen[i].c_str(),
                   listener.status().ToString().c_str());
      return 1;
    }
    proxy.AddListener(listener->fd);
    if (!flags.quiet) {
      std::fprintf(stderr, "chaosproxy: %s -> %s\n",
                   listener->bound.ToString().c_str(),
                   upstreams[i].ToString().c_str());
    }
  }

  std::signal(SIGTERM, HandleStop);
  std::signal(SIGINT, HandleStop);
  std::signal(SIGHUP, HandleReload);
  std::signal(SIGPIPE, SIG_IGN);

  WriteMetrics(flags.metrics_json, proxy);
  int ticks_since_metrics = 0;
  while (g_stop == 0) {
    if (g_reload != 0) {
      g_reload = 0;
      // Re-read the schedule and restart its clock: the harness edits
      // the plan file, SIGHUPs, and the new rules' t=0 is "now".
      auto reloaded = LoadPlan(flags);
      if (reloaded.ok()) {
        proxy.set_plan(std::move(*reloaded));
        if (!flags.quiet) std::fprintf(stderr, "chaosproxy: plan reloaded\n");
      } else {
        std::fprintf(stderr, "chaosproxy: reload failed: %s\n",
                     reloaded.status().ToString().c_str());
      }
    }
    proxy.Tick();
    if (++ticks_since_metrics >= 100) {
      WriteMetrics(flags.metrics_json, proxy);
      ticks_since_metrics = 0;
    }
  }
  WriteMetrics(flags.metrics_json, proxy);
  if (!flags.quiet) std::fprintf(stderr, "chaosproxy: shutdown\n");
  return 0;
}
