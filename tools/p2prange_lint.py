#!/usr/bin/env python3
"""p2prange invariant linter: repo-specific rules clang-tidy cannot express.

Every rule is a project invariant documented in DESIGN.md ("Engineering
standards & static analysis"); the golden corpus under
tests/tools/corpus/ proves each one fires. Checks run on a
comment- and string-stripped view of each file, so a rule name in a
comment (like this docstring) never trips it.

Rules
  P2P001 no-exceptions        `throw` / `try` / `catch` anywhere under src/.
                              Library code reports failure as Status /
                              Result<T>; exceptions would bypass every
                              RETURN_NOT_OK chain and the -fno-exceptions
                              future.
  P2P002 rng-discipline       `rand()` / `srand()` / `std::random_device` /
                              `mt19937` outside src/common/random.*. All
                              randomness flows through p2prange::Rng so
                              every run is replayable from a 64-bit seed.
  P2P003 no-naked-new         `new` outside a WrapUnique(...) argument.
                              WrapUnique (src/common/memory.h) is the one
                              ownership-transfer spelling; everything else
                              is std::make_unique or a container.
  P2P004 no-dcheck-untrusted  DCHECK* / CHECK* on the untrusted-input
                              paths (src/wire/, src/rpc/ — including the
                              membership gossip/join decode paths —
                              src/store/wal*, src/store/snapshot*).
                              Wire- and disk-derived bytes are
                              attacker-controlled: validation there must
                              be a real branch returning Status. DCHECK
                              is compiled out of release builds; CHECK
                              is worse — it lets any peer that sends a
                              malformed body crash the daemon.
  P2P005 msg-nosignal         In socket code (src/, tools/): `::send()`
                              must pass MSG_NOSIGNAL in the same call, and
                              `::write()` on sockets is forbidden outright
                              — a peer that resets mid-write must surface
                              as an error, not kill the process with
                              SIGPIPE.
  P2P006 nonblock-cloexec     In socket code (src/, tools/): `::socket()`
                              must pass SOCK_NONBLOCK | SOCK_CLOEXEC in
                              the same statement, and plain `::accept()`
                              is forbidden in favour of `::accept4()`
                              carrying the same two flags. A blocking fd
                              stalls the single poll loop the moment one
                              peer trickles, and a leaked fd crosses the
                              fork/exec boundary into child daemons.
  P2P007 annotated-sync-only  Raw std synchronization primitives
                              (std::mutex and friends, lock_guard,
                              unique_lock, shared_lock, scoped_lock,
                              condition_variable) anywhere under src/.
                              Every lock is a p2prange::Mutex /
                              MutexLock / CondVar (src/common/sync.h),
                              so the clang thread-safety analysis and
                              the runtime lock-rank checks see every
                              acquisition in the tree. sync.h itself
                              wraps the std primitives behind per-line
                              suppressions — the only ones allowed.
  P2P008 no-block-under-lock  In src/ and tools/: a blocking syscall
                              (::poll, ::send, ::recv, ::connect,
                              ::nanosleep, ::usleep) while a MutexLock /
                              ReaderMutexLock / WriterMutexLock is in
                              scope in the same block. A lock held
                              across a syscall that can sleep turns one
                              slow peer into a stalled worker pool:
                              copy what you need under the lock, do the
                              I/O outside it.

Suppression: append `// p2plint: allow(P2PNNN): <reason>` to the
offending line. The rule id is mandatory and the reason must be
non-empty; a malformed suppression is itself an error (P2P000).

Usage:
  tools/p2prange_lint.py                 # lint the repo (src tools tests
                                         # bench examples relative to the
                                         # script's parent directory)
  tools/p2prange_lint.py --root DIR      # lint DIR's tree instead (used
                                         # by the golden-corpus test)
  tools/p2prange_lint.py FILE...         # lint specific files (paths are
                                         # interpreted relative to the
                                         # root for scope rules)

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

import argparse
import os
import re
import sys

SCAN_DIRS = ("src", "tools", "tests", "bench", "examples")
EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")

# Paths whose input is untrusted (network- or disk-derived bytes).
UNTRUSTED_PREFIXES = ("src/wire/", "src/rpc/")
UNTRUSTED_FILE_PATTERNS = (
    re.compile(r"^src/store/wal[^/]*$"),
    re.compile(r"^src/store/snapshot[^/]*$"),
)

SUPPRESS_RE = re.compile(
    r"//\s*p2plint:\s*allow\((P2P\d{3})\)\s*(?::\s*(.*?))?\s*$")

FINDINGS = []


def report(rel, line_no, rule, message):
    FINDINGS.append((rel, line_no, rule, message))


def strip_code(text):
    """Blanks comments and string/char literals, preserving layout.

    Replaced characters become spaces (newlines survive), so line and
    column numbers in the stripped text match the original. Handles
    //, /* */, "...", '...' with escapes, and R"delim(...)delim".
    """
    out = list(text)

    def blank(i):
        if out[i] != "\n":
            out[i] = " "

    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                blank(i)
                i += 1
        elif c == "/" and nxt == "*":
            blank(i)
            blank(i + 1)
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                blank(i)
                i += 1
            if i < n:
                blank(i)
                blank(i + 1)
                i += 2
        elif c == "R" and nxt == '"' and (i == 0
                                          or not (text[i - 1].isalnum()
                                                  or text[i - 1] == "_")):
            j = text.find("(", i + 2)
            if j < 0:
                break
            delim = text[i + 2:j]
            close = ')' + delim + '"'
            end = text.find(close, j + 1)
            end = n if end < 0 else end + len(close)
            while i < end:
                blank(i)
                i += 1
        elif c in "\"'":
            quote = c
            blank(i)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    blank(i)
                    i += 1
                blank(i)
                i += 1
            if i < n:
                blank(i)
                i += 1
        else:
            i += 1
    return "".join(out)


def parse_suppressions(rel, raw_lines):
    """Maps line number -> rule id for well-formed allow() comments."""
    allowed = {}
    for idx, line in enumerate(raw_lines, start=1):
        if "p2plint" not in line:
            continue
        m = SUPPRESS_RE.search(line)
        if not m:
            report(rel, idx, "P2P000",
                   "malformed p2plint suppression; use "
                   "`// p2plint: allow(P2PNNN): <reason>`")
            continue
        rule, reason = m.group(1), m.group(2)
        if not reason:
            report(rel, idx, "P2P000",
                   "p2plint suppression for %s lacks a reason" % rule)
            continue
        allowed.setdefault(idx, set()).add(rule)
    return allowed


def is_untrusted_path(rel):
    if any(rel.startswith(p) for p in UNTRUSTED_PREFIXES):
        return True
    return any(p.match(rel) for p in UNTRUSTED_FILE_PATTERNS)


WORD = re.compile(r"[A-Za-z0-9_]")


def preceded_by_wrap_unique(stripped, pos):
    """True when the `new` at `pos` is the first token inside
    WrapUnique( — i.e. scanning backwards over whitespace we find `(`
    preceded by the identifier WrapUnique."""
    i = pos - 1
    while i >= 0 and stripped[i] in " \t\n":
        i -= 1
    if i < 0 or stripped[i] != "(":
        return False
    i -= 1
    end = i + 1
    while i >= 0 and WORD.match(stripped[i]):
        i -= 1
    return stripped[i + 1:end].endswith("WrapUnique")


def statement_around(stripped, pos):
    """The text of the statement containing `pos` (between ;/{/} ends)."""
    start = max(stripped.rfind(";", 0, pos), stripped.rfind("{", 0, pos),
                stripped.rfind("}", 0, pos)) + 1
    end = stripped.find(";", pos)
    if end < 0:
        end = len(stripped)
    return stripped[start:end]


RE_EXCEPTION = re.compile(r"\b(throw|try|catch)\b")
RE_RNG = re.compile(r"\b(?:s?rand)\s*\(|(?:std\s*::\s*)?random_device\b|"
                    r"\bmt19937(?:_64)?\b")
RE_NEW = re.compile(r"\bnew\b(?!\s*\()")  # `new (nothrow)` has no home either
RE_DCHECK = re.compile(r"\bDCHECK(?:_EQ|_NE|_LT|_LE|_GT|_GE)?\s*\(")
# \bCHECK does not match the tail of DCHECK (no word boundary after D).
RE_CHECK = re.compile(r"\bCHECK(?:_EQ|_NE|_LT|_LE|_GT|_GE)?\s*\(")
RE_SEND = re.compile(r"::\s*send\s*\(")
RE_WRITE = re.compile(r"::\s*write\s*\(")
RE_SOCKET_HEADER = re.compile(r'#\s*include\s*<sys/socket\.h>')
RE_SOCKET_CALL = re.compile(r"::\s*socket\s*\(")
RE_ACCEPT = re.compile(r"::\s*accept\s*\(")
RE_ACCEPT4 = re.compile(r"::\s*accept4\s*\(")
RE_STD_SYNC = re.compile(
    r"\bstd\s*::\s*(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock|condition_variable|condition_variable_any)\b")
# A scoped-lock declaration: `MutexLock lock(&mu);` or brace-init.
RE_SCOPED_LOCK = re.compile(r"\b(?:Reader|Writer)?MutexLock\s+\w+\s*[({]")
RE_BLOCKING_CALL = re.compile(
    r"::\s*(poll|send|recv|connect|nanosleep|usleep)\s*\(")


def scoped_lock_span(stripped, m):
    """(start, end) of the region where the lock declared at `m` is
    held: from the end of its declaration to the close of the enclosing
    block (the scoped lock releases in its destructor there)."""
    i = m.end()
    if stripped[i - 1] == "{":  # brace-init: skip to its matching close
        depth = 1
        while i < len(stripped) and depth:
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
            i += 1
    start = i
    depth = 0
    while i < len(stripped):
        c = stripped[i]
        if c == "{":
            depth += 1
        elif c == "}":
            if depth == 0:
                break
            depth -= 1
        i += 1
    return start, i


def lint_file(root, rel):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        report(rel, 0, "P2P000", "unreadable: %s" % e)
        return

    raw_lines = text.splitlines()
    allowed = parse_suppressions(rel, raw_lines)
    stripped = strip_code(text)
    line_starts = [0]
    for i, ch in enumerate(stripped):
        if ch == "\n":
            line_starts.append(i + 1)

    def line_of(pos):
        lo, hi = 0, len(line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if line_starts[mid] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def emit(pos, rule, message):
        ln = line_of(pos)
        if rule in allowed.get(ln, ()):
            return
        report(rel, ln, rule, message)

    in_src = rel.startswith("src/")
    in_src_or_tools = in_src or rel.startswith("tools/")

    if in_src:
        for m in RE_EXCEPTION.finditer(stripped):
            emit(m.start(), "P2P001",
                 "`%s` in library code; use Status/Result<T>" % m.group(1))

    if not rel.startswith("src/common/random"):
        for m in RE_RNG.finditer(stripped):
            emit(m.start(), "P2P002",
                 "unseeded/global randomness; use p2prange::Rng "
                 "(src/common/random.h)")

    for m in RE_NEW.finditer(stripped):
        if preceded_by_wrap_unique(stripped, m.start()):
            continue
        emit(m.start(), "P2P003",
             "naked `new`; use std::make_unique or WrapUnique(new ...)")

    if is_untrusted_path(rel):
        for m in RE_DCHECK.finditer(stripped):
            emit(m.start(), "P2P004",
                 "DCHECK on an untrusted-input path; validate with a real "
                 "branch returning Status (DCHECK vanishes in release "
                 "builds)")
        for m in RE_CHECK.finditer(stripped):
            emit(m.start(), "P2P004",
                 "CHECK on an untrusted-input path would let a hostile "
                 "peer crash the process; validate with a real branch "
                 "returning Status")

    if in_src_or_tools and RE_SOCKET_HEADER.search(text):
        for m in RE_SEND.finditer(stripped):
            stmt = statement_around(stripped, m.start())
            if "MSG_NOSIGNAL" not in stmt:
                emit(m.start(), "P2P005",
                     "::send() without MSG_NOSIGNAL; a peer reset would "
                     "raise SIGPIPE")
        for m in RE_WRITE.finditer(stripped):
            emit(m.start(), "P2P005",
                 "::write() in socket code; use ::send(..., MSG_NOSIGNAL)")
        for m in RE_SOCKET_CALL.finditer(stripped):
            stmt = statement_around(stripped, m.start())
            if "SOCK_NONBLOCK" not in stmt or "SOCK_CLOEXEC" not in stmt:
                emit(m.start(), "P2P006",
                     "::socket() without SOCK_NONBLOCK | SOCK_CLOEXEC; a "
                     "blocking fd stalls the poll loop and a leaked fd "
                     "crosses fork/exec")
        for m in RE_ACCEPT.finditer(stripped):
            emit(m.start(), "P2P006",
                 "plain ::accept() inherits blocking mode and leaks "
                 "across exec; use ::accept4(..., SOCK_NONBLOCK | "
                 "SOCK_CLOEXEC)")
        for m in RE_ACCEPT4.finditer(stripped):
            stmt = statement_around(stripped, m.start())
            if "SOCK_NONBLOCK" not in stmt or "SOCK_CLOEXEC" not in stmt:
                emit(m.start(), "P2P006",
                     "::accept4() without SOCK_NONBLOCK | SOCK_CLOEXEC; "
                     "the accepted fd must be non-blocking and "
                     "close-on-exec from birth")

    if in_src:
        for m in RE_STD_SYNC.finditer(stripped):
            emit(m.start(), "P2P007",
                 "raw std::%s; use the annotated layer in "
                 "src/common/sync.h (Mutex/MutexLock/CondVar) so the "
                 "thread-safety analysis and lock-rank checks see it"
                 % m.group(1))

    if in_src_or_tools:
        # Deduped via set: nested lock scopes both covering one
        # blocking call must not double-report it.
        blocking_hits = set()
        for m in RE_SCOPED_LOCK.finditer(stripped):
            start, end = scoped_lock_span(stripped, m)
            for b in RE_BLOCKING_CALL.finditer(stripped, start, end):
                blocking_hits.add((b.start(), b.group(1)))
        for pos, call in sorted(blocking_hits):
            emit(pos, "P2P008",
                 "::%s() while a scoped lock is held in this block; "
                 "finish the I/O outside the lock (copy under it, "
                 "block outside)" % call)


def collect_files(root, explicit):
    if explicit:
        rels = []
        for p in explicit:
            rel = os.path.relpath(os.path.abspath(p), os.path.abspath(root))
            rels.append(rel.replace(os.sep, "/"))
        return rels
    rels = []
    for d in SCAN_DIRS:
        base = os.path.join(root, d)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            # Golden corpus files are deliberate violations.
            dirnames[:] = [x for x in dirnames if x != "corpus"]
            for name in sorted(filenames):
                if name.endswith(EXTENSIONS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    rels.append(rel.replace(os.sep, "/"))
    return rels


def main():
    parser = argparse.ArgumentParser(
        description="p2prange repo-invariant linter")
    parser.add_argument("--root", default=None,
                        help="tree root for scope rules (default: the "
                        "repo containing this script)")
    parser.add_argument("files", nargs="*",
                        help="specific files to lint (default: scan "
                        "src tools tests bench examples)")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(root):
        print("p2prange_lint: no such root: %s" % root, file=sys.stderr)
        return 2

    for rel in collect_files(root, args.files):
        lint_file(root, rel)

    for rel, line_no, rule, message in sorted(FINDINGS):
        print("%s:%d: %s %s" % (rel, line_no, rule, message))
    if FINDINGS:
        print("p2prange_lint: %d finding(s)" % len(FINDINGS),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
