#!/usr/bin/env bash
# Tier-1 gate: build + full test suite, first in the normal
# configuration, then under AddressSanitizer + UBSan
# (-DP2PRANGE_SANITIZE="address;undefined"). Both must pass.
# In between, every bench binary is run in its tiny --smoke
# configuration, so signature-affecting regressions in the figure
# harnesses are caught before anyone pays for a full regeneration run.
#
# Usage: tools/check.sh [--no-sanitize] [--no-bench-smoke]
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir=$1
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

run_bench_smoke() {
  local bench_dir=$1
  for b in "$bench_dir"/*; do
    [[ -x "$b" && -f "$b" ]] || continue
    echo "--- $(basename "$b") --smoke"
    "$b" --smoke > /dev/null
  done
}

echo "=== normal build + tests ==="
run_suite build

if [[ "${1:-}" != "--no-bench-smoke" && "${2:-}" != "--no-bench-smoke" ]]; then
  echo "=== bench smoke runs (--smoke) ==="
  run_bench_smoke build/bench
fi

if [[ "${1:-}" != "--no-sanitize" && "${2:-}" != "--no-sanitize" ]]; then
  echo "=== sanitized build + tests (address;undefined) ==="
  run_suite build-asan -DP2PRANGE_SANITIZE="address;undefined"
fi

echo "=== all checks passed ==="
