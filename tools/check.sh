#!/usr/bin/env bash
# Tier-1 gate: build + full test suite, first in the normal
# configuration, then under AddressSanitizer + UBSan
# (-DP2PRANGE_SANITIZE="address;undefined"). Both must pass.
# In between, every bench binary is run in its tiny --smoke
# configuration, so signature-affecting regressions in the figure
# harnesses are caught before anyone pays for a full regeneration run.
#
# A dedicated crash-consistency stage then re-runs the durability
# fuzzer at an elevated crash-point budget — and again under the
# sanitizers, so every WAL replay / torn-tail / bit-flip recovery path
# is exercised with UBSan watching.
#
# Usage: tools/check.sh [--no-sanitize] [--no-bench-smoke]
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir=$1
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

run_bench_smoke() {
  local bench_dir=$1
  for b in "$bench_dir"/*; do
    [[ -x "$b" && -f "$b" ]] || continue
    echo "--- $(basename "$b") --smoke"
    "$b" --smoke > /dev/null
  done
}

echo "=== normal build + tests ==="
run_suite build

if [[ "${1:-}" != "--no-bench-smoke" && "${2:-}" != "--no-bench-smoke" ]]; then
  echo "=== bench smoke runs (--smoke) ==="
  run_bench_smoke build/bench
fi

echo "=== crash-consistency fuzz smoke (3000 crash points) ==="
P2PRANGE_CRASH_FUZZ_POINTS=3000 \
  ./build/tests/p2prange_tests --gtest_filter='CrashConsistencyFuzz.*'

if [[ "${1:-}" != "--no-sanitize" && "${2:-}" != "--no-sanitize" ]]; then
  echo "=== sanitized build + tests (address;undefined) ==="
  run_suite build-asan -DP2PRANGE_SANITIZE="address;undefined"
  echo "=== sanitized crash-consistency fuzz (torn/bit-flip WAL replay under UBSan) ==="
  P2PRANGE_CRASH_FUZZ_POINTS=2000 \
    ./build-asan/tests/p2prange_tests \
    --gtest_filter='CrashConsistencyFuzz.*:SerdeFuzzTest.*:WalTest.*:SnapshotTest.*'
fi

echo "=== all checks passed ==="
