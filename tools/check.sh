#!/usr/bin/env bash
# Tier-1 gate: build + full test suite, first in the normal
# configuration, then under AddressSanitizer + UBSan
# (-DP2PRANGE_SANITIZE="address;undefined"). Both must pass.
#
# Usage: tools/check.sh [--no-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir=$1
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

echo "=== normal build + tests ==="
run_suite build

if [[ "${1:-}" != "--no-sanitize" ]]; then
  echo "=== sanitized build + tests (address;undefined) ==="
  run_suite build-asan -DP2PRANGE_SANITIZE="address;undefined"
fi

echo "=== all checks passed ==="
