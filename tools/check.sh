#!/usr/bin/env bash
# Tier-1 gate: build + full test suite, first in the normal
# configuration, then under AddressSanitizer + UBSan
# (-DP2PRANGE_SANITIZE="address;undefined"). Both must pass.
# In between, every bench binary is run in its tiny --smoke
# configuration, so signature-affecting regressions in the figure
# harnesses are caught before anyone pays for a full regeneration run.
#
# A dedicated crash-consistency stage then re-runs the durability
# fuzzer at an elevated crash-point budget — and again under the
# sanitizers, so every WAL replay / torn-tail / bit-flip recovery path
# is exercised with UBSan watching.
#
# Usage: tools/check.sh [--no-sanitize] [--no-bench-smoke]
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir=$1
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

run_bench_smoke() {
  local bench_dir=$1
  for b in "$bench_dir"/*; do
    [[ -x "$b" && -f "$b" ]] || continue
    echo "--- $(basename "$b") --smoke"
    "$b" --smoke > /dev/null
  done
}

# Boots a 3-node loopback ring of real p2prange_node processes, runs
# the paper workload through p2prange_client over TCP, then SIGTERMs
# every daemon and fails loudly if any child survives (a leaked daemon
# would poison later stages and the build machine).
run_live_smoke() {
  local build_dir=$1
  local scratch
  scratch=$(mktemp -d)
  local pids=()
  local members=""
  local failed=0

  for i in 0 1 2; do
    mkdir -p "$scratch/n$i"
    "$build_dir/tools/p2prange_node" --listen=127.0.0.1:0 \
      --wal_dir="$scratch/n$i" --metrics_json="$scratch/n$i/metrics.json" \
      2> "$scratch/n$i/log" &
    pids+=($!)
  done

  # Each daemon resolves port 0 to a real ephemeral port and announces
  # it on stderr; collect the resolved addresses for the client.
  for i in 0 1 2; do
    local addr=""
    for _ in $(seq 1 100); do
      addr=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$scratch/n$i/log" | head -n1)
      [[ -n "$addr" ]] && break
      sleep 0.05
    done
    if [[ -z "$addr" ]]; then
      echo "live smoke: node $i never announced its address" >&2
      failed=1
    else
      members="${members:+$members,}$addr"
    fi
  done

  if [[ $failed -eq 0 ]]; then
    if ! "$build_dir/tools/p2prange_client" --members="$members" \
        workload --publishes=40 --queries=30; then
      echo "live smoke: workload failed" >&2
      failed=1
    fi
  fi

  kill -TERM "${pids[@]}" 2>/dev/null || true
  local pid
  for pid in "${pids[@]}"; do
    for _ in $(seq 1 100); do
      kill -0 "$pid" 2>/dev/null || break
      sleep 0.05
    done
    if kill -0 "$pid" 2>/dev/null; then
      echo "live smoke: daemon $pid ignored SIGTERM — leaked child, SIGKILL" >&2
      kill -9 "$pid" 2>/dev/null || true
      failed=1
    fi
    if ! wait "$pid"; then
      echo "live smoke: daemon $pid exited non-zero" >&2
      failed=1
    fi
  done

  if [[ $failed -ne 0 ]]; then
    echo "live smoke FAILED (logs in $scratch)" >&2
    return 1
  fi
  rm -rf "$scratch"
}

echo "=== normal build + tests ==="
run_suite build

if [[ "${1:-}" != "--no-bench-smoke" && "${2:-}" != "--no-bench-smoke" ]]; then
  echo "=== bench smoke runs (--smoke) ==="
  run_bench_smoke build/bench
fi

echo "=== crash-consistency fuzz smoke (3000 crash points) ==="
P2PRANGE_CRASH_FUZZ_POINTS=3000 \
  ./build/tests/p2prange_tests --gtest_filter='CrashConsistencyFuzz.*'

echo "=== live-ring smoke (3 daemons over loopback TCP) ==="
run_live_smoke build

if [[ "${1:-}" != "--no-sanitize" && "${2:-}" != "--no-sanitize" ]]; then
  echo "=== sanitized build + tests (address;undefined) ==="
  run_suite build-asan -DP2PRANGE_SANITIZE="address;undefined"
  echo "=== sanitized crash-consistency fuzz (torn/bit-flip WAL replay under UBSan) ==="
  P2PRANGE_CRASH_FUZZ_POINTS=2000 \
    ./build-asan/tests/p2prange_tests \
    --gtest_filter='CrashConsistencyFuzz.*:SerdeFuzzTest.*:WalTest.*:SnapshotTest.*'
  echo "=== sanitized live-ring smoke ==="
  run_live_smoke build-asan
fi

echo "=== all checks passed ==="
