#!/usr/bin/env bash
# Tier-1 gate. Stages, in order:
#
#   lint         p2prange_lint.py (repo invariants) + run_tidy.sh
#                (clang-tidy when installed, NOLINT hygiene always)
#   thread-safety clang build of src/ with -Wthread-safety promoted to
#                an error: the annotated sync layer (common/sync.h) is
#                machine-checked — a GUARDED_BY field read without its
#                lock fails this stage. Skipped loudly when no clang++
#                is installed (the analysis is clang-only).
#   build+test   normal configuration with -DP2PRANGE_WERROR=ON —
#                Status/Result are [[nodiscard]], so an unchecked error
#                return is a build break here, not a warning
#   bench smoke  every bench binary in its tiny --smoke configuration,
#                so signature-affecting regressions in the figure
#                harnesses are caught before a full regeneration run
#   crash fuzz   the durability fuzzer at an elevated crash-point budget
#   live smoke   a 3-node loopback ring of real daemons + client workload
#   live churn   the dynamic-membership acceptance test: a ring grown by
#                --join, one SIGKILL, one rolling restart, all under a
#                seeded query load that must never fail
#   live load    the worker-pool/admission-control harness in --smoke
#                form: a 5-daemon ring under closed-loop lookups plus
#                bulk fetches, then an open-loop overload burst that
#                must shed (not hang, not crash)
#   chaos smoke  the fault-injection gate: chaos-plan/transport-
#                hardening/chaos-ring unit+integration suites, then the
#                chaos bench harness (ring behind the seeded proxy
#                through partition, slow-loris, and corruption phases)
#                asserting zero failed lookups and a clean shutdown
#   matrix smoke the event-driven scenario engine across all three
#                overlay substrates (10^4-peer grid + the 10^6-peer
#                chord cell), asserting nonzero recall under churn on
#                chord, can, and tapestry alike
#   asan         full build + tests under AddressSanitizer + UBSan, then
#                the crash fuzzer and live smoke again, sanitized
#   tsan         ThreadSanitizer build (mutually exclusive with asan —
#                separate tree) running the threaded suites: TCP
#                transport/server and concurrent logging
#
# Usage: tools/check.sh [--lint-only] [--no-lint] [--no-sanitize]
#                       [--no-tsan] [--no-bench-smoke] [--no-thread-safety]
set -euo pipefail

cd "$(dirname "$0")/.."

usage() {
  sed -n 's/^# Usage: //p' "$0"
  exit 2
}

do_lint=1
do_sanitize=1
do_tsan=1
do_bench_smoke=1
do_thread_safety=1
lint_only=0
for arg in "$@"; do
  case "$arg" in
    --lint-only) lint_only=1 ;;
    --no-lint) do_lint=0 ;;
    --no-sanitize) do_sanitize=0 ;;
    --no-tsan) do_tsan=0 ;;
    --no-bench-smoke) do_bench_smoke=0 ;;
    --no-thread-safety) do_thread_safety=0 ;;
    -h | --help) usage ;;
    *)
      echo "check.sh: unknown flag: $arg" >&2
      usage
      ;;
  esac
done
if [[ $lint_only -eq 1 && $do_lint -eq 0 ]]; then
  echo "check.sh: --lint-only and --no-lint are contradictory" >&2
  exit 2
fi

run_suite() {
  local build_dir=$1
  shift
  cmake -B "$build_dir" -S . -DP2PRANGE_WERROR=ON "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

run_bench_smoke() {
  local bench_dir=$1
  for b in "$bench_dir"/*; do
    [[ -x "$b" && -f "$b" ]] || continue
    echo "--- $(basename "$b") --smoke"
    "$b" --smoke > /dev/null
  done
}

# Boots a 3-node loopback ring of real p2prange_node processes, runs
# the paper workload through p2prange_client over TCP, then SIGTERMs
# every daemon and fails loudly if any child survives (a leaked daemon
# would poison later stages and the build machine).
run_live_smoke() {
  local build_dir=$1
  local scratch
  scratch=$(mktemp -d)
  local pids=()
  local members=""
  local failed=0

  for i in 0 1 2; do
    mkdir -p "$scratch/n$i"
    "$build_dir/tools/p2prange_node" --listen=127.0.0.1:0 \
      --wal_dir="$scratch/n$i" --metrics_json="$scratch/n$i/metrics.json" \
      2> "$scratch/n$i/log" &
    pids+=($!)
  done

  # Each daemon resolves port 0 to a real ephemeral port and announces
  # it on stderr; collect the resolved addresses for the client.
  for i in 0 1 2; do
    local addr=""
    for _ in $(seq 1 100); do
      addr=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$scratch/n$i/log" | head -n1)
      [[ -n "$addr" ]] && break
      sleep 0.05
    done
    if [[ -z "$addr" ]]; then
      echo "live smoke: node $i never announced its address" >&2
      failed=1
    else
      members="${members:+$members,}$addr"
    fi
  done

  if [[ $failed -eq 0 ]]; then
    if ! "$build_dir/tools/p2prange_client" --members="$members" \
        workload --publishes=40 --queries=30; then
      echo "live smoke: workload failed" >&2
      failed=1
    fi
  fi

  kill -TERM "${pids[@]}" 2>/dev/null || true
  local pid
  for pid in "${pids[@]}"; do
    for _ in $(seq 1 100); do
      kill -0 "$pid" 2>/dev/null || break
      sleep 0.05
    done
    if kill -0 "$pid" 2>/dev/null; then
      echo "live smoke: daemon $pid ignored SIGTERM — leaked child, SIGKILL" >&2
      kill -9 "$pid" 2>/dev/null || true
      failed=1
    fi
    if ! wait "$pid"; then
      echo "live smoke: daemon $pid exited non-zero" >&2
      failed=1
    fi
  done

  if [[ $failed -ne 0 ]]; then
    echo "live smoke FAILED (logs in $scratch)" >&2
    return 1
  fi
  rm -rf "$scratch"
}

if [[ $do_lint -eq 1 ]]; then
  echo "=== lint: p2prange invariants (tools/p2prange_lint.py) ==="
  python3 tools/p2prange_lint.py
  echo "=== lint: clang-tidy (tools/run_tidy.sh) ==="
  tools/run_tidy.sh build
  if [[ $lint_only -eq 1 ]]; then
    echo "=== lint-only: all lint checks passed ==="
    exit 0
  fi
fi

if [[ $do_thread_safety -eq 1 ]]; then
  if command -v clang++ > /dev/null; then
    echo "=== thread-safety analysis (clang -Wthread-safety as error) ==="
    cmake -B build-tsafety -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DP2PRANGE_THREAD_SAFETY=ON -DP2PRANGE_WERROR=ON
    cmake --build build-tsafety -j
  else
    echo "=== thread-safety analysis SKIPPED: no clang++ on PATH ==="
    echo "    (annotations still compile as no-ops; CI runs the real gate)"
  fi
fi

echo "=== normal build + tests (with -Werror) ==="
run_suite build

if [[ $do_bench_smoke -eq 1 ]]; then
  echo "=== bench smoke runs (--smoke) ==="
  run_bench_smoke build/bench
fi

echo "=== crash-consistency fuzz smoke (3000 crash points) ==="
P2PRANGE_CRASH_FUZZ_POINTS=3000 \
  ./build/tests/p2prange_tests --gtest_filter='CrashConsistencyFuzz.*'

echo "=== live-ring smoke (3 daemons over loopback TCP) ==="
run_live_smoke build

echo "=== live-churn smoke (joins + SIGKILL + rolling restart under load) ==="
./build/tests/p2prange_tests --gtest_filter='LiveChurnTest.*'

# The load harness emits one JSON object; beyond exiting 0 it must show
# a live daemon after the overload burst and zero hung clients — a shed
# request that never resolves is exactly the bug this gate exists for.
echo "=== live-load smoke (worker pool + admission control under overload) ==="
load_json=$(./build/bench/ablation_live_ring --smoke 2>/dev/null)
echo "$load_json" | grep -q '"hung":0' \
  || { echo "live-load smoke: hung clients in overload phase" >&2; exit 1; }
echo "$load_json" | grep -q '"daemon_alive_after":true' \
  || { echo "live-load smoke: daemon died under overload" >&2; exit 1; }

# Chaos smoke: the unit suites for the fault-injection stack (plan
# parsing, transport hardening, membership damping), the full ring
# behind the chaos proxy (partition/heal, corruption, slow-loris), and
# the bench harness in --smoke form. The JSON must show a clean daemon
# shutdown and zero failed lookups in every fault regime — availability
# under faults is the whole point of the gate.
echo "=== chaos smoke (fault-injection proxy + hardened ring) ==="
./build/tests/p2prange_tests \
  --gtest_filter='ChaosPlanTest.*:TcpHardeningTest.*:ChaosRingTest.*'
chaos_json=$(./build/bench/ablation_chaos --smoke 2>/dev/null)
echo "$chaos_json" | grep -q '"clean":true' \
  || { echo "chaos smoke: daemons did not shut down cleanly" >&2; exit 1; }
if echo "$chaos_json" | grep -q '"lookup_failures":[1-9]'; then
  echo "chaos smoke: failed lookups under fault injection" >&2
  exit 1
fi

# Scenario-matrix smoke: the event-driven engine over all three
# overlay substrates (10^4-peer grid plus the 10^6-peer chord cell).
# The bench computes the verdict itself: nonzero_recall_overlays
# counts substrates with cache hits under churn and must be 3.
echo "=== scenario-matrix smoke (chord/can/tapestry engine grid) ==="
matrix_json=$(./build/bench/scenario_matrix --smoke 2>/dev/null)
echo "$matrix_json" | grep -q '"nonzero_recall_overlays":3' \
  || { echo "scenario-matrix smoke: an overlay had zero recall under churn" >&2; exit 1; }

if [[ $do_sanitize -eq 1 ]]; then
  echo "=== sanitized build + tests (address;undefined) ==="
  run_suite build-asan -DP2PRANGE_SANITIZE="address;undefined"
  echo "=== sanitized crash-consistency fuzz (torn/bit-flip WAL replay under UBSan) ==="
  P2PRANGE_CRASH_FUZZ_POINTS=2000 \
    ./build-asan/tests/p2prange_tests \
    --gtest_filter='CrashConsistencyFuzz.*:SerdeFuzzTest.*:WalTest.*:SnapshotTest.*'
  echo "=== sanitized live-ring smoke ==="
  run_live_smoke build-asan
  echo "=== sanitized scenario-matrix smoke ==="
  ./build-asan/bench/scenario_matrix --smoke > /dev/null
fi

if [[ $do_tsan -eq 1 ]]; then
  # TSan cannot share a tree (or a process) with ASan; build-tsan is
  # its own configuration. Scope: the suites that actually run threads
  # today — TCP transport/server (background poll threads), concurrent
  # logging, the membership join/leave tests (helper poll threads), the
  # worker-pool executor and kMultiOp suites, the live-churn
  # acceptance test (client thread + forked daemons), and the
  # transport-hardening + chaos-ring suites (deadline sweeps and the
  # fault-injection proxy against TSan-built daemons).
  echo "=== tsan build + threaded suites (thread) ==="
  cmake -B build-tsan -S . -DP2PRANGE_WERROR=ON -DP2PRANGE_SANITIZE=thread
  cmake --build build-tsan -j
  ./build-tsan/tests/p2prange_tests \
    --gtest_filter='SyncTest.*:TcpTransportTest.*:LoggingTest.*:NodeServiceTest.*:RingClientTest.*:MembershipTest.*:LiveChurnTest.*:RpcExecutorTest.*:MultiOpTest.*:TcpHardeningTest.*:ChaosRingTest.*'
  # The load harness under TSan exercises the poll-loop/worker/doorbell
  # handoff in forked TSan-built daemons under real concurrent load.
  echo "=== tsan live-load smoke ==="
  ./build-tsan/bench/ablation_live_ring --smoke > /dev/null
fi

echo "=== all checks passed ==="
