#include "overlay/can_overlay.h"

#include <algorithm>

#include "hash/sha1.h"

namespace p2prange {
namespace overlay {

namespace {

/// Stable ordering id for a CAN node (CAN has no identifier space).
uint32_t AddressId(const NetAddress& addr) {
  return Sha1::Hash32(addr.ToString());
}

}  // namespace

Result<std::unique_ptr<Overlay>> CanOverlay::Make(size_t num_nodes,
                                                  uint64_t seed,
                                                  const can::CanConfig& config,
                                                  int replica_list_len) {
  if (replica_list_len < 1) {
    return Status::InvalidArgument("replica_list_len must be >= 1");
  }
  ASSIGN_OR_RETURN(auto net, can::CanNetwork::Make(num_nodes, seed, config));
  std::unique_ptr<Overlay> out =
      std::make_unique<CanOverlay>(std::move(net), replica_list_len);
  return out;
}

Result<RouteResult> CanOverlay::RouteToOwner(const NetAddress& from,
                                             uint32_t id) {
  ASSIGN_OR_RETURN(auto lookup, can_.Lookup(from, id));
  return RouteResult{PeerInfo{AddressId(lookup.owner), lookup.owner},
                     lookup.hops, lookup.latency_ms};
}

Result<PeerInfo> CanOverlay::OwnerOracle(uint32_t id) const {
  const can::Point p = can::IdentifierToPoint(id, can_.config().dims);
  ASSIGN_OR_RETURN(auto addr, can_.FindOwnerOracle(p));
  return PeerInfo{AddressId(addr), addr};
}

std::vector<PeerInfo> CanOverlay::ReplicaCandidates(
    const NetAddress& owner) const {
  std::vector<PeerInfo> out;
  const can::CanNode* node = can_.node(owner);
  if (node == nullptr) return out;
  out.reserve(node->neighbors().size());
  for (const NetAddress& addr : node->neighbors()) {
    out.push_back(PeerInfo{AddressId(addr), addr});
  }
  // Neighbor sets are rebuilt in map order; sort for a deterministic
  // preference order independent of hash-table layout.
  std::sort(out.begin(), out.end(),
            [](const PeerInfo& a, const PeerInfo& b) {
              if (a.id != b.id) return a.id < b.id;
              return a.addr.ToString() < b.addr.ToString();
            });
  if (out.size() > static_cast<size_t>(replica_list_len_)) {
    out.resize(static_cast<size_t>(replica_list_len_));
  }
  return out;
}

Result<PeerInfo> CanOverlay::AddNode() {
  ASSIGN_OR_RETURN(auto addr, can_.AddNode());
  return PeerInfo{AddressId(addr), addr};
}

void CanOverlay::Stabilize(int rounds) {
  for (int i = 0; i < rounds; ++i) {
    if (can_.TakeoverDeadZones() == 0) break;
  }
}

void CanOverlay::RepairRouting() {
  can_.TakeoverDeadZones();  // neighbor sets are rebuilt by takeover
}

std::vector<PeerInfo> CanOverlay::AlivePeersOrdered() const {
  std::vector<PeerInfo> out;
  for (const NetAddress& addr : can_.AliveAddresses()) {
    out.push_back(PeerInfo{AddressId(addr), addr});
  }
  std::sort(out.begin(), out.end(),
            [](const PeerInfo& a, const PeerInfo& b) {
              if (a.id != b.id) return a.id < b.id;
              return a.addr.ToString() < b.addr.ToString();
            });
  return out;
}

}  // namespace overlay
}  // namespace p2prange
