// Tapestry behind the Overlay contract. An identifier's owner is its
// surrogate root; replica candidates are the next live nodes in
// identifier order (the deterministic analogue of a successor list).
#ifndef P2PRANGE_OVERLAY_TAPESTRY_OVERLAY_H_
#define P2PRANGE_OVERLAY_TAPESTRY_OVERLAY_H_

#include <memory>
#include <utility>
#include <vector>

#include "overlay/overlay.h"
#include "tapestry/tapestry.h"

namespace p2prange {
namespace overlay {

class TapestryOverlay final : public Overlay {
 public:
  static Result<std::unique_ptr<Overlay>> Make(size_t num_nodes, uint64_t seed,
                                               const LatencyModel& latency,
                                               int replica_list_len);

  TapestryOverlay(tapestry::TapestryMesh mesh, int replica_list_len)
      : mesh_(std::move(mesh)), replica_list_len_(replica_list_len) {}

  Kind kind() const override { return Kind::kTapestry; }

  Result<RouteResult> RouteToOwner(const NetAddress& from,
                                   uint32_t id) override;
  Result<PeerInfo> OwnerOracle(uint32_t id) const override;

  std::vector<PeerInfo> ReplicaCandidates(
      const NetAddress& owner) const override;

  Result<PeerInfo> AddNode() override;
  Status Leave(const NetAddress& addr) override { return mesh_.Leave(addr); }
  Status Fail(const NetAddress& addr) override { return mesh_.Fail(addr); }
  Status Recover(const NetAddress& addr) override {
    return mesh_.Recover(addr);
  }

  void Stabilize(int rounds) override;
  void RepairRouting() override { mesh_.RebuildRoutingTables(); }

  size_t num_alive() const override { return mesh_.num_alive(); }
  std::vector<PeerInfo> AlivePeersOrdered() const override;
  Result<NetAddress> RandomAliveAddress() override {
    return mesh_.RandomAliveAddress();
  }
  bool IsAlive(const NetAddress& addr) const override {
    return mesh_.network().IsAlive(addr);
  }

  Result<double> DeliverBytes(const NetAddress& from, const NetAddress& to,
                              uint64_t payload_bytes) override {
    return mesh_.network().DeliverBytes(from, to, payload_bytes);
  }
  const NetworkStats& net_stats() const override {
    return mesh_.network().stats();
  }
  void ResetNetStats() override { mesh_.network().ResetStats(); }

  tapestry::TapestryMesh& mesh() { return mesh_; }

 private:
  mutable tapestry::TapestryMesh mesh_;
  int replica_list_len_;
};

}  // namespace overlay
}  // namespace p2prange

#endif  // P2PRANGE_OVERLAY_TAPESTRY_OVERLAY_H_
