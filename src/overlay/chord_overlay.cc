#include "overlay/chord_overlay.h"

namespace p2prange {
namespace overlay {

namespace {

PeerInfo FromNode(const chord::NodeInfo& n) { return PeerInfo{n.id, n.addr}; }

}  // namespace

Result<std::unique_ptr<Overlay>> ChordOverlay::Make(
    size_t num_nodes, uint64_t seed, const chord::ChordConfig& config) {
  ASSIGN_OR_RETURN(auto ring, chord::ChordRing::Make(num_nodes, seed, config));
  std::unique_ptr<Overlay> out = std::make_unique<ChordOverlay>(std::move(ring));
  return out;
}

Result<RouteResult> ChordOverlay::RouteToOwner(const NetAddress& from,
                                               uint32_t id) {
  ASSIGN_OR_RETURN(auto lookup, ring_.Lookup(from, id));
  return RouteResult{FromNode(lookup.owner), lookup.hops, lookup.latency_ms};
}

Result<PeerInfo> ChordOverlay::OwnerOracle(uint32_t id) const {
  ASSIGN_OR_RETURN(auto owner, ring_.FindSuccessorOracle(id));
  return FromNode(owner);
}

std::vector<PeerInfo> ChordOverlay::ReplicaCandidates(
    const NetAddress& owner) const {
  std::vector<PeerInfo> out;
  const chord::ChordNode* node = ring_.node(owner);
  if (node == nullptr) return out;
  out.reserve(node->successors().size());
  for (const chord::NodeInfo& succ : node->successors()) {
    if (succ.addr == owner) continue;  // the owner backs itself up last
    out.push_back(FromNode(succ));
  }
  return out;
}

Result<PeerInfo> ChordOverlay::AddNode() {
  ASSIGN_OR_RETURN(auto info, ring_.AddNode());
  return FromNode(info);
}

std::vector<PeerInfo> ChordOverlay::AlivePeersOrdered() const {
  std::vector<PeerInfo> out;
  for (const chord::NodeInfo& n : ring_.AliveNodesSorted()) {
    out.push_back(FromNode(n));
  }
  return out;
}

const NetworkStats& ChordOverlay::net_stats() const {
  return ring_.network().stats();
}

}  // namespace overlay
}  // namespace p2prange
