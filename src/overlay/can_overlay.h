// CAN behind the Overlay contract. Identifiers map to points in the
// d-torus (IdentifierToPoint); the zone owner of a point owns the
// identifier. Peer ids are stable address hashes used only for
// deterministic ordering — CAN has no node identifier space.
#ifndef P2PRANGE_OVERLAY_CAN_OVERLAY_H_
#define P2PRANGE_OVERLAY_CAN_OVERLAY_H_

#include <memory>
#include <utility>
#include <vector>

#include "can/network.h"
#include "overlay/overlay.h"

namespace p2prange {
namespace overlay {

class CanOverlay final : public Overlay {
 public:
  static Result<std::unique_ptr<Overlay>> Make(size_t num_nodes, uint64_t seed,
                                               const can::CanConfig& config,
                                               int replica_list_len);

  CanOverlay(can::CanNetwork net, int replica_list_len)
      : can_(std::move(net)), replica_list_len_(replica_list_len) {}

  Kind kind() const override { return Kind::kCan; }

  Result<RouteResult> RouteToOwner(const NetAddress& from,
                                   uint32_t id) override;
  Result<PeerInfo> OwnerOracle(uint32_t id) const override;

  std::vector<PeerInfo> ReplicaCandidates(
      const NetAddress& owner) const override;

  Result<PeerInfo> AddNode() override;
  Status Leave(const NetAddress& addr) override { return can_.Leave(addr); }
  Status Fail(const NetAddress& addr) override { return can_.Fail(addr); }
  Status Recover(const NetAddress& addr) override {
    return can_.Recover(addr);
  }

  void Stabilize(int rounds) override;
  void RepairRouting() override;

  size_t num_alive() const override { return can_.num_alive(); }
  std::vector<PeerInfo> AlivePeersOrdered() const override;
  Result<NetAddress> RandomAliveAddress() override {
    return can_.RandomAliveAddress();
  }
  bool IsAlive(const NetAddress& addr) const override {
    return can_.network().IsAlive(addr);
  }

  Result<double> DeliverBytes(const NetAddress& from, const NetAddress& to,
                              uint64_t payload_bytes) override {
    return can_.network().DeliverBytes(from, to, payload_bytes);
  }
  const NetworkStats& net_stats() const override {
    return can_.network().stats();
  }
  void ResetNetStats() override { can_.network().ResetStats(); }

  can::CanNetwork& can() { return can_; }

 private:
  mutable can::CanNetwork can_;
  int replica_list_len_;
};

}  // namespace overlay
}  // namespace p2prange

#endif  // P2PRANGE_OVERLAY_CAN_OVERLAY_H_
