#include "overlay/tapestry_overlay.h"

#include <algorithm>

namespace p2prange {
namespace overlay {

namespace {

PeerInfo FromMesh(const tapestry::MeshNodeInfo& n) {
  return PeerInfo{n.id, n.addr};
}

}  // namespace

Result<std::unique_ptr<Overlay>> TapestryOverlay::Make(
    size_t num_nodes, uint64_t seed, const LatencyModel& latency,
    int replica_list_len) {
  if (replica_list_len < 1) {
    return Status::InvalidArgument("replica_list_len must be >= 1");
  }
  ASSIGN_OR_RETURN(auto mesh,
                   tapestry::TapestryMesh::Make(num_nodes, seed, latency));
  std::unique_ptr<Overlay> out =
      std::make_unique<TapestryOverlay>(std::move(mesh), replica_list_len);
  return out;
}

Result<RouteResult> TapestryOverlay::RouteToOwner(const NetAddress& from,
                                                  uint32_t id) {
  ASSIGN_OR_RETURN(auto lookup, mesh_.Lookup(from, id));
  return RouteResult{FromMesh(lookup.owner), lookup.hops, lookup.latency_ms};
}

Result<PeerInfo> TapestryOverlay::OwnerOracle(uint32_t id) const {
  // The surrogate root is start-independent: with globally min-id
  // filled tables, every lookup performs the same digit-by-digit
  // descent — at each level, take the cyclic successor (scanning
  // upward mod base from the target's digit) among the digits present
  // in the current prefix group. Replay that descent over the live id
  // set; Lookup converges to the same node while charging hops.
  std::vector<tapestry::MeshNodeInfo> group = mesh_.AliveNodesSorted();
  if (group.empty()) return Status::NotFound("no live mesh nodes");
  for (int level = 0; level < tapestry::kDigits && group.size() > 1; ++level) {
    const int desired = tapestry::Digit(id, level);
    bool present[tapestry::kBase] = {};
    for (const auto& n : group) present[tapestry::Digit(n.id, level)] = true;
    int chosen = -1;
    for (int k = 0; k < tapestry::kBase; ++k) {
      const int d = (desired + k) % tapestry::kBase;
      if (present[d]) {
        chosen = d;
        break;
      }
    }
    std::vector<tapestry::MeshNodeInfo> next;
    for (const auto& n : group) {
      if (tapestry::Digit(n.id, level) == chosen) next.push_back(n);
    }
    group = std::move(next);
  }
  return FromMesh(group.front());
}

std::vector<PeerInfo> TapestryOverlay::ReplicaCandidates(
    const NetAddress& owner) const {
  std::vector<PeerInfo> out;
  const tapestry::TapestryNode* node = mesh_.node(owner);
  if (node == nullptr) return out;
  const std::vector<tapestry::MeshNodeInfo> alive = mesh_.AliveNodesSorted();
  if (alive.empty()) return out;
  // The next nodes clockwise in identifier order, wrapping — the
  // deterministic analogue of Chord's successor list.
  size_t start = 0;
  while (start < alive.size() && alive[start].id <= node->id()) ++start;
  for (size_t k = 0; k < alive.size() && out.size() <
       static_cast<size_t>(replica_list_len_); ++k) {
    const auto& cand = alive[(start + k) % alive.size()];
    if (cand.addr == owner) continue;
    out.push_back(FromMesh(cand));
  }
  return out;
}

Result<PeerInfo> TapestryOverlay::AddNode() {
  ASSIGN_OR_RETURN(auto info, mesh_.AddNode());
  return FromMesh(info);
}

void TapestryOverlay::Stabilize(int rounds) {
  if (rounds > 0) mesh_.RebuildRoutingTables();
}

std::vector<PeerInfo> TapestryOverlay::AlivePeersOrdered() const {
  std::vector<PeerInfo> out;
  for (const auto& n : mesh_.AliveNodesSorted()) out.push_back(FromMesh(n));
  return out;
}

}  // namespace overlay
}  // namespace p2prange
