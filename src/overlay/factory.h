// Builds the configured Overlay implementation.
#ifndef P2PRANGE_OVERLAY_FACTORY_H_
#define P2PRANGE_OVERLAY_FACTORY_H_

#include <memory>

#include "chord/ring.h"
#include "overlay/overlay.h"

namespace p2prange {
namespace overlay {

/// \brief Builds a `params.kind` overlay of `num_nodes` peers. The
/// Chord tunables (and the latency model shared by every substrate)
/// come from `chord_config`.
Result<std::unique_ptr<Overlay>> MakeOverlay(
    const OverlayParams& params, size_t num_nodes, uint64_t seed,
    const chord::ChordConfig& chord_config);

}  // namespace overlay
}  // namespace p2prange

#endif  // P2PRANGE_OVERLAY_FACTORY_H_
