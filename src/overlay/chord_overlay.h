// Chord behind the Overlay contract — a pure delegation shim around
// ChordRing so the refactored core::System is bit-identical to the
// pre-contract ChordRing path (the parity test pins this).
#ifndef P2PRANGE_OVERLAY_CHORD_OVERLAY_H_
#define P2PRANGE_OVERLAY_CHORD_OVERLAY_H_

#include <memory>
#include <utility>
#include <vector>

#include "chord/ring.h"
#include "overlay/overlay.h"

namespace p2prange {
namespace overlay {

class ChordOverlay final : public Overlay {
 public:
  static Result<std::unique_ptr<Overlay>> Make(size_t num_nodes, uint64_t seed,
                                               const chord::ChordConfig& config);

  explicit ChordOverlay(chord::ChordRing ring) : ring_(std::move(ring)) {}

  Kind kind() const override { return Kind::kChord; }

  Result<RouteResult> RouteToOwner(const NetAddress& from,
                                   uint32_t id) override;
  Result<PeerInfo> OwnerOracle(uint32_t id) const override;

  std::vector<PeerInfo> ReplicaCandidates(
      const NetAddress& owner) const override;

  Result<PeerInfo> AddNode() override;
  Status Leave(const NetAddress& addr) override { return ring_.Leave(addr); }
  Status Fail(const NetAddress& addr) override { return ring_.Fail(addr); }
  Status Recover(const NetAddress& addr) override {
    return ring_.Recover(addr);
  }

  void Stabilize(int rounds) override { ring_.StabilizeAll(rounds); }
  void RepairRouting() override { ring_.FixAllFingers(); }

  size_t num_alive() const override { return ring_.num_alive(); }
  std::vector<PeerInfo> AlivePeersOrdered() const override;
  Result<NetAddress> RandomAliveAddress() override {
    return ring_.RandomAliveAddress();
  }
  bool IsAlive(const NetAddress& addr) const override {
    return ring_.network().IsAlive(addr);
  }

  Result<double> DeliverBytes(const NetAddress& from, const NetAddress& to,
                              uint64_t payload_bytes) override {
    return ring_.network().DeliverBytes(from, to, payload_bytes);
  }
  const NetworkStats& net_stats() const override;
  void ResetNetStats() override { ring_.network().ResetStats(); }

  /// The underlying ring, for Chord-specific callers (benches, tests,
  /// RangeCacheSystem::ring()).
  chord::ChordRing& ring() { return ring_; }
  const chord::ChordRing& ring() const { return ring_; }

 private:
  mutable chord::ChordRing ring_;
};

}  // namespace overlay
}  // namespace p2prange

#endif  // P2PRANGE_OVERLAY_CHORD_OVERLAY_H_
