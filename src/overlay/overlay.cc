#include "overlay/overlay.h"

#include "overlay/can_overlay.h"
#include "overlay/chord_overlay.h"
#include "overlay/factory.h"
#include "overlay/tapestry_overlay.h"

namespace p2prange {
namespace overlay {

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kChord:
      return "chord";
    case Kind::kCan:
      return "can";
    case Kind::kTapestry:
      return "tapestry";
  }
  return "unknown";
}

Result<Kind> KindFromName(std::string_view name) {
  if (name == "chord") return Kind::kChord;
  if (name == "can") return Kind::kCan;
  if (name == "tapestry") return Kind::kTapestry;
  return Status::InvalidArgument("unknown overlay kind: " + std::string(name));
}

Result<std::unique_ptr<Overlay>> MakeOverlay(
    const OverlayParams& params, size_t num_nodes, uint64_t seed,
    const chord::ChordConfig& chord_config) {
  switch (params.kind) {
    case Kind::kChord:
      return ChordOverlay::Make(num_nodes, seed, chord_config);
    case Kind::kCan: {
      can::CanConfig config;
      config.dims = params.can_dims;
      config.max_route_steps = params.can_max_route_steps;
      config.latency = chord_config.latency;
      return CanOverlay::Make(num_nodes, seed, config,
                              params.replica_list_len);
    }
    case Kind::kTapestry:
      return TapestryOverlay::Make(num_nodes, seed, chord_config.latency,
                                   params.replica_list_len);
  }
  return Status::InvalidArgument("unknown overlay kind");
}

}  // namespace overlay
}  // namespace p2prange
