// Overlay: the seam between the range-cache system and the DHT.
//
// Everything above this interface — the §4 range-lookup protocol,
// descriptor replication, churn and fault injection — asks one
// abstract question ("who owns identifier x, and what did routing
// there cost?") plus a membership/maintenance surface; everything
// below decides what the overlay physically is. This is the same
// seam rpc::Transport gave the network layer (PR 4), one level up:
// three implementations route the identical workload so the paper's
// protocol can be measured over Chord (the evaluation substrate),
// CAN (the substrate Harren et al. used), and Tapestry (the third
// family the introduction surveys) without touching core::System.
#ifndef P2PRANGE_OVERLAY_OVERLAY_H_
#define P2PRANGE_OVERLAY_OVERLAY_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/address.h"
#include "net/sim_network.h"

namespace p2prange {
namespace overlay {

/// \brief The overlay families behind the contract.
enum class Kind {
  kChord,
  kCan,
  kTapestry,
};

/// Stable lowercase name ("chord", "can", "tapestry").
const char* KindName(Kind kind);

/// Inverse of KindName; InvalidArgument on anything else.
Result<Kind> KindFromName(std::string_view name);

/// \brief A routable peer: its 32-bit overlay identifier and address.
/// For Chord and Tapestry the id is the node's position in the
/// identifier space; CAN nodes own zones instead, so their id is a
/// stable hash of the address used only for deterministic ordering.
struct PeerInfo {
  uint32_t id = 0;
  NetAddress addr;

  bool operator==(const PeerInfo&) const = default;
};

/// \brief Outcome of routing one identifier to its owner.
struct RouteResult {
  PeerInfo owner;
  /// Remote nodes contacted (the paper's path length).
  int hops = 0;
  /// Total simulated latency of the contacted path.
  double latency_ms = 0.0;
};

/// \brief Abstract structured overlay: identifier ownership, routed
/// lookup with per-hop accounting, replica placement, membership, and
/// maintenance. All implementations are deterministic under a seed.
class Overlay {
 public:
  virtual ~Overlay() = default;

  Overlay() = default;
  Overlay(const Overlay&) = delete;
  Overlay& operator=(const Overlay&) = delete;

  virtual Kind kind() const = 0;
  const char* name() const { return KindName(kind()); }

  // --- Routing --------------------------------------------------------

  /// Routes identifier `id` from `from` to its current owner, charging
  /// every hop through the accounted network. Routes around failed
  /// peers where the substrate can; Unavailable when it cannot.
  virtual Result<RouteResult> RouteToOwner(const NetAddress& from,
                                           uint32_t id) = 0;

  /// Zero-cost oracle: the correct owner of `id` among live peers.
  virtual Result<PeerInfo> OwnerOracle(uint32_t id) const = 0;

  // --- Replica placement ----------------------------------------------

  /// The owner-local backup list for descriptors stored at `owner`, in
  /// preference order, excluding `owner` itself. Entries may be dead —
  /// the caller performs its own liveness filtering so that failover
  /// accounting (tried/alive) is the caller's policy, not the
  /// overlay's. Chord: the node's successor list; CAN: its zone
  /// neighbors; Tapestry: the next nodes in identifier order.
  virtual std::vector<PeerInfo> ReplicaCandidates(
      const NetAddress& owner) const = 0;

  // --- Membership -----------------------------------------------------

  /// Joins a brand-new peer through the substrate's join protocol.
  virtual Result<PeerInfo> AddNode() = 0;

  /// Graceful departure with state handoff where the protocol has one.
  virtual Status Leave(const NetAddress& addr) = 0;

  /// Abrupt failure: the peer goes down with no handoff.
  virtual Status Fail(const NetAddress& addr) = 0;

  /// A failed peer comes back (same address and identifier) and
  /// re-bootstraps its routing state.
  virtual Status Recover(const NetAddress& addr) = 0;

  // --- Maintenance ----------------------------------------------------

  /// `rounds` rounds of the substrate's periodic repair protocol
  /// (Chord stabilize+notify; CAN dead-zone takeover; Tapestry
  /// routing-table rebuild).
  virtual void Stabilize(int rounds) = 0;

  /// Heavier routing-state repair (Chord fix-fingers; CAN and
  /// Tapestry rebuild the same state Stabilize does).
  virtual void RepairRouting() = 0;

  // --- Introspection --------------------------------------------------

  virtual size_t num_alive() const = 0;

  /// Live peers in deterministic (identifier) order.
  virtual std::vector<PeerInfo> AlivePeersOrdered() const = 0;

  /// A uniformly random live peer (e.g. to originate a lookup).
  virtual Result<NetAddress> RandomAliveAddress() = 0;

  virtual bool IsAlive(const NetAddress& addr) const = 0;

  // --- Accounted delivery ---------------------------------------------

  /// Accounts one system message with `payload_bytes` of payload
  /// through the substrate's network (see SimNetwork::DeliverBytes for
  /// the error contract).
  virtual Result<double> DeliverBytes(const NetAddress& from,
                                      const NetAddress& to,
                                      uint64_t payload_bytes) = 0;

  virtual const NetworkStats& net_stats() const = 0;
  virtual void ResetNetStats() = 0;
};

/// \brief Which overlay to build and its substrate tunables. The
/// Chord tunables stay in chord::ChordConfig (SystemConfig::chord);
/// its latency model is shared by all substrates so hop costs are
/// comparable.
struct OverlayParams {
  Kind kind = Kind::kChord;
  /// CAN dimensionality d (hops scale as d/4 * n^(1/d)).
  int can_dims = 2;
  /// Safety bound on CAN greedy routing steps.
  int can_max_route_steps = 4096;
  /// Replica-list depth for CAN/Tapestry ReplicaCandidates (Chord uses
  /// its successor-list length).
  int replica_list_len = 8;
};

}  // namespace overlay
}  // namespace p2prange

#endif  // P2PRANGE_OVERLAY_OVERLAY_H_
