#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace p2prange {

void Summary::EnsureSorted() const {
  if (!sorted_valid_ || sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double Summary::Min() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Summary::Max() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Summary::Stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double mean = Mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::Percentile(double q) const {
  DCHECK_GE(q, 0.0);
  DCHECK_LE(q, 100.0);
  EnsureSorted();
  if (sorted_.empty()) return 0.0;
  // Nearest-rank: ceil(q/100 * N), 1-based.
  const double rank = q / 100.0 * static_cast<double>(sorted_.size());
  size_t idx = static_cast<size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sorted_.size()) idx = sorted_.size() - 1;
  return sorted_[idx];
}

void UnitHistogram::Add(double x) {
  DCHECK_GE(x, 0.0);
  DCHECK_LE(x, 1.0);
  int bin = static_cast<int>(x * static_cast<double>(counts_.size()));
  if (bin >= static_cast<int>(counts_.size())) bin = static_cast<int>(counts_.size()) - 1;
  ++counts_[bin];
  ++total_;
}

double UnitHistogram::Percentage(int i) const {
  if (total_ == 0) return 0.0;
  return 100.0 * static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

std::vector<std::pair<double, double>> FractionAtLeast(
    const std::vector<double>& samples, int points) {
  std::vector<std::pair<double, double>> out;
  out.reserve(points + 1);
  for (int i = points; i >= 0; --i) {
    const double threshold = static_cast<double>(i) / static_cast<double>(points);
    uint64_t count = 0;
    for (double s : samples) {
      // Tolerate floating rounding right at the threshold.
      if (s >= threshold - 1e-12) ++count;
    }
    const double pct = samples.empty()
                           ? 0.0
                           : 100.0 * static_cast<double>(count) /
                                 static_cast<double>(samples.size());
    out.emplace_back(threshold, pct);
  }
  return out;
}

std::vector<double> DiscretePdf(const std::vector<double>& samples) {
  double max_val = 0.0;
  for (double s : samples) max_val = std::max(max_val, s);
  std::vector<double> pdf(static_cast<size_t>(max_val) + 1, 0.0);
  if (samples.empty()) return pdf;
  for (double s : samples) pdf[static_cast<size_t>(s)] += 1.0;
  for (double& p : pdf) p /= static_cast<double>(samples.size());
  return pdf;
}

}  // namespace p2prange
