// Fixed-width text tables for the figure-regeneration harnesses.
#ifndef P2PRANGE_STATS_TABLE_PRINTER_H_
#define P2PRANGE_STATS_TABLE_PRINTER_H_

#include <iostream>
#include <string>
#include <vector>

namespace p2prange {

/// \brief Collects rows of string cells and prints them with aligned
/// columns, a header rule, and an optional title.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Convenience for numeric rows.
  static std::string Fmt(double v, int precision = 3);
  static std::string Fmt(uint64_t v) { return std::to_string(v); }
  static std::string Fmt(int v) { return std::to_string(v); }

  void Print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace p2prange

#endif  // P2PRANGE_STATS_TABLE_PRINTER_H_
