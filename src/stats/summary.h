// Descriptive statistics for experiment harnesses: means, percentiles,
// fixed-bin histograms over [0, 1], and the "fraction of queries
// answered up to x" reverse-CDF series the paper plots.
#ifndef P2PRANGE_STATS_SUMMARY_H_
#define P2PRANGE_STATS_SUMMARY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace p2prange {

/// \brief Accumulates samples; computes order statistics on demand.
class Summary {
 public:
  void Add(double x) { samples_.push_back(x); }
  void AddCount(uint64_t x) { samples_.push_back(static_cast<double>(x)); }

  size_t count() const { return samples_.size(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;

  /// \brief The q-th percentile (q in [0, 100]) by nearest-rank on the
  /// sorted samples. Percentile(1) / Percentile(99) are the paper's
  /// whiskers in Figures 11-12.
  double Percentile(double q) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// \brief Histogram with `bins` equal bins over [0, 1]; values at 1.0
/// land in the last bin.
class UnitHistogram {
 public:
  explicit UnitHistogram(int bins) : counts_(bins, 0) {}

  void Add(double x);

  int num_bins() const { return static_cast<int>(counts_.size()); }
  uint64_t bin_count(int i) const { return counts_[i]; }
  uint64_t total() const { return total_; }

  /// Percentage of samples in bin i (0 if empty histogram).
  double Percentage(int i) const;

  /// Inclusive lower edge of bin i.
  double BinLo(int i) const {
    return static_cast<double>(i) / static_cast<double>(counts_.size());
  }
  double BinHi(int i) const {
    return static_cast<double>(i + 1) / static_cast<double>(counts_.size());
  }

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

/// \brief The paper's recall plots (Figures 8-10): for thresholds x
/// descending from 1 to 0, the percentage of samples with value >= x.
///
/// Returned as (threshold, percentage) pairs at `points`+1 thresholds.
std::vector<std::pair<double, double>> FractionAtLeast(
    const std::vector<double>& samples, int points = 20);

/// \brief Discrete PDF of integer samples (Figure 12(b)): for each
/// value v in [0, max], the fraction of samples equal to v.
std::vector<double> DiscretePdf(const std::vector<double>& samples);

}  // namespace p2prange

#endif  // P2PRANGE_STATS_SUMMARY_H_
