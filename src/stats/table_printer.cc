#include "stats/table_printer.h"

#include <cstdio>
#include <iomanip>

namespace p2prange {

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print(std::ostream& os, const std::string& title) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace p2prange
