#include "net/address.h"

namespace p2prange {

std::string NetAddress::ToString() const {
  std::string out;
  out.reserve(21);
  out += std::to_string((host >> 24) & 0xFF);
  out += '.';
  out += std::to_string((host >> 16) & 0xFF);
  out += '.';
  out += std::to_string((host >> 8) & 0xFF);
  out += '.';
  out += std::to_string(host & 0xFF);
  out += ':';
  out += std::to_string(port);
  return out;
}

}  // namespace p2prange
