#include "net/sim_network.h"

#include <cmath>

#include "common/logging.h"

namespace p2prange {

Status LatencyModel::Validate() const {
  if (!(std::isfinite(base_ms) && base_ms >= 0.0)) {
    return Status::InvalidArgument("LatencyModel.base_ms must be finite and >= 0");
  }
  if (!(std::isfinite(jitter_ms) && jitter_ms >= 0.0)) {
    return Status::InvalidArgument("LatencyModel.jitter_ms must be finite and >= 0");
  }
  if (!(std::isfinite(per_kib_ms) && per_kib_ms >= 0.0)) {
    return Status::InvalidArgument("LatencyModel.per_kib_ms must be finite and >= 0");
  }
  if (!(std::isfinite(loss_rate) && loss_rate >= 0.0 && loss_rate < 1.0)) {
    return Status::InvalidArgument(
        "LatencyModel.loss_rate must be a probability in [0, 1)");
  }
  return Status::OK();
}

SimNetwork::SimNetwork(LatencyModel latency, uint64_t seed)
    : latency_(latency), rng_(seed) {
  const Status valid = latency_.Validate();
  CHECK(valid.ok()) << valid.ToString();
}

void SimNetwork::Register(const NetAddress& addr) {
  alive_.emplace(addr, true);
}

Status SimNetwork::SetAlive(const NetAddress& addr, bool alive) {
  auto it = alive_.find(addr);
  if (it == alive_.end()) {
    return Status::NotFound("unregistered address " + addr.ToString());
  }
  it->second = alive;
  return Status::OK();
}

bool SimNetwork::IsRegistered(const NetAddress& addr) const {
  return alive_.contains(addr);
}

bool SimNetwork::IsAlive(const NetAddress& addr) const {
  auto it = alive_.find(addr);
  return it != alive_.end() && it->second;
}

Result<double> SimNetwork::DeliverBytes(const NetAddress& from,
                                        const NetAddress& to,
                                        uint64_t payload_bytes) {
  if (!IsAlive(to)) {
    ++stats_.failed_deliveries;
    return Status::Unavailable("peer " + to.ToString() + " is unreachable");
  }
  if (from == to) return 0.0;
  const double latency =
      latency_.base_ms + rng_.NextDouble() * latency_.jitter_ms +
      latency_.per_kib_ms * static_cast<double>(payload_bytes) / 1024.0;
  ++stats_.messages;
  stats_.bytes += kControlBytes + payload_bytes;
  stats_.total_latency_ms += latency;
  if (latency_.loss_rate > 0.0 && rng_.NextBernoulli(latency_.loss_rate)) {
    ++stats_.lost_messages;
    return Status::IOError("message from " + from.ToString() + " to " +
                           to.ToString() + " lost in transit");
  }
  return latency;
}

}  // namespace p2prange
