// A simulated wide-area message layer.
//
// The paper's evaluation (like the MIT Chord simulator it used) runs
// the overlay in simulation; what matters for the scalability results
// is the *number of overlay messages* (hops) per operation, plus an
// optional latency model. Every remote interaction between peers in
// this library is charged through SimNetwork::Deliver so that message
// counts are honest, and dead peers make deliveries fail.
#ifndef P2PRANGE_NET_SIM_NETWORK_H_
#define P2PRANGE_NET_SIM_NETWORK_H_

#include <cstdint>
#include <unordered_map>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "net/address.h"

namespace p2prange {

/// \brief Per-message latency: base + uniform jitter plus a bandwidth
/// term for the payload, in milliseconds.
struct LatencyModel {
  double base_ms = 20.0;
  double jitter_ms = 20.0;
  /// Transmission delay per KiB of payload (~16 Mbit/s at 0.5).
  double per_kib_ms = 0.5;
  /// Probability that a message to a *live* peer is dropped in
  /// transit (distinguishable from a dead peer: the sender can retry).
  double loss_rate = 0.0;

  /// OK iff base/jitter/per-KiB delays are non-negative, finite, and
  /// loss_rate is a probability. Checked wherever a model enters the
  /// system (SimNetwork, ChordRing::Make) so a typo'd loss_rate = 1.5
  /// fails loudly instead of silently dropping every message.
  Status Validate() const;
};

/// \brief Running totals maintained by SimNetwork.
struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;  ///< control + payload bytes on the wire
  double total_latency_ms = 0.0;
  uint64_t failed_deliveries = 0;  ///< to dead/unknown peers
  uint64_t lost_messages = 0;      ///< dropped in transit (loss_rate)
};

/// \brief Registry of peer endpoints with liveness, message accounting,
/// and a latency model.
class SimNetwork {
 public:
  /// Aborts (CHECK) on an invalid latency model; use
  /// LatencyModel::Validate() beforehand for a recoverable error.
  explicit SimNetwork(LatencyModel latency = {}, uint64_t seed = 42);

  /// Registers an endpoint (idempotent); newly registered peers are
  /// alive.
  void Register(const NetAddress& addr);

  /// Marks a peer up or down. Unknown addresses are an error.
  Status SetAlive(const NetAddress& addr, bool alive);

  bool IsRegistered(const NetAddress& addr) const;
  bool IsAlive(const NetAddress& addr) const;

  /// Wire overhead charged for any message (headers, framing).
  static constexpr uint64_t kControlBytes = 64;

  /// \brief Accounts one control message from `from` to `to` and
  /// returns its simulated latency in ms. Fails with Unavailable if
  /// `to` is down or unknown. Local deliveries (from == to) are free
  /// and always succeed for a live peer.
  Result<double> Deliver(const NetAddress& from, const NetAddress& to) {
    return DeliverBytes(from, to, 0);
  }

  /// \brief Accounts one message carrying `payload_bytes` of payload
  /// (kControlBytes of framing are added); the latency includes the
  /// bandwidth term. A message to a live peer may be lost in transit
  /// (LatencyModel::loss_rate), reported as IOError — the message and
  /// its bytes are still charged (they went onto the wire); the sender
  /// may retry. Unavailable always means the peer is down.
  Result<double> DeliverBytes(const NetAddress& from, const NetAddress& to,
                              uint64_t payload_bytes);

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  size_t num_registered() const { return alive_.size(); }

 private:
  LatencyModel latency_;
  Rng rng_;
  NetworkStats stats_;
  std::unordered_map<NetAddress, bool, NetAddressHash> alive_;
};

}  // namespace p2prange

#endif  // P2PRANGE_NET_SIM_NETWORK_H_
