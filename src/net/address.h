// Network addresses for simulated peers.
//
// Peers are identified by IPv4 address + port; the Chord identifier of
// a peer is SHA-1(address string) truncated to the ring width, exactly
// as prescribed in paper §4 step 2.
#ifndef P2PRANGE_NET_ADDRESS_H_
#define P2PRANGE_NET_ADDRESS_H_

#include <cstdint>
#include <functional>
#include <string>

namespace p2prange {

/// \brief An IPv4 endpoint of a simulated peer.
struct NetAddress {
  uint32_t host = 0;  ///< IPv4 address in host byte order
  uint16_t port = 0;

  bool operator==(const NetAddress&) const = default;
  auto operator<=>(const NetAddress&) const = default;

  /// Dotted-quad "a.b.c.d:port" — the string fed to SHA-1.
  std::string ToString() const;
};

/// std::hash support so addresses key unordered containers.
struct NetAddressHash {
  size_t operator()(const NetAddress& a) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(a.host) << 16) | a.port);
  }
};

}  // namespace p2prange

#endif  // P2PRANGE_NET_ADDRESS_H_
