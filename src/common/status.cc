#include "common/status.h"

namespace p2prange {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(msg)});
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

}  // namespace p2prange
