#include "common/sync.h"

#include <vector>

#include "common/logging.h"

namespace p2prange {
namespace sync_internal {

namespace {

// Ranks of every ranked lock the calling thread currently holds, in
// acquisition order. Unlock order may differ from reverse lock order,
// so release removes the newest matching entry rather than popping.
std::vector<int>& HeldRanks() {
  thread_local std::vector<int> ranks;
  return ranks;
}

}  // namespace

#ifndef P2PRANGE_NO_LOCK_RANKS

void NoteAcquire(int rank, bool check_order) {
  if (rank == kNoLockRank) return;
  std::vector<int>& held = HeldRanks();
  if (check_order) {
    for (int h : held) {
      CHECK_LT(h, rank)
          << "lock-rank inversion: acquiring a lock of rank " << rank
          << " while holding rank " << h
          << " (ranks must strictly increase along every acquisition "
             "chain; see the rank table in DESIGN.md)";
    }
  }
  held.push_back(rank);
}

void NoteRelease(int rank) {
  if (rank == kNoLockRank) return;
  std::vector<int>& held = HeldRanks();
  for (size_t i = held.size(); i > 0; --i) {
    if (held[i - 1] == rank) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
  LOG_FATAL() << "releasing a rank-" << rank
              << " lock this thread does not hold";
}

#else  // P2PRANGE_NO_LOCK_RANKS

void NoteAcquire(int, bool) {}
void NoteRelease(int) {}

#endif  // P2PRANGE_NO_LOCK_RANKS

uint64_t ThisThreadTag() {
  static std::atomic<uint64_t> next{1};
  thread_local const uint64_t tag = next.fetch_add(1);
  return tag;
}

}  // namespace sync_internal

ExclusiveUse::Scope::Scope(ExclusiveUse* use, const char* site) : use_(use) {
  const uint64_t me = sync_internal::ThisThreadTag();
  if (use_->owner_.load(std::memory_order_relaxed) != me) {
    uint64_t expected = 0;
    CHECK(use_->owner_.compare_exchange_strong(expected, me,
                                               std::memory_order_acquire))
        << "concurrent use of a single-threaded object: " << site
        << " entered while thread tag " << expected
        << " is still inside (this class is one-thread-at-a-time; "
           "hand it off with a join, or add a lock)";
  }
  ++use_->depth_;
}

ExclusiveUse::Scope::~Scope() {
  if (--use_->depth_ == 0) {
    use_->owner_.store(0, std::memory_order_release);
  }
}

}  // namespace p2prange
