#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace p2prange {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  DCHECK_GT(bound, 0u);
  // Lemire-style rejection to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  DCHECK_LE(lo, hi);
  const uint64_t span = hi - lo + 1;
  if (span == 0) return Next();  // full 64-bit range
  return lo + NextBounded(span);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t Rng::NextBalancedMask(int width, int ones) {
  DCHECK_GE(width, 0);
  DCHECK_LE(width, 64);
  DCHECK_GE(ones, 0);
  DCHECK_LE(ones, width);
  // Floyd's algorithm for sampling `ones` distinct positions in
  // [0, width) would need a set; widths here are <= 64, so a simple
  // partial Fisher-Yates over positions is cheap and exact.
  uint64_t positions[64];
  for (int i = 0; i < width; ++i) positions[i] = static_cast<uint64_t>(i);
  uint64_t mask = 0;
  for (int i = 0; i < ones; ++i) {
    const uint64_t j = i + NextBounded(static_cast<uint64_t>(width - i));
    std::swap(positions[i], positions[j]);
    mask |= (1ULL << positions[i]);
  }
  return mask;
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  CHECK_GT(n, 0u);
  CHECK_GT(theta, 0.0);
  CHECK(theta != 1.0) << "theta == 1 is not supported by this sampler";
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta));
}

double ZipfGenerator::H(double x) const {
  return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double ZipfGenerator::HInverse(double x) const {
  return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  for (;;) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -theta_)) {
      return k - 1;  // zero-based rank
    }
  }
}

}  // namespace p2prange
