#include "common/crc32c.h"

namespace p2prange {

namespace {
struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    // Reflected polynomial of CRC-32C.
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};
}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  static const Crc32cTable table;
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table.t[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace p2prange
