// Portable bit-manipulation helpers used by the permutation networks
// and the Chord identifier arithmetic.
#ifndef P2PRANGE_COMMON_BIT_UTILS_H_
#define P2PRANGE_COMMON_BIT_UTILS_H_

#include <bit>
#include <cstdint>

namespace p2prange {
namespace bits {

inline int PopCount(uint64_t x) { return std::popcount(x); }

/// \brief Parallel bit extract ("sheep from goats"): gathers the bits
/// of `x` selected by `mask` into the low-order bits of the result,
/// preserving their relative order.
///
/// Equivalent to the BMI2 PEXT instruction; implemented portably so
/// that results are identical on every platform.
inline uint64_t ExtractBits(uint64_t x, uint64_t mask) {
  uint64_t result = 0;
  int out = 0;
  while (mask != 0) {
    const uint64_t low = mask & (~mask + 1);  // lowest set bit
    if (x & low) result |= (1ULL << out);
    ++out;
    mask &= mask - 1;  // clear lowest set bit
  }
  return result;
}

/// \brief Parallel bit deposit: scatters the low-order bits of `x`
/// into the positions selected by `mask` (inverse of ExtractBits).
inline uint64_t DepositBits(uint64_t x, uint64_t mask) {
  uint64_t result = 0;
  int in = 0;
  while (mask != 0) {
    const uint64_t low = mask & (~mask + 1);
    if (x & (1ULL << in)) result |= low;
    ++in;
    mask &= mask - 1;
  }
  return result;
}

/// \brief Ceil(log2(x)) for x >= 1.
inline int CeilLog2(uint64_t x) {
  return x <= 1 ? 0 : 64 - std::countl_zero(x - 1);
}

/// \brief True if x is a power of two (and nonzero).
inline bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// \brief A mask with the low `n` bits set; n in [0, 64].
inline uint64_t LowMask(int n) {
  return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/// \brief MurmurHash3's 32-bit finalizer: a fixed bijection of the
/// 32-bit space with avalanche behavior. Used to spread LSH bucket
/// signatures uniformly over the identifier ring — min-hash values are
/// order statistics concentrated near 0 (E[min] ~ 2^32/|set|), so the
/// raw XOR signature would pile every bucket onto the ring's first few
/// peers. Being a bijection, it preserves signature equality exactly.
inline uint32_t Mix32(uint32_t h) {
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}

}  // namespace bits
}  // namespace p2prange

#endif  // P2PRANGE_COMMON_BIT_UTILS_H_
