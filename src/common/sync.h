// The annotated synchronization layer: every lock in src/ is one of
// these types, never a raw std primitive (invariant P2P007).
//
// Two enforcement layers ride on that single spelling:
//
//  * Compile time — Clang thread-safety analysis (Hutchins et al.,
//    "C/C++ Thread Safety Analysis"; the abseil Mutex capability
//    model). Fields carry GUARDED_BY(mu), functions carry
//    REQUIRES(mu) / EXCLUDES(mu), and the build gate
//    -DP2PRANGE_THREAD_SAFETY=ON turns -Wthread-safety into an error,
//    so reading a worker-shared field without its lock is a build
//    break, not a TSan roll of the dice. On compilers without the
//    analysis (GCC) the annotation macros expand to nothing and the
//    types behave identically.
//
//  * Run time — optional per-Mutex lock ranks. A Mutex constructed
//    with a rank participates in a global acquisition order: a thread
//    may only acquire a ranked lock whose rank is strictly greater
//    than every ranked lock it already holds, and a violation
//    CHECK-aborts with both ranks in the message. Deadlock ordering
//    is thereby enforced in the ordinary ctest/TSan builds, not just
//    reasoned about in comments. Unranked mutexes skip the
//    bookkeeping entirely; -DP2PRANGE_NO_LOCK_RANKS compiles it out
//    for maximal-performance production builds. The rank table lives
//    in DESIGN.md ("Engineering standards").
//
// The layer also owns the two single-threaded-by-contract seams:
// ThreadChecker (sticky owner thread, for the scenario engine) and
// ExclusiveUse (one-thread-at-a-time sentinel with handoff, for the
// TCP transport and server).
#ifndef P2PRANGE_COMMON_SYNC_H_
#define P2PRANGE_COMMON_SYNC_H_

#include <atomic>
#include <chrono>
#include <condition_variable>  // p2plint: allow(P2P007): the one annotated wrapper
#include <cstdint>
#include <mutex>         // p2plint: allow(P2P007): the one annotated wrapper
#include <shared_mutex>  // p2plint: allow(P2P007): the one annotated wrapper
#include <thread>

// --------------------------------------------------------------------------
// Clang thread-safety annotation macros (no-ops elsewhere)
// --------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define P2P_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define P2P_THREAD_ANNOTATION__(x)  // GCC: annotations vanish, types remain
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex").
#define CAPABILITY(x) P2P_THREAD_ANNOTATION__(capability(x))
/// Marks an RAII class whose ctor acquires and dtor releases.
#define SCOPED_CAPABILITY P2P_THREAD_ANNOTATION__(scoped_lockable)
/// Field may only be touched while holding `x`.
#define GUARDED_BY(x) P2P_THREAD_ANNOTATION__(guarded_by(x))
/// Pointer field whose *pointee* is protected by `x`.
#define PT_GUARDED_BY(x) P2P_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Function requires the capability held (exclusively) on entry.
#define REQUIRES(...) \
  P2P_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
/// Function requires at least shared hold on entry.
#define REQUIRES_SHARED(...) \
  P2P_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability and does not release it.
#define ACQUIRE(...) P2P_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  P2P_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability.
#define RELEASE(...) P2P_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  P2P_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability only when returning `ret`.
#define TRY_ACQUIRE(ret, ...) \
  P2P_THREAD_ANNOTATION__(try_acquire_capability(ret, __VA_ARGS__))
/// Function must NOT be entered holding the capability (deadlock gate).
#define EXCLUDES(...) P2P_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (teaches the analysis).
#define ASSERT_CAPABILITY(x) P2P_THREAD_ANNOTATION__(assert_capability(x))
/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) P2P_THREAD_ANNOTATION__(lock_returned(x))
/// Escape hatch — forbidden outside src/common/sync.h (see DESIGN.md).
#define NO_THREAD_SAFETY_ANALYSIS \
  P2P_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace p2prange {

/// Rank value meaning "this mutex opts out of order checking".
inline constexpr int kNoLockRank = -1;

/// The global lock acquisition order. A thread may only acquire a
/// ranked lock whose rank is strictly greater than every ranked lock
/// it already holds; gaps are deliberate so new locks slot in without
/// renumbering. Rationale for each edge lives in DESIGN.md
/// ("Engineering standards").
namespace lock_rank {
/// NodeService::ring_mu_ — redirect-ring snapshot, outermost.
inline constexpr int kRedirectRing = 10;
/// NodeService::data_mu_ — descriptor store + partition cache.
inline constexpr int kNodeData = 20;
/// rpc::Executor::mu_ — work/completion queues; workers take it while
/// the service may hold data_mu_.
inline constexpr int kExecutor = 30;
/// Logging sink mutex — the innermost lock in the tree, because any
/// code path may emit a log line (including CHECK failures) while
/// holding any other lock.
inline constexpr int kLogSink = 1000;
}  // namespace lock_rank

namespace sync_internal {

// Lock-rank bookkeeping (sync.cc). No-ops when rank == kNoLockRank.
// `check_order` is false for try-acquisitions: an out-of-order TryLock
// cannot deadlock, it can only fail.
void NoteAcquire(int rank, bool check_order);
void NoteRelease(int rank);

/// Small dense id for the calling thread; never zero.
uint64_t ThisThreadTag();

}  // namespace sync_internal

// --------------------------------------------------------------------------
// Mutex / CondVar
// --------------------------------------------------------------------------

/// \brief The project's exclusive lock: std::mutex plus capability
/// annotations and an optional deadlock-ordering rank.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// A ranked mutex: acquiring it while holding any ranked lock with
  /// rank >= `rank` CHECK-aborts (see file comment).
  explicit Mutex(int rank) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    sync_internal::NoteAcquire(rank_, /*check_order=*/true);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    sync_internal::NoteRelease(rank_);
  }
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    sync_internal::NoteAcquire(rank_, /*check_order=*/false);
    return true;
  }

  int rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;  // p2plint: allow(P2P007): the annotated layer's own guts
  const int rank_ = kNoLockRank;
};

/// \brief Condition variable bound to a Mutex at each wait. The mutex
/// stays logically held across Wait (released and reacquired inside),
/// exactly the capability model the analysis assumes.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until signalled (spurious wakeups possible — always wait
  /// in a predicate loop). `mu` must be held by the caller.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(  // p2plint: allow(P2P007): wrapper guts
        mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's scope
  }

  /// Waits up to `timeout`; returns false on timeout, true when
  /// notified (subject to spurious wakeups, same as Wait).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(  // p2plint: allow(P2P007): wrapper guts
        mu->mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(native, timeout);
    native.release();
    return st == std::cv_status::no_timeout;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // p2plint: allow(P2P007): wrapper guts
};

/// \brief Scoped exclusive lock; the only spelling for "hold mu_ for
/// this block". Never hold one across a blocking syscall in the same
/// block (invariant P2P008).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// --------------------------------------------------------------------------
// SharedMutex (reader/writer)
// --------------------------------------------------------------------------

/// \brief Reader/writer lock with the same annotation + rank contract
/// as Mutex. Shared holders participate in rank ordering too — a
/// reader waiting behind a writer is a deadlock edge like any other.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(int rank) : rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    sync_internal::NoteAcquire(rank_, /*check_order=*/true);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    sync_internal::NoteRelease(rank_);
  }
  void ReaderLock() ACQUIRE_SHARED() {
    sync_internal::NoteAcquire(rank_, /*check_order=*/true);
    mu_.lock_shared();
  }
  void ReaderUnlock() RELEASE_SHARED() {
    mu_.unlock_shared();
    sync_internal::NoteRelease(rank_);
  }

  int rank() const { return rank_; }

 private:
  std::shared_mutex mu_;  // p2plint: allow(P2P007): wrapper guts
  const int rank_ = kNoLockRank;
};

/// Scoped exclusive hold on a SharedMutex (inserts, flushes).
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Scoped shared hold on a SharedMutex (the read-heavy probe side).
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// --------------------------------------------------------------------------
// Single-threaded-by-contract seams
// --------------------------------------------------------------------------

/// \brief Sticky owner-thread pin for components that are
/// single-threaded BY DESIGN (the scenario engine): bound at
/// construction, re-pinned explicitly after a move, checked with
/// CalledOnOwnerThread() wherever the contract matters.
class ThreadChecker {
 public:
  ThreadChecker() : owner_(std::this_thread::get_id()) {}

  /// Re-pins to the calling thread — for factories that build on one
  /// thread and hand the object to another via move.
  void Rebind() { owner_ = std::this_thread::get_id(); }

  bool CalledOnOwnerThread() const {
    return std::this_thread::get_id() == owner_;
  }

 private:
  std::thread::id owner_;
};

/// \brief Sentinel that a "not thread-safe" class is honoured at run
/// time: each public entry point opens a Scope, and two threads inside
/// any Scope of the same ExclusiveUse concurrently CHECK-abort with
/// the entry point's name — a crisp crash where silent state
/// corruption used to be. Unlike ThreadChecker the owner is not
/// sticky: once every Scope closes, a *different* thread may enter
/// (ownership handoff via join/synchronization is legal and the TCP
/// tests use it). Same-thread reentrancy is allowed, so guarded
/// methods may call each other.
class ExclusiveUse {
 public:
  ExclusiveUse() = default;
  /// Moving a guarded object transfers nothing: the new copy starts
  /// unowned (moving while a Scope is open is already a contract
  /// violation on the moved-from object).
  ExclusiveUse(ExclusiveUse&&) noexcept : ExclusiveUse() {}
  ExclusiveUse& operator=(ExclusiveUse&&) noexcept { return *this; }

  class Scope {
   public:
    /// `site` names the entry point for the failure message; it must
    /// outlive the scope (string literals only).
    Scope(ExclusiveUse* use, const char* site);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ExclusiveUse* const use_;
  };

 private:
  /// ThisThreadTag() of the thread currently inside, 0 when empty.
  std::atomic<uint64_t> owner_{0};
  /// Reentrancy depth; touched only by the owning thread between the
  /// acquire CAS and the release store, so a plain int is race-free.
  uint32_t depth_ = 0;
};

}  // namespace p2prange

#endif  // P2PRANGE_COMMON_SYNC_H_
