// WrapUnique: the one sanctioned home for a naked `new`.
#ifndef P2PRANGE_COMMON_MEMORY_H_
#define P2PRANGE_COMMON_MEMORY_H_

#include <memory>

namespace p2prange {

/// \brief Takes ownership of `ptr` as a std::unique_ptr<T>.
///
/// Factories returning Result<std::unique_ptr<T>> for classes with
/// private constructors cannot use std::make_unique (it is not a
/// friend), so they spell `WrapUnique(new T(...))` — the allocation and
/// the ownership transfer sit in one expression, on one line. The
/// invariant linter (tools/p2prange_lint.py, rule P2P003) rejects every
/// `new` that is not inside a WrapUnique(...) argument, which is what
/// keeps this the only leak-capable allocation pattern in the tree.
template <typename T>
std::unique_ptr<T> WrapUnique(T* ptr) {
  return std::unique_ptr<T>(ptr);
}

}  // namespace p2prange

#endif  // P2PRANGE_COMMON_MEMORY_H_
