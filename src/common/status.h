// Status: error propagation without exceptions, in the style used by
// Apache Arrow and RocksDB. Library code returns Status (or Result<T>,
// see result.h) instead of throwing.
#ifndef P2PRANGE_COMMON_STATUS_H_
#define P2PRANGE_COMMON_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace p2prange {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kNotImplemented = 5,
  kInternal = 6,
  kUnavailable = 7,
  kIOError = 8,
  kResourceExhausted = 9,
};

/// \brief Returns a human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// An OK status carries no allocation; error states allocate a small
/// state block. Statuses are cheap to move and to copy-when-OK.
///
/// The class is [[nodiscard]]: every function returning a Status by
/// value — including all the factory functions below — triggers
/// -Wunused-result when the caller drops it on the floor. Intentional
/// discards must go through IgnoreError() with a reason comment.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string msg);

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// \brief The singleton-equivalent OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// An overloaded component shed the request; the work was not done
  /// but the system is healthy — back off and retry later.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsResourceExhausted() const { return code() == StatusCode::kResourceExhausted; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// \brief Explicitly discards this status.
  ///
  /// The only sanctioned way to drop a Status: it defeats the
  /// class-level [[nodiscard]] and documents, at the call site, that
  /// failure is acceptable there. Every use must carry a comment
  /// explaining *why* the error does not matter (enforced by review;
  /// the pattern is grep-able).
  void IgnoreError() const {}

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace p2prange

/// Propagates a non-OK Status out of the enclosing function.
#define RETURN_NOT_OK(expr)                       \
  do {                                            \
    ::p2prange::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (false)

#define P2P_CONCAT_IMPL(a, b) a##b
#define P2P_CONCAT(a, b) P2P_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise moves the value into `lhs`.
#define ASSIGN_OR_RETURN(lhs, rexpr)                                     \
  ASSIGN_OR_RETURN_IMPL(P2P_CONCAT(_result_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto&& result_name = (rexpr);                        \
  if (!result_name.ok()) return result_name.status();  \
  lhs = std::move(result_name).ValueUnsafe();

#endif  // P2PRANGE_COMMON_STATUS_H_
