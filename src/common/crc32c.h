// CRC-32C (Castagnoli, polynomial 0x1EDC6F41): the checksum that
// frames every durable record (store/wal, store/snapshot). Chosen over
// plain CRC-32 for its better burst-error detection; software
// table-driven implementation, no hardware dependencies.
#ifndef P2PRANGE_COMMON_CRC32C_H_
#define P2PRANGE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace p2prange {

/// \brief Extends a running CRC-32C with `n` more bytes. Start from 0.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// \brief CRC-32C of a whole buffer.
inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

/// \brief Masked form for storage, as used by LevelDB/RocksDB: storing
/// the CRC of data that itself contains CRCs is vulnerable to
/// accidental fixed points, so frames store Mask(crc) instead.
inline uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t Crc32cUnmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace p2prange

#endif  // P2PRANGE_COMMON_CRC32C_H_
