// Minimal logging and assertion macros (glog-flavoured, no deps).
#ifndef P2PRANGE_COMMON_LOGGING_H_
#define P2PRANGE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace p2prange {
namespace internal {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global threshold; messages below it are discarded. Default kInfo.
LogLevel GetLogThreshold();
void SetLogThreshold(LogLevel level);

/// \brief Destination for emitted log lines — the test seam that lets
/// suites capture output without stderr heroics. Write() is called
/// with the sink mutex held, serialized across threads; a sink must
/// never log (the self-deadlock is caught by the lock-rank CHECK in
/// common/sync.h) and must stay alive until SwapLogSink returns it.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const std::string& line) = 0;
};

/// \brief Installs `sink` as the emission target (nullptr restores
/// stderr) and returns the previous sink. The swap and every emission
/// synchronize on one annotated Mutex, so when this returns the old
/// sink is guaranteed not to be mid-Write on any thread — the caller
/// may destroy it immediately.
LogSink* SwapLogSink(LogSink* sink);

/// \brief Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression when a check passes; keeps the
/// ternary in CHECK well-typed.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace p2prange

#define P2P_LOG_INTERNAL(level) \
  ::p2prange::internal::LogMessage(::p2prange::internal::LogLevel::level, __FILE__, __LINE__)

#define LOG_DEBUG() P2P_LOG_INTERNAL(kDebug)
#define LOG_INFO() P2P_LOG_INTERNAL(kInfo)
#define LOG_WARNING() P2P_LOG_INTERNAL(kWarning)
#define LOG_ERROR() P2P_LOG_INTERNAL(kError)
#define LOG_FATAL() P2P_LOG_INTERNAL(kFatal)

#define CHECK(cond)                                     \
  (cond) ? (void)0                                      \
         : ::p2prange::internal::LogMessageVoidify() &  \
               P2P_LOG_INTERNAL(kFatal) << "Check failed: " #cond " "

#define CHECK_EQ(a, b) CHECK((a) == (b))
#define CHECK_NE(a, b) CHECK((a) != (b))
#define CHECK_LT(a, b) CHECK((a) < (b))
#define CHECK_LE(a, b) CHECK((a) <= (b))
#define CHECK_GT(a, b) CHECK((a) > (b))
#define CHECK_GE(a, b) CHECK((a) >= (b))

#ifdef NDEBUG
#define DCHECK(cond) \
  while (false) CHECK(cond)
#else
#define DCHECK(cond) CHECK(cond)
#endif
#define DCHECK_EQ(a, b) DCHECK((a) == (b))
#define DCHECK_NE(a, b) DCHECK((a) != (b))
#define DCHECK_LT(a, b) DCHECK((a) < (b))
#define DCHECK_LE(a, b) DCHECK((a) <= (b))
#define DCHECK_GT(a, b) DCHECK((a) > (b))
#define DCHECK_GE(a, b) DCHECK((a) >= (b))

#endif  // P2PRANGE_COMMON_LOGGING_H_
