// Deterministic pseudo-random generation used throughout the library.
//
// Every stochastic component (hash-key sampling, workload generation,
// ring population) takes an explicit 64-bit seed so that experiments
// are exactly reproducible.
#ifndef P2PRANGE_COMMON_RANDOM_H_
#define P2PRANGE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace p2prange {

/// \brief SplitMix64: stateless mixing of a 64-bit counter. Used to
/// derive independent sub-seeds from a master seed.
uint64_t SplitMix64(uint64_t& state);

/// \brief xoshiro256** PRNG. Fast, high-quality, 256-bit state.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can
/// be used with <random> distributions when convenient.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform in [0, bound). `bound` must be > 0. Unbiased (rejection).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  /// Uniform 32-bit value.
  uint32_t Next32() { return static_cast<uint32_t>(Next() >> 32); }

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// A W-bit mask with exactly `ones` bits set, uniformly among all
  /// such masks. Requires width <= 64 and ones <= width.
  uint64_t NextBalancedMask(int width, int ones);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = NextBounded(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives a fresh, statistically independent generator.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// \brief Zipf-distributed integers over [0, n): P(i) ∝ 1/(i+1)^theta.
///
/// Uses the rejection-inversion sampler of Hörmann & Derflinger, which
/// is O(1) per sample and needs no per-rank table.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace p2prange

#endif  // P2PRANGE_COMMON_RANDOM_H_
