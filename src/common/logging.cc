#include "common/logging.h"

#include <atomic>

#include "common/sync.h"

namespace p2prange {
namespace internal {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kInfo)};

// The sink swap is the textbook shared-state hazard the annotation
// layer exists for: a reader that grabbed the pointer outside the lock
// could call into a sink the swapper already destroyed. Both sides go
// through g_sink_mu, ranked as the innermost lock in the tree because
// a log line may be emitted while any other lock is held.
Mutex g_sink_mu(lock_rank::kLogSink);
LogSink* g_sink GUARDED_BY(g_sink_mu) = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogThreshold() { return static_cast<LogLevel>(g_threshold.load()); }

void SetLogThreshold(LogLevel level) { g_threshold.store(static_cast<int>(level)); }

LogSink* SwapLogSink(LogSink* sink) {
  MutexLock lock(&g_sink_mu);
  LogSink* old = g_sink;
  g_sink = sink;
  return old;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(level >= GetLogThreshold() || level == LogLevel::kFatal) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // One insertion for the whole line (terminator included), under
    // the sink lock: concurrent writers interleave at line granularity
    // and never observe a half-swapped sink.
    stream_ << '\n';
    const std::string line = stream_.str();
    MutexLock lock(&g_sink_mu);
    if (g_sink != nullptr) {
      g_sink->Write(line);
    } else {
      std::cerr << line << std::flush;
    }
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace p2prange
