#include "common/logging.h"

#include <atomic>

namespace p2prange {
namespace internal {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogThreshold() { return static_cast<LogLevel>(g_threshold.load()); }

void SetLogThreshold(LogLevel level) { g_threshold.store(static_cast<int>(level)); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(level >= GetLogThreshold() || level == LogLevel::kFatal) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // One insertion for the whole line (terminator included): cerr is
    // unit-buffered, so concurrent writers interleave at line
    // granularity instead of splicing a message and its '\n' apart.
    stream_ << '\n';
    std::cerr << stream_.str() << std::flush;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace p2prange
