// Result<T>: a value or a Status, in the style of arrow::Result.
#ifndef P2PRANGE_COMMON_RESULT_H_
#define P2PRANGE_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace p2prange {

/// \brief Holds either a value of type T or an error Status.
///
/// Use with ASSIGN_OR_RETURN for ergonomic propagation:
/// \code
///   ASSIGN_OR_RETURN(auto node, ring.FindSuccessor(id));
/// \endcode
/// The class is [[nodiscard]]: dropping a returned Result<T> discards
/// both the value and the error, so -Wunused-result flags it. Use
/// status().IgnoreError() (with a reason comment) for intentional
/// discards.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs an error result. Aborts (in debug) if `status` is OK,
  /// because an OK Result must carry a value.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design —
  // `return Status::NotFound(...)` must convert inside RETURN_NOT_OK
  // chains, exactly as in arrow::Result.
  Result(Status status) : repr_(std::move(status)) {
    DCHECK(!std::get<Status>(repr_).ok()) << "Result constructed from OK status";
  }
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design —
  // `return value;` is the ergonomic success path.
  Result(T value) : repr_(std::move(value)) {}

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK when a value is held.
  Status status() const& {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }
  Status status() && {
    if (ok()) return Status::OK();
    return std::move(std::get<Status>(repr_));
  }

  /// Value accessors; must only be called when ok().
  const T& ValueUnsafe() const& { return std::get<T>(repr_); }
  T& ValueUnsafe() & { return std::get<T>(repr_); }
  T ValueUnsafe() && { return std::move(std::get<T>(repr_)); }

  const T& operator*() const& { return ValueUnsafe(); }
  T& operator*() & { return ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }

  /// Returns the value, or aborts with the error message. For use in
  /// tests, examples, and benches only.
  T ValueOrDie() && {
    CHECK(ok()) << status().ToString();
    return std::move(std::get<T>(repr_));
  }
  const T& ValueOrDie() const& {
    CHECK(ok()) << status().ToString();
    return std::get<T>(repr_);
  }

  /// Returns the value, or `alternative` on error.
  T ValueOr(T alternative) && {
    if (ok()) return std::move(std::get<T>(repr_));
    return alternative;
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace p2prange

#endif  // P2PRANGE_COMMON_RESULT_H_
