#include "hash/bit_permutation.h"

#include "common/bit_utils.h"
#include "common/logging.h"

namespace p2prange {

BitShuffleKeys BitShuffleKeys::Sample(int width, Rng& rng) {
  CHECK(bits::IsPowerOfTwo(static_cast<uint64_t>(width)) && width >= 2 && width <= 64)
      << "width must be a power of two in [2, 64], got " << width;
  BitShuffleKeys keys;
  keys.width = width;
  for (int block = width; block >= 2; block /= 2) {
    keys.level_keys.push_back(rng.NextBalancedMask(block, block / 2));
  }
  return keys;
}

namespace {

// Where does the bit at in-block offset `o` land after one sheep-and-
// goats round with `key` over a block of size `block`? Selected bits go
// to the upper half in order; the rest to the lower half in order.
int RoundOffset(uint64_t key, int block, int o) {
  const uint64_t below = bits::LowMask(o);
  if ((key >> o) & 1) {
    return block / 2 + bits::PopCount(key & below);
  }
  const uint64_t clear = ~key & bits::LowMask(block);
  return bits::PopCount(clear & below);
}

}  // namespace

BitPermutation::BitPermutation(const BitShuffleKeys& keys, int rounds)
    : width_(keys.width), rounds_(rounds), num_bytes_((keys.width + 7) / 8), keys_(keys) {
  CHECK_GE(rounds_, 1);
  CHECK_LE(rounds_, keys_.num_levels());

  // Compose the per-round position moves into one map.
  for (int j = 0; j < 64; ++j) position_map_[j] = j;
  for (int j = 0; j < width_; ++j) {
    int pos = j;
    for (int r = 0; r < rounds_; ++r) {
      const int block = width_ >> r;
      const int base = (pos / block) * block;
      pos = base + RoundOffset(keys_.level_keys[r], block, pos - base);
    }
    position_map_[j] = pos;
  }
  for (int j = 0; j < 64; ++j) inverse_map_[j] = j;
  for (int j = 0; j < width_; ++j) inverse_map_[position_map_[j]] = j;

  // Compile per-byte scatter tables.
  table_.assign(num_bytes_, {});
  for (int i = 0; i < num_bytes_; ++i) {
    for (int v = 0; v < 256; ++v) {
      uint32_t out = 0;
      for (int b = 0; b < 8; ++b) {
        const int j = 8 * i + b;
        if (j < width_ && ((v >> b) & 1)) {
          out |= (1u << position_map_[j]);
        }
      }
      table_[i][v] = out;
    }
  }
}

uint32_t BitPermutation::ApplyNaive(uint32_t x) const {
  uint64_t v = x;
  for (int r = 0; r < rounds_; ++r) {
    const int block = width_ >> r;
    const uint64_t key = keys_.level_keys[r];
    const uint64_t block_mask = bits::LowMask(block);
    uint64_t out = 0;
    for (int base = 0; base < width_; base += block) {
      const uint64_t blk = (v >> base) & block_mask;
      const uint64_t upper = bits::ExtractBits(blk, key);
      const uint64_t lower = bits::ExtractBits(blk, ~key & block_mask);
      out |= ((upper << (block / 2)) | lower) << base;
    }
    v = out;
  }
  return static_cast<uint32_t>(v);
}

}  // namespace p2prange
