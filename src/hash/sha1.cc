#include "hash/sha1.h"

#include "common/logging.h"

namespace p2prange {

namespace {
inline uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }
}  // namespace

void Sha1::Reset() {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  total_bytes_ = 0;
  buffer_len_ = 0;
}

void Sha1::ProcessBlock(const uint8_t block[64]) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           (static_cast<uint32_t>(block[4 * i + 3]));
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const uint32_t tmp = Rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_bytes_ += len;
  if (buffer_len_ > 0) {
    const size_t take = std::min(len, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (len >= 64) {
    ProcessBlock(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffer_len_ = len;
  }
}

Sha1::Digest Sha1::Finish() {
  const uint64_t bit_len = total_bytes_ * 8;
  // Append 0x80, then zeros, then the 64-bit big-endian length.
  const uint8_t one = 0x80;
  Update(&one, 1);
  const uint8_t zero = 0x00;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
  }
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Bypass Update's length accounting for the trailer.
  std::memcpy(buffer_ + buffer_len_, len_bytes, 8);
  ProcessBlock(buffer_);
  buffer_len_ = 0;

  Digest d;
  for (int i = 0; i < 5; ++i) {
    d[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
    d[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    d[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    d[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
  return d;
}

std::string Sha1::ToHex(const Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (uint8_t byte : d) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

uint32_t Sha1::Hash32(std::string_view s) {
  const Digest d = Hash(s);
  return (static_cast<uint32_t>(d[0]) << 24) | (static_cast<uint32_t>(d[1]) << 16) |
         (static_cast<uint32_t>(d[2]) << 8) | static_cast<uint32_t>(d[3]);
}

}  // namespace p2prange
