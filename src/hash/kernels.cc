#include "hash/kernels.h"

#include <bit>

#include "common/logging.h"

namespace p2prange {

namespace {

// min over 0 <= i < n of (b + a*i) mod m, for n >= 1, m >= 1,
// 0 <= a < m, 0 <= b < m.
//
// The sequence climbs by a and drops by m at each wrap. Candidate
// minima are the start value b and the value just after each wrap;
// the value after the j-th wrap is b + a*i - m*j ∈ [0, a), which is
// congruent to b - m*j (mod a). Those post-wrap values therefore form
// another arithmetic progression — first term (b - m) mod a, step
// (-m) mod a — over the smaller modulus a, and the loop descends into
// it. The modulus pair evolves like the Euclidean algorithm
// ((m, a) -> (a, a - m mod a), which at least halves every two
// levels), so the loop runs O(log m) times.
//
// No product here overflows: a < m <= 2^32 - 5 and n <= m at every
// level (at the top level the caller guarantees n < p; below it,
// n' = wraps <= a*n/m < n), so a*(n-1) + b < 2^64.
uint64_t MinModSequence(uint64_t n, uint64_t m, uint64_t a, uint64_t b) {
  uint64_t best = b;
  for (;;) {
    if (b < best) best = b;
    if (best == 0 || a == 0) return best;
    // Wraps reached within the first n terms: the j-th wrap happens at
    // index i = ceil((m*j - b) / a), so i <= n-1 iff j <= (a*(n-1)+b)/m.
    const uint64_t wraps = (a * (n - 1) + b) / m;
    if (wraps == 0) return best;
    // Three 64-bit divisions per level dominate the kernel's cost, so
    // the (< 2a)-sized reductions below use compares, not a fourth and
    // fifth division.
    const uint64_t r = m % a;       // m mod a, in [0, a)
    const uint64_t br = b % a;      // b mod a, in [0, a)
    const uint64_t next_b = br >= r ? br - r : br + a - r;  // (b - m) mod a
    const uint64_t next_a = r == 0 ? 0 : a - r;             // (-m) mod a
    n = wraps;
    m = a;
    a = next_a;
    b = next_b;
  }
}

}  // namespace

uint32_t MinLinearOverRange(uint64_t a, uint64_t b, uint64_t p, const Range& q) {
  DCHECK_GE(a, 1u);
  DCHECK_LT(a, p);
  DCHECK_LT(b, p);
  const uint64_t n = q.size();
  // a is invertible mod prime p, so n >= p terms cover every residue.
  if (n >= p) return 0;
  // (a*x + b) mod p over x = lo + t is (c + a*t) mod p over t < n;
  // domain values >= p alias exactly as in the per-element evaluation.
  const uint64_t c = (a * q.lo() + b) % p;
  return static_cast<uint32_t>(MinModSequence(n, p, a, c));
}

std::optional<uint32_t> NextMatchingPattern(uint32_t lo, uint32_t mask,
                                            uint32_t value) {
  DCHECK_EQ(value & ~mask, 0u);
  const uint64_t free = ~static_cast<uint64_t>(mask) & 0xFFFFFFFFull;
  const uint64_t candidate = (lo & ~mask) | value;
  if (candidate == lo) return lo;
  // candidate agrees with lo on every free bit, so the highest
  // differing bit d is a masked position.
  const int d = 63 - std::countl_zero(candidate ^ static_cast<uint64_t>(lo));
  if (candidate > lo) {
    // Forced 1 over lo's 0 at bit d: anything below d is ours to
    // minimize, so clear every free bit under it.
    return static_cast<uint32_t>(candidate & ~(free & ((1ULL << d) - 1)));
  }
  // Forced 0 under lo's 1 at bit d: to reach lo we must raise the
  // lowest free zero bit above d, then clear every free bit under it.
  const uint64_t risers = free & ~candidate & ~((1ULL << (d + 1)) - 1);
  if (risers == 0) return std::nullopt;
  const uint64_t riser = risers & (~risers + 1);  // lowest set bit
  return static_cast<uint32_t>((candidate | riser) & ~(free & (riser - 1)));
}

uint32_t MinPermutedOverRange(const BitPermutation& perm, uint32_t out_xor,
                              const Range& q) {
  const std::array<int, 64>& inv = perm.inverse_position_map();
  uint32_t mask = 0;   // input bits pinned so far
  uint32_t value = 0;  // their pinned values
  uint32_t result = 0;
  for (int j = perm.width() - 1; j >= 0; --j) {
    const uint32_t in_bit = 1u << inv[j];
    const uint32_t flip = (out_xor >> j) & 1u;
    // Output bit j is input bit inv[j] XOR flip; try to make it 0.
    const uint32_t zero_value = value | (flip ? in_bit : 0u);
    const std::optional<uint32_t> witness =
        NextMatchingPattern(q.lo(), mask | in_bit, zero_value);
    if (witness.has_value() && *witness <= q.hi()) {
      value = zero_value;
    } else {
      // The zero branch is empty; its complement within the (feasible)
      // parent assignment cannot be.
      value |= flip ? 0u : in_bit;
      result |= 1u << j;
    }
    mask |= in_bit;
  }
  return result;
}

}  // namespace p2prange
