// Integer range sets and the similarity measures of the paper (§3.2).
//
// A selection predicate `lo <= attr <= hi` over an ordered attribute
// domain defines the set {lo, lo+1, ..., hi}. Because ranges are
// contiguous, Jaccard / containment / recall reduce to closed-form
// interval arithmetic — but the semantics are set semantics throughout.
#ifndef P2PRANGE_HASH_RANGE_H_
#define P2PRANGE_HASH_RANGE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"

namespace p2prange {

/// \brief A non-empty inclusive integer range [lo, hi] over a 32-bit
/// ordered domain — the paper's "range set" for one selection.
class Range {
 public:
  /// Default: the singleton range [0, 0].
  Range() : lo_(0), hi_(0) {}

  /// Requires lo <= hi (checked in debug builds). Use Make() to
  /// validate untrusted input.
  Range(uint32_t lo, uint32_t hi) : lo_(lo), hi_(hi) { DCHECK_LE(lo, hi); }

  /// Validating factory.
  static Result<Range> Make(uint32_t lo, uint32_t hi) {
    if (lo > hi) {
      return Status::InvalidArgument("range lo " + std::to_string(lo) +
                                     " exceeds hi " + std::to_string(hi));
    }
    return Range(lo, hi);
  }

  uint32_t lo() const { return lo_; }
  uint32_t hi() const { return hi_; }

  /// Number of elements; up to 2^32 hence 64-bit.
  uint64_t size() const { return static_cast<uint64_t>(hi_) - lo_ + 1; }

  bool Contains(uint32_t x) const { return lo_ <= x && x <= hi_; }
  bool Contains(const Range& other) const {
    return lo_ <= other.lo_ && other.hi_ <= hi_;
  }
  bool Overlaps(const Range& other) const {
    return lo_ <= other.hi_ && other.lo_ <= hi_;
  }

  /// |this ∩ other| as a count of elements.
  uint64_t IntersectionSize(const Range& other) const;

  /// |this ∪ other| as a count of elements (the sets may be disjoint;
  /// this is set union, not interval hull).
  uint64_t UnionSize(const Range& other) const;

  /// The overlapping sub-range, if any.
  std::optional<Range> Intersection(const Range& other) const;

  /// \brief Jaccard set similarity |Q∩R| / |Q∪R| — the measure the LSH
  /// families are built on (§3.2). In [0, 1]; 1 iff identical.
  double Jaccard(const Range& other) const;

  /// \brief Containment similarity |Q∩R| / |Q| where Q == *this — the
  /// fraction of this range covered by `other`. Not symmetric; does not
  /// admit an LSH family (no triangle inequality), but is the better
  /// best-match criterion inside a bucket (§5.2, Figure 9).
  double ContainmentIn(const Range& other) const;

  /// \brief Recall of answering query `*this` from cached range
  /// `other`: identical to ContainmentIn, named for the §5.2 metric.
  double RecallFrom(const Range& other) const { return ContainmentIn(other); }

  /// \brief The §5.2 padded query: each edge extended by
  /// `fraction * size()` (rounded down), clamped to the domain
  /// [domain_lo, domain_hi].
  Range Padded(double fraction, uint32_t domain_lo, uint32_t domain_hi) const;

  bool operator==(const Range& other) const = default;

  /// "[lo, hi]"
  std::string ToString() const;

 private:
  uint32_t lo_;
  uint32_t hi_;
};

}  // namespace p2prange

#endif  // P2PRANGE_HASH_RANGE_H_
