#include "hash/lsh.h"

#include <cmath>

#include "common/bit_utils.h"
#include "common/logging.h"

namespace p2prange {

Result<LshScheme> LshScheme::Make(const LshParams& params) {
  if (params.k < 1) {
    return Status::InvalidArgument("LSH k must be >= 1, got " +
                                   std::to_string(params.k));
  }
  if (params.l < 1) {
    return Status::InvalidArgument("LSH l must be >= 1, got " +
                                   std::to_string(params.l));
  }
  Rng rng(params.seed);
  std::vector<std::vector<std::unique_ptr<RangeHashFunction>>> groups;
  groups.reserve(params.l);
  for (int g = 0; g < params.l; ++g) {
    std::vector<std::unique_ptr<RangeHashFunction>> group;
    group.reserve(params.k);
    for (int i = 0; i < params.k; ++i) {
      group.push_back(MakeHashFunction(params.family, rng, params.pre_xor_mask,
                                       params.linear_prime));
    }
    groups.push_back(std::move(group));
  }
  return LshScheme(params, std::move(groups));
}

uint32_t LshScheme::GroupIdentifier(int g, const Range& q) const {
  DCHECK_GE(g, 0);
  DCHECK_LT(g, params_.l);
  uint32_t id = 0;
  for (const auto& fn : groups_[g]) {
    id ^= fn->HashRange(q);
  }
  // Spread the bucket signature uniformly over the ring (see Mix32's
  // comment). Identifier equality is exactly signature equality.
  return bits::Mix32(id);
}

std::vector<uint32_t> LshScheme::Identifiers(const Range& q) const {
  std::vector<uint32_t> ids;
  ids.reserve(groups_.size());
  for (int g = 0; g < params_.l; ++g) {
    ids.push_back(GroupIdentifier(g, q));
  }
  return ids;
}

double LshScheme::CollisionProbability(double sim, int k, int l) {
  DCHECK_GE(sim, 0.0);
  DCHECK_LE(sim, 1.0);
  return 1.0 - std::pow(1.0 - std::pow(sim, k), l);
}

}  // namespace p2prange
