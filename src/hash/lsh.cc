#include "hash/lsh.h"

#include <cmath>

#include "common/bit_utils.h"
#include "common/logging.h"

namespace p2prange {

Result<LshScheme> LshScheme::Make(const LshParams& params) {
  if (params.k < 1) {
    return Status::InvalidArgument("LSH k must be >= 1, got " +
                                   std::to_string(params.k));
  }
  if (params.l < 1) {
    return Status::InvalidArgument("LSH l must be >= 1, got " +
                                   std::to_string(params.l));
  }
  if (params.family == HashFamilyType::kLinear) {
    // A composite modulus silently makes the linear permutations
    // non-bijective (multiples of a shared factor collapse), which
    // skews the Figure 7 match-quality comparison.
    if (!IsPrime(params.linear_prime)) {
      return Status::InvalidArgument(
          "linear_prime must be prime, got " +
          std::to_string(params.linear_prime) + " (next prime is " +
          std::to_string(NextPrimeAtLeast(
              params.linear_prime < 2 ? 2 : params.linear_prime)) +
          ")");
    }
    if (params.linear_prime > LinearHashFunction::kPrime) {
      return Status::InvalidArgument(
          "linear_prime " + std::to_string(params.linear_prime) +
          " exceeds the largest 32-bit prime " +
          std::to_string(LinearHashFunction::kPrime));
    }
  }
  Rng rng(params.seed);
  std::vector<std::unique_ptr<RangeHashFunction>> fns;
  fns.reserve(static_cast<size_t>(params.l) * params.k);
  for (int g = 0; g < params.l; ++g) {
    for (int i = 0; i < params.k; ++i) {
      fns.push_back(MakeHashFunction(params.family, rng, params.pre_xor_mask,
                                     params.linear_prime));
    }
  }
  return LshScheme(params, std::move(fns));
}

uint32_t LshScheme::GroupIdentifier(int g, const Range& q) const {
  DCHECK_GE(g, 0);
  DCHECK_LT(g, params_.l);
  uint32_t id = 0;
  const size_t base = static_cast<size_t>(g) * params_.k;
  for (int i = 0; i < params_.k; ++i) {
    id ^= fns_[base + i]->HashRange(q);
  }
  // Spread the bucket signature uniformly over the ring (see Mix32's
  // comment). Identifier equality is exactly signature equality.
  return bits::Mix32(id);
}

void LshScheme::IdentifiersInto(const Range& q,
                                std::vector<uint32_t>* out) const {
  out->resize(static_cast<size_t>(params_.l));
  size_t f = 0;
  for (int g = 0; g < params_.l; ++g) {
    uint32_t id = 0;
    for (int i = 0; i < params_.k; ++i) {
      id ^= fns_[f++]->HashRange(q);
    }
    (*out)[g] = bits::Mix32(id);
  }
}

double LshScheme::CollisionProbability(double sim, int k, int l) {
  DCHECK_GE(sim, 0.0);
  DCHECK_LE(sim, 1.0);
  return 1.0 - std::pow(1.0 - std::pow(sim, k), l);
}

}  // namespace p2prange
