// The recursive bit-shuffle permutation of paper §3.3.
//
// One *round* at block size B permutes each aligned B-bit block of the
// word with a "sheep and goats" move: the bits selected by a B-bit key
// (which has exactly B/2 set bits) go to the upper half of the block in
// order; the rest go to the lower half in order. The full min-wise
// permutation applies rounds at block sizes W, W/2, ..., 2 (log2(W)-?
// precisely: W down to 2, i.e. log2(W) rounds... see below); the
// *approximate* family of §5.1 applies only the first round.
//
// Every round maps bit positions to bit positions independent of the
// word's value, so the whole operation composes into a single position
// permutation. We compile that into per-byte lookup tables, and keep a
// round-by-round naive evaluator as the executable specification.
#ifndef P2PRANGE_HASH_BIT_PERMUTATION_H_
#define P2PRANGE_HASH_BIT_PERMUTATION_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace p2prange {

/// \brief The per-round keys of a §3.3 permutation over a W-bit domain.
///
/// Level i (0-based) has block size W >> i and one key of that width
/// with exactly half its bits set; the same key is reused for every
/// block at that level, exactly as in the paper's Figure 3 (which is
/// why the full 8-bit key set "is representable as two 8-bit
/// integers").
struct BitShuffleKeys {
  int width = 32;
  std::vector<uint64_t> level_keys;  // level_keys[i] has (width>>i)/2 set bits

  /// Samples uniform balanced keys for all levels down to block size 2.
  static BitShuffleKeys Sample(int width, Rng& rng);

  /// Number of levels (block sizes W, W/2, ..., 2).
  int num_levels() const { return static_cast<int>(level_keys.size()); }
};

/// \brief A compiled §3.3 permutation: `rounds` shuffle levels applied
/// in sequence. rounds == 1 gives the approximate family; rounds ==
/// keys.num_levels() gives the full min-wise family.
class BitPermutation {
 public:
  /// `width` must be 8, 16, 32, or 64; `rounds` in [1, keys.num_levels()].
  BitPermutation(const BitShuffleKeys& keys, int rounds);

  int width() const { return width_; }
  int rounds() const { return rounds_; }

  /// Fast table-compiled application (4 byte lookups for width 32).
  uint32_t Apply(uint32_t x) const {
    uint32_t out = 0;
    for (int i = 0; i < num_bytes_; ++i) {
      out |= table_[i][(x >> (8 * i)) & 0xFF];
    }
    return out;
  }

  /// Round-by-round reference implementation of the paper's Figure 3;
  /// used by tests to validate the compiled form.
  uint32_t ApplyNaive(uint32_t x) const;

  /// The composed bit-position map: output bit position_map()[j] takes
  /// the value of input bit j.
  const std::array<int, 64>& position_map() const { return position_map_; }

  /// Inverse of position_map(): output bit j takes the value of input
  /// bit inverse_position_map()[j]. Drives the sublinear range-min
  /// kernel (hash/kernels.h), which fixes output bits high-to-low.
  const std::array<int, 64>& inverse_position_map() const {
    return inverse_map_;
  }

 private:
  int width_;
  int rounds_;
  int num_bytes_;
  BitShuffleKeys keys_;
  std::array<int, 64> position_map_;
  std::array<int, 64> inverse_map_;
  // table_[i][v]: contribution of input byte i holding value v.
  std::vector<std::array<uint32_t, 256>> table_;
};

}  // namespace p2prange

#endif  // P2PRANGE_HASH_BIT_PERMUTATION_H_
