// The l-groups-of-k LSH amplification of paper §4.
//
// A single min-hash collides for similar ranges with probability equal
// to their Jaccard similarity p. Grouping k independent functions
// (identifier = combination of all k values) sharpens that to p^k, and
// probing l independent groups gives overall hit probability
// 1 − (1 − p^k)^l — a sigmoid the paper tunes (k=20, l=5) to
// approximate a step function at similarity 0.9.
#ifndef P2PRANGE_HASH_LSH_H_
#define P2PRANGE_HASH_LSH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "hash/minwise.h"
#include "hash/range.h"

namespace p2prange {

/// \brief Parameters of the LSH identifier scheme.
struct LshParams {
  int k = 20;  ///< hash functions per group
  int l = 5;   ///< number of groups (identifiers per range)
  HashFamilyType family = HashFamilyType::kApproxMinwise;
  uint64_t seed = 1;
  /// Compose bit-shuffle permutations with a random XOR translation
  /// (removes the fixed point at 0; see MinwiseHashFunction). Off by
  /// default for paper fidelity.
  bool pre_xor_mask = false;
  /// Modulus for the linear family. The default full-width prime gives
  /// the sharp variant; a domain-sized prime (NextPrimeAtLeast of the
  /// attribute-domain width) reproduces the paper's Figure 7 behavior.
  uint64_t linear_prime = LinearHashFunction::kPrime;

  /// The paper's configuration (§5.1): k=20, l=5.
  static LshParams Paper(HashFamilyType family, uint64_t seed = 1) {
    LshParams p;
    p.family = family;
    p.seed = seed;
    return p;
  }
};

/// \brief l groups of k sampled hash functions mapping a range set to
/// l 32-bit identifiers (the paper's pseudocode combines a group's k
/// values by XOR; we do the same).
class LshScheme {
 public:
  /// Samples the l*k functions deterministically from params.seed.
  /// Rejects k < 1, l < 1, and (for the linear family) a composite or
  /// out-of-range `linear_prime` with InvalidArgument.
  static Result<LshScheme> Make(const LshParams& params);

  int k() const { return params_.k; }
  int l() const { return params_.l; }
  HashFamilyType family() const { return params_.family; }
  const LshParams& params() const { return params_; }

  /// The identifier produced by group `g` (0-based) for range `q`.
  uint32_t GroupIdentifier(int g, const Range& q) const;

  /// All l identifiers for `q`, in group order.
  std::vector<uint32_t> Identifiers(const Range& q) const {
    std::vector<uint32_t> ids;
    IdentifiersInto(q, &ids);
    return ids;
  }

  /// All l identifiers for `q` written into *out (resized to l): one
  /// batched pass over the flat function table, reusing out's storage
  /// — the allocation-free form the probe path uses per lookup.
  void IdentifiersInto(const Range& q, std::vector<uint32_t>* out) const;

  /// Total number of sampled functions (l * k).
  int num_functions() const { return params_.k * params_.l; }

  /// The i-th function (0-based) of group `g`; sampling order matches
  /// the seeded construction. Exposed for the differential tests and
  /// the kernel-vs-naive benches.
  const RangeHashFunction& function(int g, int i) const {
    return *fns_[static_cast<size_t>(g) * params_.k + i];
  }

  /// \brief The analytic probability 1 − (1 − sim^k)^l that two ranges
  /// of Jaccard similarity `sim` share at least one identifier, under
  /// ideal min-wise independence.
  static double CollisionProbability(double sim, int k, int l);
  double CollisionProbability(double sim) const {
    return CollisionProbability(sim, params_.k, params_.l);
  }

 private:
  LshScheme(LshParams params,
            std::vector<std::unique_ptr<RangeHashFunction>> fns)
      : params_(params), fns_(std::move(fns)) {}

  LshParams params_;
  // fns_[g*k + i]: i-th function of group g (flat: one contiguous
  // table so a batched evaluation is a single pass).
  std::vector<std::unique_ptr<RangeHashFunction>> fns_;
};

}  // namespace p2prange

#endif  // P2PRANGE_HASH_LSH_H_
