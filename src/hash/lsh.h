// The l-groups-of-k LSH amplification of paper §4.
//
// A single min-hash collides for similar ranges with probability equal
// to their Jaccard similarity p. Grouping k independent functions
// (identifier = combination of all k values) sharpens that to p^k, and
// probing l independent groups gives overall hit probability
// 1 − (1 − p^k)^l — a sigmoid the paper tunes (k=20, l=5) to
// approximate a step function at similarity 0.9.
#ifndef P2PRANGE_HASH_LSH_H_
#define P2PRANGE_HASH_LSH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "hash/minwise.h"
#include "hash/range.h"

namespace p2prange {

/// \brief Parameters of the LSH identifier scheme.
struct LshParams {
  int k = 20;  ///< hash functions per group
  int l = 5;   ///< number of groups (identifiers per range)
  HashFamilyType family = HashFamilyType::kApproxMinwise;
  uint64_t seed = 1;
  /// Compose bit-shuffle permutations with a random XOR translation
  /// (removes the fixed point at 0; see MinwiseHashFunction). Off by
  /// default for paper fidelity.
  bool pre_xor_mask = false;
  /// Modulus for the linear family. The default full-width prime gives
  /// the sharp variant; a domain-sized prime (NextPrimeAtLeast of the
  /// attribute-domain width) reproduces the paper's Figure 7 behavior.
  uint64_t linear_prime = LinearHashFunction::kPrime;

  /// The paper's configuration (§5.1): k=20, l=5.
  static LshParams Paper(HashFamilyType family, uint64_t seed = 1) {
    LshParams p;
    p.family = family;
    p.seed = seed;
    return p;
  }
};

/// \brief l groups of k sampled hash functions mapping a range set to
/// l 32-bit identifiers (the paper's pseudocode combines a group's k
/// values by XOR; we do the same).
class LshScheme {
 public:
  /// Samples the l*k functions deterministically from params.seed.
  static Result<LshScheme> Make(const LshParams& params);

  int k() const { return params_.k; }
  int l() const { return params_.l; }
  HashFamilyType family() const { return params_.family; }
  const LshParams& params() const { return params_; }

  /// The identifier produced by group `g` (0-based) for range `q`.
  uint32_t GroupIdentifier(int g, const Range& q) const;

  /// All l identifiers for `q`, in group order.
  std::vector<uint32_t> Identifiers(const Range& q) const;

  /// Total number of sampled functions (l * k).
  int num_functions() const { return params_.k * params_.l; }

  /// \brief The analytic probability 1 − (1 − sim^k)^l that two ranges
  /// of Jaccard similarity `sim` share at least one identifier, under
  /// ideal min-wise independence.
  static double CollisionProbability(double sim, int k, int l);
  double CollisionProbability(double sim) const {
    return CollisionProbability(sim, params_.k, params_.l);
  }

 private:
  LshScheme(LshParams params,
            std::vector<std::vector<std::unique_ptr<RangeHashFunction>>> groups)
      : params_(params), groups_(std::move(groups)) {}

  LshParams params_;
  // groups_[g][i]: i-th function of group g.
  std::vector<std::vector<std::unique_ptr<RangeHashFunction>>> groups_;
};

}  // namespace p2prange

#endif  // P2PRANGE_HASH_LSH_H_
