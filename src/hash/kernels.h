// Exact sublinear range min-hash kernels.
//
// Every probe evaluates h(Q) = min{π(x) : x ∈ Q} for l×k permutations;
// a naive scan costs O(|Q|) per function (the cost the paper's
// Figure 5 measures) and is unusable for wide ranges. Both permutation
// families in use admit exact shortcuts over contiguous ranges:
//
//  * Linear, π(x) = (a·x + b) mod p: the values along [lo, hi] form an
//    arithmetic progression mod p. Its minimum is found by a
//    Euclidean-style recursion on (p, a) — each level rewrites the
//    minimum over the sub-sequence of post-wrap values, which is again
//    an arithmetic progression with a smaller modulus — in O(log p).
//
//  * Bit-shuffle (§3.3, full and approximate): the compiled
//    permutation is a pure bit-position permutation P, optionally
//    composed with an XOR translation, so π(x) = P(x) ⊕ c is
//    GF(2)-linear. The minimum over [lo, hi] is found by fixing output
//    bits from the most significant down, preferring 0 whenever some
//    x ∈ [lo, hi] remains consistent with the partial assignment —
//    O(W) feasibility checks of O(1) bit ops each.
//
// Both kernels return bit-identical results to the naive scan (the
// differential suite in tests/hash/kernels_test.cc pins this over
// ≥ 10⁵ random ranges per family), so LSH signatures, bucket
// placement, and every reproduced figure are unchanged.
#ifndef P2PRANGE_HASH_KERNELS_H_
#define P2PRANGE_HASH_KERNELS_H_

#include <cstdint>
#include <optional>

#include "hash/bit_permutation.h"
#include "hash/range.h"

namespace p2prange {

/// \brief Exact min of (a·x + b) mod p over x ∈ [q.lo(), q.hi()] in
/// O(log p). Requires 1 <= a < p, 0 <= b < p, p prime (primality makes
/// a invertible, so ranges spanning >= p elements cover every residue
/// and the minimum is 0).
uint32_t MinLinearOverRange(uint64_t a, uint64_t b, uint64_t p, const Range& q);

/// \brief Exact min of perm.Apply(x) ^ out_xor over x ∈
/// [q.lo(), q.hi()] in O(W) feasibility checks (W = perm.width()).
/// Covers both shuffle families: a pre-XOR translation r becomes
/// out_xor = perm.Apply(r) by GF(2)-linearity of the position
/// permutation.
uint32_t MinPermutedOverRange(const BitPermutation& perm, uint32_t out_xor,
                              const Range& q);

/// \brief Smallest x >= lo with (x & mask) == value, if any. The
/// feasibility primitive of MinPermutedOverRange; exposed for its
/// property tests.
std::optional<uint32_t> NextMatchingPattern(uint32_t lo, uint32_t mask,
                                            uint32_t value);

}  // namespace p2prange

#endif  // P2PRANGE_HASH_KERNELS_H_
