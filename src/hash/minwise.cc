#include "hash/minwise.h"

#include <limits>

#include "common/logging.h"
#include "hash/kernels.h"

namespace p2prange {

const char* HashFamilyName(HashFamilyType family) {
  switch (family) {
    case HashFamilyType::kMinwise:
      return "min-wise independent";
    case HashFamilyType::kApproxMinwise:
      return "approx. min-wise independent";
    case HashFamilyType::kLinear:
      return "linear";
  }
  return "unknown";
}

uint32_t RangeHashFunction::HashRangeNaive(const Range& q) const {
  uint32_t best = std::numeric_limits<uint32_t>::max();
  uint32_t x = q.lo();
  for (;;) {
    const uint32_t h = Permute(x);
    if (h < best) best = h;
    if (x == q.hi()) break;
    ++x;
  }
  return best;
}

uint32_t RangeHashFunction::HashSet(std::span<const uint32_t> elements) const {
  CHECK(!elements.empty()) << "min-wise hash of an empty set is undefined";
  uint32_t best = std::numeric_limits<uint32_t>::max();
  for (uint32_t x : elements) {
    const uint32_t h = Permute(x);
    if (h < best) best = h;
  }
  return best;
}

MinwiseHashFunction::MinwiseHashFunction(Rng& rng, bool pre_xor)
    : perm_([&rng] {
        BitShuffleKeys keys = BitShuffleKeys::Sample(32, rng);
        return BitPermutation(keys, keys.num_levels());
      }()),
      pre_(pre_xor ? rng.Next32() : 0),
      out_xor_(perm_.Apply(pre_)) {}

uint32_t MinwiseHashFunction::HashRange(const Range& q) const {
  return MinPermutedOverRange(perm_, out_xor_, q);
}

ApproxMinwiseHashFunction::ApproxMinwiseHashFunction(Rng& rng, bool pre_xor)
    : perm_(BitPermutation(BitShuffleKeys::Sample(32, rng), /*rounds=*/1)),
      pre_(pre_xor ? rng.Next32() : 0),
      out_xor_(perm_.Apply(pre_)) {}

uint32_t ApproxMinwiseHashFunction::HashRange(const Range& q) const {
  return MinPermutedOverRange(perm_, out_xor_, q);
}

LinearHashFunction::LinearHashFunction(Rng& rng, uint64_t prime)
    : a_(rng.NextInRange(1, prime - 1)),
      b_(rng.NextInRange(0, prime - 1)),
      prime_(prime) {
  CHECK_LE(prime, kPrime);
  CHECK(IsPrime(prime)) << "linear modulus " << prime << " is composite";
}

LinearHashFunction::LinearHashFunction(uint64_t a, uint64_t b, uint64_t prime)
    : a_(a), b_(b), prime_(prime) {
  CHECK_GE(a, 1u);
  CHECK_LT(a, prime);
  CHECK_LT(b, prime);
  CHECK_LE(prime, kPrime);
  CHECK(IsPrime(prime)) << "linear modulus " << prime << " is composite";
}

uint32_t LinearHashFunction::HashRange(const Range& q) const {
  return MinLinearOverRange(a_, b_, prime_, q);
}

uint64_t NextPrimeAtLeast(uint64_t n) {
  CHECK_GE(n, 2u);
  auto is_prime = [](uint64_t x) {
    if (x < 4) return x >= 2;
    if (x % 2 == 0) return false;
    for (uint64_t d = 3; d * d <= x; d += 2) {
      if (x % d == 0) return false;
    }
    return true;
  };
  uint64_t p = n;
  while (!is_prime(p)) ++p;
  return p;
}

bool IsPrime(uint64_t n) { return n >= 2 && NextPrimeAtLeast(n) == n; }

std::unique_ptr<RangeHashFunction> MakeHashFunction(HashFamilyType family, Rng& rng,
                                                    bool pre_xor,
                                                    uint64_t linear_prime) {
  switch (family) {
    case HashFamilyType::kMinwise:
      return std::make_unique<MinwiseHashFunction>(rng, pre_xor);
    case HashFamilyType::kApproxMinwise:
      return std::make_unique<ApproxMinwiseHashFunction>(rng, pre_xor);
    case HashFamilyType::kLinear:
      return std::make_unique<LinearHashFunction>(rng, linear_prime);
  }
  LOG_FATAL() << "unknown hash family";
  return nullptr;
}

}  // namespace p2prange
