#include "hash/range.h"

#include <algorithm>

namespace p2prange {

uint64_t Range::IntersectionSize(const Range& other) const {
  const uint32_t lo = std::max(lo_, other.lo_);
  const uint32_t hi = std::min(hi_, other.hi_);
  if (lo > hi) return 0;
  return static_cast<uint64_t>(hi) - lo + 1;
}

uint64_t Range::UnionSize(const Range& other) const {
  return size() + other.size() - IntersectionSize(other);
}

std::optional<Range> Range::Intersection(const Range& other) const {
  const uint32_t lo = std::max(lo_, other.lo_);
  const uint32_t hi = std::min(hi_, other.hi_);
  if (lo > hi) return std::nullopt;
  return Range(lo, hi);
}

double Range::Jaccard(const Range& other) const {
  const uint64_t inter = IntersectionSize(other);
  if (inter == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(UnionSize(other));
}

double Range::ContainmentIn(const Range& other) const {
  return static_cast<double>(IntersectionSize(other)) /
         static_cast<double>(size());
}

Range Range::Padded(double fraction, uint32_t domain_lo, uint32_t domain_hi) const {
  DCHECK_GE(fraction, 0.0);
  DCHECK_LE(domain_lo, domain_hi);
  const uint64_t pad = static_cast<uint64_t>(fraction * static_cast<double>(size()));
  uint32_t lo = lo_;
  uint32_t hi = hi_;
  // Widen, saturating at the attribute-domain bounds.
  lo = (static_cast<uint64_t>(lo) >= static_cast<uint64_t>(domain_lo) + pad)
           ? static_cast<uint32_t>(lo - pad)
           : domain_lo;
  hi = (static_cast<uint64_t>(hi) + pad <= domain_hi)
           ? static_cast<uint32_t>(hi + pad)
           : domain_hi;
  return Range(lo, hi);
}

std::string Range::ToString() const {
  return "[" + std::to_string(lo_) + ", " + std::to_string(hi_) + "]";
}

}  // namespace p2prange
