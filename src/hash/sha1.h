// SHA-1 (FIPS 180-1), implemented from scratch.
//
// The paper (§4, step 2) maps peer nodes into the identifier ring by
// hashing their IP address with SHA-1; we do the same and truncate the
// 160-bit digest to the ring width.
#ifndef P2PRANGE_HASH_SHA1_H_
#define P2PRANGE_HASH_SHA1_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace p2prange {

/// \brief Incremental SHA-1 hasher.
///
/// \code
///   Sha1 h;
///   h.Update("192.168.0.1:7000");
///   Sha1::Digest d = h.Finish();
/// \endcode
class Sha1 {
 public:
  using Digest = std::array<uint8_t, 20>;

  Sha1() { Reset(); }

  /// Resets to the initial state so the hasher can be reused.
  void Reset();

  /// Absorbs `len` bytes.
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Pads, finalizes, and returns the 160-bit digest. The hasher must
  /// be Reset() before further use.
  Digest Finish();

  /// One-shot convenience.
  static Digest Hash(std::string_view s) {
    Sha1 h;
    h.Update(s);
    return h.Finish();
  }

  /// Digest rendered as 40 lowercase hex characters.
  static std::string ToHex(const Digest& d);

  /// The leading 32 bits of SHA-1(s), big-endian — the paper's node
  /// identifier derivation, truncated to the 32-bit ring.
  static uint32_t Hash32(std::string_view s);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t h_[5];
  uint64_t total_bytes_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

}  // namespace p2prange

#endif  // P2PRANGE_HASH_SHA1_H_
