// The three range-hash families evaluated in the paper (§3.3, §5.1).
//
// Each family defines a permutation π over the 32-bit domain; hashing a
// range set Q means h(Q) = min{π(x) : x ∈ Q} (min-wise hashing), so
// Pr[h(Q) = h(R)] estimates the Jaccard similarity of Q and R.
#ifndef P2PRANGE_HASH_MINWISE_H_
#define P2PRANGE_HASH_MINWISE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/random.h"
#include "common/result.h"
#include "hash/bit_permutation.h"
#include "hash/range.h"

namespace p2prange {

/// \brief Which of the paper's hash-function families to use.
enum class HashFamilyType {
  kMinwise,        ///< full recursive bit-shuffle permutations (§3.3)
  kApproxMinwise,  ///< first shuffle iteration only (§5.1)
  kLinear,         ///< π(x) = (a·x + b) mod p, a ≠ 0 (§5.1, [Broder et al.])
};

/// Human-readable family name, matching the paper's figure legends.
const char* HashFamilyName(HashFamilyType family);

/// \brief One sampled permutation π with min-wise evaluation over
/// range sets (and arbitrary element sets).
class RangeHashFunction {
 public:
  virtual ~RangeHashFunction() = default;

  /// The underlying permutation applied to a single domain element.
  virtual uint32_t Permute(uint32_t x) const = 0;

  virtual HashFamilyType family() const = 0;

  /// h(Q) = min over x in [lo, hi] of Permute(x). Families override
  /// this with exact sublinear kernels (hash/kernels.h): O(log p) for
  /// linear permutations, O(W) for the bit-shuffles — bit-identical to
  /// HashRangeNaive at every width, including the full 2³²-element
  /// domain. The base implementation is the naive scan.
  virtual uint32_t HashRange(const Range& q) const { return HashRangeNaive(q); }

  /// Reference O(|Q|) element-by-element scan — precisely the cost the
  /// paper's Figure 5 measures. Kept as the differential-testing
  /// oracle and the Fig. 5 baseline; do not use on wide ranges.
  uint32_t HashRangeNaive(const Range& q) const;

  /// Min-wise hash of an explicit element set (used for the Jaccard
  /// collision-probability property tests, which need non-contiguous
  /// sets). `elements` must be non-empty (hard CHECK: an empty set has
  /// no minimum, and the UINT32_MAX a release build used to return
  /// silently poisons XOR group signatures).
  uint32_t HashSet(std::span<const uint32_t> elements) const;
};

/// \brief Full min-wise independent permutation: all log2(W) shuffle
/// rounds. Strongest locality fidelity, most expensive to evaluate.
///
/// `pre_xor` composes the shuffle with a random XOR translation
/// (π(x) = shuffle(x ^ r)) — still a permutation of the domain, but it
/// removes the construction's fixed point at 0 (any bit-position
/// permutation maps 0 to 0, so without the mask every range containing
/// 0 hashes to 0 under every function). Off by default to stay
/// faithful to the paper; the ablation bench quantifies the effect.
class MinwiseHashFunction final : public RangeHashFunction {
 public:
  explicit MinwiseHashFunction(Rng& rng, bool pre_xor = false);

  uint32_t Permute(uint32_t x) const override { return perm_.Apply(x ^ pre_); }
  HashFamilyType family() const override { return HashFamilyType::kMinwise; }
  uint32_t HashRange(const Range& q) const override;

  const BitPermutation& permutation() const { return perm_; }

 private:
  BitPermutation perm_;
  uint32_t pre_ = 0;
  // Permute(x) == perm_.Apply(x) ^ out_xor_ by GF(2)-linearity; the
  // range-min kernel consumes this form.
  uint32_t out_xor_ = 0;
};

/// \brief Approximate min-wise permutation: the first shuffle round
/// only. Representable with a single 32-bit key; ~one fifth of the
/// full family's per-element work. See MinwiseHashFunction for
/// `pre_xor`.
class ApproxMinwiseHashFunction final : public RangeHashFunction {
 public:
  explicit ApproxMinwiseHashFunction(Rng& rng, bool pre_xor = false);

  uint32_t Permute(uint32_t x) const override { return perm_.Apply(x ^ pre_); }
  HashFamilyType family() const override { return HashFamilyType::kApproxMinwise; }
  uint32_t HashRange(const Range& q) const override;

  const BitPermutation& permutation() const { return perm_; }

 private:
  BitPermutation perm_;
  uint32_t pre_ = 0;
  uint32_t out_xor_ = 0;  // see MinwiseHashFunction
};

/// \brief Linear permutation π(x) = (a·x + b) mod p, a true
/// permutation of [0, p).
///
/// Two useful choices of p exist and the bench suite exercises both:
///  * p = kPrime (largest 32-bit prime, the default): hash values span
///    the whole identifier width — the sharp, high-quality variant.
///  * p = smallest prime >= |attribute domain| (Broder's classical
///    "permutation of the universe"): hash values stay domain-sized,
///    XOR signatures collapse to ~log2(p) bits, and buckets collide
///    across dissimilar ranges — which reproduces the poor match
///    quality the paper reports for linear permutations (Figure 7).
/// Domain values >= p alias under the modulus.
///
/// `prime` must actually be prime (hard CHECK; LshScheme::Make
/// rejects composite input with a Status instead): a composite
/// modulus silently makes π non-bijective, which skews Figure 7.
class LinearHashFunction final : public RangeHashFunction {
 public:
  static constexpr uint64_t kPrime = 4294967291ULL;

  explicit LinearHashFunction(Rng& rng, uint64_t prime = kPrime);
  /// Direct construction (tests). Requires 1 <= a < p, 0 <= b < p.
  LinearHashFunction(uint64_t a, uint64_t b, uint64_t prime = kPrime);

  uint32_t Permute(uint32_t x) const override {
    return static_cast<uint32_t>((a_ * x + b_) % prime_);
  }
  HashFamilyType family() const override { return HashFamilyType::kLinear; }
  uint32_t HashRange(const Range& q) const override;

  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }
  uint64_t prime() const { return prime_; }

 private:
  uint64_t a_;
  uint64_t b_;
  uint64_t prime_;
};

/// \brief Smallest prime >= n (n >= 2); used to build domain-sized
/// linear permutations.
uint64_t NextPrimeAtLeast(uint64_t n);

/// \brief True iff n is prime (n >= 0; 0 and 1 are not prime).
/// Implemented on the NextPrimeAtLeast machinery; used to validate
/// linear-family moduli.
bool IsPrime(uint64_t n);

/// \brief Samples a fresh hash function of the given family.
/// `pre_xor` applies only to the bit-shuffle families (linear
/// permutations have no fixed-point artifact to remove);
/// `linear_prime` only to the linear family.
std::unique_ptr<RangeHashFunction> MakeHashFunction(
    HashFamilyType family, Rng& rng, bool pre_xor = false,
    uint64_t linear_prime = LinearHashFunction::kPrime);

}  // namespace p2prange

#endif  // P2PRANGE_HASH_MINWISE_H_
