// kMultiOp: several data-path requests in one framed round trip.
//
// The paper's §4 lookup probes l (=5) buckets per query; on a small
// ring several of those buckets land on the same peer, and without
// batching each one pays its own request/response frame and syscall
// pair. A kMultiOp body carries every sub-request destined for one
// peer; the response carries one (status, body) pair per sub-request,
// in order, so the caller can map results back to the probes that
// produced them. A sub-request failing — including a wrong-owner
// redirect or a load shed — fails only its own slot, never the batch.
//
// Only the stateless data-path types may ride in a batch (see
// IsBatchableMsgType): membership messages mutate single-threaded
// daemon state and are dispatched inline by the poll loop, and nesting
// kMultiOp would let a hostile peer amplify one frame into unbounded
// recursion. The decoder enforces both.
#ifndef P2PRANGE_RPC_MULTI_OP_H_
#define P2PRANGE_RPC_MULTI_OP_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rpc/message.h"

namespace p2prange {
namespace rpc {

/// \brief One sub-request of a batch: the same (type, body) pair that
/// would otherwise travel as its own envelope.
struct MultiOp {
  MsgType type = MsgType::kProbeBucket;
  std::string body;
};

struct MultiOpRequest {
  std::vector<MultiOp> ops;
};

/// \brief One sub-request's outcome. On kOk `body` is the handler's
/// response payload; on any other status it is the error message.
struct MultiOpResult {
  StatusCode status = StatusCode::kOk;
  std::string body;
};

struct MultiOpResponse {
  std::vector<MultiOpResult> results;
};

/// Most sub-requests one batch may carry. The client's first wave
/// sends at most l (=5); the cap only bounds hostile counts before
/// any allocation.
inline constexpr size_t kMaxMultiOps = 256;

/// True iff `t` may appear inside a kMultiOp batch: the stateless
/// data-path types a worker thread can serve without touching
/// membership, and never kMultiOp itself.
bool IsBatchableMsgType(MsgType t);

std::string EncodeMultiOpRequest(const MultiOpRequest& req);
Result<MultiOpRequest> DecodeMultiOpRequest(std::string_view body);

std::string EncodeMultiOpResponse(const MultiOpResponse& resp);
Result<MultiOpResponse> DecodeMultiOpResponse(std::string_view body);

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_MULTI_OP_H_
