// SimTransport: the Transport interface over the in-process SimNetwork.
//
// A thin adapter: every delivery is forwarded to the wrapped
// SimNetwork unchanged, so message counts, byte totals, the latency
// model, and loss injection are bit-for-bit what the simulator always
// produced. Request/response calls dispatch to per-address handlers
// registered in-process, charging the request and response legs as two
// simulated messages (the same two-leg accounting the system layer
// uses for its own exchanges).
#ifndef P2PRANGE_RPC_SIM_TRANSPORT_H_
#define P2PRANGE_RPC_SIM_TRANSPORT_H_

#include <functional>
#include <string>
#include <unordered_map>

#include "net/sim_network.h"
#include "rpc/transport.h"

namespace p2prange {
namespace rpc {

class SimTransport final : public Transport {
 public:
  /// Same contract as SimNetwork's constructor: aborts (CHECK) on an
  /// invalid latency model.
  explicit SimTransport(LatencyModel latency = {}, uint64_t seed = 42)
      : net_(latency, seed) {}

  /// \brief Serves Call()s addressed to `addr`. The handler returns
  /// the response body, or an error forwarded to the caller.
  using Handler =
      std::function<Result<std::string>(MsgType, std::string_view body)>;
  void RegisterHandler(const NetAddress& addr, Handler handler) {
    handlers_[addr] = std::move(handler);
  }

  // --- Transport ------------------------------------------------------

  void Register(const NetAddress& addr) override { net_.Register(addr); }
  Status SetAlive(const NetAddress& addr, bool alive) override {
    return net_.SetAlive(addr, alive);
  }
  bool IsRegistered(const NetAddress& addr) const override {
    return net_.IsRegistered(addr);
  }
  bool IsAlive(const NetAddress& addr) const override {
    return net_.IsAlive(addr);
  }
  size_t num_registered() const override { return net_.num_registered(); }

  Result<double> DeliverBytes(const NetAddress& from, const NetAddress& to,
                              uint64_t payload_bytes) override {
    return net_.DeliverBytes(from, to, payload_bytes);
  }

  Result<CallResult> Call(const NetAddress& from, const NetAddress& to,
                          MsgType type, std::string_view request,
                          const CallOptions& options) override;
  using Transport::Call;

  const NetworkStats& stats() const override { return net_.stats(); }
  void ResetStats() override { net_.ResetStats(); }
  const RpcStats& rpc_stats() const override { return rpc_; }

  /// The wrapped simulator, for harnesses that tune its latency model
  /// or inspect it directly.
  SimNetwork& sim() { return net_; }
  const SimNetwork& sim() const { return net_; }

 private:
  SimNetwork net_;
  RpcStats rpc_;
  std::unordered_map<NetAddress, Handler, NetAddressHash> handlers_;
};

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_SIM_TRANSPORT_H_
