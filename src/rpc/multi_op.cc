#include "rpc/multi_op.h"

#include "wire/serde.h"

namespace p2prange {
namespace rpc {

bool IsBatchableMsgType(MsgType t) {
  switch (t) {
    case MsgType::kPing:
    case MsgType::kStoreDescriptor:
    case MsgType::kProbeBucket:
    case MsgType::kFetchPartition:
      return true;
    default:
      return false;
  }
}

std::string EncodeMultiOpRequest(const MultiOpRequest& req) {
  wire::Encoder enc;
  enc.PutVarint(req.ops.size());
  for (const MultiOp& op : req.ops) {
    enc.PutU8(static_cast<uint8_t>(op.type));
    enc.PutString(op.body);
  }
  return enc.Take();
}

Result<MultiOpRequest> DecodeMultiOpRequest(std::string_view body) {
  wire::Decoder dec(body);
  // Each sub-op is at least a type byte plus a length varint.
  ASSIGN_OR_RETURN(const size_t n, dec.GuardedCount(2, kMaxMultiOps));
  if (n == 0) return Status::InvalidArgument("empty multi-op batch");
  MultiOpRequest req;
  req.ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(const uint8_t raw_type, dec.U8());
    if (!IsKnownMsgType(raw_type) ||
        !IsBatchableMsgType(static_cast<MsgType>(raw_type))) {
      return Status::InvalidArgument("non-batchable sub-op type " +
                                     std::to_string(raw_type));
    }
    MultiOp op;
    op.type = static_cast<MsgType>(raw_type);
    ASSIGN_OR_RETURN(op.body, dec.String());
    req.ops.push_back(std::move(op));
  }
  if (!dec.AtEnd()) return Status::InvalidArgument("trailing batch bytes");
  return req;
}

std::string EncodeMultiOpResponse(const MultiOpResponse& resp) {
  wire::Encoder enc;
  enc.PutVarint(resp.results.size());
  for (const MultiOpResult& r : resp.results) {
    enc.PutU8(static_cast<uint8_t>(r.status));
    enc.PutString(r.body);
  }
  return enc.Take();
}

Result<MultiOpResponse> DecodeMultiOpResponse(std::string_view body) {
  wire::Decoder dec(body);
  ASSIGN_OR_RETURN(const size_t n, dec.GuardedCount(2, kMaxMultiOps));
  MultiOpResponse resp;
  resp.results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(const uint8_t raw_status, dec.U8());
    if (raw_status > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
      return Status::InvalidArgument("unknown sub-op status " +
                                     std::to_string(raw_status));
    }
    MultiOpResult r;
    r.status = static_cast<StatusCode>(raw_status);
    ASSIGN_OR_RETURN(r.body, dec.String());
    resp.results.push_back(std::move(r));
  }
  if (!dec.AtEnd()) return Status::InvalidArgument("trailing batch bytes");
  return resp;
}

}  // namespace rpc
}  // namespace p2prange
