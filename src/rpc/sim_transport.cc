#include "rpc/sim_transport.h"

namespace p2prange {
namespace rpc {

Result<Transport::CallResult> SimTransport::Call(const NetAddress& from,
                                                 const NetAddress& to,
                                                 MsgType type,
                                                 std::string_view request,
                                                 const CallOptions& options) {
  ++rpc_.requests_sent;
  rpc_.bytes_out += request.size();
  // Request leg: the envelope's body rides a simulated message (the
  // SimNetwork adds its fixed control overhead, which stands in for
  // the frame + envelope headers).
  auto req = net_.DeliverBytes(from, to, request.size());
  if (!req.ok()) return req.status();

  auto handler = handlers_.find(to);
  if (handler == handlers_.end()) {
    return Status::NotFound("no handler registered at " + to.ToString());
  }
  ++rpc_.requests_served;
  auto response = handler->second(type, request);
  if (!response.ok()) return response.status();

  // Response leg.
  auto resp = net_.DeliverBytes(to, from, response->size());
  if (!resp.ok()) return resp.status();

  CallResult out;
  out.latency_ms = *req + *resp;
  if (options.deadline_ms > 0.0 && out.latency_ms > options.deadline_ms) {
    // The exchange took longer (in simulated time) than the caller was
    // willing to wait: the response is as good as lost.
    ++rpc_.timeouts;
    return Status::IOError("call to " + to.ToString() + " exceeded its " +
                           std::to_string(options.deadline_ms) +
                           "ms deadline");
  }
  ++rpc_.responses_received;
  rpc_.bytes_in += response->size();
  out.body = std::move(*response);
  return out;
}

}  // namespace rpc
}  // namespace p2prange
