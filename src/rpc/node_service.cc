#include "rpc/node_service.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/memory.h"

#include "rpc/membership.h"
#include "rpc/multi_op.h"
#include "wire/serde.h"

namespace p2prange {
namespace rpc {

namespace {

// Doubles cross the wire as their IEEE-754 bit pattern in a varint, so
// a probe's similarity survives the trip exactly (no text round-trip).
uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Status ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename " + tmp + " -> " + path + " failed");
  }
  return Status::OK();
}

}  // namespace

// --------------------------------------------------------------------------
// Protocol bodies
// --------------------------------------------------------------------------

std::string EncodeStoreDescriptorRequest(const StoreDescriptorRequest& req) {
  wire::Encoder enc;
  enc.PutVarint(req.bucket);
  wire::EncodePartitionDescriptor(req.descriptor, &enc);
  return enc.Take();
}

Result<StoreDescriptorRequest> DecodeStoreDescriptorRequest(
    std::string_view body) {
  wire::Decoder dec(body);
  StoreDescriptorRequest req;
  ASSIGN_OR_RETURN(uint64_t bucket, dec.Varint());
  if (bucket > UINT32_MAX) {
    return Status::InvalidArgument("bucket id out of range");
  }
  req.bucket = static_cast<chord::ChordId>(bucket);
  ASSIGN_OR_RETURN(req.descriptor, wire::DecodePartitionDescriptor(&dec));
  if (!dec.AtEnd()) return Status::InvalidArgument("trailing request bytes");
  return req;
}

std::string EncodeProbeBucketRequest(const ProbeBucketRequest& req) {
  wire::Encoder enc;
  enc.PutVarint(req.bucket);
  wire::EncodePartitionKey(req.query, &enc);
  enc.PutU8(static_cast<uint8_t>(req.criterion));
  return enc.Take();
}

Result<ProbeBucketRequest> DecodeProbeBucketRequest(std::string_view body) {
  wire::Decoder dec(body);
  ProbeBucketRequest req;
  ASSIGN_OR_RETURN(uint64_t bucket, dec.Varint());
  if (bucket > UINT32_MAX) {
    return Status::InvalidArgument("bucket id out of range");
  }
  req.bucket = static_cast<chord::ChordId>(bucket);
  ASSIGN_OR_RETURN(req.query, wire::DecodePartitionKey(&dec));
  ASSIGN_OR_RETURN(uint8_t crit, dec.U8());
  if (crit > static_cast<uint8_t>(MatchCriterion::kContainment)) {
    return Status::InvalidArgument("unknown match criterion " +
                                   std::to_string(crit));
  }
  req.criterion = static_cast<MatchCriterion>(crit);
  if (!dec.AtEnd()) return Status::InvalidArgument("trailing request bytes");
  return req;
}

std::string EncodeProbeBucketResponse(const std::optional<MatchCandidate>& c) {
  wire::Encoder enc;
  enc.PutU8(c.has_value() ? 1 : 0);
  if (c.has_value()) {
    wire::EncodePartitionDescriptor(c->descriptor, &enc);
    enc.PutVarint(DoubleBits(c->similarity));
    enc.PutU8(c->exact ? 1 : 0);
  }
  return enc.Take();
}

Result<std::optional<MatchCandidate>> DecodeProbeBucketResponse(
    std::string_view body) {
  wire::Decoder dec(body);
  ASSIGN_OR_RETURN(uint8_t found, dec.U8());
  if (found > 1) return Status::InvalidArgument("bad probe-found flag");
  if (found == 0) {
    if (!dec.AtEnd()) return Status::InvalidArgument("trailing response bytes");
    return std::optional<MatchCandidate>();
  }
  MatchCandidate c;
  ASSIGN_OR_RETURN(c.descriptor, wire::DecodePartitionDescriptor(&dec));
  ASSIGN_OR_RETURN(uint64_t bits, dec.Varint());
  c.similarity = BitsDouble(bits);
  ASSIGN_OR_RETURN(uint8_t exact, dec.U8());
  if (exact > 1) return Status::InvalidArgument("bad probe-exact flag");
  c.exact = exact == 1;
  if (!dec.AtEnd()) return Status::InvalidArgument("trailing response bytes");
  return std::optional<MatchCandidate>(std::move(c));
}

std::string EncodeStorePartitionRequest(const StorePartitionRequest& req) {
  wire::Encoder enc;
  wire::EncodePartitionKey(req.key, &enc);
  wire::EncodeRelation(req.tuples, &enc);
  return enc.Take();
}

Result<StorePartitionRequest> DecodeStorePartitionRequest(
    std::string_view body) {
  wire::Decoder dec(body);
  StorePartitionRequest req;
  ASSIGN_OR_RETURN(req.key, wire::DecodePartitionKey(&dec));
  ASSIGN_OR_RETURN(req.tuples, wire::DecodeRelation(&dec));
  if (!dec.AtEnd()) return Status::InvalidArgument("trailing request bytes");
  return req;
}

std::string EncodeFetchPartitionRequest(const PartitionKey& key) {
  wire::Encoder enc;
  wire::EncodePartitionKey(key, &enc);
  return enc.Take();
}

Result<PartitionKey> DecodeFetchPartitionRequest(std::string_view body) {
  wire::Decoder dec(body);
  ASSIGN_OR_RETURN(PartitionKey key, wire::DecodePartitionKey(&dec));
  if (!dec.AtEnd()) return Status::InvalidArgument("trailing request bytes");
  return key;
}

std::string EncodePullBucketsRequest(const PullBucketsRequest& req) {
  wire::Encoder enc;
  enc.PutVarint(req.lo);
  enc.PutVarint(req.hi);
  return enc.Take();
}

Result<PullBucketsRequest> DecodePullBucketsRequest(std::string_view body) {
  wire::Decoder dec(body);
  PullBucketsRequest req;
  ASSIGN_OR_RETURN(uint64_t lo, dec.Varint());
  ASSIGN_OR_RETURN(uint64_t hi, dec.Varint());
  if (lo > UINT32_MAX || hi > UINT32_MAX) {
    return Status::InvalidArgument("pull interval out of id space");
  }
  req.lo = static_cast<chord::ChordId>(lo);
  req.hi = static_cast<chord::ChordId>(hi);
  if (!dec.AtEnd()) return Status::InvalidArgument("trailing request bytes");
  return req;
}

std::string EncodeHandoffBatch(const HandoffBatch& batch) {
  wire::Encoder enc;
  enc.PutVarint(batch.entries.size());
  for (const auto& [bucket, descriptor] : batch.entries) {
    enc.PutVarint(bucket);
    wire::EncodePartitionDescriptor(descriptor, &enc);
  }
  return enc.Take();
}

Result<HandoffBatch> DecodeHandoffBatch(std::string_view body) {
  wire::Decoder dec(body);
  // A bucket varint plus the smallest possible descriptor is well over
  // two bytes; 2 is a safe floor for the pre-allocation guard.
  ASSIGN_OR_RETURN(const size_t n, dec.GuardedCount(2, kMaxHandoffEntries));
  HandoffBatch batch;
  batch.entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(uint64_t bucket, dec.Varint());
    if (bucket > UINT32_MAX) {
      return Status::InvalidArgument("bucket id out of range");
    }
    ASSIGN_OR_RETURN(PartitionDescriptor descriptor,
                     wire::DecodePartitionDescriptor(&dec));
    batch.entries.emplace_back(static_cast<chord::ChordId>(bucket),
                               std::move(descriptor));
  }
  if (!dec.AtEnd()) return Status::InvalidArgument("trailing batch bytes");
  return batch;
}

// --------------------------------------------------------------------------
// NodeService
// --------------------------------------------------------------------------

NodeService::NodeService(const NetAddress& self, NodeServiceOptions options)
    : self_(self),
      id_(RingView::IdOf(self)),
      options_(std::move(options)),
      store_(std::make_unique<store::DurableDescriptorStore>(
          options_.store_capacity, options_.durability)) {}

Result<std::unique_ptr<NodeService>> NodeService::Make(
    const NetAddress& self, NodeServiceOptions options) {
  std::unique_ptr<NodeService> service =
      WrapUnique(new NodeService(self, std::move(options)));
  if (!service->options_.wal_dir.empty()) {
    RETURN_NOT_OK(service->LoadDurable());
  }
  return service;
}

Status NodeService::LoadDurable() {
  // Exclusive hold for the whole recovery: it rewrites the WAL image,
  // replays it into the store, and re-flushes. Nothing else can run
  // yet (Make has not returned), but the mutation path holds the same
  // lock it always does — surfaced by the annotation pass, which
  // rejected the unlocked store access here.
  WriterMutexLock lock(&data_mu_);
  const std::string& dir = options_.wal_dir;
  std::string wal_image;
  if (ReadFile(dir + "/wal.bin", &wal_image).ok()) {
    store_->wal().mutable_image() = std::move(wal_image);
  }
  bool any_snapshot = false;
  for (size_t i = 0; i < store::SnapshotStore::kNumSlots; ++i) {
    std::string slot;
    if (ReadFile(dir + "/snap" + std::to_string(i) + ".bin", &slot).ok()) {
      store_->snapshots().mutable_slot(i) = std::move(slot);
      any_snapshot = true;
    }
  }
  if (!store_->wal().image().empty() || any_snapshot) {
    recovery_ = store_->Recover();
    // Recover() re-checkpoints; persist the cleaned-up images so the
    // next incarnation starts from them.
    RETURN_NOT_OK(SaveDurable());
  }
  return Status::OK();
}

Status NodeService::SaveDurable() const {
  if (options_.wal_dir.empty()) return Status::OK();
  const std::string& dir = options_.wal_dir;
  RETURN_NOT_OK(WriteFileAtomic(dir + "/wal.bin", store_->wal().image()));
  for (size_t i = 0; i < store::SnapshotStore::kNumSlots; ++i) {
    RETURN_NOT_OK(WriteFileAtomic(dir + "/snap" + std::to_string(i) + ".bin",
                                  store_->snapshots().slot(i)));
  }
  return Status::OK();
}

Result<std::string> NodeService::Handle(MsgType type, std::string_view body) {
  switch (type) {
    case MsgType::kPing:
      ++counters_.pings;
      return std::string(body);  // echo
    case MsgType::kStoreDescriptor:
      return HandleStoreDescriptor(body);
    case MsgType::kProbeBucket:
      return HandleProbeBucket(body);
    case MsgType::kStorePartition:
      return HandleStorePartition(body);
    case MsgType::kFetchPartition:
      return HandleFetchPartition(body);
    case MsgType::kMetrics:
      // The daemon wraps Handle() to merge transport stats in; served
      // bare, the node's own counters still tell most of the story.
      return MetricsJson(NetworkStats{}, RpcStats{});
    case MsgType::kJoin:
    case MsgType::kLeave:
    case MsgType::kNotify:
    case MsgType::kGetNeighbors:
    case MsgType::kGossip:
      return HandleMembership(type, body);
    case MsgType::kPullBuckets:
      return HandlePullBuckets(body);
    case MsgType::kHandoff:
      return HandleHandoff(body);
    case MsgType::kMultiOp:
      return HandleMultiOp(body);
  }
  ++counters_.bad_requests;
  return Status::InvalidArgument("unhandled message type");
}

Result<std::string> NodeService::HandleMembership(MsgType type,
                                                  std::string_view body) {
  if (membership_ == nullptr) {
    // A static deployment: the caller learns this ring does not speak
    // membership and falls back to its configured view.
    return Status::NotImplemented("membership not enabled on " +
                                  self_.ToString());
  }
  switch (type) {
    case MsgType::kJoin:
      return membership_->HandleJoin(body);
    case MsgType::kLeave:
      return membership_->HandleLeave(body);
    case MsgType::kNotify:
      return membership_->HandleNotify(body);
    case MsgType::kGetNeighbors:
      return membership_->HandleGetNeighbors(body);
    case MsgType::kGossip:
      return membership_->HandleGossip(body);
    default:
      ++counters_.bad_requests;
      return Status::InvalidArgument("not a membership message");
  }
}

void NodeService::PublishRedirectRing() {
  std::shared_ptr<const RingView> fresh;
  if (membership_ != nullptr && membership_->num_alive() >= 2) {
    auto ring = membership_->AliveRing();
    if (ring.ok()) {
      fresh = std::make_shared<const RingView>(std::move(*ring));
    }
  }
  {
    MutexLock lock(&ring_mu_);
    redirect_ring_ = std::move(fresh);
  }
  redirect_uses_snapshot_.store(true, std::memory_order_release);
}

std::optional<NetAddress> NodeService::RedirectFor(
    chord::ChordId bucket) const {
  std::shared_ptr<const RingView> snapshot;
  if (redirect_uses_snapshot_.load(std::memory_order_acquire)) {
    // Worker-pool mode: the poll thread published an immutable ring;
    // membership itself is off limits from here.
    MutexLock lock(&ring_mu_);
    snapshot = redirect_ring_;
    if (snapshot == nullptr) return std::nullopt;
  }
  std::vector<NetAddress> replicas;
  if (snapshot != nullptr) {
    replicas = snapshot->Replicas(bucket, options_.descriptor_replication);
  } else {
    if (membership_ == nullptr || membership_->num_alive() < 2) {
      return std::nullopt;
    }
    auto ring = membership_->AliveRing();
    if (!ring.ok()) return std::nullopt;
    replicas = ring->Replicas(bucket, options_.descriptor_replication);
  }
  for (const NetAddress& r : replicas) {
    if (r == self_) return std::nullopt;
  }
  return replicas.front();
}

Status NodeService::InsertDescriptor(chord::ChordId bucket,
                                     const PartitionDescriptor& descriptor) {
  WriterMutexLock lock(&data_mu_);
  store_->Insert(bucket, descriptor);
  ++counters_.descriptors_stored;
  return SaveDurable();
}

Result<std::string> NodeService::HandlePullBuckets(std::string_view body) {
  auto req = DecodePullBucketsRequest(body);
  if (!req.ok()) {
    ++counters_.bad_requests;
    return req.status();
  }
  HandoffBatch batch;
  {
    ReaderMutexLock lock(&data_mu_);
    for (auto& [bucket, descriptor] : store_->store().EntriesOldestFirst()) {
      if (!chord::InOpenClosed(req->lo, req->hi, bucket)) continue;
      if (batch.entries.size() >= kMaxHandoffEntries) break;
      batch.entries.emplace_back(bucket, std::move(descriptor));
    }
  }
  ++counters_.buckets_pulled;
  return EncodeHandoffBatch(batch);
}

Result<size_t> NodeService::ApplyHandoff(const HandoffBatch& batch) {
  {
    WriterMutexLock lock(&data_mu_);
    for (const auto& [bucket, descriptor] : batch.entries) {
      store_->Insert(bucket, descriptor);
      ++counters_.descriptors_stored;
    }
    // One durable flush for the whole batch, not one per descriptor —
    // handoff happens under churn, when write amplification hurts most.
    RETURN_NOT_OK(SaveDurable());
  }
  ++counters_.handoffs_received;
  counters_.handoff_descriptors += batch.entries.size();
  return batch.entries.size();
}

Result<std::string> NodeService::HandleHandoff(std::string_view body) {
  auto batch = DecodeHandoffBatch(body);
  if (!batch.ok()) {
    ++counters_.bad_requests;
    return batch.status();
  }
  ASSIGN_OR_RETURN(const size_t applied, ApplyHandoff(*batch));
  wire::Encoder enc;
  enc.PutVarint(applied);
  return enc.Take();
}

Result<std::string> NodeService::HandleStoreDescriptor(std::string_view body) {
  auto req = DecodeStoreDescriptorRequest(body);
  if (!req.ok()) {
    ++counters_.bad_requests;
    return req.status();
  }
  // A store reaching a non-replica means the publisher's view is
  // stale (a member joined between its refresh and this call): teach
  // it the real owner instead of accepting a misplaced descriptor.
  if (const auto owner = RedirectFor(req->bucket)) {
    ++counters_.redirects_sent;
    return Status::OutOfRange(WrongOwnerMessage(*owner));
  }
  RETURN_NOT_OK(InsertDescriptor(req->bucket, req->descriptor));
  wire::Encoder enc;
  {
    ReaderMutexLock lock(&data_mu_);
    enc.PutVarint(store_->store().num_descriptors());
  }
  return enc.Take();
}

Result<std::string> NodeService::HandleProbeBucket(std::string_view body) {
  auto req = DecodeProbeBucketRequest(body);
  if (!req.ok()) {
    ++counters_.bad_requests;
    return req.status();
  }
  ++counters_.probes_served;
  std::optional<MatchCandidate> best;
  {
    ReaderMutexLock lock(&data_mu_);
    best = store_->store().BestMatch(req->bucket, req->query, req->criterion);
  }
  // Descriptors are immutable, so anything we still hold is a correct
  // answer even if ownership moved; redirect only an *empty* miss on a
  // bucket that is no longer ours — the data, if any, lives at the
  // new owner.
  if (!best.has_value()) {
    if (const auto owner = RedirectFor(req->bucket)) {
      ++counters_.redirects_sent;
      return Status::OutOfRange(WrongOwnerMessage(*owner));
    }
  }
  if (best.has_value()) ++counters_.probe_hits;
  return EncodeProbeBucketResponse(best);
}

Result<std::string> NodeService::HandleStorePartition(std::string_view body) {
  auto req = DecodeStorePartitionRequest(body);
  if (!req.ok()) {
    ++counters_.bad_requests;
    return req.status();
  }
  ++counters_.partitions_stored;
  {
    WriterMutexLock lock(&data_mu_);
    partitions_[req->key] = std::move(req->tuples);
  }
  return std::string();
}

Result<std::string> NodeService::HandleFetchPartition(std::string_view body) {
  auto key = DecodeFetchPartitionRequest(body);
  if (!key.ok()) {
    ++counters_.bad_requests;
    return key.status();
  }
  ReaderMutexLock lock(&data_mu_);
  auto it = partitions_.find(*key);
  if (it == partitions_.end()) {
    ++counters_.partitions_fetched;  // the miss still served a request
    return Status::NotFound("no partition " + key->ToString() + " at " +
                            self_.ToString());
  }
  ++counters_.partitions_fetched;
  wire::Encoder enc;
  wire::EncodeRelation(it->second, &enc);
  return enc.Take();
}

Result<std::string> NodeService::HandleMultiOp(std::string_view body) {
  auto req = DecodeMultiOpRequest(body);
  if (!req.ok()) {
    ++counters_.bad_requests;
    return req.status();
  }
  // One slot per sub-op, in order; a failing sub-op (bad body,
  // wrong-owner redirect, miss) fails its own slot and the rest of the
  // batch still serves. The decoder already refused non-batchable
  // types, so each dispatch below stays on the data path.
  MultiOpResponse resp;
  resp.results.reserve(req->ops.size());
  for (const MultiOp& op : req->ops) {
    auto r = Handle(op.type, op.body);
    MultiOpResult slot;
    if (r.ok()) {
      slot.body = std::move(*r);
    } else {
      slot.status = r.status().code();
      slot.body = r.status().message();
    }
    resp.results.push_back(std::move(slot));
  }
  ++counters_.multi_ops;
  return EncodeMultiOpResponse(resp);
}

std::string NodeService::MetricsJson(const NetworkStats& net,
                                     const RpcStats& rpc,
                                     std::string_view extra) const {
  std::string out = "{\"node\":{";
  out += "\"addr\":\"" + self_.ToString() + "\"";
  out += ",\"id\":" + std::to_string(id_);
  out += ",\"pings\":" + std::to_string(counters_.pings);
  out += ",\"descriptors_stored\":" +
         std::to_string(counters_.descriptors_stored);
  out += ",\"probes_served\":" + std::to_string(counters_.probes_served);
  out += ",\"probe_hits\":" + std::to_string(counters_.probe_hits);
  out += ",\"partitions_stored\":" +
         std::to_string(counters_.partitions_stored);
  out += ",\"partitions_fetched\":" +
         std::to_string(counters_.partitions_fetched);
  out += ",\"bad_requests\":" + std::to_string(counters_.bad_requests);
  out += ",\"handoffs_received\":" +
         std::to_string(counters_.handoffs_received);
  out += ",\"handoff_descriptors\":" +
         std::to_string(counters_.handoff_descriptors);
  out += ",\"buckets_pulled\":" + std::to_string(counters_.buckets_pulled);
  out += ",\"redirects_sent\":" + std::to_string(counters_.redirects_sent);
  out += ",\"multi_ops\":" + std::to_string(counters_.multi_ops);
  {
    ReaderMutexLock lock(&data_mu_);
    out += ",\"store_descriptors\":" +
           std::to_string(store_->store().num_descriptors());
    out +=
        ",\"store_buckets\":" + std::to_string(store_->store().num_buckets());
    out += ",\"wal_bytes\":" + std::to_string(store_->wal().image().size());
    out += ",\"checkpoints\":" + std::to_string(store_->checkpoints());
  }
  out += ",\"recovered_descriptors\":" +
         std::to_string(recovery_.descriptors_restored);
  out += ",\"recovery_wal_replayed\":" +
         std::to_string(recovery_.wal_records_replayed);
  out += "},\"network\":" + NetworkStatsToJson(net);
  out += ",\"rpc\":" + rpc.ToJson();
  out += extra;
  out += "}";
  return out;
}

}  // namespace rpc
}  // namespace p2prange
