#include "rpc/node_service.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/memory.h"

#include "hash/sha1.h"
#include "wire/serde.h"

namespace p2prange {
namespace rpc {

namespace {

// Doubles cross the wire as their IEEE-754 bit pattern in a varint, so
// a probe's similarity survives the trip exactly (no text round-trip).
uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Status ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename " + tmp + " -> " + path + " failed");
  }
  return Status::OK();
}

}  // namespace

// --------------------------------------------------------------------------
// RingView
// --------------------------------------------------------------------------

chord::ChordId RingView::IdOf(const NetAddress& addr) {
  return Sha1::Hash32(addr.ToString());
}

Result<RingView> RingView::Make(const std::vector<NetAddress>& members) {
  if (members.empty()) {
    return Status::InvalidArgument("a ring view needs at least one member");
  }
  std::vector<std::pair<chord::ChordId, NetAddress>> sorted;
  sorted.reserve(members.size());
  for (const NetAddress& m : members) {
    sorted.emplace_back(IdOf(m), m);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].first == sorted[i - 1].first) {
      return Status::InvalidArgument(
          "members " + sorted[i - 1].second.ToString() + " and " +
          sorted[i].second.ToString() + " collide on identifier " +
          std::to_string(sorted[i].first));
    }
  }
  return RingView(std::move(sorted));
}

const NetAddress& RingView::Owner(chord::ChordId id) const {
  // Successor: first member id >= target, wrapping to the smallest.
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), id,
      [](const auto& m, chord::ChordId target) { return m.first < target; });
  if (it == sorted_.end()) it = sorted_.begin();
  return it->second;
}

std::vector<NetAddress> RingView::Replicas(chord::ChordId id, int count) const {
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), id,
      [](const auto& m, chord::ChordId target) { return m.first < target; });
  if (it == sorted_.end()) it = sorted_.begin();
  std::vector<NetAddress> out;
  const size_t want =
      std::min(static_cast<size_t>(std::max(count, 1)), sorted_.size());
  size_t pos = static_cast<size_t>(it - sorted_.begin());
  for (size_t i = 0; i < want; ++i) {
    out.push_back(sorted_[(pos + i) % sorted_.size()].second);
  }
  return out;
}

// --------------------------------------------------------------------------
// Protocol bodies
// --------------------------------------------------------------------------

std::string EncodeStoreDescriptorRequest(const StoreDescriptorRequest& req) {
  wire::Encoder enc;
  enc.PutVarint(req.bucket);
  wire::EncodePartitionDescriptor(req.descriptor, &enc);
  return enc.Take();
}

Result<StoreDescriptorRequest> DecodeStoreDescriptorRequest(
    std::string_view body) {
  wire::Decoder dec(body);
  StoreDescriptorRequest req;
  ASSIGN_OR_RETURN(uint64_t bucket, dec.Varint());
  if (bucket > UINT32_MAX) {
    return Status::InvalidArgument("bucket id out of range");
  }
  req.bucket = static_cast<chord::ChordId>(bucket);
  ASSIGN_OR_RETURN(req.descriptor, wire::DecodePartitionDescriptor(&dec));
  if (!dec.AtEnd()) return Status::InvalidArgument("trailing request bytes");
  return req;
}

std::string EncodeProbeBucketRequest(const ProbeBucketRequest& req) {
  wire::Encoder enc;
  enc.PutVarint(req.bucket);
  wire::EncodePartitionKey(req.query, &enc);
  enc.PutU8(static_cast<uint8_t>(req.criterion));
  return enc.Take();
}

Result<ProbeBucketRequest> DecodeProbeBucketRequest(std::string_view body) {
  wire::Decoder dec(body);
  ProbeBucketRequest req;
  ASSIGN_OR_RETURN(uint64_t bucket, dec.Varint());
  if (bucket > UINT32_MAX) {
    return Status::InvalidArgument("bucket id out of range");
  }
  req.bucket = static_cast<chord::ChordId>(bucket);
  ASSIGN_OR_RETURN(req.query, wire::DecodePartitionKey(&dec));
  ASSIGN_OR_RETURN(uint8_t crit, dec.U8());
  if (crit > static_cast<uint8_t>(MatchCriterion::kContainment)) {
    return Status::InvalidArgument("unknown match criterion " +
                                   std::to_string(crit));
  }
  req.criterion = static_cast<MatchCriterion>(crit);
  if (!dec.AtEnd()) return Status::InvalidArgument("trailing request bytes");
  return req;
}

std::string EncodeProbeBucketResponse(const std::optional<MatchCandidate>& c) {
  wire::Encoder enc;
  enc.PutU8(c.has_value() ? 1 : 0);
  if (c.has_value()) {
    wire::EncodePartitionDescriptor(c->descriptor, &enc);
    enc.PutVarint(DoubleBits(c->similarity));
    enc.PutU8(c->exact ? 1 : 0);
  }
  return enc.Take();
}

Result<std::optional<MatchCandidate>> DecodeProbeBucketResponse(
    std::string_view body) {
  wire::Decoder dec(body);
  ASSIGN_OR_RETURN(uint8_t found, dec.U8());
  if (found > 1) return Status::InvalidArgument("bad probe-found flag");
  if (found == 0) {
    if (!dec.AtEnd()) return Status::InvalidArgument("trailing response bytes");
    return std::optional<MatchCandidate>();
  }
  MatchCandidate c;
  ASSIGN_OR_RETURN(c.descriptor, wire::DecodePartitionDescriptor(&dec));
  ASSIGN_OR_RETURN(uint64_t bits, dec.Varint());
  c.similarity = BitsDouble(bits);
  ASSIGN_OR_RETURN(uint8_t exact, dec.U8());
  if (exact > 1) return Status::InvalidArgument("bad probe-exact flag");
  c.exact = exact == 1;
  if (!dec.AtEnd()) return Status::InvalidArgument("trailing response bytes");
  return std::optional<MatchCandidate>(std::move(c));
}

std::string EncodeStorePartitionRequest(const StorePartitionRequest& req) {
  wire::Encoder enc;
  wire::EncodePartitionKey(req.key, &enc);
  wire::EncodeRelation(req.tuples, &enc);
  return enc.Take();
}

Result<StorePartitionRequest> DecodeStorePartitionRequest(
    std::string_view body) {
  wire::Decoder dec(body);
  StorePartitionRequest req;
  ASSIGN_OR_RETURN(req.key, wire::DecodePartitionKey(&dec));
  ASSIGN_OR_RETURN(req.tuples, wire::DecodeRelation(&dec));
  if (!dec.AtEnd()) return Status::InvalidArgument("trailing request bytes");
  return req;
}

std::string EncodeFetchPartitionRequest(const PartitionKey& key) {
  wire::Encoder enc;
  wire::EncodePartitionKey(key, &enc);
  return enc.Take();
}

Result<PartitionKey> DecodeFetchPartitionRequest(std::string_view body) {
  wire::Decoder dec(body);
  ASSIGN_OR_RETURN(PartitionKey key, wire::DecodePartitionKey(&dec));
  if (!dec.AtEnd()) return Status::InvalidArgument("trailing request bytes");
  return key;
}

// --------------------------------------------------------------------------
// NodeService
// --------------------------------------------------------------------------

NodeService::NodeService(const NetAddress& self, NodeServiceOptions options)
    : self_(self),
      id_(RingView::IdOf(self)),
      options_(std::move(options)),
      store_(std::make_unique<store::DurableDescriptorStore>(
          options_.store_capacity, options_.durability)) {}

Result<std::unique_ptr<NodeService>> NodeService::Make(
    const NetAddress& self, NodeServiceOptions options) {
  std::unique_ptr<NodeService> service =
      WrapUnique(new NodeService(self, std::move(options)));
  if (!service->options_.wal_dir.empty()) {
    RETURN_NOT_OK(service->LoadDurable());
  }
  return service;
}

Status NodeService::LoadDurable() {
  const std::string& dir = options_.wal_dir;
  std::string wal_image;
  if (ReadFile(dir + "/wal.bin", &wal_image).ok()) {
    store_->wal().mutable_image() = std::move(wal_image);
  }
  bool any_snapshot = false;
  for (size_t i = 0; i < store::SnapshotStore::kNumSlots; ++i) {
    std::string slot;
    if (ReadFile(dir + "/snap" + std::to_string(i) + ".bin", &slot).ok()) {
      store_->snapshots().mutable_slot(i) = std::move(slot);
      any_snapshot = true;
    }
  }
  if (!store_->wal().image().empty() || any_snapshot) {
    recovery_ = store_->Recover();
    // Recover() re-checkpoints; persist the cleaned-up images so the
    // next incarnation starts from them.
    RETURN_NOT_OK(SaveDurable());
  }
  return Status::OK();
}

Status NodeService::SaveDurable() const {
  if (options_.wal_dir.empty()) return Status::OK();
  const std::string& dir = options_.wal_dir;
  RETURN_NOT_OK(WriteFileAtomic(dir + "/wal.bin", store_->wal().image()));
  for (size_t i = 0; i < store::SnapshotStore::kNumSlots; ++i) {
    RETURN_NOT_OK(WriteFileAtomic(dir + "/snap" + std::to_string(i) + ".bin",
                                  store_->snapshots().slot(i)));
  }
  return Status::OK();
}

Result<std::string> NodeService::Handle(MsgType type, std::string_view body) {
  switch (type) {
    case MsgType::kPing:
      ++counters_.pings;
      return std::string(body);  // echo
    case MsgType::kStoreDescriptor:
      return HandleStoreDescriptor(body);
    case MsgType::kProbeBucket:
      return HandleProbeBucket(body);
    case MsgType::kStorePartition:
      return HandleStorePartition(body);
    case MsgType::kFetchPartition:
      return HandleFetchPartition(body);
    case MsgType::kMetrics:
      // The daemon wraps Handle() to merge transport stats in; served
      // bare, the node's own counters still tell most of the story.
      return MetricsJson(NetworkStats{}, RpcStats{});
  }
  ++counters_.bad_requests;
  return Status::InvalidArgument("unhandled message type");
}

Result<std::string> NodeService::HandleStoreDescriptor(std::string_view body) {
  auto req = DecodeStoreDescriptorRequest(body);
  if (!req.ok()) {
    ++counters_.bad_requests;
    return req.status();
  }
  store_->Insert(req->bucket, req->descriptor);
  ++counters_.descriptors_stored;
  RETURN_NOT_OK(SaveDurable());
  wire::Encoder enc;
  enc.PutVarint(store_->store().num_descriptors());
  return enc.Take();
}

Result<std::string> NodeService::HandleProbeBucket(std::string_view body) {
  auto req = DecodeProbeBucketRequest(body);
  if (!req.ok()) {
    ++counters_.bad_requests;
    return req.status();
  }
  ++counters_.probes_served;
  const std::optional<MatchCandidate> best =
      store_->store().BestMatch(req->bucket, req->query, req->criterion);
  if (best.has_value()) ++counters_.probe_hits;
  return EncodeProbeBucketResponse(best);
}

Result<std::string> NodeService::HandleStorePartition(std::string_view body) {
  auto req = DecodeStorePartitionRequest(body);
  if (!req.ok()) {
    ++counters_.bad_requests;
    return req.status();
  }
  ++counters_.partitions_stored;
  partitions_[req->key] = std::move(req->tuples);
  return std::string();
}

Result<std::string> NodeService::HandleFetchPartition(std::string_view body) {
  auto key = DecodeFetchPartitionRequest(body);
  if (!key.ok()) {
    ++counters_.bad_requests;
    return key.status();
  }
  auto it = partitions_.find(*key);
  if (it == partitions_.end()) {
    ++counters_.partitions_fetched;  // the miss still served a request
    return Status::NotFound("no partition " + key->ToString() + " at " +
                            self_.ToString());
  }
  ++counters_.partitions_fetched;
  wire::Encoder enc;
  wire::EncodeRelation(it->second, &enc);
  return enc.Take();
}

std::string NodeService::MetricsJson(const NetworkStats& net,
                                     const RpcStats& rpc) const {
  std::string out = "{\"node\":{";
  out += "\"addr\":\"" + self_.ToString() + "\"";
  out += ",\"id\":" + std::to_string(id_);
  out += ",\"pings\":" + std::to_string(counters_.pings);
  out += ",\"descriptors_stored\":" +
         std::to_string(counters_.descriptors_stored);
  out += ",\"probes_served\":" + std::to_string(counters_.probes_served);
  out += ",\"probe_hits\":" + std::to_string(counters_.probe_hits);
  out += ",\"partitions_stored\":" +
         std::to_string(counters_.partitions_stored);
  out += ",\"partitions_fetched\":" +
         std::to_string(counters_.partitions_fetched);
  out += ",\"bad_requests\":" + std::to_string(counters_.bad_requests);
  out += ",\"store_descriptors\":" +
         std::to_string(store_->store().num_descriptors());
  out += ",\"store_buckets\":" + std::to_string(store_->store().num_buckets());
  out += ",\"wal_bytes\":" + std::to_string(store_->wal().image().size());
  out += ",\"checkpoints\":" + std::to_string(store_->checkpoints());
  out += ",\"recovered_descriptors\":" +
         std::to_string(recovery_.descriptors_restored);
  out += ",\"recovery_wal_replayed\":" +
         std::to_string(recovery_.wal_records_replayed);
  out += "},\"network\":" + NetworkStatsToJson(net);
  out += ",\"rpc\":" + rpc.ToJson();
  out += "}";
  return out;
}

}  // namespace rpc
}  // namespace p2prange
