#include "rpc/rereplicate.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

namespace p2prange {
namespace rpc {

namespace {

bool Contains(const std::vector<NetAddress>& v, const NetAddress& a) {
  return std::find(v.begin(), v.end(), a) != v.end();
}

}  // namespace

std::string RereplicateCounters::ToJson() const {
  std::string out = "{";
  out += "\"sweeps\":" + std::to_string(sweeps);
  out += ",\"jobs_planned\":" + std::to_string(jobs_planned);
  out += ",\"batches_sent\":" + std::to_string(batches_sent);
  out += ",\"descriptors_pushed\":" + std::to_string(descriptors_pushed);
  out += ",\"push_failures\":" + std::to_string(push_failures);
  out += ",\"jobs_dropped\":" + std::to_string(jobs_dropped);
  out += ",\"descriptors_pulled\":" + std::to_string(descriptors_pulled);
  out += "}";
  return out;
}

Result<Rereplicator> Rereplicator::Make(NodeService* service,
                                        LiveMembership* membership,
                                        TcpTransport* transport,
                                        RereplicateConfig config) {
  RETURN_NOT_OK(config.Validate());
  if (service == nullptr || membership == nullptr || transport == nullptr) {
    return Status::InvalidArgument(
        "re-replication needs a service, membership, and transport");
  }
  return Rereplicator(service, membership, transport, config);
}

void Rereplicator::PlanSweep(const ViewChange& change) {
  ++counters_.sweeps;
  // The membership table already reflects the change; reconstruct the
  // pre-change alive set by toggling the changed address.
  std::vector<NetAddress> now = membership_->AliveAddresses();
  std::vector<NetAddress> before = now;
  if (change.is_alive) {
    std::erase(before, change.addr);
  } else if (!Contains(before, change.addr)) {
    before.push_back(change.addr);
  }
  if (before.empty()) return;
  const auto old_ring = RingView::Make(before);
  const auto new_ring = RingView::Make(now);
  if (!old_ring.ok() || !new_ring.ok()) return;

  const NetAddress self = membership_->self();
  std::unordered_map<NetAddress, HandoffBatch, NetAddressHash> per_dest;
  for (const auto& [bucket, descriptor] : service_->SnapshotEntries()) {
    const auto old_reps = old_ring->Replicas(bucket, config_.replication);
    const auto new_reps = new_ring->Replicas(bucket, config_.replication);
    // Only the bucket's previous or current replicas push it; a node
    // merely caching a stale copy stays out of the repair traffic.
    if (!Contains(old_reps, self) && !Contains(new_reps, self)) continue;
    for (const NetAddress& dest : new_reps) {
      if (dest == self || Contains(old_reps, dest)) continue;
      per_dest[dest].entries.emplace_back(bucket, descriptor);
    }
  }

  for (auto& [dest, batch] : per_dest) {
    for (size_t off = 0; off < batch.entries.size();
         off += config_.batch_entries) {
      Job job;
      job.to = dest;
      const size_t end =
          std::min(off + config_.batch_entries, batch.entries.size());
      job.batch.entries.assign(batch.entries.begin() + static_cast<long>(off),
                               batch.entries.begin() + static_cast<long>(end));
      jobs_.push_back(std::move(job));
      ++counters_.jobs_planned;
    }
  }
}

Status Rereplicator::SendJob(Job& job, double deadline_ms) {
  Transport::CallOptions call_options;
  call_options.deadline_ms = deadline_ms;
  ASSIGN_OR_RETURN(Transport::CallResult result,
                   transport_->Call(NetAddress{}, job.to, MsgType::kHandoff,
                                    EncodeHandoffBatch(job.batch),
                                    call_options));
  (void)result;
  ++counters_.batches_sent;
  counters_.descriptors_pushed += job.batch.entries.size();
  return Status::OK();
}

void Rereplicator::Tick() {
  for (const ViewChange& change : membership_->TakeChanges()) {
    PlanSweep(change);
  }
  if (jobs_.empty()) return;
  // One bounded push per tick keeps the event loop responsive; the
  // queue drains across iterations.
  Job job = std::move(jobs_.front());
  jobs_.pop_front();
  if (!Contains(membership_->AliveAddresses(), job.to)) {
    // The destination fell out of the view while queued; a fresh
    // sweep for its departure is already planned or coming.
    ++counters_.jobs_dropped;
    return;
  }
  const Status sent = SendJob(job, config_.call_deadline_ms);
  if (sent.ok()) return;
  ++counters_.push_failures;
  if (++job.attempts < config_.max_attempts) {
    jobs_.push_back(std::move(job));
  } else {
    ++counters_.jobs_dropped;
  }
}

Status Rereplicator::PullPartition() {
  const auto succ = membership_->Successor();
  if (!succ.has_value()) return Status::OK();  // alone: nothing to pull
  const auto pred = membership_->Predecessor();
  PullBucketsRequest req;
  req.hi = membership_->self_id();
  // (predecessor, self]: the arc this node now owns. Replica copies of
  // preceding arcs arrive via the existing members' push sweeps.
  req.lo = pred.has_value() ? RingView::IdOf(*pred) : req.hi;
  Transport::CallOptions call_options;
  call_options.deadline_ms = config_.call_deadline_ms;
  ASSIGN_OR_RETURN(Transport::CallResult result,
                   transport_->Call(NetAddress{}, *succ, MsgType::kPullBuckets,
                                    EncodePullBucketsRequest(req),
                                    call_options));
  ASSIGN_OR_RETURN(HandoffBatch batch, DecodeHandoffBatch(result.body));
  ASSIGN_OR_RETURN(const size_t applied, service_->ApplyHandoff(batch));
  counters_.descriptors_pulled += applied;
  return Status::OK();
}

Status Rereplicator::HandoffAll() {
  const auto succ = membership_->Successor();
  if (!succ.has_value()) return Status::OK();  // alone: nowhere to hand off
  const auto entries = service_->SnapshotEntries();
  const auto started = std::chrono::steady_clock::now();
  Status last = Status::OK();
  for (size_t off = 0; off < entries.size(); off += config_.batch_entries) {
    // Shrink each call's deadline to the remaining wall-clock budget;
    // once the budget is gone the drain stops. Everything unsent is
    // still in the WAL, and the survivors re-replicate the arcs once
    // the failure detector notices the departure.
    double call_deadline = config_.call_deadline_ms;
    if (config_.handoff_deadline_ms > 0.0) {
      const double elapsed =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - started)
              .count();
      const double remaining = config_.handoff_deadline_ms - elapsed;
      if (remaining <= 0.0) {
        return Status::IOError("handoff drain ran out of its " +
                               std::to_string(config_.handoff_deadline_ms) +
                               "ms budget");
      }
      call_deadline = std::min(call_deadline, remaining);
    }
    Job job;
    job.to = *succ;
    const size_t end = std::min(off + config_.batch_entries, entries.size());
    job.batch.entries.assign(entries.begin() + static_cast<long>(off),
                             entries.begin() + static_cast<long>(end));
    const Status sent = SendJob(job, call_deadline);
    if (!sent.ok()) {
      ++counters_.push_failures;
      // An unreachable successor fails every later batch the same way;
      // abort the drain rather than burning the budget batch by batch.
      if (sent.IsUnavailable()) return sent;
      last = sent;
    }
  }
  return last;
}

}  // namespace rpc
}  // namespace p2prange
