#include "rpc/ring_view.h"

#include <algorithm>
#include <string>

#include "hash/sha1.h"

namespace p2prange {
namespace rpc {

chord::ChordId RingView::IdOf(const NetAddress& addr) {
  return Sha1::Hash32(addr.ToString());
}

Result<RingView> RingView::Make(const std::vector<NetAddress>& members) {
  if (members.empty()) {
    return Status::InvalidArgument("a ring view needs at least one member");
  }
  std::vector<std::pair<chord::ChordId, NetAddress>> sorted;
  sorted.reserve(members.size());
  for (const NetAddress& m : members) {
    sorted.emplace_back(IdOf(m), m);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].first == sorted[i - 1].first) {
      return Status::InvalidArgument(
          "members " + sorted[i - 1].second.ToString() + " and " +
          sorted[i].second.ToString() + " collide on identifier " +
          std::to_string(sorted[i].first));
    }
  }
  return RingView(std::move(sorted));
}

const NetAddress& RingView::Owner(chord::ChordId id) const {
  // Successor: first member id >= target, wrapping to the smallest.
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), id,
      [](const auto& m, chord::ChordId target) { return m.first < target; });
  if (it == sorted_.end()) it = sorted_.begin();
  return it->second;
}

std::vector<NetAddress> RingView::Replicas(chord::ChordId id, int count) const {
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), id,
      [](const auto& m, chord::ChordId target) { return m.first < target; });
  if (it == sorted_.end()) it = sorted_.begin();
  std::vector<NetAddress> out;
  const size_t want =
      std::min(static_cast<size_t>(std::max(count, 1)), sorted_.size());
  size_t pos = static_cast<size_t>(it - sorted_.begin());
  for (size_t i = 0; i < want; ++i) {
    out.push_back(sorted_[(pos + i) % sorted_.size()].second);
  }
  return out;
}

const NetAddress& RingView::SuccessorOf(chord::ChordId id) const {
  // Strictly greater, wrapping: upper_bound instead of Owner's
  // lower_bound, so a member's own id maps to the *next* member.
  auto it = std::upper_bound(
      sorted_.begin(), sorted_.end(), id,
      [](chord::ChordId target, const auto& m) { return target < m.first; });
  if (it == sorted_.end()) it = sorted_.begin();
  return it->second;
}

const NetAddress& RingView::PredecessorOf(chord::ChordId id) const {
  // Strictly smaller, wrapping to the largest.
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), id,
      [](const auto& m, chord::ChordId target) { return m.first < target; });
  if (it == sorted_.begin()) it = sorted_.end();
  return (it - 1)->second;
}

bool RingView::Contains(const NetAddress& addr) const {
  const chord::ChordId id = IdOf(addr);
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), id,
      [](const auto& m, chord::ChordId target) { return m.first < target; });
  return it != sorted_.end() && it->first == id && it->second == addr;
}

}  // namespace rpc
}  // namespace p2prange
