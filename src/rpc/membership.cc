#include "rpc/membership.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "rpc/tcp.h"

namespace p2prange {
namespace rpc {

namespace {

constexpr std::string_view kWrongOwnerPrefix = "wrong_owner ";

/// Minimum encoded size of a MemberEntry: one-byte host varint,
/// one-byte port varint, one-byte incarnation varint, one status byte.
constexpr size_t kMinEntryBytes = 4;

bool StatusTrumps(MemberStatus a, MemberStatus b) {
  // More terminal wins a same-incarnation merge.
  return static_cast<uint8_t>(a) > static_cast<uint8_t>(b);
}

bool IsAliveStatus(MemberStatus s) {
  return s == MemberStatus::kAlive || s == MemberStatus::kSuspect;
}

}  // namespace

const char* MemberStatusName(MemberStatus s) {
  switch (s) {
    case MemberStatus::kAlive:
      return "alive";
    case MemberStatus::kSuspect:
      return "suspect";
    case MemberStatus::kDead:
      return "dead";
    case MemberStatus::kLeft:
      return "left";
  }
  return "unknown";
}

// --------------------------------------------------------------------------
// Wire form
// --------------------------------------------------------------------------

void EncodeMemberEntry(const MemberEntry& e, wire::Encoder* enc) {
  wire::EncodeNetAddress(e.addr, enc);
  enc->PutVarint(e.incarnation);
  enc->PutU8(static_cast<uint8_t>(e.status));
}

Result<MemberEntry> DecodeMemberEntry(wire::Decoder* dec) {
  MemberEntry e;
  ASSIGN_OR_RETURN(e.addr, wire::DecodeNetAddress(dec));
  ASSIGN_OR_RETURN(e.incarnation, dec->Varint());
  ASSIGN_OR_RETURN(const uint8_t raw_status, dec->U8());
  if (raw_status > static_cast<uint8_t>(MemberStatus::kLeft)) {
    return Status::InvalidArgument("unknown member status " +
                                   std::to_string(raw_status));
  }
  e.status = static_cast<MemberStatus>(raw_status);
  return e;
}

std::string EncodeViewMessage(const std::vector<MemberEntry>& entries) {
  wire::Encoder enc;
  enc.PutVarint(entries.size());
  for (const MemberEntry& e : entries) EncodeMemberEntry(e, &enc);
  return enc.Take();
}

Result<std::vector<MemberEntry>> DecodeViewMessage(std::string_view body) {
  wire::Decoder dec(body);
  ASSIGN_OR_RETURN(const size_t n,
                   dec.GuardedCount(kMinEntryBytes, kMaxViewEntries));
  std::vector<MemberEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(MemberEntry e, DecodeMemberEntry(&dec));
    entries.push_back(e);
  }
  if (!dec.AtEnd()) return Status::InvalidArgument("trailing view bytes");
  return entries;
}

// --------------------------------------------------------------------------
// Wrong-owner redirects
// --------------------------------------------------------------------------

std::string WrongOwnerMessage(const NetAddress& owner) {
  return std::string(kWrongOwnerPrefix) + owner.ToString();
}

std::optional<NetAddress> ParseWrongOwner(std::string_view message) {
  if (message.substr(0, kWrongOwnerPrefix.size()) != kWrongOwnerPrefix) {
    return std::nullopt;
  }
  auto addr = ParseHostPort(message.substr(kWrongOwnerPrefix.size()));
  if (!addr.ok()) return std::nullopt;
  return *addr;
}

// --------------------------------------------------------------------------
// MembershipConfig / counters
// --------------------------------------------------------------------------

Status MembershipConfig::Validate() const {
  if (probe_period_ms <= 0.0 || gossip_period_ms <= 0.0 ||
      stabilize_period_ms <= 0.0 || probe_timeout_ms <= 0.0) {
    return Status::InvalidArgument("membership periods must be > 0");
  }
  if (dead_after_strikes < 1) {
    return Status::InvalidArgument("dead_after_strikes must be >= 1");
  }
  if (backoff_multiplier < 1.0) {
    return Status::InvalidArgument("backoff_multiplier must be >= 1");
  }
  if (backoff_max_ms < probe_period_ms) {
    return Status::InvalidArgument("backoff_max_ms must cover one period");
  }
  if (jitter < 0.0 || jitter >= 1.0) {
    return Status::InvalidArgument("jitter must be in [0, 1)");
  }
  if (tombstone_ttl_ms <= 0.0) {
    return Status::InvalidArgument("tombstone_ttl_ms must be > 0");
  }
  if (flap_penalty <= 0.0 || flap_halflife_ms <= 0.0) {
    return Status::InvalidArgument("flap penalty/halflife must be > 0");
  }
  if (flap_reuse <= 0.0 || flap_reuse > flap_suppress) {
    return Status::InvalidArgument("need 0 < flap_reuse <= flap_suppress");
  }
  if (strike_decay_ms < 0.0 || reconnect_period_ms < 0.0) {
    return Status::InvalidArgument(
        "strike_decay_ms/reconnect_period_ms must be >= 0");
  }
  return Status::OK();
}

std::string MembershipCounters::ToJson() const {
  std::string out = "{";
  out += "\"probes_sent\":" + std::to_string(probes_sent);
  out += ",\"probe_misses\":" + std::to_string(probe_misses);
  out += ",\"gossip_rounds\":" + std::to_string(gossip_rounds);
  out += ",\"stabilize_rounds\":" + std::to_string(stabilize_rounds);
  out += ",\"notifies_sent\":" + std::to_string(notifies_sent);
  out += ",\"members_marked_dead\":" + std::to_string(members_marked_dead);
  out += ",\"joins_served\":" + std::to_string(joins_served);
  out += ",\"leaves_served\":" + std::to_string(leaves_served);
  out += ",\"notifies_served\":" + std::to_string(notifies_served);
  out += ",\"gossips_served\":" + std::to_string(gossips_served);
  out += ",\"view_changes\":" + std::to_string(view_changes);
  out += ",\"entries_merged\":" + std::to_string(entries_merged);
  out += ",\"bad_bodies\":" + std::to_string(bad_bodies);
  out += ",\"flap_suppressions\":" + std::to_string(flap_suppressions);
  out += ",\"flap_releases\":" + std::to_string(flap_releases);
  out += ",\"reconnect_probes\":" + std::to_string(reconnect_probes);
  out += ",\"members_resurrected\":" + std::to_string(members_resurrected);
  out += "}";
  return out;
}

// --------------------------------------------------------------------------
// LiveMembership
// --------------------------------------------------------------------------

LiveMembership::LiveMembership(const NetAddress& self, uint64_t incarnation,
                               MembershipConfig config,
                               TcpTransport* transport)
    : self_(self),
      self_id_(RingView::IdOf(self)),
      incarnation_(incarnation),
      config_(config),
      transport_(transport),
      rng_(config.seed) {
  const auto now = Clock::now();
  // First rounds are jittered from the start so a batch of daemons
  // launched together desynchronizes immediately.
  next_probe_ = now + Jittered(config_.probe_period_ms);
  next_gossip_ = now + Jittered(config_.gossip_period_ms);
  next_stabilize_ = now + Jittered(config_.stabilize_period_ms);
  next_reconnect_ = config_.reconnect_period_ms > 0.0
                        ? now + Jittered(config_.reconnect_period_ms)
                        : now;
}

Result<LiveMembership> LiveMembership::Make(const NetAddress& self,
                                            uint64_t incarnation,
                                            MembershipConfig config,
                                            TcpTransport* transport) {
  RETURN_NOT_OK(config.Validate());
  if (transport == nullptr) {
    return Status::InvalidArgument("membership needs a transport");
  }
  return LiveMembership(self, incarnation, config, transport);
}

MemberEntry LiveMembership::SelfEntry() const {
  return MemberEntry{self_, incarnation_, MemberStatus::kAlive};
}

LiveMembership::Clock::duration LiveMembership::Jittered(double period_ms) {
  const double j = config_.jitter;
  const double factor = 1.0 - j + 2.0 * j * rng_.NextDouble();
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(period_ms * factor));
}

std::vector<MemberEntry> LiveMembership::Entries() const {
  std::vector<MemberEntry> out;
  out.reserve(others_.size() + 1);
  out.push_back(SelfEntry());
  for (const auto& [addr, m] : others_) out.push_back(m.entry);
  return out;
}

std::vector<NetAddress> LiveMembership::AliveOthers() const {
  std::vector<NetAddress> out;
  for (const auto& [addr, m] : others_) {
    if (Visible(m)) out.push_back(addr);
  }
  return out;
}

bool LiveMembership::Visible(const Member& m) const {
  return IsAliveStatus(m.entry.status) && !m.suppressed;
}

void LiveMembership::EmitIfVisibleChanged(const NetAddress& addr,
                                          const Member& m, bool was_visible) {
  const bool is_visible = Visible(m);
  if (was_visible == is_visible) return;
  changes_.push_back(ViewChange{addr, m.entry.status, was_visible, is_visible});
  ++counters_.view_changes;
}

double LiveMembership::DecayPenalty(Member& m, Clock::time_point now) {
  if (m.penalty <= 0.0) {
    m.penalty_at = now;
    return 0.0;
  }
  const double dt_ms =
      std::chrono::duration<double, std::milli>(now - m.penalty_at).count();
  if (dt_ms > 0.0) {
    m.penalty *= std::exp2(-dt_ms / config_.flap_halflife_ms);
    m.penalty_at = now;
  }
  return m.penalty;
}

void LiveMembership::NoteFlap(Member& m, Clock::time_point now) {
  DecayPenalty(m, now);
  m.penalty += config_.flap_penalty;
  if (!m.suppressed && m.penalty >= config_.flap_suppress) {
    m.suppressed = true;
    ++counters_.flap_suppressions;
  }
}

std::vector<NetAddress> LiveMembership::AliveAddresses() const {
  std::vector<NetAddress> out = AliveOthers();
  out.push_back(self_);
  return out;
}

Result<RingView> LiveMembership::AliveRing() const {
  return RingView::Make(AliveAddresses());
}

size_t LiveMembership::num_alive() const { return AliveOthers().size() + 1; }

std::optional<NetAddress> LiveMembership::Successor() const {
  auto ring = AliveRing();
  if (!ring.ok() || ring->size() < 2) return std::nullopt;
  return ring->SuccessorOf(self_id_);
}

std::optional<NetAddress> LiveMembership::Predecessor() const {
  auto ring = AliveRing();
  if (!ring.ok() || ring->size() < 2) return std::nullopt;
  return ring->PredecessorOf(self_id_);
}

std::vector<ViewChange> LiveMembership::TakeChanges() {
  return std::exchange(changes_, {});
}

bool LiveMembership::Merge(const MemberEntry& e) {
  if (e.addr == self_) {
    // A rumor that we are suspect/dead/left: refute it by outbidding
    // the rumor's incarnation. Our next gossip spreads the correction.
    if (e.status != MemberStatus::kAlive && e.incarnation >= incarnation_) {
      incarnation_ = e.incarnation + 1;
    }
    return false;
  }
  auto it = others_.find(e.addr);
  const auto now = Clock::now();
  if (it == others_.end()) {
    Member m;
    m.entry = e;
    m.updated = now;
    m.penalty_at = now;
    auto [pos, inserted] = others_.emplace(e.addr, std::move(m));
    (void)inserted;
    transport_->Register(e.addr);
    EmitIfVisibleChanged(e.addr, pos->second, /*was_visible=*/false);
    ++counters_.entries_merged;
    return true;
  }
  Member& member = it->second;
  MemberEntry& cur = member.entry;
  const bool newer =
      e.incarnation > cur.incarnation ||
      (e.incarnation == cur.incarnation && StatusTrumps(e.status, cur.status));
  if (!newer) return false;
  const MemberStatus prev_status = cur.status;
  const bool was_alive = IsAliveStatus(prev_status);
  const bool was_visible = Visible(member);
  const bool is_alive = IsAliveStatus(e.status);
  const bool fresh_incarnation = e.incarnation > cur.incarnation;
  cur = e;
  member.updated = now;
  if (fresh_incarnation || is_alive) member.strikes = 0;
  // An alive<->dead oscillation feeds the flap damper; graceful
  // departures (kLeft) are deliberate and never penalized.
  if (was_alive != is_alive && (e.status == MemberStatus::kDead ||
                                prev_status == MemberStatus::kDead)) {
    NoteFlap(member, now);
  }
  EmitIfVisibleChanged(e.addr, member, was_visible);
  ++counters_.entries_merged;
  return true;
}

void LiveMembership::MergeAll(const std::vector<MemberEntry>& entries) {
  for (const MemberEntry& e : entries) Merge(e);
}

void LiveMembership::RecordContact(const NetAddress& to) {
  auto it = others_.find(to);
  if (it == others_.end()) return;
  it->second.strikes = 0;
  it->second.updated = Clock::now();
  if (it->second.entry.status == MemberStatus::kSuspect) {
    it->second.entry.status = MemberStatus::kAlive;
  }
}

void LiveMembership::RecordMiss(const NetAddress& to, bool hard) {
  auto it = others_.find(to);
  if (it == others_.end()) return;
  Member& m = it->second;
  if (!IsAliveStatus(m.entry.status)) return;  // already written off
  ++counters_.probe_misses;
  const auto now = Clock::now();
  // Lossy-link forgiveness: strikes older than strike_decay_ms are
  // stale evidence — a link dropping one probe in ten should suspect
  // the member occasionally, not walk it to its death over minutes.
  if (config_.strike_decay_ms > 0.0 && m.strikes > 0 &&
      now - m.last_strike > std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double, std::milli>(
                                    config_.strike_decay_ms))) {
    m.strikes = 0;
  }
  m.last_strike = now;
  m.strikes += hard ? 2 : 1;
  if (m.strikes < config_.dead_after_strikes) {
    m.entry.status = MemberStatus::kSuspect;
    return;
  }
  // Declared dead under the entry's current incarnation; if the member
  // is actually alive it will refute with a higher incarnation.
  const bool was_visible = Visible(m);
  m.entry.status = MemberStatus::kDead;
  m.updated = now;
  ++counters_.members_marked_dead;
  NoteFlap(m, now);
  EmitIfVisibleChanged(to, m, was_visible);
  transport_->Disconnect(to);
}

// --- Server side ------------------------------------------------------

Result<std::string> LiveMembership::HandleJoin(std::string_view body) {
  auto entries = DecodeViewMessage(body);
  if (!entries.ok()) {
    ++counters_.bad_bodies;
    return entries.status();
  }
  MergeAll(*entries);
  ++counters_.joins_served;
  return EncodeViewMessage(Entries());
}

Result<std::string> LiveMembership::HandleLeave(std::string_view body) {
  auto entries = DecodeViewMessage(body);
  if (!entries.ok()) {
    ++counters_.bad_bodies;
    return entries.status();
  }
  MergeAll(*entries);
  ++counters_.leaves_served;
  return std::string();
}

Result<std::string> LiveMembership::HandleNotify(std::string_view body) {
  auto entries = DecodeViewMessage(body);
  if (!entries.ok()) {
    ++counters_.bad_bodies;
    return entries.status();
  }
  MergeAll(*entries);
  ++counters_.notifies_served;
  return std::string();
}

Result<std::string> LiveMembership::HandleGetNeighbors(std::string_view body) {
  if (!body.empty()) {
    auto entries = DecodeViewMessage(body);
    if (!entries.ok()) {
      ++counters_.bad_bodies;
      return entries.status();
    }
    MergeAll(*entries);
  }
  // Predecessor, self, successor — the stabilize triple. With no other
  // member the triple collapses to self alone.
  std::vector<MemberEntry> out;
  const auto pred = Predecessor();
  const auto succ = Successor();
  if (pred.has_value()) {
    auto it = others_.find(*pred);
    if (it != others_.end()) out.push_back(it->second.entry);
  }
  out.push_back(SelfEntry());
  if (succ.has_value() && succ != pred) {
    auto it = others_.find(*succ);
    if (it != others_.end()) out.push_back(it->second.entry);
  }
  return EncodeViewMessage(out);
}

Result<std::string> LiveMembership::HandleGossip(std::string_view body) {
  auto entries = DecodeViewMessage(body);
  if (!entries.ok()) {
    ++counters_.bad_bodies;
    return entries.status();
  }
  MergeAll(*entries);
  ++counters_.gossips_served;
  return EncodeViewMessage(Entries());
}

// --- Client side ------------------------------------------------------

Status LiveMembership::Join(const NetAddress& bootstrap, double deadline_ms) {
  if (bootstrap == self_) {
    return Status::InvalidArgument("cannot bootstrap from self");
  }
  transport_->Register(bootstrap);
  Transport::CallOptions call_options;
  call_options.deadline_ms = deadline_ms;
  const std::string body = EncodeViewMessage({SelfEntry()});
  ASSIGN_OR_RETURN(Transport::CallResult result,
                   transport_->Call(NetAddress{}, bootstrap, MsgType::kJoin,
                                    body, call_options));
  ASSIGN_OR_RETURN(std::vector<MemberEntry> view,
                   DecodeViewMessage(result.body));
  MergeAll(view);
  // The bootstrap peer answered; make sure it is in the table even if
  // it somehow omitted itself.
  Merge(MemberEntry{bootstrap, 0, MemberStatus::kAlive});
  RecordContact(bootstrap);
  return Status::OK();
}

void LiveMembership::AnnounceLeave(double deadline_ms) {
  // Departure entry under a bumped incarnation so it beats any alive
  // rumor of us still circulating.
  ++incarnation_;
  const std::string body =
      EncodeViewMessage({MemberEntry{self_, incarnation_, MemberStatus::kLeft}});
  Transport::CallOptions call_options;
  call_options.deadline_ms = deadline_ms;
  std::vector<NetAddress> targets;
  if (const auto succ = Successor()) targets.push_back(*succ);
  if (const auto pred = Predecessor()) {
    if (targets.empty() || targets.front() != *pred) targets.push_back(*pred);
  }
  for (const NetAddress& to : targets) {
    // Best effort — the process is exiting either way; an unreachable
    // neighbor will learn of the departure from the failure detector.
    transport_->Call(NetAddress{}, to, MsgType::kLeave, body, call_options)
        .status()
        .IgnoreError();
  }
}

void LiveMembership::StartExchange(ExchangeKind kind, const NetAddress& to,
                                   MsgType type, const std::string& body) {
  auto started = transport_->StartCall(to, type, body);
  if (!started.ok()) {
    RecordMiss(to, started.status().IsUnavailable());
    return;
  }
  PendingExchange ex;
  ex.kind = kind;
  ex.to = to;
  ex.call_id = *started;
  ex.deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       config_.probe_timeout_ms));
  pending_.push_back(ex);
}

void LiveMembership::HandleExchangeReply(const PendingExchange& ex,
                                         const Transport::CallResult& result) {
  RecordContact(ex.to);
  switch (ex.kind) {
    case ExchangeKind::kProbe:
    case ExchangeKind::kNotifyCall:
      return;  // liveness was the payload
    case ExchangeKind::kGossip: {
      auto entries = DecodeViewMessage(result.body);
      if (entries.ok()) MergeAll(*entries);
      return;
    }
    case ExchangeKind::kReconnect: {
      // A dead member answered: the partition healed. Our request body
      // carried its dead@N tombstone, which the member refuted by
      // bumping its own incarnation before replying, so merging the
      // reply resurrects it through the ordinary incarnation rules and
      // the visible transition triggers the re-replication diff.
      auto entries = DecodeViewMessage(result.body);
      if (!entries.ok()) return;
      const auto it = others_.find(ex.to);
      const bool was_dead =
          it != others_.end() && it->second.entry.status == MemberStatus::kDead;
      MergeAll(*entries);
      const auto after = others_.find(ex.to);
      if (was_dead && after != others_.end() &&
          IsAliveStatus(after->second.entry.status)) {
        ++counters_.members_resurrected;
      }
      return;
    }
    case ExchangeKind::kStabilize: {
      auto entries = DecodeViewMessage(result.body);
      if (!entries.ok()) return;
      MergeAll(*entries);
      // Chord stabilize step 2: tell the (possibly new) successor that
      // we might be its predecessor.
      if (const auto succ = Successor()) {
        ++counters_.notifies_sent;
        StartExchange(ExchangeKind::kNotifyCall, *succ, MsgType::kNotify,
                      EncodeViewMessage({SelfEntry()}));
      }
      return;
    }
  }
}

void LiveMembership::PollPending() {
  const auto now = Clock::now();
  // Reply handlers may start follow-up exchanges (stabilize answers
  // with a notify), which append to pending_ — so iterate a swapped-out
  // batch, never the member, or the push_back reallocates the buffer
  // under the element being handled. Follow-ups land in the emptied
  // pending_ and are polled next tick; still-in-flight entries are
  // pushed back after them.
  std::vector<PendingExchange> batch;
  batch.swap(pending_);
  for (const PendingExchange& ex : batch) {
    auto polled = transport_->PollCall(ex.to, ex.call_id);
    if (polled.ok() && !polled->has_value()) {
      if (now < ex.deadline) {
        pending_.push_back(ex);
      } else {
        // Unanswered past its budget: a soft miss. A late response
        // gets parked by the transport and harmlessly dropped.
        RecordMiss(ex.to, false);
        if (ex.kind == ExchangeKind::kProbe) ++probe_miss_streak_;
      }
      continue;
    }
    if (!polled.ok()) {
      RecordMiss(ex.to, polled.status().IsUnavailable());
      if (ex.kind == ExchangeKind::kProbe) ++probe_miss_streak_;
      continue;
    }
    if (ex.kind == ExchangeKind::kProbe) probe_miss_streak_ = 0;
    HandleExchangeReply(ex, **polled);
  }
}

void LiveMembership::MaybeProbe(Clock::time_point now) {
  if (now < next_probe_) return;
  // Exponential backoff while probes keep missing, so a wedged
  // neighborhood is not hammered; jitter keeps the fleet desynced.
  double period = config_.probe_period_ms;
  for (int i = 0; i < probe_miss_streak_ && period < config_.backoff_max_ms;
       ++i) {
    period *= config_.backoff_multiplier;
  }
  period = std::min(period, config_.backoff_max_ms);
  next_probe_ = now + Jittered(period);

  const auto alive = AliveOthers();
  if (alive.empty()) return;
  // Mostly the successor (ring repair cares about it most), sometimes
  // a random member so isolated failures are still noticed.
  NetAddress target;
  const auto succ = Successor();
  if (succ.has_value() && rng_.NextBounded(4) != 0) {
    target = *succ;
  } else {
    target = alive[rng_.NextBounded(alive.size())];
  }
  ++counters_.probes_sent;
  StartExchange(ExchangeKind::kProbe, target, MsgType::kPing, std::string());
}

void LiveMembership::MaybeGossip(Clock::time_point now) {
  if (now < next_gossip_) return;
  next_gossip_ = now + Jittered(config_.gossip_period_ms);
  const auto alive = AliveOthers();
  if (alive.empty()) return;
  const NetAddress target = alive[rng_.NextBounded(alive.size())];
  ++counters_.gossip_rounds;
  StartExchange(ExchangeKind::kGossip, target, MsgType::kGossip,
                EncodeViewMessage(Entries()));
}

void LiveMembership::MaybeStabilize(Clock::time_point now) {
  if (now < next_stabilize_) return;
  next_stabilize_ = now + Jittered(config_.stabilize_period_ms);
  const auto succ = Successor();
  if (!succ.has_value()) return;
  ++counters_.stabilize_rounds;
  StartExchange(ExchangeKind::kStabilize, *succ, MsgType::kGetNeighbors,
                EncodeViewMessage({SelfEntry()}));
}

void LiveMembership::MaybeReconnect(Clock::time_point now) {
  if (config_.reconnect_period_ms <= 0.0) return;
  if (now < next_reconnect_) return;
  next_reconnect_ = now + Jittered(config_.reconnect_period_ms);
  // Probe one random dead member with a full gossip exchange. Probes
  // and gossip only ever target alive members, so without this sweep a
  // partition outlasting the failure detector would be permanent: both
  // sides hold dead tombstones and never speak again. kLeft members
  // said goodbye on purpose and are not courted back.
  std::vector<NetAddress> dead;
  for (const auto& [addr, m] : others_) {
    if (m.entry.status == MemberStatus::kDead) dead.push_back(addr);
  }
  if (dead.empty()) return;
  const NetAddress target = dead[rng_.NextBounded(dead.size())];
  ++counters_.reconnect_probes;
  StartExchange(ExchangeKind::kReconnect, target, MsgType::kGossip,
                EncodeViewMessage(Entries()));
}

void LiveMembership::MaybeReleaseSuppressed(Clock::time_point now) {
  for (auto& [addr, m] : others_) {
    if (!m.suppressed) continue;
    if (DecayPenalty(m, now) >= config_.flap_reuse) continue;
    // Quarantine over: the member held one story long enough for the
    // penalty to decay. If its status is alive it re-enters the ring.
    m.suppressed = false;
    ++counters_.flap_releases;
    EmitIfVisibleChanged(addr, m, /*was_visible=*/false);
  }
}

void LiveMembership::PruneTombstones(Clock::time_point now) {
  const auto ttl = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(config_.tombstone_ttl_ms));
  // An isolated node (no visible-alive peer at all) keeps its dead
  // tombstones past the TTL: they are the reconnect sweep's only
  // candidate list, i.e. its only way back after a long partition.
  // Graceful kLeft departures still age out unconditionally.
  const bool isolated = AliveOthers().empty();
  std::erase_if(others_, [&](const auto& kv) {
    const Member& m = kv.second;
    if (IsAliveStatus(m.entry.status)) return false;
    if (isolated && m.entry.status == MemberStatus::kDead) return false;
    return now - m.updated > ttl;
  });
}

void LiveMembership::Tick() {
  const auto now = Clock::now();
  PollPending();
  MaybeReleaseSuppressed(now);
  MaybeProbe(now);
  MaybeGossip(now);
  MaybeStabilize(now);
  MaybeReconnect(now);
  PruneTombstones(now);
}

}  // namespace rpc
}  // namespace p2prange
