// The caller half of a deployable peer: publishes partitions into a
// live ring and runs the paper's §4 range lookup against it.
//
// Mirrors the simulator's RangeCacheSystem protocol step for step so
// live answers are comparable to simulated ones: the same LSH scheme
// maps a range to l identifiers, each identifier's bucket is probed at
// its owner, per-probe best matches are deduplicated and ranked by
// (similarity desc, exact tie-break). Probes are pipelined over the
// call-id multiplexing of TcpTransport — all l requests go out before
// the first response is awaited.
//
// Fault handling wires the existing FaultPolicy into the real network:
// an IOError (deadline missed, stream corrupted) is retried with
// exponential backoff and counted as a retransmission; Unavailable (the
// peer is gone) fails over to the next replica of the bucket.
#ifndef P2PRANGE_RPC_RING_CLIENT_H_
#define P2PRANGE_RPC_RING_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/fault_policy.h"
#include "hash/lsh.h"
#include "rel/relation.h"
#include "rpc/node_service.h"
#include "rpc/tcp_transport.h"
#include "store/bucket_store.h"

namespace p2prange {
namespace rpc {

struct RingClientOptions {
  /// Must match every node's publisher: identifiers are only
  /// comparable under one scheme.
  LshParams lsh;
  MatchCriterion criterion = MatchCriterion::kJaccard;
  /// Retry discipline for transient failures (only IOError retries,
  /// as everywhere else in the system).
  FaultPolicy fault;
  /// Per-call deadline on the wire.
  double deadline_ms = 1000.0;
  /// Replicas per descriptor (owner + successors), as in the sim.
  int descriptor_replication = 1;
  TcpTransport::Options transport;
};

/// \brief Outcome of one live range lookup.
struct LiveLookupOutcome {
  std::vector<uint32_t> identifiers;     ///< the l probed bucket ids
  std::vector<MatchCandidate> ranked;    ///< deduped, best first
  int probes_failed = 0;                 ///< groups with no reachable replica
  int failovers = 0;                     ///< probes answered by a successor
  double latency_ms = 0.0;               ///< wall-clock across all probes
};

class RingClient {
 public:
  static Result<std::unique_ptr<RingClient>> Make(
      const std::vector<NetAddress>& members, RingClientOptions options);

  RingClient(const RingClient&) = delete;
  RingClient& operator=(const RingClient&) = delete;

  /// \brief Publishes `key`'s descriptor (holder = `holder`) into the
  /// bucket of each of its l identifiers, at every replica. Fails only
  /// if some bucket could not be stored anywhere.
  Status Publish(const PartitionKey& key, const NetAddress& holder);

  /// Materializes `tuples` at `holder` (the bytes the descriptors
  /// point at).
  Status StorePartition(const PartitionKey& key, const Relation& tuples,
                        const NetAddress& holder);

  /// Fetches a materialized partition back from its holder.
  Result<Relation> FetchPartition(const PartitionKey& key,
                                  const NetAddress& holder);

  /// \brief The §4 range lookup against the live ring (see file
  /// comment). Degrades like the simulator: failed probes shrink the
  /// fan-out; the outcome reports how many.
  Result<LiveLookupOutcome> Lookup(const PartitionKey& query);

  /// One liveness round trip (also the readiness check for harnesses).
  Result<double> Ping(const NetAddress& node);

  /// A node's single-line metrics JSON.
  Result<std::string> NodeMetrics(const NetAddress& node);

  const RingView& view() const { return view_; }
  TcpTransport& transport() { return transport_; }
  const LshScheme& lsh() const { return *lsh_; }

 private:
  RingClient(RingView view, LshScheme lsh, RingClientOptions options);

  /// One call with the FaultPolicy retry loop: IOError retries with
  /// backoff (counted as retransmits), anything else returns at once.
  Result<std::string> CallWithPolicy(const NetAddress& to, MsgType type,
                                     const std::string& body);

  RingView view_;
  std::unique_ptr<LshScheme> lsh_;
  RingClientOptions options_;
  TcpTransport transport_;
};

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_RING_CLIENT_H_
