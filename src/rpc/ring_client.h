// The caller half of a deployable peer: publishes partitions into a
// live ring and runs the paper's §4 range lookup against it.
//
// Mirrors the simulator's RangeCacheSystem protocol step for step so
// live answers are comparable to simulated ones: the same LSH scheme
// maps a range to l identifiers, each identifier's bucket is probed at
// its owner, per-probe best matches are deduplicated and ranked by
// (similarity desc, exact tie-break). Probes are pipelined over the
// call-id multiplexing of TcpTransport — all l requests go out before
// the first response is awaited — and probes whose buckets share an
// owner coalesce into a single kMultiOp round trip (small rings put
// several of the l identifiers on the same peer).
//
// Fault handling wires the existing FaultPolicy into the real network:
// an IOError (deadline missed, stream corrupted) is retried with
// jittered exponential backoff — FaultPolicy.backoff_jitter spreads the
// retry instants so synchronized clients do not stampede a recovering
// peer — under an optional per-operation budget
// (FaultPolicy.op_budget_ms), and counted as a retransmission;
// Unavailable (the peer is gone) fails over to the next replica of the
// bucket.
//
// Against a membership-enabled ring (DESIGN.md §9) the client's view is
// dynamic: a wrong-owner redirect teaches it the member it was missing,
// and when every replica of a bucket fails it refreshes the whole view
// from any reachable member's gossip before giving up on the probe.
// Static rings answer the refresh with NotImplemented, which degrades
// to exactly the old fixed-view behavior.
#ifndef P2PRANGE_RPC_RING_CLIENT_H_
#define P2PRANGE_RPC_RING_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/fault_policy.h"
#include "hash/lsh.h"
#include "rel/relation.h"
#include "rpc/node_service.h"
#include "rpc/tcp_transport.h"
#include "store/bucket_store.h"

namespace p2prange {
namespace rpc {

struct RingClientOptions {
  /// Must match every node's publisher: identifiers are only
  /// comparable under one scheme.
  LshParams lsh;
  MatchCriterion criterion = MatchCriterion::kJaccard;
  /// Retry discipline for transient failures (only IOError retries,
  /// as everywhere else in the system).
  FaultPolicy fault;
  /// Per-call deadline on the wire.
  double deadline_ms = 1000.0;
  /// Replicas per descriptor (owner + successors), as in the sim.
  int descriptor_replication = 1;
  /// When every replica of a bucket fails, pull a fresh membership
  /// view from the ring (kGossip) and retry once at the new owners.
  bool refresh_on_failure = true;
  /// Coalesce first-wave probes that share an owner into one kMultiOp
  /// round trip instead of one frame each. Off forces the one-frame-
  /// per-probe wire behavior (ablation baselines, old-server rings);
  /// on, a batch the server rejects wholesale degrades to the per-
  /// replica fallback path, so correctness never depends on it.
  bool batch_probes = true;
  /// Seed of the retry-jitter stream (deterministic tests).
  uint64_t retry_jitter_seed = 0x5e41c1ed5eedULL;
  TcpTransport::Options transport;
};

/// \brief Outcome of one live range lookup.
struct LiveLookupOutcome {
  std::vector<uint32_t> identifiers;     ///< the l probed bucket ids
  std::vector<MatchCandidate> ranked;    ///< deduped, best first
  int probes_failed = 0;                 ///< groups with no reachable replica
  int failovers = 0;                     ///< probes answered by a successor
  int redirects = 0;                     ///< wrong-owner redirects followed
  int view_refreshes = 0;                ///< gossip view pulls performed
  int batched_probes = 0;                ///< probes that rode a kMultiOp
  /// Wall clock the lookup spent per probe, summed — every path
  /// counts: the first-wave wait, retries and their backoff, failover,
  /// redirects, and the view refresh.
  double latency_ms = 0.0;
};

class RingClient {
 public:
  static Result<std::unique_ptr<RingClient>> Make(
      const std::vector<NetAddress>& members, RingClientOptions options);

  RingClient(const RingClient&) = delete;
  RingClient& operator=(const RingClient&) = delete;

  /// \brief What one Publish did, for tests and observability.
  struct PublishStats {
    int buckets = 0;        ///< identifiers the key published into
    int copies_stored = 0;  ///< distinct addresses holding a copy, summed
    int redirects = 0;      ///< wrong-owner redirects followed
  };

  /// \brief Publishes `key`'s descriptor (holder = `holder`) into the
  /// bucket of each of its l identifiers, at every replica. Fails only
  /// if some bucket could not be stored anywhere. A replica that
  /// redirects to an address already holding the bucket adds no copy:
  /// copies are counted per distinct address.
  Status Publish(const PartitionKey& key, const NetAddress& holder,
                 PublishStats* stats = nullptr);

  /// Materializes `tuples` at `holder` (the bytes the descriptors
  /// point at).
  Status StorePartition(const PartitionKey& key, const Relation& tuples,
                        const NetAddress& holder);

  /// Fetches a materialized partition back from its holder.
  Result<Relation> FetchPartition(const PartitionKey& key,
                                  const NetAddress& holder);

  /// \brief The §4 range lookup against the live ring (see file
  /// comment). Degrades like the simulator: failed probes shrink the
  /// fan-out; the outcome reports how many.
  Result<LiveLookupOutcome> Lookup(const PartitionKey& query);

  /// \brief Replaces the routing view with the alive members of any
  /// reachable peer's gossip view. Fails (without touching the view)
  /// when no member answers or the ring is static (NotImplemented).
  Status RefreshView();

  /// Adds one member to the routing view (from a wrong-owner
  /// redirect); no-op if already present or its identifier collides.
  void LearnMember(const NetAddress& addr);

  /// One liveness round trip (also the readiness check for harnesses).
  Result<double> Ping(const NetAddress& node);

  /// A node's single-line metrics JSON.
  Result<std::string> NodeMetrics(const NetAddress& node);

  const RingView& view() const { return view_; }
  TcpTransport& transport() { return transport_; }
  const LshScheme& lsh() const { return *lsh_; }

 private:
  RingClient(RingView view, LshScheme lsh, RingClientOptions options);

  /// One call with the FaultPolicy retry loop: IOError retries with
  /// jittered backoff (counted as retransmits) while the per-operation
  /// budget lasts, anything else returns at once.
  Result<std::string> CallWithPolicy(const NetAddress& to, MsgType type,
                                     const std::string& body);

  RingView view_;
  std::unique_ptr<LshScheme> lsh_;
  RingClientOptions options_;
  TcpTransport transport_;
  Rng retry_rng_;
};

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_RING_CLIENT_H_
