// Transport: the seam between the overlay protocols and the network.
//
// Everything above this interface — Chord routing, the §4 range-lookup
// protocol, descriptor replication — speaks request/response with
// deadlines and gets per-message byte/latency accounting; everything
// below decides what a "message" physically is. Two implementations:
//
//  * SimTransport (rpc/sim_transport.h) charges messages through the
//    in-process SimNetwork exactly as before, so the paper's simulated
//    evaluation (message counts, latency model, loss injection) is
//    bit-for-bit unchanged.
//  * TcpTransport (rpc/tcp_transport.h) puts the same envelopes into
//    CRC32C-framed TCP segments between real processes, with a poll
//    event loop, non-blocking connects, and call-id multiplexing.
#ifndef P2PRANGE_RPC_TRANSPORT_H_
#define P2PRANGE_RPC_TRANSPORT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "net/address.h"
#include "net/sim_network.h"
#include "rpc/message.h"

namespace p2prange {
namespace rpc {

/// \brief Counters of the RPC layer proper (on top of NetworkStats'
/// message/byte totals): how calls fared, not just what moved.
struct RpcStats {
  uint64_t requests_sent = 0;
  uint64_t responses_received = 0;
  uint64_t requests_served = 0;  ///< handler invocations (server side)
  uint64_t timeouts = 0;         ///< calls that missed their deadline
  uint64_t retransmits = 0;      ///< calls re-sent under a FaultPolicy
  uint64_t connect_failures = 0; ///< TCP connects refused or timed out
  uint64_t frame_errors = 0;     ///< CRC/length/envelope rejections
  uint64_t connections_opened = 0;
  uint64_t connections_closed = 0;
  uint64_t open_connections = 0;
  uint64_t accepts_shed = 0;           ///< refused at accept (conn limit)
  uint64_t slow_readers_evicted = 0;   ///< write backlog over the cap
  uint64_t idle_closed = 0;            ///< read-idle / first-frame deadline
  uint64_t bytes_in = 0;   ///< framed bytes received
  uint64_t bytes_out = 0;  ///< framed bytes sent

  /// Single-line JSON object (no trailing newline).
  std::string ToJson() const;
};

/// \brief Abstract peer-to-peer message layer with request/response
/// semantics, deadlines, and accounting.
///
/// The liveness registry half (Register/SetAlive/IsAlive) mirrors what
/// the simulator needs to model churn; a real transport treats
/// liveness as something it *observes* (connects and timeouts), so
/// SetAlive is optional to support.
class Transport {
 public:
  virtual ~Transport() = default;

  // --- Endpoint registry / liveness -----------------------------------

  /// Registers an endpoint (idempotent); newly registered peers are
  /// considered alive.
  virtual void Register(const NetAddress& addr) = 0;

  /// Marks a peer up or down. Simulation-only: a real transport
  /// returns NotImplemented (liveness is discovered, not assigned).
  virtual Status SetAlive(const NetAddress& addr, bool alive) = 0;

  virtual bool IsRegistered(const NetAddress& addr) const = 0;
  virtual bool IsAlive(const NetAddress& addr) const = 0;
  virtual size_t num_registered() const = 0;

  // --- One-way accounted delivery -------------------------------------

  /// Accounts one control message from `from` to `to` and returns its
  /// latency in ms. Unavailable means the peer is down/unreachable;
  /// IOError means the message was lost (retrying may succeed).
  Result<double> Deliver(const NetAddress& from, const NetAddress& to) {
    return DeliverBytes(from, to, 0);
  }

  /// Same, carrying `payload_bytes` of payload.
  virtual Result<double> DeliverBytes(const NetAddress& from,
                                      const NetAddress& to,
                                      uint64_t payload_bytes) = 0;

  // --- Request/response ------------------------------------------------

  struct CallOptions {
    /// Wall-clock (TCP) or simulated (Sim) budget for one call,
    /// request through response. <= 0 disables the deadline.
    double deadline_ms = 1000.0;
  };

  struct CallResult {
    std::string body;        ///< the handler's response payload
    double latency_ms = 0.0; ///< request→response round trip
  };

  /// \brief One request/response exchange with `to`'s handler for
  /// `type`. A missed deadline returns IOError (and counts in
  /// rpc_stats().timeouts); an unreachable peer returns Unavailable; a
  /// handler error is returned as that error. `from` identifies the
  /// caller for accounting (a real transport derives it from the
  /// socket instead).
  virtual Result<CallResult> Call(const NetAddress& from, const NetAddress& to,
                                  MsgType type, std::string_view request,
                                  const CallOptions& options) = 0;

  /// Same, with the default deadline.
  Result<CallResult> Call(const NetAddress& from, const NetAddress& to,
                          MsgType type, std::string_view request) {
    return Call(from, to, type, request, CallOptions());
  }

  // --- Accounting -------------------------------------------------------

  virtual const NetworkStats& stats() const = 0;
  virtual void ResetStats() = 0;
  virtual const RpcStats& rpc_stats() const = 0;
};

/// \brief Single-line JSON rendering of the message/byte totals.
std::string NetworkStatsToJson(const NetworkStats& s);

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_TRANSPORT_H_
