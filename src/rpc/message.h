// The peer protocol's message-type registry and RPC envelope.
//
// Every frame on the wire (rpc/frame.h) carries one envelope: a small
// fixed header — version, message type, request/response flag, status
// code, call id — followed by the message body encoded with the
// existing wire/serde primitives. The call id multiplexes concurrent
// requests over one connection: a client may pipeline several calls
// and match responses back by id, in any arrival order.
#ifndef P2PRANGE_RPC_MESSAGE_H_
#define P2PRANGE_RPC_MESSAGE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace p2prange {
namespace rpc {

/// \brief The peer protocol. Values are wire-stable: never renumber.
enum class MsgType : uint8_t {
  kPing = 1,             ///< liveness probe; body echoed back
  kStoreDescriptor = 2,  ///< publish one partition descriptor into a bucket
  kProbeBucket = 3,      ///< range lookup: best match in one bucket
  kStorePartition = 4,   ///< materialize partition tuples at the holder
  kFetchPartition = 5,   ///< fetch a materialized partition's tuples
  kMetrics = 6,          ///< single-line JSON metrics snapshot
  // Live-ring membership (DESIGN.md §9). All of these carry
  // MemberEntry lists encoded by rpc/membership.h.
  kJoin = 7,             ///< joiner announces itself; reply = full view
  kLeave = 8,            ///< graceful departure announcement
  kNotify = 9,           ///< Chord notify: "I may be your predecessor"
  kGetNeighbors = 10,    ///< stabilize query: predecessor/self/successor
  kGossip = 11,          ///< push-pull view exchange; reply = full view
  kPullBuckets = 12,     ///< joiner pulls the descriptors of an id arc
  kHandoff = 13,         ///< bulk descriptor transfer (leave / repair)
  kMultiOp = 14,         ///< batch of data-path ops in one round trip
};

/// Human-readable name ("ping", "store_descriptor", ...).
const char* MsgTypeName(MsgType t);

/// True iff `raw` is a registered message type.
bool IsKnownMsgType(uint8_t raw);

/// \brief Fixed part of every envelope.
struct RpcHeader {
  uint64_t call_id = 0;
  MsgType type = MsgType::kPing;
  bool is_response = false;
  /// Outcome of the call; meaningful on responses only (requests
  /// always carry kOk). A non-OK response's body is the error message.
  StatusCode status = StatusCode::kOk;
};

/// \brief A decoded envelope: header + raw body bytes.
struct RpcEnvelope {
  RpcHeader header;
  std::string body;
};

/// Current envelope version byte.
inline constexpr uint8_t kEnvelopeVersion = 1;

/// \brief Serializes header + body into one frame payload.
std::string EncodeEnvelope(const RpcHeader& header, std::string_view body);

/// \brief Parses a frame payload. Rejects unknown versions, unknown
/// message types, and unknown status codes with InvalidArgument — a
/// hostile or corrupt envelope never reaches a handler.
Result<RpcEnvelope> DecodeEnvelope(std::string_view payload);

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_MESSAGE_H_
