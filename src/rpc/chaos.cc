#include "rpc/chaos.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace p2prange {
namespace rpc {

namespace {

std::vector<std::string_view> SplitWs(std::string_view line) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

Result<double> ParseMs(std::string_view tok) {
  if (tok == "inf") return -1.0;
  const std::string buf(tok);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0' || v < 0.0) {
    return Status::InvalidArgument("bad time \"" + buf + "\"");
  }
  return v;
}

Result<double> ParseNonNegDouble(std::string_view tok) {
  const std::string buf(tok);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0' || v < 0.0) {
    return Status::InvalidArgument("bad number \"" + buf + "\"");
  }
  return v;
}

Result<uint64_t> ParseU64(std::string_view tok) {
  const std::string buf(tok);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (end == buf.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad count \"" + buf + "\"");
  }
  return static_cast<uint64_t>(v);
}

Result<int> ParseEndpoint(std::string_view tok) {
  if (tok == "*") return kChaosAny;
  if (tok == "c") return kChaosClient;
  const std::string buf(tok);
  char* end = nullptr;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (end == buf.c_str() || *end != '\0' || v < 0 || v > 4096) {
    return Status::InvalidArgument("bad endpoint \"" + buf +
                                   "\" (want *, c, or a node index)");
  }
  return static_cast<int>(v);
}

Result<std::vector<int>> ParseGroup(std::string_view tok) {
  std::vector<int> out;
  size_t i = 0;
  while (i <= tok.size()) {
    const size_t comma = std::min(tok.find(',', i), tok.size());
    ASSIGN_OR_RETURN(const int idx, ParseEndpoint(tok.substr(i, comma - i)));
    if (idx < 0) {
      return Status::InvalidArgument("partition groups take node indices");
    }
    out.push_back(idx);
    i = comma + 1;
    if (comma == tok.size()) break;
  }
  if (out.empty()) return Status::InvalidArgument("empty partition group");
  return out;
}

/// `key=value` → value, or error naming the expected key.
Result<std::string_view> TakeKv(std::string_view tok, std::string_view key) {
  const size_t eq = tok.find('=');
  if (eq == std::string_view::npos || tok.substr(0, eq) != key) {
    return Status::InvalidArgument("expected " + std::string(key) + "=..., got \"" +
                                   std::string(tok) + "\"");
  }
  return tok.substr(eq + 1);
}

bool EndpointMatches(int selector, int concrete) {
  if (selector == kChaosAny) return true;
  return selector == concrete;
}

bool InGroup(const std::vector<int>& g, int idx) {
  return std::find(g.begin(), g.end(), idx) != g.end();
}

uint64_t Mix64(uint64_t x) {
  // splitmix64 finalizer: cheap, well-distributed seed mixing.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string FmtMs(double ms) {
  if (ms < 0.0) return "inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", ms);
  return buf;
}

std::string FmtEndpoint(int e) {
  if (e == kChaosAny) return "*";
  if (e == kChaosClient) return "c";
  return std::to_string(e);
}

std::string FmtGroup(const std::vector<int>& g) {
  std::string out;
  for (size_t i = 0; i < g.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(g[i]);
  }
  return out;
}

}  // namespace

const char* ChaosActionName(ChaosAction a) {
  switch (a) {
    case ChaosAction::kDelay:
      return "delay";
    case ChaosAction::kDrop:
      return "drop";
    case ChaosAction::kCorrupt:
      return "corrupt";
    case ChaosAction::kRate:
      return "rate";
    case ChaosAction::kReset:
      return "reset";
    case ChaosAction::kBlackhole:
      return "blackhole";
    case ChaosAction::kPartition:
      return "partition";
  }
  return "unknown";
}

bool ChaosRule::Matches(int link_from, int link_to) const {
  if (action == ChaosAction::kPartition) {
    // Crossing the cut, either direction. Clients are never in a
    // group, so client traffic keeps flowing to both sides.
    if (link_from < 0 || link_to < 0) return false;
    return (InGroup(group_a, link_from) && InGroup(group_b, link_to)) ||
           (InGroup(group_b, link_from) && InGroup(group_a, link_to));
  }
  return EndpointMatches(from, link_from) && EndpointMatches(to, link_to);
}

std::string ChaosRule::ToString() const {
  std::string out = FmtMs(start_ms) + ".." + FmtMs(end_ms) + " link=";
  if (from == kChaosAny && to == kChaosAny) {
    out += "*";
  } else {
    out += FmtEndpoint(from) + "->" + FmtEndpoint(to);
  }
  out += " ";
  out += ChaosActionName(action);
  switch (action) {
    case ChaosAction::kDelay:
      out += " ms=" + FmtMs(delay_ms);
      if (jitter_ms > 0.0) out += " jitter=" + FmtMs(jitter_ms);
      break;
    case ChaosAction::kDrop:
    case ChaosAction::kCorrupt:
      out += " p=" + FmtMs(prob);
      break;
    case ChaosAction::kRate:
      out += " bps=" + FmtMs(bytes_per_s);
      break;
    case ChaosAction::kReset:
      out += " after=" + std::to_string(reset_after);
      break;
    case ChaosAction::kBlackhole:
      break;
    case ChaosAction::kPartition:
      out += " groups=" + FmtGroup(group_a) + "|" + FmtGroup(group_b);
      break;
  }
  return out;
}

Result<ChaosPlan> ChaosPlan::Parse(std::string_view text) {
  ChaosPlan plan;
  size_t lineno = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t nl = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const auto toks = SplitWs(line);
    if (toks.empty()) {
      if (nl == text.size()) break;
      continue;
    }
    const std::string where = "chaos plan line " + std::to_string(lineno);

    auto fail = [&where](const Status& st) {
      return Status::InvalidArgument(where + ": " + st.message());
    };

    if (toks.size() == 1 && toks[0].rfind("seed=", 0) == 0) {
      auto seed = ParseU64(toks[0].substr(5));
      if (!seed.ok()) return fail(seed.status());
      plan.seed = *seed;
      if (nl == text.size()) break;
      continue;
    }

    if (toks.size() < 3) {
      return Status::InvalidArgument(
          where + ": expected START..END link=LINK ACTION [k=v ...]");
    }

    ChaosRule rule;
    // --- window -------------------------------------------------------
    const std::string_view window = toks[0];
    const size_t dots = window.find("..");
    if (dots == std::string_view::npos) {
      return Status::InvalidArgument(where + ": expected START..END, got \"" +
                                     std::string(window) + "\"");
    }
    auto start = ParseMs(window.substr(0, dots));
    if (!start.ok() || *start < 0.0) {
      return Status::InvalidArgument(where + ": bad window start");
    }
    auto end = ParseMs(window.substr(dots + 2));
    if (!end.ok()) return fail(end.status());
    rule.start_ms = *start;
    rule.end_ms = *end;
    if (rule.end_ms >= 0.0 && rule.end_ms <= rule.start_ms) {
      return Status::InvalidArgument(where + ": empty window");
    }

    // --- link ---------------------------------------------------------
    auto link = TakeKv(toks[1], "link");
    if (!link.ok()) return fail(link.status());
    if (*link != "*") {
      const size_t arrow = link->find("->");
      if (arrow == std::string_view::npos) {
        return Status::InvalidArgument(where +
                                       ": link must be * or FROM->TO");
      }
      auto from = ParseEndpoint(link->substr(0, arrow));
      if (!from.ok()) return fail(from.status());
      auto to = ParseEndpoint(link->substr(arrow + 2));
      if (!to.ok()) return fail(to.status());
      if (*to == kChaosClient) {
        return Status::InvalidArgument(
            where + ": \"c\" is a source class, not a destination");
      }
      rule.from = *from;
      rule.to = *to;
    }

    // --- action + params ---------------------------------------------
    const std::string_view action = toks[2];
    const std::vector<std::string_view> params(toks.begin() + 3, toks.end());
    auto want_params = [&](size_t n) -> Status {
      if (params.size() == n) return Status::OK();
      return Status::InvalidArgument(where + ": " + std::string(action) +
                                     " takes " + std::to_string(n) +
                                     " parameter(s)");
    };
    if (action == "delay") {
      rule.action = ChaosAction::kDelay;
      if (params.empty() || params.size() > 2) {
        return Status::InvalidArgument(where +
                                       ": delay ms=MS [jitter=MS]");
      }
      auto ms = TakeKv(params[0], "ms");
      if (!ms.ok()) return fail(ms.status());
      auto msv = ParseNonNegDouble(*ms);
      if (!msv.ok()) return fail(msv.status());
      rule.delay_ms = *msv;
      if (params.size() == 2) {
        auto jit = TakeKv(params[1], "jitter");
        if (!jit.ok()) return fail(jit.status());
        auto jitv = ParseNonNegDouble(*jit);
        if (!jitv.ok()) return fail(jitv.status());
        rule.jitter_ms = *jitv;
      }
    } else if (action == "drop" || action == "corrupt") {
      rule.action =
          action == "drop" ? ChaosAction::kDrop : ChaosAction::kCorrupt;
      RETURN_NOT_OK(want_params(1));
      auto p = TakeKv(params[0], "p");
      if (!p.ok()) return fail(p.status());
      auto pv = ParseNonNegDouble(*p);
      if (!pv.ok() || *pv > 1.0) {
        return Status::InvalidArgument(where + ": p must be in [0, 1]");
      }
      rule.prob = *pv;
    } else if (action == "rate") {
      rule.action = ChaosAction::kRate;
      RETURN_NOT_OK(want_params(1));
      auto bps = TakeKv(params[0], "bps");
      if (!bps.ok()) return fail(bps.status());
      auto bpsv = ParseNonNegDouble(*bps);
      if (!bpsv.ok() || *bpsv <= 0.0) {
        return Status::InvalidArgument(where + ": bps must be > 0");
      }
      rule.bytes_per_s = *bpsv;
    } else if (action == "reset") {
      rule.action = ChaosAction::kReset;
      RETURN_NOT_OK(want_params(1));
      auto after = TakeKv(params[0], "after");
      if (!after.ok()) return fail(after.status());
      auto afterv = ParseU64(*after);
      if (!afterv.ok() || *afterv == 0) {
        return Status::InvalidArgument(where + ": after must be >= 1");
      }
      rule.reset_after = *afterv;
    } else if (action == "blackhole") {
      rule.action = ChaosAction::kBlackhole;
      RETURN_NOT_OK(want_params(0));
    } else if (action == "partition") {
      rule.action = ChaosAction::kPartition;
      RETURN_NOT_OK(want_params(1));
      auto groups = TakeKv(params[0], "groups");
      if (!groups.ok()) return fail(groups.status());
      const size_t bar = groups->find('|');
      if (bar == std::string_view::npos) {
        return Status::InvalidArgument(where + ": groups=A,B|C,D");
      }
      auto ga = ParseGroup(groups->substr(0, bar));
      if (!ga.ok()) return fail(ga.status());
      auto gb = ParseGroup(groups->substr(bar + 1));
      if (!gb.ok()) return fail(gb.status());
      for (const int idx : *ga) {
        if (InGroup(*gb, idx)) {
          return Status::InvalidArgument(
              where + ": node " + std::to_string(idx) + " on both sides");
        }
      }
      rule.group_a = std::move(*ga);
      rule.group_b = std::move(*gb);
    } else {
      return Status::InvalidArgument(where + ": unknown action \"" +
                                     std::string(action) + "\"");
    }
    plan.rules.push_back(std::move(rule));
    if (nl == text.size()) break;
  }
  return plan;
}

LinkEffects ChaosPlan::EffectsAt(double elapsed_ms, int link_from,
                                 int link_to) const {
  LinkEffects out;
  for (const ChaosRule& r : rules) {
    if (!r.ActiveAt(elapsed_ms) || !r.Matches(link_from, link_to)) continue;
    switch (r.action) {
      case ChaosAction::kDelay:
        out.delay_ms += r.delay_ms;
        out.jitter_ms += r.jitter_ms;
        break;
      case ChaosAction::kDrop:
        out.drop_prob = std::max(out.drop_prob, r.prob);
        break;
      case ChaosAction::kCorrupt:
        out.corrupt_prob = std::max(out.corrupt_prob, r.prob);
        break;
      case ChaosAction::kRate:
        out.bytes_per_s = out.bytes_per_s == 0.0
                              ? r.bytes_per_s
                              : std::min(out.bytes_per_s, r.bytes_per_s);
        break;
      case ChaosAction::kReset:
        out.reset_after_bytes =
            out.reset_after_bytes == 0
                ? r.reset_after
                : std::min(out.reset_after_bytes, r.reset_after);
        break;
      case ChaosAction::kBlackhole:
      case ChaosAction::kPartition:
        out.blackhole = true;
        break;
    }
  }
  return out;
}

uint64_t ChaosPlan::ShaperSeed(int link_from, int link_to,
                               uint64_t conn_serial) const {
  uint64_t s = Mix64(seed);
  s = Mix64(s ^ static_cast<uint64_t>(static_cast<int64_t>(link_from) + 16));
  s = Mix64(s ^ static_cast<uint64_t>(static_cast<int64_t>(link_to) + 16));
  s = Mix64(s ^ conn_serial);
  // Rng rejects 0; any fixed non-zero fallback keeps determinism.
  return s == 0 ? 1 : s;
}

std::string ChaosPlan::ToString() const {
  std::string out = "seed=" + std::to_string(seed) + "\n";
  for (const ChaosRule& r : rules) out += r.ToString() + "\n";
  return out;
}

}  // namespace rpc
}  // namespace p2prange
