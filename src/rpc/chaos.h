// ChaosPlan: a deterministic, scripted network-fault schedule shared
// by the chaos proxy (tools/p2prange_chaosproxy) and the tests that
// drive it (DESIGN.md §11).
//
// A plan is a list of rules, each binding a time window and a directed
// link selector to one fault action. The proxy evaluates the plan
// every tick — EffectsAt(elapsed, from, to) merges every active
// matching rule into the effective shaping for that directed link — so
// a window expiring *is* the heal: "partition A|B for 10 s, heal,
// assert reconciliation" is a single rule with end_ms = 10000.
//
// The text grammar (one rule per line, '#' comments, blank lines
// ignored):
//
//   seed=42
//   START..END link=LINK ACTION [k=v ...]
//
// with START/END in ms from schedule start (END may be "inf"), LINK
// one of "*", "F->T" where F/T are node indices, "*" (any), or "c"
// (client — a source that is not a fronted node), and ACTION one of:
//
//   delay ms=MS [jitter=MS]    added one-way latency (+ uniform jitter)
//   drop p=P                   discard each ~1KiB segment with prob P
//   corrupt p=P                flip one random bit in each ~1KiB
//                              segment with prob P
//   rate bps=N                 throttle to N bytes/sec (slow-loris: N small)
//   reset after=N              RST the connection once N bytes crossed
//   blackhole                  silently discard everything (simplex cut)
//   partition groups=A,B|C,D   blackhole every link crossing the cut,
//                              both directions (link= is ignored; use *)
//
// Determinism: the plan carries a seed; every per-connection shaper
// derives its Rng from (seed, link, connection serial), so a replay of
// the same schedule over the same connection order makes the same
// drop/corruption choices.
#ifndef P2PRANGE_RPC_CHAOS_H_
#define P2PRANGE_RPC_CHAOS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace p2prange {
namespace rpc {

/// Endpoint selector values for ChaosRule::from / ::to (>= 0 is a node
/// index — the position of the fronted daemon in the proxy's upstream
/// list).
inline constexpr int kChaosAny = -1;
/// A source that is not a fronted node (e.g. a RingClient).
inline constexpr int kChaosClient = -2;

/// \brief The merged shaping for one directed link at one instant.
struct LinkEffects {
  double delay_ms = 0.0;
  double jitter_ms = 0.0;
  double drop_prob = 0.0;
  double corrupt_prob = 0.0;
  double bytes_per_s = 0.0;        ///< 0 = unlimited
  uint64_t reset_after_bytes = 0;  ///< 0 = never
  bool blackhole = false;

  bool Any() const {
    return delay_ms > 0.0 || jitter_ms > 0.0 || drop_prob > 0.0 ||
           corrupt_prob > 0.0 || bytes_per_s > 0.0 ||
           reset_after_bytes > 0 || blackhole;
  }
};

enum class ChaosAction : uint8_t {
  kDelay,
  kDrop,
  kCorrupt,
  kRate,
  kReset,
  kBlackhole,
  kPartition,
};

const char* ChaosActionName(ChaosAction a);

struct ChaosRule {
  double start_ms = 0.0;
  double end_ms = -1.0;  ///< < 0 = open-ended ("inf")
  int from = kChaosAny;
  int to = kChaosAny;
  ChaosAction action = ChaosAction::kDelay;
  double delay_ms = 0.0;
  double jitter_ms = 0.0;
  double prob = 0.0;
  double bytes_per_s = 0.0;
  uint64_t reset_after = 0;
  /// The two sides of a kPartition cut (node indices).
  std::vector<int> group_a;
  std::vector<int> group_b;

  bool ActiveAt(double elapsed_ms) const {
    return elapsed_ms >= start_ms && (end_ms < 0.0 || elapsed_ms < end_ms);
  }
  /// Whether this rule applies to the directed link `from`->`to`
  /// (arguments use the same encoding as the selector fields, but are
  /// concrete: a node index or kChaosClient, never kChaosAny).
  bool Matches(int link_from, int link_to) const;

  std::string ToString() const;
};

struct ChaosPlan {
  std::vector<ChaosRule> rules;
  uint64_t seed = 1;

  /// Parses the grammar above; InvalidArgument names the bad line.
  static Result<ChaosPlan> Parse(std::string_view text);

  /// Merge of every rule active at `elapsed_ms` that matches the
  /// directed link: delays add, probabilities take the max, rates take
  /// the tightest, reset the earliest, blackhole ORs.
  LinkEffects EffectsAt(double elapsed_ms, int link_from, int link_to) const;

  /// The seed a per-connection shaper should use, mixing the plan
  /// seed, the directed link, and the connection's accept serial —
  /// stable across replays of the same schedule.
  uint64_t ShaperSeed(int link_from, int link_to, uint64_t conn_serial) const;

  bool empty() const { return rules.empty(); }
  /// Round-trips through Parse (modulo comments/blank lines).
  std::string ToString() const;
};

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_CHAOS_H_
