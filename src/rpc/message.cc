#include "rpc/message.h"

#include "wire/serde.h"

namespace p2prange {
namespace rpc {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kPing:
      return "ping";
    case MsgType::kStoreDescriptor:
      return "store_descriptor";
    case MsgType::kProbeBucket:
      return "probe_bucket";
    case MsgType::kStorePartition:
      return "store_partition";
    case MsgType::kFetchPartition:
      return "fetch_partition";
    case MsgType::kMetrics:
      return "metrics";
    case MsgType::kJoin:
      return "join";
    case MsgType::kLeave:
      return "leave";
    case MsgType::kNotify:
      return "notify";
    case MsgType::kGetNeighbors:
      return "get_neighbors";
    case MsgType::kGossip:
      return "gossip";
    case MsgType::kPullBuckets:
      return "pull_buckets";
    case MsgType::kHandoff:
      return "handoff";
    case MsgType::kMultiOp:
      return "multi_op";
  }
  return "unknown";
}

bool IsKnownMsgType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(MsgType::kPing) &&
         raw <= static_cast<uint8_t>(MsgType::kMultiOp);
}

std::string EncodeEnvelope(const RpcHeader& header, std::string_view body) {
  wire::Encoder enc;
  enc.PutU8(kEnvelopeVersion);
  enc.PutU8(static_cast<uint8_t>(header.type));
  enc.PutU8(header.is_response ? 1 : 0);
  enc.PutU8(static_cast<uint8_t>(header.status));
  enc.PutVarint(header.call_id);
  std::string out = enc.Take();
  out.append(body.data(), body.size());
  return out;
}

Result<RpcEnvelope> DecodeEnvelope(std::string_view payload) {
  wire::Decoder dec(payload);
  ASSIGN_OR_RETURN(const uint8_t version, dec.U8());
  if (version != kEnvelopeVersion) {
    return Status::InvalidArgument("unknown envelope version " +
                                   std::to_string(version));
  }
  ASSIGN_OR_RETURN(const uint8_t raw_type, dec.U8());
  if (!IsKnownMsgType(raw_type)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(raw_type));
  }
  ASSIGN_OR_RETURN(const uint8_t flags, dec.U8());
  if (flags > 1) {
    return Status::InvalidArgument("invalid envelope flags " +
                                   std::to_string(flags));
  }
  ASSIGN_OR_RETURN(const uint8_t raw_status, dec.U8());
  if (raw_status > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(raw_status));
  }
  RpcEnvelope env;
  ASSIGN_OR_RETURN(env.header.call_id, dec.Varint());
  env.header.type = static_cast<MsgType>(raw_type);
  env.header.is_response = flags == 1;
  env.header.status = static_cast<StatusCode>(raw_status);
  env.body.assign(payload.substr(payload.size() - dec.remaining()));
  return env;
}

}  // namespace rpc
}  // namespace p2prange
