// Live-ring membership: join/leave/stabilize/failure-detection over
// the real RPC transport (DESIGN.md §9).
//
// One LiveMembership instance runs inside each daemon, driven from the
// p2prange_node poll loop: Tick() starts asynchronous probe, gossip,
// and stabilize exchanges (via TcpTransport::StartCall/PollCall, so
// the event loop never blocks on a peer), and the matching server-side
// handlers answer the same messages arriving from other daemons
// through NodeService::Handle.
//
// The view is an SWIM-flavored member table: every member carries an
// (incarnation, status) pair, entries merge by "higher incarnation
// wins, ties resolve toward the more terminal status", and dead/left
// tombstones age out after a TTL. A restarted daemon picks a fresh
// (larger) incarnation at startup, so its new alive entry overrides
// its own tombstone without any persisted membership state. Routing
// state is the full sorted view (RingView rebuilt from the alive set),
// which subsumes Chord's finger table at deployable ring sizes; the
// classic stabilize/notify exchange still runs so immediate neighbors
// converge faster than the gossip epidemic alone.
//
// Threading: owned by one thread (the daemon's event loop), like every
// other piece of the rpc layer.
#ifndef P2PRANGE_RPC_MEMBERSHIP_H_
#define P2PRANGE_RPC_MEMBERSHIP_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "chord/id.h"
#include "common/random.h"
#include "common/result.h"
#include "net/address.h"
#include "rpc/ring_view.h"
#include "rpc/tcp_transport.h"
#include "wire/serde.h"

namespace p2prange {
namespace rpc {

// --------------------------------------------------------------------------
// Member entries and their wire form
// --------------------------------------------------------------------------

/// \brief Lifecycle of a member as this node believes it. Values are
/// wire-stable and ordered by terminality: a tie in incarnation
/// resolves toward the larger status.
enum class MemberStatus : uint8_t {
  kAlive = 0,
  kSuspect = 1,  ///< missed probes, not yet declared dead
  kDead = 2,     ///< failure detector gave up on it
  kLeft = 3,     ///< announced a graceful departure
};

const char* MemberStatusName(MemberStatus s);

/// \brief One member as shipped in join/gossip/notify bodies.
struct MemberEntry {
  NetAddress addr;
  /// Startup timestamp of the member's process (ms since epoch works;
  /// any value that grows across restarts does). Higher wins a merge.
  uint64_t incarnation = 0;
  MemberStatus status = MemberStatus::kAlive;

  bool operator==(const MemberEntry&) const = default;
};

void EncodeMemberEntry(const MemberEntry& e, wire::Encoder* enc);
Result<MemberEntry> DecodeMemberEntry(wire::Decoder* dec);

/// Most member entries one view message may carry; a hostile count
/// beyond this is rejected before any allocation.
inline constexpr size_t kMaxViewEntries = 4096;

/// \brief A list of member entries — the body of kJoin, kLeave,
/// kNotify, kGetNeighbors, and kGossip messages (requests and
/// responses alike; an empty list is a pure "send me your view").
std::string EncodeViewMessage(const std::vector<MemberEntry>& entries);
Result<std::vector<MemberEntry>> DecodeViewMessage(std::string_view body);

// --------------------------------------------------------------------------
// Wrong-owner redirects
// --------------------------------------------------------------------------

/// \brief Builds the OutOfRange payload a node returns when a request
/// reaches it for a bucket it no longer owns: the address of the peer
/// the caller should retry at. The caller learns the member from the
/// redirect instead of failing (RingClient::Lookup/Publish).
std::string WrongOwnerMessage(const NetAddress& owner);

/// Parses a WrongOwnerMessage back; nullopt when `message` is not one.
std::optional<NetAddress> ParseWrongOwner(std::string_view message);

// --------------------------------------------------------------------------
// LiveMembership
// --------------------------------------------------------------------------

struct MembershipConfig {
  /// Period of the successor liveness probe (kPing).
  double probe_period_ms = 500.0;
  /// Period of the anti-entropy exchange with a random member.
  double gossip_period_ms = 1000.0;
  /// Period of the Chord stabilize/notify exchange with the successor.
  double stabilize_period_ms = 1000.0;
  /// How long an asynchronous exchange may stay unanswered before it
  /// counts as a miss.
  double probe_timeout_ms = 250.0;
  /// Strikes before a member is declared dead. A refused connection
  /// (Unavailable) costs 2 strikes, a timeout (IOError) costs 1.
  int dead_after_strikes = 3;
  /// Backoff applied to the probe period while probes are failing:
  /// period * multiplier^consecutive_misses, capped.
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 5000.0;
  /// Fraction of every period randomized (both directions), so a fleet
  /// of daemons started together does not probe in lockstep.
  double jitter = 0.3;
  /// Dead/left tombstones are forgotten after this long.
  double tombstone_ttl_ms = 60000.0;
  /// Seed for the jitter/peer-choice Rng (P2P002: replayable).
  uint64_t seed = 1;

  // --- Partition tolerance (DESIGN.md §11) ---------------------------

  /// Flap damping: every alive<->dead transition of a member adds
  /// flap_penalty; the total decays exponentially with halflife
  /// flap_halflife_ms. At/above flap_suppress the member is
  /// quarantined — held out of the alive set and silent to
  /// view-change consumers (no re-replication churn) — until the
  /// decayed penalty falls below flap_reuse. Decay runs even between
  /// back-to-back flaps, so N rapid flaps sum to just under N:
  /// thresholds sit between integers (2.5 = "the third flap").
  double flap_penalty = 1.0;
  double flap_suppress = 2.5;
  double flap_reuse = 1.5;
  double flap_halflife_ms = 10000.0;
  /// Lossy-link forgiveness: a strike older than this is stale
  /// evidence and no longer counts toward dead_after_strikes
  /// (0 = strikes never fade between contacts).
  double strike_decay_ms = 5000.0;
  /// Period of the post-partition reconciliation sweep: probe one
  /// random dead (never left) member; a reply resurrects it and the
  /// resulting view change triggers the re-replication diff
  /// (0 disables — a healed partition then stays split).
  double reconnect_period_ms = 2000.0;

  Status Validate() const;
};

/// \brief What changed in the view, for re-replication to act on.
struct ViewChange {
  NetAddress addr;
  MemberStatus status = MemberStatus::kAlive;
  bool was_alive = false;
  bool is_alive = false;
};

struct MembershipCounters {
  uint64_t probes_sent = 0;
  uint64_t probe_misses = 0;
  uint64_t gossip_rounds = 0;
  uint64_t stabilize_rounds = 0;
  uint64_t notifies_sent = 0;
  uint64_t members_marked_dead = 0;
  uint64_t joins_served = 0;
  uint64_t leaves_served = 0;
  uint64_t notifies_served = 0;
  uint64_t gossips_served = 0;
  uint64_t view_changes = 0;
  uint64_t entries_merged = 0;
  uint64_t bad_bodies = 0;
  uint64_t flap_suppressions = 0;    ///< members quarantined for flapping
  uint64_t flap_releases = 0;        ///< quarantines lifted (penalty decayed)
  uint64_t reconnect_probes = 0;     ///< dead members probed post-partition
  uint64_t members_resurrected = 0;  ///< dead members that answered one

  std::string ToJson() const;
};

class LiveMembership {
 public:
  /// `transport` must outlive this object. `incarnation` must grow
  /// across restarts of the same address (ms since epoch at startup).
  static Result<LiveMembership> Make(const NetAddress& self,
                                     uint64_t incarnation,
                                     MembershipConfig config,
                                     TcpTransport* transport);

  LiveMembership(LiveMembership&&) = default;
  LiveMembership& operator=(LiveMembership&&) = delete;
  LiveMembership(const LiveMembership&) = delete;
  LiveMembership& operator=(const LiveMembership&) = delete;

  // --- Server side (dispatched from NodeService::Handle) --------------

  Result<std::string> HandleJoin(std::string_view body);
  Result<std::string> HandleLeave(std::string_view body);
  Result<std::string> HandleNotify(std::string_view body);
  Result<std::string> HandleGetNeighbors(std::string_view body);
  Result<std::string> HandleGossip(std::string_view body);

  // --- Client side ----------------------------------------------------

  /// One synchronous join attempt against a bootstrap peer: announce
  /// self, merge the returned view. The daemon retries around this.
  Status Join(const NetAddress& bootstrap, double deadline_ms);

  /// One maintenance step: collect finished exchanges, start the probe
  /// / gossip / stabilize rounds that are due, expire old tombstones.
  /// Never blocks on a peer.
  void Tick();

  /// Announces a graceful departure to the current successor and
  /// predecessor (best effort, synchronous — the process is exiting).
  void AnnounceLeave(double deadline_ms);

  // --- View -----------------------------------------------------------

  const NetAddress& self() const { return self_; }
  chord::ChordId self_id() const { return self_id_; }

  /// Alive members (always includes self).
  std::vector<NetAddress> AliveAddresses() const;
  /// The alive members as a routing view.
  Result<RingView> AliveRing() const;
  size_t num_alive() const;

  /// Successor / predecessor of self on the alive ring; nullopt when
  /// self is the only member (a node alone is its own neighbor).
  std::optional<NetAddress> Successor() const;
  std::optional<NetAddress> Predecessor() const;

  /// Every entry (tombstones included), for gossip bodies and tests.
  std::vector<MemberEntry> Entries() const;

  /// Drains the accumulated alive/not-alive transitions.
  std::vector<ViewChange> TakeChanges();

  const MembershipCounters& counters() const { return counters_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Member {
    MemberEntry entry;
    Clock::time_point updated;
    int strikes = 0;
    Clock::time_point last_strike;  ///< when the newest strike landed
    double penalty = 0.0;           ///< decayed flap penalty (DESIGN.md §11)
    Clock::time_point penalty_at;   ///< instant `penalty` was last decayed to
    bool suppressed = false;        ///< quarantined by flap damping
  };

  enum class ExchangeKind {
    kProbe,
    kGossip,
    kStabilize,
    kNotifyCall,
    kReconnect,  ///< gossip aimed at a dead member (partition-heal sweep)
  };

  struct PendingExchange {
    ExchangeKind kind = ExchangeKind::kProbe;
    NetAddress to;
    uint64_t call_id = 0;
    Clock::time_point deadline;
  };

  LiveMembership(const NetAddress& self, uint64_t incarnation,
                 MembershipConfig config, TcpTransport* transport);

  /// Folds one remote entry into the table. Returns true if the view
  /// changed (and records a ViewChange on alive transitions).
  bool Merge(const MemberEntry& e);
  void MergeAll(const std::vector<MemberEntry>& entries);

  /// A failed exchange with `to` (hard = connection refused/reset).
  void RecordMiss(const NetAddress& to, bool hard);
  void RecordContact(const NetAddress& to);

  void PollPending();
  void HandleExchangeReply(const PendingExchange& ex,
                           const Transport::CallResult& result);
  void StartExchange(ExchangeKind kind, const NetAddress& to, MsgType type,
                     const std::string& body);
  void MaybeProbe(Clock::time_point now);
  void MaybeGossip(Clock::time_point now);
  void MaybeStabilize(Clock::time_point now);
  void MaybeReconnect(Clock::time_point now);
  void MaybeReleaseSuppressed(Clock::time_point now);
  void PruneTombstones(Clock::time_point now);

  /// A member counts as alive for routing/view purposes only when its
  /// status is alive AND flap damping is not quarantining it.
  bool Visible(const Member& m) const;
  /// Records a ViewChange iff the member's visible aliveness moved.
  void EmitIfVisibleChanged(const NetAddress& addr, const Member& m,
                            bool was_visible);
  /// One raw alive<->dead transition: bump the flap penalty, maybe
  /// enter quarantine.
  void NoteFlap(Member& m, Clock::time_point now);
  /// Decays `m.penalty` to `now` and returns the decayed value.
  double DecayPenalty(Member& m, Clock::time_point now);

  MemberEntry SelfEntry() const;
  /// period * [1-jitter, 1+jitter), as a duration.
  Clock::duration Jittered(double period_ms);
  std::vector<NetAddress> AliveOthers() const;

  NetAddress self_;
  chord::ChordId self_id_;
  uint64_t incarnation_;
  MembershipConfig config_;
  TcpTransport* transport_;
  Rng rng_;

  std::unordered_map<NetAddress, Member, NetAddressHash> others_;
  std::vector<PendingExchange> pending_;
  std::vector<ViewChange> changes_;
  MembershipCounters counters_;

  Clock::time_point next_probe_;
  Clock::time_point next_gossip_;
  Clock::time_point next_stabilize_;
  Clock::time_point next_reconnect_;
  int probe_miss_streak_ = 0;
};

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_MEMBERSHIP_H_
