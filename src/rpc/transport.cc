#include "rpc/transport.h"

#include <cstdio>

namespace p2prange {
namespace rpc {

namespace {

std::string JsonDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string RpcStats::ToJson() const {
  std::string out = "{";
  out += "\"requests_sent\":" + std::to_string(requests_sent);
  out += ",\"responses_received\":" + std::to_string(responses_received);
  out += ",\"requests_served\":" + std::to_string(requests_served);
  out += ",\"timeouts\":" + std::to_string(timeouts);
  out += ",\"retransmits\":" + std::to_string(retransmits);
  out += ",\"connect_failures\":" + std::to_string(connect_failures);
  out += ",\"frame_errors\":" + std::to_string(frame_errors);
  out += ",\"connections_opened\":" + std::to_string(connections_opened);
  out += ",\"connections_closed\":" + std::to_string(connections_closed);
  out += ",\"open_connections\":" + std::to_string(open_connections);
  out += ",\"accepts_shed\":" + std::to_string(accepts_shed);
  out += ",\"slow_readers_evicted\":" + std::to_string(slow_readers_evicted);
  out += ",\"idle_closed\":" + std::to_string(idle_closed);
  out += ",\"bytes_in\":" + std::to_string(bytes_in);
  out += ",\"bytes_out\":" + std::to_string(bytes_out);
  out += "}";
  return out;
}

std::string NetworkStatsToJson(const NetworkStats& s) {
  std::string out = "{";
  out += "\"messages\":" + std::to_string(s.messages);
  out += ",\"bytes\":" + std::to_string(s.bytes);
  out += ",\"total_latency_ms\":" + JsonDouble(s.total_latency_ms);
  out += ",\"failed_deliveries\":" + std::to_string(s.failed_deliveries);
  out += ",\"lost_messages\":" + std::to_string(s.lost_messages);
  out += "}";
  return out;
}

}  // namespace rpc
}  // namespace p2prange
