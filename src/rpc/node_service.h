// The server half of a deployable peer: one NodeService owns the
// peer's durable descriptor store and materialized partitions, and
// serves every message of the peer protocol (rpc/message.h) from a
// TcpServer's handler seam — or from a SimTransport's, the service
// does not know which.
//
// Ring membership is a static full view (RingView): every process is
// started with the same member list, each member's Chord identifier is
// the SHA-1 of its address, and an identifier's owner is its successor
// on the ring — the fully-converged routing state a long-running
// stabilized overlay reaches, the same steady state ChordRing::Make
// builds for the simulations.
#ifndef P2PRANGE_RPC_NODE_SERVICE_H_
#define P2PRANGE_RPC_NODE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chord/id.h"
#include "common/result.h"
#include "common/sync.h"
#include "net/address.h"
#include "rel/relation.h"
#include "rpc/message.h"
#include "rpc/ring_view.h"
#include "rpc/transport.h"
#include "store/bucket_store.h"
#include "store/durable_store.h"

namespace p2prange {
namespace rpc {

class LiveMembership;  // rpc/membership.h

// --------------------------------------------------------------------------
// Protocol bodies
// --------------------------------------------------------------------------
//
// Shared by the service (decoding requests, encoding responses) and
// RingClient (the reverse), so the two halves cannot drift apart.

struct StoreDescriptorRequest {
  chord::ChordId bucket = 0;
  PartitionDescriptor descriptor;
};
std::string EncodeStoreDescriptorRequest(const StoreDescriptorRequest& req);
Result<StoreDescriptorRequest> DecodeStoreDescriptorRequest(
    std::string_view body);

struct ProbeBucketRequest {
  chord::ChordId bucket = 0;
  PartitionKey query;
  MatchCriterion criterion = MatchCriterion::kJaccard;
};
std::string EncodeProbeBucketRequest(const ProbeBucketRequest& req);
Result<ProbeBucketRequest> DecodeProbeBucketRequest(std::string_view body);

/// A probe's reply: the bucket's best same-column match, if any.
std::string EncodeProbeBucketResponse(const std::optional<MatchCandidate>& c);
Result<std::optional<MatchCandidate>> DecodeProbeBucketResponse(
    std::string_view body);

struct StorePartitionRequest {
  PartitionKey key;
  Relation tuples;
};
std::string EncodeStorePartitionRequest(const StorePartitionRequest& req);
Result<StorePartitionRequest> DecodeStorePartitionRequest(
    std::string_view body);

std::string EncodeFetchPartitionRequest(const PartitionKey& key);
Result<PartitionKey> DecodeFetchPartitionRequest(std::string_view body);

/// \brief A joiner's request for the descriptors of the identifier arc
/// (lo, hi] it is about to own (kPullBuckets).
struct PullBucketsRequest {
  chord::ChordId lo = 0;
  chord::ChordId hi = 0;
};
std::string EncodePullBucketsRequest(const PullBucketsRequest& req);
Result<PullBucketsRequest> DecodePullBucketsRequest(std::string_view body);

/// \brief A bulk descriptor transfer: re-replication pushes, graceful
/// handoff, and the kPullBuckets response all carry one of these.
struct HandoffBatch {
  std::vector<std::pair<chord::ChordId, PartitionDescriptor>> entries;
};
/// Most entries one batch may carry (senders chunk at this size; a
/// hostile count beyond it is rejected before any allocation).
inline constexpr size_t kMaxHandoffEntries = 65536;
std::string EncodeHandoffBatch(const HandoffBatch& batch);
Result<HandoffBatch> DecodeHandoffBatch(std::string_view body);

// --------------------------------------------------------------------------
// NodeService
// --------------------------------------------------------------------------

struct NodeServiceOptions {
  /// Descriptor-store capacity; 0 = unbounded.
  size_t store_capacity = 0;
  store::DurabilityConfig durability;
  /// Directory for the WAL image and snapshot slots. Empty keeps
  /// durability in memory only (tests); non-empty persists every
  /// mutation so a restarted process recovers its descriptors.
  std::string wal_dir;
  /// Replicas per descriptor the ring runs with. Used for wrong-owner
  /// redirects: with live membership attached, a store/probe for a
  /// bucket whose replica set excludes this node is answered with a
  /// redirect to the real owner instead of being silently accepted.
  int descriptor_replication = 1;
};

/// \brief Counters of one node's service activity. Atomic because the
/// data-path handlers bump them from worker threads while the poll
/// thread reads them for metrics; read individual fields, the struct
/// itself is neither copyable nor a consistent snapshot.
struct NodeCounters {
  std::atomic<uint64_t> pings{0};
  std::atomic<uint64_t> descriptors_stored{0};
  std::atomic<uint64_t> probes_served{0};
  std::atomic<uint64_t> probe_hits{0};
  std::atomic<uint64_t> partitions_stored{0};
  std::atomic<uint64_t> partitions_fetched{0};
  std::atomic<uint64_t> bad_requests{0};
  std::atomic<uint64_t> handoffs_received{0};    ///< kHandoff batches applied
  std::atomic<uint64_t> handoff_descriptors{0};  ///< descriptors those held
  std::atomic<uint64_t> buckets_pulled{0};       ///< kPullBuckets served
  std::atomic<uint64_t> redirects_sent{0};       ///< wrong-owner answers
  std::atomic<uint64_t> multi_ops{0};            ///< kMultiOp batches served
};

class NodeService {
 public:
  /// Creates the service; when options.wal_dir holds a previous
  /// incarnation's images, the store is recovered from them (see
  /// recovery()).
  static Result<std::unique_ptr<NodeService>> Make(const NetAddress& self,
                                                   NodeServiceOptions options);

  NodeService(const NodeService&) = delete;
  NodeService& operator=(const NodeService&) = delete;

  /// The protocol handler: plug into TcpServer or SimTransport.
  Result<std::string> Handle(MsgType type, std::string_view body)
      EXCLUDES(data_mu_, ring_mu_);

  /// Attaches live membership: its handlers serve the membership
  /// messages, and its alive ring drives wrong-owner redirects.
  /// Without one (static deployments, tests) membership messages are
  /// answered NotImplemented and no redirects are ever sent. The
  /// object must outlive this service.
  void set_membership(LiveMembership* membership) {
    membership_ = membership;
  }

  /// \brief Publishes an immutable snapshot of the alive ring for the
  /// redirect decision. LiveMembership belongs to the poll thread, so
  /// a worker-pool daemon must call this from that thread after every
  /// membership tick; from the first call on, RedirectFor consults
  /// only the snapshot and worker threads never touch membership.
  /// Inline (no-executor) deployments never call it and keep the
  /// direct, always-fresh path.
  void PublishRedirectRing() EXCLUDES(ring_mu_);

  /// \brief Stores one descriptor durably (insert + WAL/snapshot
  /// flush) — the local half of every descriptor-bearing message, also
  /// used directly by the re-replicator.
  Status InsertDescriptor(chord::ChordId bucket,
                          const PartitionDescriptor& descriptor)
      EXCLUDES(data_mu_);

  /// \brief Applies one handoff batch durably (all inserts, then a
  /// single flush) and returns how many descriptors it held. Serves
  /// kHandoff and the re-replicator's pull path.
  Result<size_t> ApplyHandoff(const HandoffBatch& batch) EXCLUDES(data_mu_);

  /// Single-line JSON: this node's counters + store gauges + the
  /// supplied transport counters (the daemon passes its server stats).
  /// `extra` is spliced in as additional top-level sections — the
  /// daemon passes its membership/re-replication gauges (must be
  /// either empty or a ",\"key\":{...}" fragment).
  std::string MetricsJson(const NetworkStats& net, const RpcStats& rpc,
                          std::string_view extra = {}) const
      EXCLUDES(data_mu_);

  const NetAddress& self() const { return self_; }
  chord::ChordId id() const { return id_; }
  const NodeCounters& counters() const { return counters_; }

  /// A locked snapshot of every (bucket, descriptor), oldest first —
  /// for the poll-thread maintenance paths (re-replication sweeps,
  /// graceful handoff) that enumerate the store while workers insert.
  std::vector<std::pair<chord::ChordId, PartitionDescriptor>> SnapshotEntries()
      const EXCLUDES(data_mu_) {
    ReaderMutexLock lock(&data_mu_);
    return store_->store().EntriesOldestFirst();
  }
  /// What startup recovery rebuilt (zeros when wal_dir was empty/new).
  const store::RecoveryReport& recovery() const { return recovery_; }

 private:
  NodeService(const NetAddress& self, NodeServiceOptions options);

  Result<std::string> HandleStoreDescriptor(std::string_view body);
  Result<std::string> HandleProbeBucket(std::string_view body);
  Result<std::string> HandleStorePartition(std::string_view body);
  Result<std::string> HandleFetchPartition(std::string_view body);
  Result<std::string> HandleMembership(MsgType type, std::string_view body);
  Result<std::string> HandlePullBuckets(std::string_view body);
  Result<std::string> HandleHandoff(std::string_view body);
  Result<std::string> HandleMultiOp(std::string_view body);

  /// The redirect decision: with membership attached and >1 alive
  /// member, returns the bucket's owner when this node is not among
  /// its replicas (nullopt = serve locally).
  std::optional<NetAddress> RedirectFor(chord::ChordId bucket) const
      EXCLUDES(ring_mu_);

  /// Loads WAL + snapshot images from wal_dir (missing files = fresh).
  /// Takes data_mu_ exclusively: it runs before any worker exists, but
  /// it mutates the store and flushes, so it holds the same lock those
  /// operations always require — the annotation gate allows no
  /// "too early to race" exceptions.
  Status LoadDurable() EXCLUDES(data_mu_);
  /// Writes WAL + snapshot images to wal_dir after a mutation. A
  /// shared hold is enough (it only reads the images); mutating
  /// callers already hold data_mu_ exclusively, which satisfies this.
  Status SaveDurable() const REQUIRES_SHARED(data_mu_);

  NetAddress self_;
  chord::ChordId id_;
  NodeServiceOptions options_;
  LiveMembership* membership_ = nullptr;
  std::unique_ptr<store::DurableDescriptorStore> store_ GUARDED_BY(data_mu_);
  std::unordered_map<PartitionKey, Relation, PartitionKeyHash> partitions_
      GUARDED_BY(data_mu_);
  NodeCounters counters_;
  store::RecoveryReport recovery_;

  /// Guards store_ + partitions_ against concurrent data-path
  /// handlers: shared for the read-heavy probe/fetch side, exclusive
  /// for inserts and the durable flush that follows them. Membership
  /// handlers never take it (they touch neither).
  mutable SharedMutex data_mu_{lock_rank::kNodeData};

  /// The published redirect snapshot (see PublishRedirectRing);
  /// nullptr while fewer than two members are alive. ring_mu_ guards
  /// the pointer swap only — the pointee is immutable.
  mutable Mutex ring_mu_{lock_rank::kRedirectRing};
  std::shared_ptr<const RingView> redirect_ring_ GUARDED_BY(ring_mu_);
  std::atomic<bool> redirect_uses_snapshot_{false};
};

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_NODE_SERVICE_H_
