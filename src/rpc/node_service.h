// The server half of a deployable peer: one NodeService owns the
// peer's durable descriptor store and materialized partitions, and
// serves every message of the peer protocol (rpc/message.h) from a
// TcpServer's handler seam — or from a SimTransport's, the service
// does not know which.
//
// Ring membership is a static full view (RingView): every process is
// started with the same member list, each member's Chord identifier is
// the SHA-1 of its address, and an identifier's owner is its successor
// on the ring — the fully-converged routing state a long-running
// stabilized overlay reaches, the same steady state ChordRing::Make
// builds for the simulations.
#ifndef P2PRANGE_RPC_NODE_SERVICE_H_
#define P2PRANGE_RPC_NODE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chord/id.h"
#include "common/result.h"
#include "net/address.h"
#include "rel/relation.h"
#include "rpc/message.h"
#include "rpc/transport.h"
#include "store/bucket_store.h"
#include "store/durable_store.h"

namespace p2prange {
namespace rpc {

// --------------------------------------------------------------------------
// RingView: static full membership
// --------------------------------------------------------------------------

/// \brief A converged view of the ring: every member's address and
/// SHA-1-derived identifier, sorted. Owner(id) is the identifier's
/// successor — one-hop routing, as in a fully stabilized overlay.
class RingView {
 public:
  /// Builds the view; duplicate addresses are rejected.
  static Result<RingView> Make(const std::vector<NetAddress>& members);

  /// The member owning identifier `id` (its successor on the ring).
  const NetAddress& Owner(chord::ChordId id) const;

  /// Owner plus the next `count - 1` distinct successors — where
  /// replicated descriptors live (mirrors the simulator's placement).
  std::vector<NetAddress> Replicas(chord::ChordId id, int count) const;

  size_t size() const { return sorted_.size(); }

  /// Members in identifier order.
  const std::vector<std::pair<chord::ChordId, NetAddress>>& members() const {
    return sorted_;
  }

  /// The identifier a member address maps to.
  static chord::ChordId IdOf(const NetAddress& addr);

 private:
  explicit RingView(std::vector<std::pair<chord::ChordId, NetAddress>> sorted)
      : sorted_(std::move(sorted)) {}
  std::vector<std::pair<chord::ChordId, NetAddress>> sorted_;
};

// --------------------------------------------------------------------------
// Protocol bodies
// --------------------------------------------------------------------------
//
// Shared by the service (decoding requests, encoding responses) and
// RingClient (the reverse), so the two halves cannot drift apart.

struct StoreDescriptorRequest {
  chord::ChordId bucket = 0;
  PartitionDescriptor descriptor;
};
std::string EncodeStoreDescriptorRequest(const StoreDescriptorRequest& req);
Result<StoreDescriptorRequest> DecodeStoreDescriptorRequest(
    std::string_view body);

struct ProbeBucketRequest {
  chord::ChordId bucket = 0;
  PartitionKey query;
  MatchCriterion criterion = MatchCriterion::kJaccard;
};
std::string EncodeProbeBucketRequest(const ProbeBucketRequest& req);
Result<ProbeBucketRequest> DecodeProbeBucketRequest(std::string_view body);

/// A probe's reply: the bucket's best same-column match, if any.
std::string EncodeProbeBucketResponse(const std::optional<MatchCandidate>& c);
Result<std::optional<MatchCandidate>> DecodeProbeBucketResponse(
    std::string_view body);

struct StorePartitionRequest {
  PartitionKey key;
  Relation tuples;
};
std::string EncodeStorePartitionRequest(const StorePartitionRequest& req);
Result<StorePartitionRequest> DecodeStorePartitionRequest(
    std::string_view body);

std::string EncodeFetchPartitionRequest(const PartitionKey& key);
Result<PartitionKey> DecodeFetchPartitionRequest(std::string_view body);

// --------------------------------------------------------------------------
// NodeService
// --------------------------------------------------------------------------

struct NodeServiceOptions {
  /// Descriptor-store capacity; 0 = unbounded.
  size_t store_capacity = 0;
  store::DurabilityConfig durability;
  /// Directory for the WAL image and snapshot slots. Empty keeps
  /// durability in memory only (tests); non-empty persists every
  /// mutation so a restarted process recovers its descriptors.
  std::string wal_dir;
};

/// \brief Counters of one node's service activity.
struct NodeCounters {
  uint64_t pings = 0;
  uint64_t descriptors_stored = 0;
  uint64_t probes_served = 0;
  uint64_t probe_hits = 0;
  uint64_t partitions_stored = 0;
  uint64_t partitions_fetched = 0;
  uint64_t bad_requests = 0;
};

class NodeService {
 public:
  /// Creates the service; when options.wal_dir holds a previous
  /// incarnation's images, the store is recovered from them (see
  /// recovery()).
  static Result<std::unique_ptr<NodeService>> Make(const NetAddress& self,
                                                   NodeServiceOptions options);

  NodeService(const NodeService&) = delete;
  NodeService& operator=(const NodeService&) = delete;

  /// The protocol handler: plug into TcpServer or SimTransport.
  Result<std::string> Handle(MsgType type, std::string_view body);

  /// Single-line JSON: this node's counters + store gauges + the
  /// supplied transport counters (the daemon passes its server stats).
  std::string MetricsJson(const NetworkStats& net, const RpcStats& rpc) const;

  const NetAddress& self() const { return self_; }
  chord::ChordId id() const { return id_; }
  const NodeCounters& counters() const { return counters_; }
  const store::DurableDescriptorStore& store() const { return *store_; }
  /// What startup recovery rebuilt (zeros when wal_dir was empty/new).
  const store::RecoveryReport& recovery() const { return recovery_; }

 private:
  NodeService(const NetAddress& self, NodeServiceOptions options);

  Result<std::string> HandleStoreDescriptor(std::string_view body);
  Result<std::string> HandleProbeBucket(std::string_view body);
  Result<std::string> HandleStorePartition(std::string_view body);
  Result<std::string> HandleFetchPartition(std::string_view body);

  /// Loads WAL + snapshot images from wal_dir (missing files = fresh).
  Status LoadDurable();
  /// Writes WAL + snapshot images to wal_dir after a mutation.
  Status SaveDurable() const;

  NetAddress self_;
  chord::ChordId id_;
  NodeServiceOptions options_;
  std::unique_ptr<store::DurableDescriptorStore> store_;
  std::unordered_map<PartitionKey, Relation, PartitionKeyHash> partitions_;
  NodeCounters counters_;
  store::RecoveryReport recovery_;
};

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_NODE_SERVICE_H_
