#include "rpc/tcp_transport.h"

#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "rpc/tcp.h"

namespace p2prange {
namespace rpc {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Remaining budget as a poll() timeout, never negative, at least 1ms
/// while any budget is left so a nearly-expired deadline still gets
/// one chance to find bytes already in the kernel buffer.
int RemainingPollMs(Clock::time_point start, double deadline_ms) {
  const double left = deadline_ms - MsSince(start);
  if (left <= 0.0) return 0;
  return std::max(1, static_cast<int>(left));
}

constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

// --------------------------------------------------------------------------
// TcpServer
// --------------------------------------------------------------------------

Result<TcpServer> TcpServer::Listen(const NetAddress& bind_addr,
                                    Handler handler) {
  return Listen(bind_addr, std::move(handler), Options{});
}

Result<TcpServer> TcpServer::Listen(const NetAddress& bind_addr,
                                    Handler handler, Options options) {
  ASSIGN_OR_RETURN(ListenSocket ls, rpc::Listen(bind_addr));
  return TcpServer(ls.fd, ls.bound, std::move(handler), options);
}

TcpServer::TcpServer(TcpServer&& other) noexcept
    : listen_fd_(other.listen_fd_),
      addr_(other.addr_),
      handler_(std::move(other.handler_)),
      options_(other.options_),
      async_(std::move(other.async_)),
      conns_(std::move(other.conns_)),
      wake_fds_(std::move(other.wake_fds_)),
      next_conn_id_(other.next_conn_id_),
      stats_(other.stats_) {
  other.listen_fd_ = -1;
  other.conns_.clear();
  other.wake_fds_.clear();
}

TcpServer& TcpServer::operator=(TcpServer&& other) noexcept {
  if (this == &other) return *this;
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (auto& c : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  listen_fd_ = other.listen_fd_;
  addr_ = other.addr_;
  handler_ = std::move(other.handler_);
  options_ = other.options_;
  async_ = std::move(other.async_);
  conns_ = std::move(other.conns_);
  wake_fds_ = std::move(other.wake_fds_);
  next_conn_id_ = other.next_conn_id_;
  stats_ = other.stats_;
  other.listen_fd_ = -1;
  other.conns_.clear();
  other.wake_fds_.clear();
  return *this;
}

TcpServer::~TcpServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (auto& c : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
}

Status TcpServer::PollOnce(int timeout_ms) {
  ExclusiveUse::Scope use(&exclusive_, "TcpServer::PollOnce");
  if (listen_fd_ < 0) return Status::Internal("server not listening");

  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + wake_fds_.size() + 1);
  pollfd lp;
  lp.fd = listen_fd_;
  lp.events = POLLIN;
  lp.revents = 0;
  fds.push_back(lp);
  for (const auto& c : conns_) {
    pollfd p;
    p.fd = c->fd;
    p.events = POLLIN;
    if (c->out_pos < c->out.size()) p.events |= POLLOUT;
    p.revents = 0;
    fds.push_back(p);
  }
  // Wake fds ride at the tail: a readable one ends the poll() wait but
  // needs no handling here — its owner drains it after PollOnce.
  for (const int wfd : wake_fds_) {
    pollfd w;
    w.fd = wfd;
    w.events = POLLIN;
    w.revents = 0;
    fds.push_back(w);
  }

  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return Status::OK();  // signal: let the loop decide
    return Status::IOError(std::string("poll: ") + ::strerror(errno));
  }
  // A quiet timeout still falls through to SweepDeadlines and the
  // reap: a slow-loris or silent connection generates no events, so
  // the early-out would shield exactly the fds the deadlines target.
  if (n > 0 && (fds[0].revents & (POLLIN | POLLERR))) AcceptReady();

  // conns_ may grow during AcceptReady; only the entries between the
  // listener and the wake fds correspond to polled connections.
  const size_t num_polled = fds.size() - 1 - wake_fds_.size();
  for (size_t i = 1; i <= num_polled; ++i) {
    Conn& c = *conns_[i - 1];
    if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) c.dead = true;
    if (!c.dead && (fds[i].revents & POLLIN)) ReadReady(c);
    if (!c.dead && (fds[i].revents & POLLOUT)) WriteReady(c);
  }

  SweepDeadlines(Clock::now());

  for (auto& c : conns_) {
    // A handler response queued outside a POLLOUT wakeup: try to flush
    // opportunistically so short exchanges finish in one iteration.
    if (!c->dead && c->out_pos < c->out.size()) WriteReady(*c);
    if (c->dead) CloseConn(*c);
  }
  std::erase_if(conns_, [](const std::unique_ptr<Conn>& c) { return c->dead; });
  stats_.open_connections = conns_.size();
  return Status::OK();
}

void TcpServer::AcceptReady() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      // EAGAIN: drained the backlog. Anything else (e.g. a connection
      // reset before accept) is not the listener's problem.
      return;
    }
    if (options_.max_connections > 0 &&
        conns_.size() >= options_.max_connections) {
      // Shed at the door: an immediate close costs the caller one
      // failed exchange (Unavailable → failover) instead of letting
      // an unbounded fd population starve everyone.
      ::close(fd);
      ++stats_.accepts_shed;
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->opened_at = Clock::now();
    conn->last_activity = conn->opened_at;
    conns_.push_back(std::move(conn));
    ++stats_.connections_opened;
  }
}

void TcpServer::ReadReady(Conn& c) {
  char buf[kReadChunk];
  for (;;) {
    const ssize_t got = ::read(c.fd, buf, sizeof(buf));
    if (got > 0) {
      stats_.bytes_in += static_cast<uint64_t>(got);
      c.last_activity = Clock::now();
      c.parser.Feed(std::string_view(buf, static_cast<size_t>(got)));
      continue;
    }
    if (got == 0) {  // orderly shutdown from the peer
      c.dead = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    c.dead = true;  // reset or worse
    break;
  }
  DispatchFrames(c);
}

void TcpServer::DispatchFrames(Conn& c) {
  for (;;) {
    auto next = c.parser.Next();
    if (!next.ok()) {
      // Corrupt stream: nothing after a bad frame can be trusted.
      ++stats_.frame_errors;
      c.dead = true;
      return;
    }
    if (!next->has_value()) return;  // need more bytes
    c.got_frame = true;

    auto envelope = DecodeEnvelope(**next);
    if (!envelope.ok() || envelope->header.is_response) {
      // A malformed envelope (or a "response" arriving at a server)
      // carries no trustworthy call id to answer under.
      ++stats_.frame_errors;
      c.dead = true;
      return;
    }

    ++stats_.requests_served;
    if (async_ && async_(c.id, *envelope)) continue;  // response deferred
    auto response = handler_(envelope->header.type, envelope->body);

    RpcHeader rh;
    rh.call_id = envelope->header.call_id;
    rh.type = envelope->header.type;
    rh.is_response = true;
    std::string body;
    if (response.ok()) {
      rh.status = StatusCode::kOk;
      body = std::move(*response);
    } else {
      rh.status = response.status().code();
      body = response.status().message();
    }
    AppendFrame(EncodeEnvelope(rh, body), &c.out);
    EnforceWriteCap(c);
    if (c.dead) return;
  }
}

void TcpServer::WriteReady(Conn& c) {
  while (c.out_pos < c.out.size()) {
    // MSG_NOSIGNAL: a peer that reset the connection must surface as a
    // dead conn, not as a process-killing SIGPIPE.
    const ssize_t sent = ::send(c.fd, c.out.data() + c.out_pos,
                                c.out.size() - c.out_pos, MSG_NOSIGNAL);
    if (sent > 0) {
      stats_.bytes_out += static_cast<uint64_t>(sent);
      c.out_pos += static_cast<size_t>(sent);
      c.last_activity = Clock::now();
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (sent < 0 && errno == EINTR) continue;
    c.dead = true;
    return;
  }
  c.out.clear();
  c.out_pos = 0;
}

bool TcpServer::Respond(uint64_t conn_id, std::string_view envelope_payload) {
  ExclusiveUse::Scope use(&exclusive_, "TcpServer::Respond");
  for (auto& c : conns_) {
    if (c->id != conn_id || c->dead) continue;
    AppendFrame(envelope_payload, &c->out);
    // Flush opportunistically so a one-shot exchange completes without
    // waiting for the next POLLOUT wakeup; a dead conn stays in conns_
    // until PollOnce's reap, like every other death.
    WriteReady(*c);
    EnforceWriteCap(*c);
    return true;
  }
  return false;
}

void TcpServer::EnforceWriteCap(Conn& c) {
  if (c.dead || options_.max_out_buffer == 0) return;
  if (c.out.size() - c.out_pos <= options_.max_out_buffer) return;
  // Let the kernel absorb what it can before judging the reader.
  WriteReady(c);
  if (c.dead || c.out.size() - c.out_pos <= options_.max_out_buffer) return;
  ++stats_.slow_readers_evicted;
  // Abortive close: the reader's window is already full, so an orderly
  // FIN would queue behind the very backlog being shed and the kernel
  // would linger holding a full send buffer. RST releases it now.
  const linger lg{1, 0};
  (void)::setsockopt(c.fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  c.dead = true;
}

void TcpServer::SweepDeadlines(std::chrono::steady_clock::time_point now) {
  const bool idle_on = options_.read_idle_timeout_ms > 0.0;
  const bool loris_on = options_.first_frame_timeout_ms > 0.0;
  if (!idle_on && !loris_on) return;
  for (auto& c : conns_) {
    if (c->dead) continue;
    const double since_activity =
        std::chrono::duration<double, std::milli>(now - c->last_activity)
            .count();
    const double since_open =
        std::chrono::duration<double, std::milli>(now - c->opened_at).count();
    if (loris_on && !c->got_frame &&
        since_open > options_.first_frame_timeout_ms) {
      // Accepted long ago, never completed one frame: a trickler (or a
      // port scanner). Whatever it is, it holds an fd hostage.
      ++stats_.idle_closed;
      c->dead = true;
      continue;
    }
    if (idle_on && since_activity > options_.read_idle_timeout_ms) {
      ++stats_.idle_closed;
      c->dead = true;
    }
  }
}

void TcpServer::AddWakeFd(int fd) {
  ExclusiveUse::Scope use(&exclusive_, "TcpServer::AddWakeFd");
  wake_fds_.push_back(fd);
}

void TcpServer::CloseConn(Conn& c) {
  if (c.fd >= 0) {
    ::close(c.fd);
    c.fd = -1;
    ++stats_.connections_closed;
  }
  c.dead = true;
}

// --------------------------------------------------------------------------
// TcpTransport
// --------------------------------------------------------------------------

TcpTransport::~TcpTransport() {
  for (auto& [addr, conn] : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
}

Result<TcpTransport::Conn*> TcpTransport::GetConn(const NetAddress& to) {
  auto it = conns_.find(to);
  if (it != conns_.end()) {
    Conn& cached = it->second;
    // Between calls a server may have closed this cached connection
    // (idle timeout, restart). Reusing it would send a request nobody
    // reads and surface a bogus Unavailable — so with nothing in
    // flight, one zero-timeout poll checks for a pending EOF/RST and
    // reconnects transparently instead.
    if (cached.sent_at.empty() && cached.parked.empty()) {
      pollfd pfd;
      pfd.fd = cached.fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      if (::poll(&pfd, 1, 0) > 0 &&
          (pfd.revents & (POLLIN | POLLERR | POLLHUP))) {
        char probe = 0;
        const ssize_t got = ::recv(cached.fd, &probe, 1, MSG_PEEK);
        const bool alive_with_data =
            got > 0 ||
            (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK));
        if (!alive_with_data) {
          CloseConn(to);
          it = conns_.end();
        }
      }
    }
    if (it != conns_.end()) return &it->second;
  }

  auto fd = StartConnect(to, options_.bind_host);
  if (fd.ok()) {
    const Status fin = FinishConnect(*fd, options_.connect_timeout_ms);
    if (!fin.ok()) {
      ::close(*fd);
      fd = fin;
    }
  }
  if (!fd.ok()) {
    ++rpc_.connect_failures;
    MarkAlive(to, false);
    return fd.status();
  }

  Conn conn;
  conn.fd = *fd;
  auto [pos, inserted] = conns_.emplace(to, std::move(conn));
  (void)inserted;
  ++rpc_.connections_opened;
  rpc_.open_connections = conns_.size();
  return &pos->second;
}

void TcpTransport::CloseConn(const NetAddress& to) {
  auto it = conns_.find(to);
  if (it == conns_.end()) return;
  if (it->second.fd >= 0) ::close(it->second.fd);
  conns_.erase(it);
  ++rpc_.connections_closed;
  rpc_.open_connections = conns_.size();
}

void TcpTransport::Disconnect(const NetAddress& to) {
  ExclusiveUse::Scope use(&exclusive_, "TcpTransport::Disconnect");
  CloseConn(to);
}

void TcpTransport::PumpFor(double ms) {
  ExclusiveUse::Scope use(&exclusive_, "TcpTransport::PumpFor");
  const auto started = Clock::now();
  // A connection that dies mid-pump is left alone — its parked
  // responses must survive for their WaitCalls, which will rediscover
  // the death — but excluded from further polling here, or its
  // level-triggered HUP would turn the rest of the wait into a spin.
  std::vector<NetAddress> dead;
  for (;;) {
    const double left = ms - MsSince(started);
    if (left <= 0.0) return;
    std::vector<pollfd> fds;
    std::vector<NetAddress> addrs;
    for (const auto& [addr, conn] : conns_) {
      if (std::find(dead.begin(), dead.end(), addr) != dead.end()) continue;
      pollfd p;
      p.fd = conn.fd;
      p.events = POLLIN;
      p.revents = 0;
      fds.push_back(p);
      addrs.push_back(addr);
    }
    if (fds.empty()) {
      ::usleep(static_cast<useconds_t>(left * 1000.0));
      return;
    }
    const int n =
        ::poll(fds.data(), fds.size(), std::max(1, static_cast<int>(left)));
    if (n < 0 && errno != EINTR) return;
    if (n <= 0) continue;  // quiet wait; budget re-checked at loop top
    for (size_t i = 0; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLERR | POLLHUP))) continue;
      auto it = conns_.find(addrs[i]);
      if (it == conns_.end()) continue;
      if (!DrainReady(addrs[i], it->second).ok()) dead.push_back(addrs[i]);
    }
  }
}

Status TcpTransport::SendAll(Conn& c, std::string_view bytes,
                             double deadline_ms) {
  const auto start = Clock::now();
  size_t pos = 0;
  while (pos < bytes.size()) {
    // MSG_NOSIGNAL: see TcpServer::WriteReady.
    const ssize_t sent =
        ::send(c.fd, bytes.data() + pos, bytes.size() - pos, MSG_NOSIGNAL);
    if (sent > 0) {
      stats_.bytes += static_cast<uint64_t>(sent);
      rpc_.bytes_out += static_cast<uint64_t>(sent);
      pos += static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int wait = RemainingPollMs(start, deadline_ms);
      if (wait == 0) {
        ++rpc_.timeouts;
        return Status::IOError("send timed out");
      }
      pollfd pfd;
      pfd.fd = c.fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      const int n = ::poll(&pfd, 1, wait);
      if (n < 0 && errno != EINTR) {
        return Status::IOError(std::string("poll: ") + ::strerror(errno));
      }
      continue;
    }
    // EPIPE / ECONNRESET: the peer is gone.
    return Status::Unavailable(std::string("send: ") + ::strerror(errno));
  }
  return Status::OK();
}

Result<uint64_t> TcpTransport::StartCall(const NetAddress& to, MsgType type,
                                         std::string_view request) {
  ExclusiveUse::Scope use(&exclusive_, "TcpTransport::StartCall");
  ASSIGN_OR_RETURN(Conn * conn, GetConn(to));
  const uint64_t call_id = conn->next_call_id++;

  RpcHeader rh;
  rh.call_id = call_id;
  rh.type = type;
  rh.is_response = false;
  rh.status = StatusCode::kOk;
  std::string frame;
  AppendFrame(EncodeEnvelope(rh, request), &frame);

  conn->sent_at[call_id] = Clock::now();
  ++rpc_.requests_sent;
  ++stats_.messages;
  const Status sent = SendAll(*conn, frame, options_.default_deadline_ms);
  if (!sent.ok()) {
    ++stats_.failed_deliveries;
    if (sent.IsUnavailable()) {
      CloseConn(to);
      MarkAlive(to, false);
    } else {
      conn->sent_at.erase(call_id);
    }
    return sent;
  }
  return call_id;
}

Status TcpTransport::ReadUntil(const NetAddress& to, Conn& c, uint64_t call_id,
                               double deadline_ms, RpcEnvelope* out) {
  const auto start = Clock::now();
  char buf[kReadChunk];
  for (;;) {
    // Drain every complete frame already buffered.
    for (;;) {
      auto next = c.parser.Next();
      if (!next.ok()) {
        ++rpc_.frame_errors;
        CloseConn(to);
        return Status::IOError("corrupt frame from " + to.ToString() + ": " +
                               next.status().message());
      }
      if (!next->has_value()) break;
      auto envelope = DecodeEnvelope(**next);
      if (!envelope.ok() || !envelope->header.is_response) {
        ++rpc_.frame_errors;
        CloseConn(to);
        return Status::IOError("bad envelope from " + to.ToString());
      }
      const uint64_t id = envelope->header.call_id;
      ++rpc_.responses_received;
      rpc_.bytes_in += envelope->body.size();
      ++stats_.messages;
      if (id == call_id) {
        *out = std::move(*envelope);
        return Status::OK();
      }
      c.parked[id] = std::move(*envelope);
    }

    const int wait = RemainingPollMs(start, deadline_ms);
    if (wait == 0) {
      ++rpc_.timeouts;
      c.sent_at.erase(call_id);
      return Status::IOError("call " + std::to_string(call_id) + " to " +
                             to.ToString() + " missed its " +
                             std::to_string(deadline_ms) + "ms deadline");
    }
    pollfd pfd;
    pfd.fd = c.fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int n = ::poll(&pfd, 1, wait);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll: ") + ::strerror(errno));
    }
    if (n == 0) continue;  // deadline check at loop top

    const ssize_t got = ::read(c.fd, buf, sizeof(buf));
    if (got > 0) {
      stats_.bytes += static_cast<uint64_t>(got);
      c.parser.Feed(std::string_view(buf, static_cast<size_t>(got)));
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    if (got < 0 && errno == EINTR) continue;
    // 0 = orderly close; <0 = reset. Either way the peer is gone with
    // our call unanswered.
    CloseConn(to);
    MarkAlive(to, false);
    return Status::Unavailable("connection to " + to.ToString() +
                               " closed mid-call");
  }
}

Result<Transport::CallResult> TcpTransport::FinishCall(const NetAddress& to,
                                                       Conn& c,
                                                       uint64_t call_id,
                                                       RpcEnvelope envelope) {
  CallResult result;
  auto sent = c.sent_at.find(call_id);
  if (sent != c.sent_at.end()) {
    result.latency_ms = MsSince(sent->second);
    c.sent_at.erase(sent);
  }
  stats_.total_latency_ms += result.latency_ms;
  MarkAlive(to, true);

  if (envelope.header.status != StatusCode::kOk) {
    // The server's handler failed; surface its error as our own.
    return Status(envelope.header.status, std::move(envelope.body));
  }
  result.body = std::move(envelope.body);
  return result;
}

Result<Transport::CallResult> TcpTransport::WaitCall(const NetAddress& to,
                                                     uint64_t call_id,
                                                     double deadline_ms) {
  ExclusiveUse::Scope use(&exclusive_, "TcpTransport::WaitCall");
  auto it = conns_.find(to);
  if (it == conns_.end()) {
    return Status::IOError("no connection to " + to.ToString() +
                           " (call abandoned)");
  }
  Conn& conn = it->second;

  RpcEnvelope envelope;
  auto parked = conn.parked.find(call_id);
  if (parked != conn.parked.end()) {
    envelope = std::move(parked->second);
    conn.parked.erase(parked);
  } else {
    const Status st = ReadUntil(to, conn, call_id, deadline_ms, &envelope);
    if (!st.ok()) {
      ++stats_.failed_deliveries;
      return st;
    }
  }
  return FinishCall(to, conn, call_id, std::move(envelope));
}

Status TcpTransport::DrainReady(const NetAddress& to, Conn& c) {
  // One pass over whatever the kernel already buffered; never blocks
  // (poll with a zero timeout). A detected close is reported to the
  // caller *after* parking the frames that preceded it, so a response
  // followed by a FIN still reaches its call.
  char buf[kReadChunk];
  Status death = Status::OK();
  for (;;) {
    pollfd pfd;
    pfd.fd = c.fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int n = ::poll(&pfd, 1, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      death = Status::IOError(std::string("poll: ") + ::strerror(errno));
      break;
    }
    if (n == 0) break;  // nothing more buffered
    const ssize_t got = ::read(c.fd, buf, sizeof(buf));
    if (got > 0) {
      stats_.bytes += static_cast<uint64_t>(got);
      c.parser.Feed(std::string_view(buf, static_cast<size_t>(got)));
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (got < 0 && errno == EINTR) continue;
    // 0 = orderly close; <0 = reset.
    death = Status::Unavailable("connection to " + to.ToString() +
                                " closed mid-call");
    break;
  }
  for (;;) {
    auto next = c.parser.Next();
    if (!next.ok()) {
      ++rpc_.frame_errors;
      return Status::IOError("corrupt frame from " + to.ToString() + ": " +
                             next.status().message());
    }
    if (!next->has_value()) break;
    auto envelope = DecodeEnvelope(**next);
    if (!envelope.ok() || !envelope->header.is_response) {
      ++rpc_.frame_errors;
      return Status::IOError("bad envelope from " + to.ToString());
    }
    ++rpc_.responses_received;
    rpc_.bytes_in += envelope->body.size();
    ++stats_.messages;
    c.parked[envelope->header.call_id] = std::move(*envelope);
  }
  return death;
}

Result<std::optional<Transport::CallResult>> TcpTransport::PollCall(
    const NetAddress& to, uint64_t call_id) {
  ExclusiveUse::Scope use(&exclusive_, "TcpTransport::PollCall");
  auto it = conns_.find(to);
  if (it == conns_.end()) {
    return Status::IOError("no connection to " + to.ToString() +
                           " (call abandoned)");
  }
  Conn& conn = it->second;

  Status drained = Status::OK();
  auto parked = conn.parked.find(call_id);
  if (parked == conn.parked.end()) {
    drained = DrainReady(to, conn);
    parked = conn.parked.find(call_id);
  }
  if (parked != conn.parked.end()) {
    RpcEnvelope envelope = std::move(parked->second);
    conn.parked.erase(parked);
    ASSIGN_OR_RETURN(CallResult result,
                     FinishCall(to, conn, call_id, std::move(envelope)));
    return std::optional<CallResult>(std::move(result));
  }
  if (!drained.ok()) {
    ++stats_.failed_deliveries;
    CloseConn(to);
    if (drained.IsUnavailable()) MarkAlive(to, false);
    return drained;
  }
  // Still in flight: nothing charged, the deadline is the caller's to
  // keep (membership turns "unanswered past its budget" into a miss).
  return std::optional<CallResult>();
}

Result<Transport::CallResult> TcpTransport::Call(const NetAddress& from,
                                                 const NetAddress& to,
                                                 MsgType type,
                                                 std::string_view request,
                                                 const CallOptions& options) {
  ExclusiveUse::Scope use(&exclusive_, "TcpTransport::Call");
  (void)from;  // the socket's source address identifies the caller
  const double deadline = options.deadline_ms > 0.0
                              ? options.deadline_ms
                              : options_.default_deadline_ms;
  ASSIGN_OR_RETURN(uint64_t call_id, StartCall(to, type, request));
  return WaitCall(to, call_id, deadline);
}

Result<double> TcpTransport::DeliverBytes(const NetAddress& from,
                                          const NetAddress& to,
                                          uint64_t payload_bytes) {
  ExclusiveUse::Scope use(&exclusive_, "TcpTransport::DeliverBytes");
  // A real message: a ping padded to the requested size, so the bytes
  // actually cross the wire and the round trip is actually measured.
  const std::string padding(static_cast<size_t>(payload_bytes), '\0');
  ASSIGN_OR_RETURN(CallResult result, Call(from, to, MsgType::kPing, padding,
                                           CallOptions{}));
  return result.latency_ms;
}

}  // namespace rpc
}  // namespace p2prange
