#include "rpc/frame.h"

#include <cstring>

#include "common/crc32c.h"
#include "common/logging.h"

namespace p2prange {
namespace rpc {

namespace {

void PutU32Le(uint32_t v, std::string* out) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFF);
  b[1] = static_cast<char>((v >> 8) & 0xFF);
  b[2] = static_cast<char>((v >> 16) & 0xFF);
  b[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(b, 4);
}

uint32_t GetU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24);
}

}  // namespace

size_t AppendFrame(std::string_view payload, std::string* out) {
  CHECK(payload.size() <= kMaxFramePayload)  // p2plint: allow(P2P004): encode-side cap on a locally produced payload, not wire input
      << "frame payload of " << payload.size() << " bytes exceeds the "
      << kMaxFramePayload << "-byte cap";
  const size_t before = out->size();
  PutU32Le(static_cast<uint32_t>(payload.size()), out);
  PutU32Le(Crc32cMask(Crc32c(payload)), out);
  out->append(payload.data(), payload.size());
  return out->size() - before;
}

void FrameParser::Feed(std::string_view bytes) {
  if (poisoned_) return;  // the connection is already condemned
  // Compact lazily: only when the consumed prefix dominates the buffer,
  // so steady-state parsing is append + in-place scan.
  if (pos_ > 0 && pos_ >= buf_.size() / 2 && pos_ >= 4096) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

Result<std::optional<std::string>> FrameParser::Next() {
  if (poisoned_) {
    return Status::IOError("frame stream is poisoned by an earlier error");
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes) {
    return std::optional<std::string>(std::nullopt);
  }
  const uint32_t payload_len = GetU32Le(buf_.data() + pos_);
  const uint32_t stored_crc = GetU32Le(buf_.data() + pos_ + 4);
  if (payload_len > kMaxFramePayload) {
    // Reject on the declared length alone — never allocate for it.
    poisoned_ = true;
    return Status::IOError("frame declares " + std::to_string(payload_len) +
                           " payload bytes, above the " +
                           std::to_string(kMaxFramePayload) + " cap");
  }
  if (buf_.size() - pos_ - kFrameHeaderBytes < payload_len) {
    return std::optional<std::string>(std::nullopt);
  }
  const std::string_view payload(buf_.data() + pos_ + kFrameHeaderBytes,
                                 payload_len);
  if (Crc32cMask(Crc32c(payload)) != stored_crc) {
    poisoned_ = true;
    return Status::IOError("frame payload failed its CRC32C check");
  }
  pos_ += kFrameHeaderBytes + payload_len;
  return std::optional<std::string>(std::string(payload));
}

}  // namespace rpc
}  // namespace p2prange
