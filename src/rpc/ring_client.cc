#include "rpc/ring_client.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

#include "common/memory.h"
#include "rpc/membership.h"
#include "rpc/multi_op.h"

namespace p2prange {
namespace rpc {

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

RingClient::RingClient(RingView view, LshScheme lsh, RingClientOptions options)
    : view_(std::move(view)),
      lsh_(std::make_unique<LshScheme>(std::move(lsh))),
      options_(std::move(options)),
      transport_(options_.transport),
      retry_rng_(options_.retry_jitter_seed) {
  for (const auto& [id, addr] : view_.members()) {
    transport_.Register(addr);
  }
}

Result<std::unique_ptr<RingClient>> RingClient::Make(
    const std::vector<NetAddress>& members, RingClientOptions options) {
  RETURN_NOT_OK(options.fault.Validate());
  if (options.descriptor_replication < 1) {
    return Status::InvalidArgument("descriptor_replication must be >= 1");
  }
  ASSIGN_OR_RETURN(RingView view, RingView::Make(members));
  ASSIGN_OR_RETURN(LshScheme lsh, LshScheme::Make(options.lsh));
  return WrapUnique(
      new RingClient(std::move(view), std::move(lsh), std::move(options)));
}

Result<std::string> RingClient::CallWithPolicy(const NetAddress& to,
                                               MsgType type,
                                               const std::string& body) {
  const FaultPolicy& policy = options_.fault;
  const auto started = std::chrono::steady_clock::now();
  Transport::CallOptions call_options;
  call_options.deadline_ms = options_.deadline_ms;
  double wait_ms = policy.backoff_base_ms;
  Status last;
  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    if (attempt > 0) {
      // Real wall-clock backoff before the retransmission, spread by
      // the policy's jitter so synchronized clients desynchronize
      // instead of stampeding a recovering peer.
      const double sleep_ms =
          wait_ms * (1.0 - policy.backoff_jitter +
                     policy.backoff_jitter * retry_rng_.NextDouble());
      if (policy.op_budget_ms > 0.0 &&
          ElapsedMs(started) + sleep_ms >= policy.op_budget_ms) {
        return Status(last.code(),
                      last.message() + " (op budget of " +
                          std::to_string(policy.op_budget_ms) +
                          "ms exhausted after " + std::to_string(attempt) +
                          " attempts)");
      }
      // Pump, don't sleep: other pipelined calls' responses keep
      // draining (parked for their own waits) while this one backs
      // off, so one flaky peer cannot freeze the rest of a lookup.
      transport_.PumpFor(sleep_ms);
      wait_ms = std::min(wait_ms * policy.backoff_multiplier,
                         policy.backoff_max_ms);
      ++transport_.mutable_rpc_stats().retransmits;
    }
    if (policy.op_budget_ms > 0.0) {
      // The last attempt before the budget line gets only what's left
      // of it, so the operation as a whole lands inside the budget.
      const double remaining = policy.op_budget_ms - ElapsedMs(started);
      call_options.deadline_ms = std::min(options_.deadline_ms, remaining);
      if (call_options.deadline_ms <= 0.0) {
        return last.ok() ? Status::IOError("op budget exhausted") : last;
      }
    }
    auto result = transport_.Call(NetAddress{}, to, type, body, call_options);
    if (result.ok()) return std::move(result->body);
    last = result.status();
    // Only transient losses are worth retrying; an Unavailable peer
    // stays unavailable for the duration of this call.
    if (!last.IsIOError()) return last;
  }
  return last;
}

Status RingClient::RefreshView() {
  // A gossip exchange with an empty entry list is a pure read of the
  // peer's membership table. Any reachable member will do; a static
  // ring answers NotImplemented and the view is left untouched.
  Transport::CallOptions call_options;
  call_options.deadline_ms = options_.deadline_ms;
  std::vector<NetAddress> contacts;
  for (const auto& [id, addr] : view_.members()) contacts.push_back(addr);
  Status last = Status::Unavailable("no members to refresh the view from");
  for (const NetAddress& contact : contacts) {
    auto result = transport_.Call(NetAddress{}, contact, MsgType::kGossip,
                                  EncodeViewMessage({}), call_options);
    if (!result.ok()) {
      last = result.status();
      continue;
    }
    auto entries = DecodeViewMessage(result->body);
    if (!entries.ok()) {
      last = entries.status();
      continue;
    }
    std::vector<NetAddress> alive;
    for (const MemberEntry& e : *entries) {
      if (e.status == MemberStatus::kAlive) alive.push_back(e.addr);
    }
    auto fresh = RingView::Make(alive);
    if (!fresh.ok()) {
      last = fresh.status();
      continue;
    }
    for (const NetAddress& a : alive) transport_.Register(a);
    view_ = std::move(*fresh);
    return Status::OK();
  }
  return last;
}

void RingClient::LearnMember(const NetAddress& addr) {
  if (view_.Contains(addr)) return;
  std::vector<NetAddress> members{addr};
  for (const auto& [id, a] : view_.members()) members.push_back(a);
  auto fresh = RingView::Make(members);
  // An identifier collision keeps the old view: routing to the wrong
  // half of a collision is worse than one more redirect.
  if (!fresh.ok()) return;
  transport_.Register(addr);
  view_ = std::move(*fresh);
}

Status RingClient::Publish(const PartitionKey& key, const NetAddress& holder,
                           PublishStats* stats) {
  std::vector<uint32_t> ids;
  lsh_->IdentifiersInto(key.range, &ids);
  StoreDescriptorRequest req;
  req.descriptor.key = key;
  req.descriptor.holder = holder;
  for (const uint32_t id : ids) {
    req.bucket = id;
    const std::string body = EncodeStoreDescriptorRequest(req);
    // Distinct addresses that accepted the bucket — a set, not a
    // count, because a wrong-owner redirect can land on a member that
    // is itself one of our replicas and a redirected store must not
    // count as two copies.
    std::set<NetAddress> stored_at;
    Status last;
    for (const NetAddress& replica :
         view_.Replicas(id, options_.descriptor_replication)) {
      NetAddress target = replica;
      auto result = CallWithPolicy(target, MsgType::kStoreDescriptor, body);
      if (!result.ok() && result.status().IsOutOfRange()) {
        // The replica's view says this bucket lives elsewhere (a
        // member joined since our refresh): follow the redirect.
        if (const auto owner = ParseWrongOwner(result.status().message())) {
          LearnMember(*owner);
          target = *owner;
          if (stats != nullptr) ++stats->redirects;
          result = CallWithPolicy(target, MsgType::kStoreDescriptor, body);
        }
      }
      if (result.ok()) {
        stored_at.insert(target);
      } else {
        last = result.status();
      }
    }
    // Replication tolerates partial failure; a bucket stored nowhere
    // is a lost publish and must surface.
    if (stored_at.empty()) {
      return Status(last.code(), "bucket " + std::to_string(id) + " of " +
                                     key.ToString() +
                                     " stored nowhere: " + last.message());
    }
    if (stats != nullptr) {
      ++stats->buckets;
      stats->copies_stored += static_cast<int>(stored_at.size());
    }
  }
  return Status::OK();
}

Status RingClient::StorePartition(const PartitionKey& key,
                                  const Relation& tuples,
                                  const NetAddress& holder) {
  StorePartitionRequest req;
  req.key = key;
  req.tuples = tuples;
  return CallWithPolicy(holder, MsgType::kStorePartition,
                        EncodeStorePartitionRequest(req))
      .status();
}

Result<Relation> RingClient::FetchPartition(const PartitionKey& key,
                                            const NetAddress& holder) {
  ASSIGN_OR_RETURN(std::string body,
                   CallWithPolicy(holder, MsgType::kFetchPartition,
                                  EncodeFetchPartitionRequest(key)));
  wire::Decoder dec(body);
  ASSIGN_OR_RETURN(Relation rel, wire::DecodeRelation(&dec));
  return rel;
}

Result<LiveLookupOutcome> RingClient::Lookup(const PartitionKey& query) {
  LiveLookupOutcome out;
  lsh_->IdentifiersInto(query.range, &out.identifiers);
  const size_t l = out.identifiers.size();

  ProbeBucketRequest req;
  req.query = query;
  req.criterion = options_.criterion;

  // First wave, pipelined: every group's probe goes to its bucket's
  // primary owner before any response is awaited. Probes sharing an
  // owner coalesce into one kMultiOp frame (batch_probes); a batch of
  // one stays a plain kProbeBucket.
  struct Probe {
    NetAddress owner;
    std::string body;
    uint64_t call_id = 0;
    bool started = false;
    size_t batch = SIZE_MAX;  ///< index into batches, SIZE_MAX = solo
    size_t slot = 0;          ///< this probe's position in the batch
  };
  struct Batch {
    NetAddress owner;
    std::vector<size_t> groups;  ///< probe indices, in op order
    uint64_t call_id = 0;
    bool started = false;
    bool waited = false;
    /// Filled at wait time when the whole batch round trip succeeded.
    std::optional<MultiOpResponse> response;
  };
  std::vector<Probe> probes(l);
  std::vector<Batch> batches;
  for (size_t g = 0; g < l; ++g) {
    req.bucket = out.identifiers[g];
    probes[g].owner = view_.Owner(out.identifiers[g]);
    probes[g].body = EncodeProbeBucketRequest(req);
  }
  if (options_.batch_probes) {
    std::map<NetAddress, size_t> batch_of;
    for (size_t g = 0; g < l; ++g) {
      auto [it, fresh] = batch_of.try_emplace(probes[g].owner, batches.size());
      if (fresh) {
        batches.push_back(Batch{});
        batches.back().owner = probes[g].owner;
      }
      batches[it->second].groups.push_back(g);
    }
  }
  for (Batch& batch : batches) {
    if (batch.groups.size() < 2) continue;  // solo probes ship plain
    MultiOpRequest mreq;
    for (size_t i = 0; i < batch.groups.size(); ++i) {
      const size_t g = batch.groups[i];
      mreq.ops.push_back(MultiOp{MsgType::kProbeBucket, probes[g].body});
      probes[g].batch = static_cast<size_t>(&batch - batches.data());
      probes[g].slot = i;
    }
    auto started = transport_.StartCall(batch.owner, MsgType::kMultiOp,
                                        EncodeMultiOpRequest(mreq));
    if (started.ok()) {
      batch.call_id = *started;
      batch.started = true;
      out.batched_probes += static_cast<int>(batch.groups.size());
    }
  }
  for (size_t g = 0; g < l; ++g) {
    if (probes[g].batch != SIZE_MAX) continue;
    auto started = transport_.StartCall(probes[g].owner, MsgType::kProbeBucket,
                                        probes[g].body);
    if (started.ok()) {
      probes[g].call_id = *started;
      probes[g].started = true;
    }
  }

  std::vector<MatchCandidate> candidates;
  std::set<std::string> candidates_seen;
  bool refreshed = false;  // at most one view refresh per lookup

  auto collect = [&](const std::string& body) -> Status {
    ASSIGN_OR_RETURN(std::optional<MatchCandidate> candidate,
                     DecodeProbeBucketResponse(body));
    if (!candidate.has_value()) return Status::OK();
    const std::string key = candidate->descriptor.key.ToString() + "@" +
                            candidate->descriptor.holder.ToString();
    if (candidates_seen.insert(key).second) {
      candidates.push_back(std::move(*candidate));
    }
    return Status::OK();
  };

  for (size_t g = 0; g < l; ++g) {
    Probe& probe = probes[g];
    bool answered = false;
    const auto probe_started = std::chrono::steady_clock::now();

    if (probe.batch != SIZE_MAX) {
      Batch& batch = batches[probe.batch];
      if (batch.started && !batch.waited) {
        // First probe of the batch to be collected pays the wait; its
        // siblings read their slots from the decoded response.
        batch.waited = true;
        auto waited = transport_.WaitCall(batch.owner, batch.call_id,
                                          options_.deadline_ms);
        if (waited.ok()) {
          auto decoded = DecodeMultiOpResponse(waited->body);
          if (decoded.ok() && decoded->results.size() == batch.groups.size()) {
            batch.response = std::move(*decoded);
          }
        }
      }
      if (batch.response.has_value()) {
        const MultiOpResult& slot = batch.response->results[probe.slot];
        if (slot.status == StatusCode::kOk) {
          answered = collect(slot.body).ok();
        }
        // A non-OK slot (redirect, shed, decode error) falls through
        // to the per-replica path below, which knows how to follow
        // redirects and fail over.
      }
    } else if (probe.started) {
      auto waited = transport_.WaitCall(probe.owner, probe.call_id,
                                        options_.deadline_ms);
      if (waited.ok()) {
        answered = collect(waited->body).ok();
      }
    }

    // Retry the owner under the fault policy, then fail over to the
    // bucket's replicas — the live analogue of the simulator's
    // owner-then-successors probe sequence. A wrong-owner redirect
    // from any replica is followed (and its member learned) at once.
    auto probe_replicas = [&](bool* answered_out) {
      const auto replicas = view_.Replicas(out.identifiers[g],
                                           options_.descriptor_replication);
      for (size_t r = 0; r < replicas.size() && !*answered_out; ++r) {
        auto result =
            CallWithPolicy(replicas[r], MsgType::kProbeBucket, probe.body);
        if (!result.ok() && result.status().IsOutOfRange()) {
          if (const auto owner = ParseWrongOwner(result.status().message())) {
            LearnMember(*owner);
            ++out.redirects;
            result = CallWithPolicy(*owner, MsgType::kProbeBucket, probe.body);
          }
        }
        if (!result.ok()) continue;
        *answered_out = collect(*result).ok();
        if (*answered_out && r > 0) ++out.failovers;
      }
    };
    if (!answered) probe_replicas(&answered);

    // Every replica of this bucket failed: our view may predate a
    // wave of churn. Refresh it from the ring's gossip (once per
    // lookup) and give the probe one more round at the new owners.
    if (!answered && options_.refresh_on_failure && !refreshed) {
      refreshed = true;
      if (RefreshView().ok()) {
        ++out.view_refreshes;
        probe_replicas(&answered);
      }
    }

    if (!answered) ++out.probes_failed;
    // Wall clock this probe actually consumed, whatever path it took —
    // the first-wave wait, retries with their backoff, failover,
    // redirects, the view refresh. (Summing transport round-trip
    // latencies instead misses every one of those but the first.)
    out.latency_ms += ElapsedMs(probe_started);
  }

  // Same ranking rule as the simulator: higher similarity first,
  // exactness breaks ties, stable within.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const MatchCandidate& a, const MatchCandidate& b) {
                     if (a.similarity != b.similarity) {
                       return a.similarity > b.similarity;
                     }
                     return a.exact && !b.exact;
                   });
  out.ranked = std::move(candidates);
  return out;
}

Result<double> RingClient::Ping(const NetAddress& node) {
  Transport::CallOptions call_options;
  call_options.deadline_ms = options_.deadline_ms;
  ASSIGN_OR_RETURN(Transport::CallResult result,
                   transport_.Call(NetAddress{}, node, MsgType::kPing, "",
                                   call_options));
  return result.latency_ms;
}

Result<std::string> RingClient::NodeMetrics(const NetAddress& node) {
  return CallWithPolicy(node, MsgType::kMetrics, "");
}

}  // namespace rpc
}  // namespace p2prange
