// Descriptor re-replication on membership change (DESIGN.md §9).
//
// Consumes LiveMembership's view-change events and keeps every
// descriptor's replica set equal to what the *current* alive ring
// prescribes: when a member joins, the descriptors of arcs it now
// serves are pushed to it; when a member dies or leaves, the surviving
// replicas push the orphaned arcs to the promoted successors. Both
// directions ride the same kHandoff bulk message, applied durably at
// the receiver (DurableStore insert + flush), so a subsequent crash of
// the new replica still recovers the handed-off descriptors.
//
// Transfers are planned as per-destination jobs and drained one job
// per Tick() with a short deadline, so the daemon's poll loop stays
// responsive under churn; failed jobs retry a bounded number of times
// (the next view change replans anyway).
//
// The joiner's side of the protocol is PullPartition(): after a
// successful Join, the new member pulls the (predecessor, self] arc it
// now owns from its successor (kPullBuckets) instead of waiting for
// the push sweep to find it.
#ifndef P2PRANGE_RPC_REREPLICATE_H_
#define P2PRANGE_RPC_REREPLICATE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/address.h"
#include "rpc/membership.h"
#include "rpc/node_service.h"
#include "rpc/tcp_transport.h"

namespace p2prange {
namespace rpc {

struct RereplicateConfig {
  /// Replicas per descriptor the ring runs with (owner + successors).
  int replication = 2;
  /// Descriptors per kHandoff message; bounds frame sizes under churn.
  size_t batch_entries = 512;
  /// Wire deadline of one push/pull call.
  double call_deadline_ms = 500.0;
  /// Attempts per job before it is dropped (a later view change will
  /// replan anything still missing).
  int max_attempts = 3;
  /// Wall-clock budget of one HandoffAll() drain. The graceful-leave
  /// path runs while SIGTERM is being serviced: if the successor is
  /// unreachable, the drain must give up and let the exit proceed —
  /// the WAL still holds everything, and the survivors' failure
  /// detector replans the arcs. 0 disables the bound.
  double handoff_deadline_ms = 5000.0;

  Status Validate() const {
    if (replication < 1) {
      return Status::InvalidArgument("replication must be >= 1");
    }
    if (batch_entries < 1) {
      return Status::InvalidArgument("batch_entries must be >= 1");
    }
    if (call_deadline_ms <= 0.0) {
      return Status::InvalidArgument("call_deadline_ms must be > 0");
    }
    if (max_attempts < 1) {
      return Status::InvalidArgument("max_attempts must be >= 1");
    }
    if (handoff_deadline_ms < 0.0) {
      return Status::InvalidArgument("handoff_deadline_ms must be >= 0");
    }
    return Status::OK();
  }
};

struct RereplicateCounters {
  uint64_t sweeps = 0;              ///< view changes planned for
  uint64_t jobs_planned = 0;        ///< per-destination batches queued
  uint64_t batches_sent = 0;        ///< kHandoff pushes acknowledged
  uint64_t descriptors_pushed = 0;  ///< descriptors those pushes held
  uint64_t push_failures = 0;       ///< failed attempts (incl. retries)
  uint64_t jobs_dropped = 0;        ///< jobs that ran out of attempts
  uint64_t descriptors_pulled = 0;  ///< via PullPartition

  std::string ToJson() const;
};

class Rereplicator {
 public:
  /// All pointers must outlive this object.
  static Result<Rereplicator> Make(NodeService* service,
                                   LiveMembership* membership,
                                   TcpTransport* transport,
                                   RereplicateConfig config);

  Rereplicator(Rereplicator&&) = default;
  Rereplicator(const Rereplicator&) = delete;
  Rereplicator& operator=(const Rereplicator&) = delete;
  Rereplicator& operator=(Rereplicator&&) = delete;

  /// Drains pending membership changes into transfer jobs and sends at
  /// most one job (bounded work per event-loop iteration).
  void Tick();

  /// Joiner bootstrap: pulls the (predecessor, self] arc from the
  /// successor into the local durable store.
  Status PullPartition();

  /// Graceful-leave handoff: pushes every local descriptor to the
  /// successor (all batches, synchronously — the process is exiting).
  /// Bounded by handoff_deadline_ms of wall clock: an unreachable
  /// successor aborts the drain instead of stalling the SIGTERM path.
  Status HandoffAll();

  bool idle() const { return jobs_.empty(); }
  const RereplicateCounters& counters() const { return counters_; }

 private:
  struct Job {
    NetAddress to;
    HandoffBatch batch;
    int attempts = 0;
  };

  Rereplicator(NodeService* service, LiveMembership* membership,
               TcpTransport* transport, RereplicateConfig config)
      : service_(service),
        membership_(membership),
        transport_(transport),
        config_(config) {}

  /// Plans the pushes one view change requires: for every local
  /// descriptor whose replica set gained members not in the pre-change
  /// set, batch it toward the newcomers.
  void PlanSweep(const ViewChange& change);
  Status SendJob(Job& job, double deadline_ms);

  NodeService* service_;
  LiveMembership* membership_;
  TcpTransport* transport_;
  RereplicateConfig config_;
  std::deque<Job> jobs_;
  RereplicateCounters counters_;
};

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_REREPLICATE_H_
