// A snapshot of ring membership: every member's address and
// SHA-1-derived identifier, sorted by identifier.
//
// Owner(id) is the identifier's successor — one-hop routing, as in a
// fully stabilized overlay. The view itself is immutable; dynamic
// membership (rpc/membership.h) rebuilds it from the current alive set
// whenever the overlay changes, and RingClient swaps its copy when
// gossip or a wrong-owner redirect teaches it something new.
#ifndef P2PRANGE_RPC_RING_VIEW_H_
#define P2PRANGE_RPC_RING_VIEW_H_

#include <utility>
#include <vector>

#include "chord/id.h"
#include "common/result.h"
#include "net/address.h"

namespace p2prange {
namespace rpc {

/// \brief A converged view of the ring: every member's address and
/// SHA-1-derived identifier, sorted. Owner(id) is the identifier's
/// successor — one-hop routing, as in a fully stabilized overlay.
class RingView {
 public:
  /// Builds the view; duplicate addresses are rejected.
  static Result<RingView> Make(const std::vector<NetAddress>& members);

  /// The member owning identifier `id` (its successor on the ring).
  const NetAddress& Owner(chord::ChordId id) const;

  /// Owner plus the next `count - 1` distinct successors — where
  /// replicated descriptors live (mirrors the simulator's placement).
  std::vector<NetAddress> Replicas(chord::ChordId id, int count) const;

  /// The member strictly after `id` on the ring (wrapping). With one
  /// member this is that member — a node is its own successor.
  const NetAddress& SuccessorOf(chord::ChordId id) const;

  /// The member strictly before `id` on the ring (wrapping).
  const NetAddress& PredecessorOf(chord::ChordId id) const;

  /// True iff `addr` is a member of this view.
  bool Contains(const NetAddress& addr) const;

  size_t size() const { return sorted_.size(); }

  /// Members in identifier order.
  const std::vector<std::pair<chord::ChordId, NetAddress>>& members() const {
    return sorted_;
  }

  /// The identifier a member address maps to.
  static chord::ChordId IdOf(const NetAddress& addr);

 private:
  explicit RingView(std::vector<std::pair<chord::ChordId, NetAddress>> sorted)
      : sorted_(std::move(sorted)) {}
  std::vector<std::pair<chord::ChordId, NetAddress>> sorted_;
};

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_RING_VIEW_H_
