#include "rpc/executor.h"

#include <fcntl.h>
#include <unistd.h>

#include <utility>

#include "common/memory.h"

namespace p2prange {
namespace rpc {

Result<std::unique_ptr<Executor>> Executor::Make(const Options& options) {
  if (options.workers < 1) {
    return Status::InvalidArgument("executor needs at least one worker");
  }
  if (options.queue_depth == 0) {
    return Status::InvalidArgument("executor queue depth must be positive");
  }
  int fds[2] = {-1, -1};
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    return Status::Internal("pipe2 failed for executor doorbell");
  }
  std::unique_ptr<Executor> exec =
      WrapUnique(new Executor(options, fds[0], fds[1]));
  {
    MutexLock lock(&exec->mu_);
    exec->workers_.reserve(static_cast<size_t>(options.workers));
    for (int i = 0; i < options.workers; ++i) {
      exec->workers_.emplace_back([raw = exec.get()] { raw->WorkerLoop(); });
    }
  }
  return exec;
}

Executor::~Executor() {
  Shutdown();
  ::close(doorbell_rd_);
  ::close(doorbell_wr_);
}

bool Executor::TrySubmit(uint64_t tag, WorkFn work) {
  {
    MutexLock lock(&mu_);
    if (stopping_ || work_.size() >= options_.queue_depth) {
      ++stats_.shed;
      return false;
    }
    work_.push_back(Job{tag, std::move(work)});
    ++stats_.submitted;
    if (work_.size() > stats_.max_queue) stats_.max_queue = work_.size();
  }
  work_ready_.Signal();
  return true;
}

std::vector<Executor::Completion> Executor::DrainCompletions() {
  // Clear the doorbell first: a worker ringing after this read but
  // before the swap below leaves a stray byte, which only costs one
  // spurious (harmless) drain on the next poll iteration.
  char buf[64];
  while (::read(doorbell_rd_, buf, sizeof(buf)) > 0) {
  }
  std::vector<Completion> done;
  MutexLock lock(&mu_);
  done.swap(completions_);
  return done;
}

void Executor::Shutdown() {
  // Exactly one caller swaps the threads out and joins them; racing
  // callers find workers_ already empty and block on shutdown_done_
  // until the join finishes, so nobody returns while a worker might
  // still be touching this object.
  std::vector<std::thread> to_join;
  {
    MutexLock lock(&mu_);
    stopping_ = true;
    work_ready_.SignalAll();
    if (workers_.empty()) {
      while (!joined_) shutdown_done_.Wait(&mu_);
      return;
    }
    to_join.swap(workers_);
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
  MutexLock lock(&mu_);
  joined_ = true;
  shutdown_done_.SignalAll();
}

ExecutorStats Executor::snapshot() const {
  MutexLock lock(&mu_);
  return stats_;
}

void Executor::WorkerLoop() {
  for (;;) {
    Job job;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && work_.empty()) work_ready_.Wait(&mu_);
      if (work_.empty()) return;  // stopping, queue drained
      job = std::move(work_.front());
      work_.pop_front();
    }
    std::string payload = job.work();
    {
      MutexLock lock(&mu_);
      completions_.push_back(Completion{job.tag, std::move(payload)});
      ++stats_.completed;
    }
    RingDoorbell();
  }
}

void Executor::RingDoorbell() {
  // One byte per completion batch is plenty: the pipe is level-
  // triggered readable until drained, so a full pipe (EAGAIN) is not a
  // lost wakeup — poll() already sees it readable.
  const char byte = 1;
  ssize_t rc = ::write(doorbell_wr_, &byte, 1);
  (void)rc;
}

}  // namespace rpc
}  // namespace p2prange
