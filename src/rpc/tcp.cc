#include "rpc/tcp.h"

#include <fcntl.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <string>

namespace p2prange {
namespace rpc {

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IOError(what + ": " + ::strerror(err));
}

}  // namespace

Result<NetAddress> ParseHostPort(std::string_view s) {
  unsigned a = 0, b = 0, c = 0, d = 0, port = 0;
  char tail = 0;
  const std::string buf(s);
  const int n =
      std::sscanf(buf.c_str(), "%u.%u.%u.%u:%u%c", &a, &b, &c, &d, &port, &tail);
  if (n != 5 || a > 255 || b > 255 || c > 255 || d > 255 || port > 65535) {
    return Status::InvalidArgument("expected \"a.b.c.d:port\", got \"" + buf +
                                   "\"");
  }
  NetAddress addr;
  addr.host = (a << 24) | (b << 16) | (c << 8) | d;
  addr.port = static_cast<uint16_t>(port);
  return addr;
}

sockaddr_in ToSockaddr(const NetAddress& addr) {
  sockaddr_in sa;
  ::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(addr.host);
  sa.sin_port = htons(addr.port);
  return sa;
}

NetAddress FromSockaddr(const sockaddr_in& sa) {
  NetAddress addr;
  addr.host = ntohl(sa.sin_addr.s_addr);
  addr.port = ntohs(sa.sin_port);
  return addr;
}

Status MakeNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL, O_NONBLOCK)", errno);
  }
  return Status::OK();
}

Result<ListenSocket> Listen(const NetAddress& bind_addr, int backlog) {
  // SOCK_NONBLOCK | SOCK_CLOEXEC at creation (lint P2P006): no window
  // where a fork (daemon harnesses fork-exec freely) inherits the fd
  // or a blocking call sneaks in before fcntl.
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa = ToSockaddr(bind_addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("bind " + bind_addr.ToString(), err);
  }
  if (::listen(fd, backlog) < 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("listen " + bind_addr.ToString(), err);
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("getsockname", err);
  }
  ListenSocket out;
  out.fd = fd;
  out.bound = FromSockaddr(bound);
  return out;
}

Result<int> StartConnect(const NetAddress& to, uint32_t source_host) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (source_host != 0) {
    NetAddress src;
    src.host = source_host;
    src.port = 0;  // ephemeral — only the source IP matters
    sockaddr_in ssa = ToSockaddr(src);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&ssa), sizeof(ssa)) < 0) {
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("bind source " + src.ToString(), err);
    }
  }
  sockaddr_in sa = ToSockaddr(to);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0) {
    return fd;  // connected immediately (loopback fast path)
  }
  if (errno != EINPROGRESS) {
    const int err = errno;
    ::close(fd);
    return Status::Unavailable("connect " + to.ToString() + ": " +
                               ::strerror(err));
  }
  return fd;
}

Status FinishConnect(int fd, int timeout_ms) {
  pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLOUT;
  pfd.revents = 0;
  const int n = ::poll(&pfd, 1, timeout_ms);
  if (n < 0) return ErrnoStatus("poll", errno);
  if (n == 0) return Status::IOError("connect timed out");
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return ErrnoStatus("getsockopt(SO_ERROR)", errno);
  }
  if (err != 0) {
    return Status::Unavailable(std::string("connect: ") + ::strerror(err));
  }
  return Status::OK();
}

}  // namespace rpc
}  // namespace p2prange
