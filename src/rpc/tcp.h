// Thin POSIX socket helpers shared by TcpTransport and TcpServer:
// address parsing/conversion, non-blocking setup, listen and connect.
// Everything returns Status/Result — no exceptions, no errno leaking
// past this layer.
#ifndef P2PRANGE_RPC_TCP_H_
#define P2PRANGE_RPC_TCP_H_

#include <netinet/in.h>

#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "net/address.h"

namespace p2prange {
namespace rpc {

/// \brief Parses "a.b.c.d:port" (the NetAddress::ToString format).
Result<NetAddress> ParseHostPort(std::string_view s);

sockaddr_in ToSockaddr(const NetAddress& addr);
NetAddress FromSockaddr(const sockaddr_in& sa);

/// Sets O_NONBLOCK on `fd`.
Status MakeNonBlocking(int fd);

struct ListenSocket {
  int fd = -1;
  /// The actually bound address — resolves port 0 to the kernel's
  /// ephemeral choice.
  NetAddress bound;
};

/// \brief Creates a non-blocking listening socket on `bind_addr`
/// (SO_REUSEADDR set, so a smoke harness can reuse just-freed ports).
Result<ListenSocket> Listen(const NetAddress& bind_addr, int backlog = 64);

/// \brief Starts a non-blocking connect to `to`; returns the fd with
/// the connect possibly still in progress (finish with poll(POLLOUT) +
/// SO_ERROR). The caller owns the fd. A non-zero `source_host` binds
/// the socket's source address (ephemeral port) before connecting, so
/// a daemon's outbound traffic carries its identity — the chaos proxy
/// classifies directed links by source IP (DESIGN.md §11).
Result<int> StartConnect(const NetAddress& to, uint32_t source_host = 0);

/// \brief Waits up to `timeout_ms` for a StartConnect fd to finish;
/// Unavailable on refusal/unroutability, IOError on timeout.
Status FinishConnect(int fd, int timeout_ms);

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_TCP_H_
