// Worker-pool executor for the node daemon's data path.
//
// The daemon's poll loop stays the only socket owner; what moves off
// it is the handler work. The loop submits each decoded request as a
// job tagged with its connection; a fixed pool of worker threads
// drains a bounded work queue, runs the job, and pushes the encoded
// response onto a completion queue. A pipe doorbell makes completions
// visible to poll(): workers write one byte after pushing, the loop
// polls the read end alongside its sockets, and on readable drains
// both the pipe and the completion queue, then writes each response
// back on the connection that asked for it.
//
// The work queue is bounded on purpose — it is the daemon's admission
// controller. TrySubmit never blocks and never grows the queue past
// `queue_depth`; when the pool is saturated the submit fails and the
// caller sheds the request with ResourceExhausted instead of letting
// latency grow without bound. Shutdown stops intake, lets the workers
// finish every job already admitted, and joins them.
//
// Thread-safety: TrySubmit / DrainCompletions / doorbell_fd / stats
// may be called from the poll thread while workers run. All shared
// state is annotated GUARDED_BY(mu_); clang's -Wthread-safety proves
// every access happens under the lock, and Shutdown is safe to race
// against itself (the first caller joins, later callers wait).
#ifndef P2PRANGE_RPC_EXECUTOR_H_
#define P2PRANGE_RPC_EXECUTOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/sync.h"

namespace p2prange {
namespace rpc {

/// \brief Executor health counters. `snapshot()` is safe to call from
/// the poll thread while workers run.
struct ExecutorStats {
  uint64_t submitted = 0;    ///< jobs accepted into the work queue
  uint64_t shed = 0;         ///< TrySubmit refusals (queue was full)
  uint64_t completed = 0;    ///< jobs whose result reached the completion queue
  uint64_t max_queue = 0;    ///< high-water mark of the work queue
};

/// \brief Bounded work queue drained by N worker threads, with a
/// completion queue and a pipe doorbell for poll()-based pickup.
class Executor {
 public:
  struct Options {
    /// Worker threads. Must be >= 1 (a value of 0 means "no executor";
    /// callers dispatch inline and never construct one).
    int workers = 4;
    /// Jobs the work queue may hold; beyond it TrySubmit sheds.
    size_t queue_depth = 128;
  };

  /// A unit of handler work. Runs on a worker thread; the returned
  /// bytes surface in DrainCompletions under the job's tag.
  using WorkFn = std::function<std::string()>;

  /// \brief One finished job: the submitter's tag and the WorkFn's
  /// return value, ready to write back.
  struct Completion {
    uint64_t tag = 0;
    std::string payload;
  };

  /// Spawns the pool. Fails (Internal) only if the doorbell pipe
  /// cannot be created; rejects workers < 1 / queue_depth == 0 with
  /// InvalidArgument.
  static Result<std::unique_ptr<Executor>> Make(const Options& options);

  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// \brief Admits one job, or refuses because the queue is full.
  /// Never blocks. Returns false on refusal — the caller must shed
  /// (the job is dropped, not queued).
  bool TrySubmit(uint64_t tag, WorkFn work) EXCLUDES(mu_);

  /// \brief Takes every finished job, clearing the doorbell. Call when
  /// poll() reports the doorbell readable (calling it spuriously is
  /// harmless).
  std::vector<Completion> DrainCompletions() EXCLUDES(mu_);

  /// Read end of the doorbell pipe: becomes readable whenever a
  /// completion is pending. Poll it alongside the sockets.
  int doorbell_fd() const { return doorbell_rd_; }

  /// \brief Stops intake, finishes every admitted job, joins the
  /// workers. Idempotent and safe to call from several threads at
  /// once: exactly one caller performs the join, the rest block until
  /// it finishes. Also run by the destructor. Completions produced by
  /// the final jobs remain drainable afterwards.
  void Shutdown() EXCLUDES(mu_);

  ExecutorStats snapshot() const EXCLUDES(mu_);

 private:
  struct Job {
    uint64_t tag = 0;
    WorkFn work;
  };

  Executor(Options options, int doorbell_rd, int doorbell_wr)
      : options_(options), doorbell_rd_(doorbell_rd), doorbell_wr_(doorbell_wr) {}

  void WorkerLoop() EXCLUDES(mu_);
  void RingDoorbell();

  const Options options_;
  const int doorbell_rd_;
  const int doorbell_wr_;

  mutable Mutex mu_{lock_rank::kExecutor};
  CondVar work_ready_;
  CondVar shutdown_done_;
  std::deque<Job> work_ GUARDED_BY(mu_);
  std::vector<Completion> completions_ GUARDED_BY(mu_);
  ExecutorStats stats_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  bool joined_ GUARDED_BY(mu_) = false;

  /// Swapped out (under mu_) by the one Shutdown caller that joins, so
  /// a racing Shutdown never touches a thread mid-join.
  std::vector<std::thread> workers_ GUARDED_BY(mu_);
};

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_EXECUTOR_H_
