// Length-prefixed CRC32C frames: the unit of transmission on a TCP
// connection.
//
// Same frame layout the durable store already uses on "disk"
// (store/wal.h), reused on the wire so one checksum discipline covers
// both:
//
//   [payload_len u32 LE][masked crc32c(payload) u32 LE][payload bytes]
//
// The parser is incremental — TCP hands over arbitrary byte chunks —
// and hostile-input safe: a declared length beyond kMaxFramePayload is
// rejected *before* any allocation, a short buffer simply waits for
// more bytes, and a CRC mismatch poisons the parser (the connection
// must be dropped; nothing after a corrupt frame can be trusted).
#ifndef P2PRANGE_RPC_FRAME_H_
#define P2PRANGE_RPC_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace p2prange {
namespace rpc {

/// Fixed bytes preceding every payload.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Upper bound on one frame's payload (16 MiB). Caps what a hostile
/// or corrupt length prefix can make the receiver allocate.
inline constexpr size_t kMaxFramePayload = 16u << 20;

/// \brief Appends one framed payload to `out`. `payload` must not
/// exceed kMaxFramePayload (CHECKed). Returns bytes appended.
size_t AppendFrame(std::string_view payload, std::string* out);

/// \brief Incremental frame decoder over a byte stream.
class FrameParser {
 public:
  /// Appends raw bytes received from the stream.
  void Feed(std::string_view bytes);

  /// \brief Extracts the next complete frame's payload.
  ///  - a validated payload when a whole frame is buffered,
  ///  - nullopt when more bytes are needed,
  ///  - an error Status on an oversized length prefix or CRC mismatch;
  ///    the parser stays poisoned and every later call fails too.
  Result<std::optional<std::string>> Next();

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buf_.size() - pos_; }

  bool poisoned() const { return poisoned_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
  bool poisoned_ = false;
};

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_FRAME_H_
