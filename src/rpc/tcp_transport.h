// The real network: length-prefixed CRC32C frames over TCP.
//
// TcpServer is the daemon side — a poll() event loop over a
// non-blocking listen socket and per-connection read/write buffers;
// each complete frame is decoded into an RPC envelope and dispatched
// to one handler function, and the response is framed back on the same
// connection under the request's call id.
//
// TcpTransport is the caller side and the second implementation of the
// Transport interface: per-destination connections opened with
// non-blocking connect, requests multiplexed by call id (several calls
// may be in flight on one connection; responses match back in any
// order), wall-clock deadlines enforced with poll timeouts, and real
// byte/latency accounting in the same NetworkStats/RpcStats counters
// the simulator fills.
//
// Error discipline mirrors the simulator's, so FaultPolicy semantics
// carry over unchanged: Unavailable = the peer is unreachable (connect
// refused/reset — retrying is futile until it returns), IOError = the
// exchange failed transiently (deadline missed, stream corrupted —
// retrying may succeed).
//
// Threading: neither class is thread-safe; each belongs to one thread
// at a time (the daemon's event loop, or one client). The contract is
// enforced, not just documented: every public entry point opens an
// ExclusiveUse::Scope (common/sync.h), so two threads inside the same
// object CHECK-abort naming the entry points instead of corrupting a
// buffer. Handoff between threads (start the server on a helper
// thread, join it, continue on the main thread) stays legal.
#ifndef P2PRANGE_RPC_TCP_TRANSPORT_H_
#define P2PRANGE_RPC_TCP_TRANSPORT_H_

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "rpc/frame.h"
#include "rpc/message.h"
#include "rpc/transport.h"

namespace p2prange {
namespace rpc {

/// \brief Poll-loop RPC server over one listening socket.
class TcpServer {
 public:
  /// Serves one decoded request; returns the response body or an error
  /// (sent back to the caller as a non-OK envelope, never dropped).
  using Handler =
      std::function<Result<std::string>(MsgType, std::string_view body)>;

  /// First look at every decoded request, for daemons that move
  /// handler work off the poll thread: called with the connection's
  /// stable id and the request envelope. Returning true claims the
  /// request — the server sends nothing and the response must arrive
  /// later through Respond() under the same conn id. Returning false
  /// falls through to the synchronous Handler.
  using AsyncDispatch =
      std::function<bool(uint64_t conn_id, const RpcEnvelope& env)>;

  /// \brief Resource-hardening knobs (DESIGN.md §11). Defaults are
  /// production-shaped: generous enough that a healthy client never
  /// trips them, finite so a hostile or wedged one cannot pin memory
  /// or fds forever.
  struct Options {
    /// Most unsent response bytes one connection may buffer before it
    /// is evicted as a slow reader (0 = unbounded). Must comfortably
    /// exceed the largest single response frame.
    size_t max_out_buffer = 32 * 1024 * 1024;
    /// Close a connection this long without any byte read from or
    /// written to it (0 = never). Clients detect the idle close and
    /// transparently reconnect (TcpTransport::GetConn).
    double read_idle_timeout_ms = 0.0;
    /// Close a connection that has not completed one frame this long
    /// after accept (0 = never): the slow-loris guard — a trickler
    /// feeding a byte per poll never completes a frame but always
    /// looks "active" to the idle timer.
    double first_frame_timeout_ms = 0.0;
    /// Most concurrent connections; further accepts are shed with an
    /// immediate close (0 = unlimited). The caller sees the drop as
    /// Unavailable and fails over, mirroring the executor's
    /// ResourceExhausted admission control.
    size_t max_connections = 0;
  };

  /// Binds and listens on `bind_addr` (port 0 picks an ephemeral
  /// port; see address()).
  static Result<TcpServer> Listen(const NetAddress& bind_addr, Handler handler);
  static Result<TcpServer> Listen(const NetAddress& bind_addr, Handler handler,
                                  Options options);

  TcpServer(TcpServer&& other) noexcept;
  TcpServer& operator=(TcpServer&& other) noexcept;
  ~TcpServer();

  /// The bound address (with the real port).
  const NetAddress& address() const { return addr_; }

  /// \brief One event-loop iteration: waits up to `timeout_ms` for
  /// readiness, then accepts, reads, dispatches, and writes whatever
  /// is ready. Returns OK on a quiet iteration too; only a broken
  /// listen socket is an error.
  Status PollOnce(int timeout_ms);

  /// Connections currently open.
  size_t num_connections() const { return conns_.size(); }

  const RpcStats& stats() const { return stats_; }

  /// Installs the async intercept (see AsyncDispatch). Poll-thread
  /// only, like every other method here.
  void set_async_dispatch(AsyncDispatch dispatch) {
    ExclusiveUse::Scope use(&exclusive_, "TcpServer::set_async_dispatch");
    async_ = std::move(dispatch);
  }

  /// \brief Queues an already-encoded response envelope on the
  /// connection that made the request. The caller vanished mid-flight
  /// when this returns false — the response is dropped, which is
  /// exactly what a dead TCP peer gets anyway.
  bool Respond(uint64_t conn_id, std::string_view envelope_payload);

  /// Adds an fd (e.g. a worker pool's completion doorbell) to the
  /// poll set: readable wakes PollOnce immediately instead of burning
  /// the remaining timeout. The fd is polled, never read — draining
  /// it is its owner's job.
  void AddWakeFd(int fd);

 private:
  struct Conn {
    int fd = -1;
    /// Stable identity for deferred responses: fds are recycled by
    /// the kernel the moment a connection closes, ids never are.
    uint64_t id = 0;
    FrameParser parser;
    std::string out;       ///< bytes queued for write
    size_t out_pos = 0;    ///< first unsent byte of `out`
    bool dead = false;
    std::chrono::steady_clock::time_point opened_at;
    /// Last read or write progress, for the read-idle deadline.
    std::chrono::steady_clock::time_point last_activity;
    bool got_frame = false;  ///< completed >= 1 frame (loris guard off)
  };

  TcpServer(int listen_fd, NetAddress addr, Handler handler, Options options)
      : listen_fd_(listen_fd),
        addr_(addr),
        handler_(std::move(handler)),
        options_(options) {}

  void AcceptReady();
  void ReadReady(Conn& c);
  void WriteReady(Conn& c);
  /// Decodes and serves every complete frame buffered on `c`.
  void DispatchFrames(Conn& c);
  void CloseConn(Conn& c);
  /// Evicts `c` when its unsent backlog exceeds max_out_buffer
  /// (after giving the kernel one chance to drain it).
  void EnforceWriteCap(Conn& c);
  /// Applies the read-idle and first-frame deadlines.
  void SweepDeadlines(std::chrono::steady_clock::time_point now);

  int listen_fd_ = -1;
  NetAddress addr_;
  Handler handler_;
  Options options_;
  AsyncDispatch async_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<int> wake_fds_;
  uint64_t next_conn_id_ = 1;
  RpcStats stats_;
  /// One-thread-at-a-time sentinel (see the file comment). Moving the
  /// server resets it: the new home thread takes over cleanly.
  ExclusiveUse exclusive_;
};

/// \brief The caller-side TCP implementation of Transport.
class TcpTransport final : public Transport {
 public:
  struct Options {
    /// Default per-call deadline when CallOptions leaves it at <= 0.
    double default_deadline_ms = 1000.0;
    /// Budget for establishing a connection.
    int connect_timeout_ms = 1000;
    /// Source IP (host byte order) outbound connections bind to; 0 =
    /// kernel's choice. Daemons bind their listen host so proxies and
    /// packet captures can attribute traffic to the peer that sent it.
    uint32_t bind_host = 0;
  };

  TcpTransport() : TcpTransport(Options()) {}
  explicit TcpTransport(Options options) : options_(options) {}
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // --- Transport ------------------------------------------------------

  void Register(const NetAddress& addr) override { endpoints_[addr] = true; }
  /// Liveness is observed on a real network, not assigned.
  Status SetAlive(const NetAddress&, bool) override {
    return Status::NotImplemented(
        "TcpTransport discovers liveness; it cannot be assigned");
  }
  bool IsRegistered(const NetAddress& addr) const override {
    return endpoints_.contains(addr);
  }
  /// Last observed liveness: true until a connect refusal / stream
  /// failure marks the peer down, and again after a successful call.
  bool IsAlive(const NetAddress& addr) const override {
    auto it = endpoints_.find(addr);
    return it != endpoints_.end() && it->second;
  }
  size_t num_registered() const override { return endpoints_.size(); }

  /// A real message to `to`: a ping carrying `payload_bytes` of
  /// padding, so the bytes genuinely cross the wire.
  Result<double> DeliverBytes(const NetAddress& from, const NetAddress& to,
                              uint64_t payload_bytes) override;

  Result<CallResult> Call(const NetAddress& from, const NetAddress& to,
                          MsgType type, std::string_view request,
                          const CallOptions& options) override;
  using Transport::Call;
  using Transport::Deliver;

  const NetworkStats& stats() const override { return stats_; }
  void ResetStats() override {
    stats_ = NetworkStats{};
    rpc_ = RpcStats{};
  }
  const RpcStats& rpc_stats() const override { return rpc_; }

  // --- Multiplexing ----------------------------------------------------

  /// \brief Sends a request without waiting; the returned call id
  /// matches the response in WaitCall. Several calls may be in flight
  /// per connection.
  Result<uint64_t> StartCall(const NetAddress& to, MsgType type,
                             std::string_view request);

  /// \brief Waits up to `deadline_ms` for the response to `call_id`
  /// from `to`. Responses to other in-flight calls arriving first are
  /// parked for their own WaitCall.
  Result<CallResult> WaitCall(const NetAddress& to, uint64_t call_id,
                              double deadline_ms);

  /// \brief Non-blocking check for `call_id`'s response: drains
  /// whatever the kernel already buffered, then either returns the
  /// response, an empty optional ("not yet" — the call stays in
  /// flight, nothing is charged as a timeout), or an error (the
  /// connection died, or the server answered with a non-OK status).
  /// The poll-loop-friendly half of the multiplexing API: a daemon's
  /// membership exchanges ride on this so its event loop never blocks
  /// on a peer.
  Result<std::optional<CallResult>> PollCall(const NetAddress& to,
                                             uint64_t call_id);

  /// \brief Waits out `ms` of wall clock without going deaf: polls
  /// every open connection and parks whatever responses arrive, so a
  /// retry backoff doubles as a drain for the caller's other in-flight
  /// calls instead of freezing them (their WaitCall then completes
  /// from the parked frame instantly). A connection that dies while
  /// pumping is closed; its in-flight calls surface the failure on
  /// their own wait. With no open connections this is a plain sleep.
  void PumpFor(double ms);

  /// Drops the connection to `to`, if any (abandons in-flight calls).
  void Disconnect(const NetAddress& to);

  /// Counter hook for retry layers (e.g. RingClient's FaultPolicy
  /// loop) so retransmissions land in the same stats object.
  RpcStats& mutable_rpc_stats() { return rpc_; }

 private:
  struct Conn {
    int fd = -1;
    FrameParser parser;
    uint64_t next_call_id = 1;
    /// Responses that arrived while waiting for a different call id.
    std::unordered_map<uint64_t, RpcEnvelope> parked;
    /// Send instant of each in-flight call, for round-trip latency.
    std::unordered_map<uint64_t, std::chrono::steady_clock::time_point> sent_at;
  };

  /// Existing connection to `to`, or a fresh non-blocking connect.
  Result<Conn*> GetConn(const NetAddress& to);
  Status SendAll(Conn& c, std::string_view bytes, double deadline_ms);
  /// Parks every complete response frame already buffered on `c`
  /// (reading whatever the kernel holds, without blocking).
  Status DrainReady(const NetAddress& to, Conn& c);
  /// Builds a CallResult from a parked envelope (latency accounting,
  /// liveness mark, error-status unwrapping).
  Result<CallResult> FinishCall(const NetAddress& to, Conn& c,
                                uint64_t call_id, RpcEnvelope envelope);
  /// Reads until `call_id`'s response is available or the deadline
  /// passes; fills `*out` on success.
  Status ReadUntil(const NetAddress& to, Conn& c, uint64_t call_id,
                   double deadline_ms, RpcEnvelope* out);
  void CloseConn(const NetAddress& to);
  void MarkAlive(const NetAddress& to, bool alive) { endpoints_[to] = alive; }

  Options options_;
  std::unordered_map<NetAddress, bool, NetAddressHash> endpoints_;
  std::unordered_map<NetAddress, Conn, NetAddressHash> conns_;
  NetworkStats stats_;
  RpcStats rpc_;
  /// One-thread-at-a-time sentinel (see the file comment).
  ExclusiveUse exclusive_;
};

}  // namespace rpc
}  // namespace p2prange

#endif  // P2PRANGE_RPC_TCP_TRANSPORT_H_
