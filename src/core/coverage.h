// Multi-partition coverage assembly.
//
// The paper's protocol answers a query from the single best cached
// partition. Frequently, though, no one partition covers the query
// while two or three overlapping ones do (e.g. [0,60] and [50,120] for
// the query [10,100]). AssembleCoverage picks a small set of cached
// ranges that jointly maximize coverage of the query using the
// classical greedy interval-cover sweep (optimal in pieces for full
// covers, and maximal for partial ones given the piece bound).
#ifndef P2PRANGE_CORE_COVERAGE_H_
#define P2PRANGE_CORE_COVERAGE_H_

#include <cstddef>
#include <vector>

#include "hash/range.h"
#include "store/partition_key.h"

namespace p2prange {

/// \brief A selected set of cached partitions and how much of the
/// query they jointly cover.
struct CoverageResult {
  std::vector<PartitionDescriptor> pieces;  ///< in ascending range order
  /// |(∪ pieces) ∩ Q| / |Q| in [0, 1].
  double covered_fraction = 0.0;
};

/// \brief Greedy interval cover of `query` from `candidates`
/// (descriptors of any ranges; non-overlapping ones are ignored),
/// using at most `max_pieces` partitions.
CoverageResult AssembleCoverage(const Range& query,
                                std::vector<PartitionDescriptor> candidates,
                                size_t max_pieces);

}  // namespace p2prange

#endif  // P2PRANGE_CORE_COVERAGE_H_
