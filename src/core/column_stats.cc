#include "core/column_stats.h"

namespace p2prange {

bool ColumnStats::ShouldProbe(const std::string& column_key) {
  State& s = state_.try_emplace(column_key).first->second;
  if (s.probes < config_.min_probes) return true;
  if (s.ema_recall >= config_.skip_threshold) return true;
  // Exploration: probe every explore_every-th query even when the
  // estimate says the cache is useless, so recovery is possible.
  if (++s.skips_since_probe >= config_.explore_every) {
    s.skips_since_probe = 0;
    return true;
  }
  return false;
}

void ColumnStats::Observe(const std::string& column_key, double recall) {
  State& s = state_.try_emplace(column_key).first->second;
  if (s.probes == 0) {
    s.ema_recall = recall;
  } else {
    s.ema_recall = (1.0 - config_.alpha) * s.ema_recall + config_.alpha * recall;
  }
  ++s.probes;
  s.skips_since_probe = 0;
}

}  // namespace p2prange
