// Configuration of the whole P2P range-selection system.
#ifndef P2PRANGE_CORE_CONFIG_H_
#define P2PRANGE_CORE_CONFIG_H_

#include <cstdint>

#include "chord/ring.h"
#include "core/adaptive_padding.h"
#include "core/column_stats.h"
#include "core/fault_policy.h"
#include "hash/lsh.h"
#include "overlay/overlay.h"
#include "store/bucket_store.h"
#include "store/durable_store.h"

namespace p2prange {

/// \brief All tunables of a RangeCacheSystem.
struct SystemConfig {
  /// Number of peers in the overlay.
  size_t num_peers = 100;

  /// LSH identifier scheme (paper: k=20, l=5, approx min-wise).
  LshParams lsh = LshParams{};

  /// Best-match criterion used inside a bucket (§5.2 / Figure 9).
  MatchCriterion criterion = MatchCriterion::kJaccard;

  /// Query padding fraction per edge (§5.2 / Figure 10); 0 disables.
  double padding = 0.0;

  /// §5.2 future work: adapt the padding fraction per column from
  /// observed recall instead of using the fixed `padding` value.
  bool adaptive_padding = false;
  AdaptivePaddingConfig adaptive;

  /// §5.3 extension: search a peer-wide index over all its buckets
  /// instead of only the probed identifier's bucket.
  bool use_peer_index = false;

  /// The paper's protocol stores the queried partition at the l
  /// identifier owners when no exact match exists.
  bool cache_on_miss = true;

  /// When a range query's best cached match does not fully contain it,
  /// accept the partial (approximate) answer instead of fetching the
  /// remainder from the source (the paper's broad-query philosophy).
  bool accept_partial_answers = false;

  /// §6 extension: allow selections on several ordinal attributes of
  /// one relation. Each attribute's cache is probed; the leaf is served
  /// from a fully-covering partition of any attribute with the other
  /// predicates applied locally.
  bool multi_attribute = false;

  /// Extension: when no single cached partition covers the query,
  /// assemble the answer from several overlapping partitions that
  /// jointly do (greedy interval cover, at most max_coverage_pieces).
  bool assemble_coverage = false;
  size_t max_coverage_pieces = 8;

  /// §6 future work: statistics-based planning. The querying side
  /// tracks per-column cache usefulness and skips the l-lookup probe
  /// for columns whose cache has proven useless (with periodic
  /// re-exploration).
  bool stats_planning = false;
  StatsPlanningConfig stats;

  /// §6 extension: cache whole query results, addressed by the
  /// canonical plan text through the exact-match DHT path. Only
  /// complete (non-approximate) results are cached.
  bool cache_query_results = false;

  /// Robustness extension: each published descriptor is replicated at
  /// the identifier owner's first `descriptor_replication - 1`
  /// successors, so departures do not erase bucket contents (the new
  /// owner of the identifier slice already holds copies). 1 = the
  /// paper's behavior (owner only).
  int descriptor_replication = 1;

  /// Per-peer descriptor capacity; 0 = unbounded.
  size_t store_capacity = 0;

  /// Per-peer descriptor durability: WAL + checkpoint snapshots, so a
  /// crashed peer recovers its descriptors instead of forgetting them.
  store::DurabilityConfig durability;

  /// Retry/backoff/timeout discipline for the system's own messages
  /// (descriptor stores, owner replies, data transfers). The Chord
  /// layer's routing retries stay under chord.max_message_retries.
  FaultPolicy fault;

  chord::ChordConfig chord;

  /// Which routing substrate backs the system. Defaults to Chord (the
  /// paper's choice); CAN and Tapestry run the same §4 protocol
  /// unmodified through the overlay contract. The latency model is
  /// taken from `chord.latency` for every substrate.
  overlay::OverlayParams overlay;

  /// Master seed: peers, LSH keys, and query origins all derive from it.
  uint64_t seed = 1;
};

}  // namespace p2prange

#endif  // P2PRANGE_CORE_CONFIG_H_
