#include "core/coverage.h"

#include <algorithm>

namespace p2prange {

CoverageResult AssembleCoverage(const Range& query,
                                std::vector<PartitionDescriptor> candidates,
                                size_t max_pieces) {
  CoverageResult result;
  if (max_pieces == 0) return result;
  // Drop non-overlapping candidates, sort the rest by range start.
  std::erase_if(candidates, [&](const PartitionDescriptor& d) {
    return !query.Overlaps(d.key.range);
  });
  std::sort(candidates.begin(), candidates.end(),
            [](const PartitionDescriptor& a, const PartitionDescriptor& b) {
              if (a.key.range.lo() != b.key.range.lo()) {
                return a.key.range.lo() < b.key.range.lo();
              }
              return a.key.range.hi() > b.key.range.hi();
            });

  uint64_t covered = 0;
  uint64_t cursor = query.lo();  // 64-bit so cursor can pass hi() without wrap
  size_t i = 0;
  while (cursor <= query.hi() && result.pieces.size() < max_pieces) {
    // Scan every candidate starting at or before the cursor; the one
    // reaching furthest right is the greedy choice. Discarded scanned
    // candidates end at or before the chosen one, so they can never
    // help after the cursor jumps past it.
    const PartitionDescriptor* best = nullptr;
    while (i < candidates.size() && candidates[i].key.range.lo() <= cursor) {
      if (best == nullptr ||
          candidates[i].key.range.hi() > best->key.range.hi()) {
        best = &candidates[i];
      }
      ++i;
    }
    if (best != nullptr && best->key.range.hi() >= cursor) {
      const uint64_t piece_end =
          std::min<uint64_t>(best->key.range.hi(), query.hi());
      covered += piece_end - cursor + 1;
      result.pieces.push_back(*best);
      cursor = piece_end + 1;
    } else if (i < candidates.size()) {
      // Gap: no candidate spans the cursor; skip to the next start.
      cursor = candidates[i].key.range.lo();
    } else {
      break;
    }
  }
  result.covered_fraction =
      static_cast<double>(covered) / static_cast<double>(query.size());
  return result;
}

}  // namespace p2prange
