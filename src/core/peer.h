// Application-level state of one peer: the descriptor buckets for the
// ring slice it owns, plus any partition data it has materialized.
#ifndef P2PRANGE_CORE_PEER_H_
#define P2PRANGE_CORE_PEER_H_

#include <optional>
#include <string>
#include <unordered_map>

#include "chord/node.h"
#include "rel/relation.h"
#include "store/bucket_store.h"
#include "store/durable_store.h"

namespace p2prange {

/// \brief Descriptor of an exact-match (equality) partition, e.g.
/// Diagnosis tuples with diagnosis = 'Glaucoma' (§3.1's put/get path).
struct EqDescriptor {
  std::string key;     ///< canonical "relation|attribute|value"
  NetAddress holder;

  bool operator==(const EqDescriptor&) const = default;
};

/// \brief One peer of the data-sharing system.
class Peer {
 public:
  explicit Peer(chord::NodeInfo info, size_t store_capacity,
                store::DurabilityConfig durability = {})
      : info_(info), durable_(store_capacity, durability) {}

  const chord::NodeInfo& info() const { return info_; }
  const NetAddress& addr() const { return info_.addr; }

  BucketStore& store() { return durable_.store(); }
  const BucketStore& store() const { return durable_.store(); }

  // --- Durable descriptor mutations ----------------------------------
  // Mutations go through these (not store() directly) so they hit the
  // write-ahead log before the volatile store.

  /// Logs + inserts a descriptor into bucket `id`.
  bool InsertDescriptor(chord::ChordId id, const PartitionDescriptor& d) {
    return durable_.Insert(id, d);
  }

  /// Logs + removes every descriptor of `key` held by dead `holder`.
  size_t EraseStaleDescriptors(const PartitionKey& key, const NetAddress& holder) {
    return durable_.EraseStale(key, holder);
  }

  /// Crash semantics: all volatile state is lost (descriptor store,
  /// materialized partitions, equality index). Durable images survive.
  void CrashVolatileState() {
    durable_.Crash();
    data_.clear();
    eq_index_.clear();
    eq_data_.clear();
  }

  /// Replays checkpoint + WAL to rebuild the descriptor store.
  store::RecoveryReport RecoverDurableState() { return durable_.Recover(); }

  store::DurableDescriptorStore& durable() { return durable_; }
  const store::DurableDescriptorStore& durable() const { return durable_; }

  // --- Materialized range partitions (this peer is the holder) -------

  void StorePartitionData(const PartitionKey& key, Relation data) {
    data_[key] = std::move(data);
  }
  const Relation* GetPartitionData(const PartitionKey& key) const {
    auto it = data_.find(key);
    return it == data_.end() ? nullptr : &it->second;
  }
  size_t num_materialized() const { return data_.size(); }

  // --- Exact-match partitions (§3.1 put/get path) ---------------------

  void StoreEqDescriptor(chord::ChordId id, EqDescriptor d);
  std::optional<EqDescriptor> FindEqDescriptor(chord::ChordId id,
                                               const std::string& key) const;

  /// Lazy repair: removes the descriptor for `key` in bucket `id` when
  /// it still points at `holder` (a peer found to be dead). Returns
  /// true if something was removed.
  bool EraseEqDescriptor(chord::ChordId id, const std::string& key,
                         const NetAddress& holder);

  void StoreEqData(const std::string& key, Relation data) {
    eq_data_[key] = std::move(data);
  }
  const Relation* GetEqData(const std::string& key) const {
    auto it = eq_data_.find(key);
    return it == eq_data_.end() ? nullptr : &it->second;
  }

 private:
  chord::NodeInfo info_;
  store::DurableDescriptorStore durable_;
  std::unordered_map<PartitionKey, Relation, PartitionKeyHash> data_;
  std::unordered_map<chord::ChordId, std::vector<EqDescriptor>> eq_index_;
  std::unordered_map<std::string, Relation> eq_data_;
};

}  // namespace p2prange

#endif  // P2PRANGE_CORE_PEER_H_
