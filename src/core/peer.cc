#include "core/peer.h"

#include <algorithm>

namespace p2prange {

void Peer::StoreEqDescriptor(chord::ChordId id, EqDescriptor d) {
  auto& vec = eq_index_[id];
  for (EqDescriptor& existing : vec) {
    if (existing.key == d.key) {
      existing.holder = d.holder;
      return;
    }
  }
  vec.push_back(std::move(d));
}

bool Peer::EraseEqDescriptor(chord::ChordId id, const std::string& key,
                             const NetAddress& holder) {
  auto it = eq_index_.find(id);
  if (it == eq_index_.end()) return false;
  const size_t before = it->second.size();
  std::erase_if(it->second, [&](const EqDescriptor& d) {
    return d.key == key && d.holder == holder;
  });
  if (it->second.empty()) {
    eq_index_.erase(it);
    return before > 0;
  }
  return it->second.size() < before;
}

std::optional<EqDescriptor> Peer::FindEqDescriptor(chord::ChordId id,
                                                   const std::string& key) const {
  auto it = eq_index_.find(id);
  if (it == eq_index_.end()) return std::nullopt;
  auto match = std::find_if(it->second.begin(), it->second.end(),
                            [&](const EqDescriptor& d) { return d.key == key; });
  if (match == it->second.end()) return std::nullopt;
  return *match;
}

}  // namespace p2prange
