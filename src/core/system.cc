#include "core/system.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "core/coverage.h"
#include "hash/sha1.h"
#include "wire/serde.h"

namespace p2prange {

std::string SystemMetrics::ToString() const {
  std::string out;
  out += "range_lookups=" + std::to_string(range_lookups);
  out += " exact_hits=" + std::to_string(exact_hits);
  out += " approx_hits=" + std::to_string(approx_hits);
  out += " misses=" + std::to_string(misses);
  out += " published=" + std::to_string(partitions_published);
  out += " descriptors=" + std::to_string(descriptors_stored);
  out += " eq_lookups=" + std::to_string(eq_lookups);
  out += " eq_hits=" + std::to_string(eq_hits);
  out += " result_cache_lookups=" + std::to_string(result_cache_lookups);
  out += " result_cache_hits=" + std::to_string(result_cache_hits);
  out += " lookups_skipped=" + std::to_string(lookups_skipped);
  out += " source_fetches=" + std::to_string(source_fetches);
  out += " cache_fetches=" + std::to_string(cache_fetches);
  out += " bytes_from_source=" + std::to_string(bytes_from_source);
  out += " bytes_from_cache=" + std::to_string(bytes_from_cache);
  out += " chord_hops=" + std::to_string(chord_hops);
  return out;
}


namespace {
/// Delivers a control message with a few retransmissions when it is
/// lost in transit (IOError); accumulated latency of all attempts is
/// returned. Unavailable (dead peer) is returned immediately.
Result<double> DeliverReliable(SimNetwork& net, const NetAddress& from,
                               const NetAddress& to, uint64_t payload_bytes = 0,
                               int retries = 3) {
  double total = 0.0;
  Status last;
  for (int attempt = 0; attempt <= retries; ++attempt) {
    auto latency = net.DeliverBytes(from, to, payload_bytes);
    if (latency.ok()) return total + *latency;
    last = latency.status();
    if (!last.IsIOError()) return last;
  }
  return last;
}
}  // namespace

RangeCacheSystem::RangeCacheSystem(const SystemConfig& config, Catalog catalog)
    : config_(config),
      catalog_(std::move(catalog)),
      padding_controller_(config.adaptive),
      column_stats_(config.stats) {}

Result<RangeCacheSystem> RangeCacheSystem::Make(const SystemConfig& config,
                                                Catalog catalog) {
  if (config.padding < 0.0) {
    return Status::InvalidArgument("padding must be non-negative");
  }
  if (config.descriptor_replication < 1) {
    return Status::InvalidArgument("descriptor_replication must be >= 1");
  }
  RangeCacheSystem sys(config, std::move(catalog));

  ASSIGN_OR_RETURN(chord::ChordRing ring,
                   chord::ChordRing::Make(config.num_peers, config.seed,
                                          config.chord));
  sys.ring_ = std::make_unique<chord::ChordRing>(std::move(ring));

  LshParams lsh_params = config.lsh;
  lsh_params.seed = config.seed ^ 0x5bd1e995u;
  ASSIGN_OR_RETURN(LshScheme scheme, LshScheme::Make(lsh_params));
  sys.lsh_ = std::make_unique<LshScheme>(std::move(scheme));

  const auto nodes = sys.ring_->AliveNodesSorted();
  for (const chord::NodeInfo& info : nodes) {
    sys.peers_.emplace(info.addr,
                       std::make_unique<Peer>(info, config.store_capacity));
  }
  sys.source_ = nodes.front().addr;
  return sys;
}

Peer* RangeCacheSystem::peer(const NetAddress& addr) {
  auto it = peers_.find(addr);
  return it == peers_.end() ? nullptr : it->second.get();
}

const Peer* RangeCacheSystem::peer(const NetAddress& addr) const {
  auto it = peers_.find(addr);
  return it == peers_.end() ? nullptr : it->second.get();
}

Result<AttributeDomain> RangeCacheSystem::DomainFor(const PartitionKey& key) const {
  return catalog_.GetDomain(key.relation, key.attribute);
}

Result<Range> RangeCacheSystem::EffectiveRange(const PartitionKey& key) const {
  const double padding =
      config_.adaptive_padding
          ? padding_controller_.Get(key.relation + "." + key.attribute)
          : config_.padding;
  if (padding <= 0.0) return key.range;
  ASSIGN_OR_RETURN(const AttributeDomain domain, DomainFor(key));
  const uint32_t width_hi = static_cast<uint32_t>(domain.width() - 1);
  return key.range.Padded(padding, 0, width_hi);
}

Status RangeCacheSystem::TransferData(const NetAddress& client,
                                      const NetAddress& server,
                                      const Relation& payload, bool from_source) {
  // Request (control) + response carrying the encoded tuples; both
  // legs retransmit on transit loss.
  auto req = DeliverReliable(ring_->network(), client, server);
  RETURN_NOT_OK(req.status());
  const size_t bytes = wire::RelationWireSize(payload);
  auto resp = DeliverReliable(ring_->network(), server, client, bytes);
  RETURN_NOT_OK(resp.status());
  metrics_.latency_ms += *req + *resp;
  if (from_source) {
    metrics_.bytes_from_source += bytes;
  } else {
    metrics_.bytes_from_cache += bytes;
  }
  return Status::OK();
}

Result<std::optional<Relation>> RangeCacheSystem::FetchCoverage(
    const NetAddress& client, const std::vector<PartitionDescriptor>& pieces) {
  if (pieces.empty()) return std::optional<Relation>(std::nullopt);
  // All pieces must be materialized somewhere before any bytes move.
  std::vector<const Relation*> datas;
  datas.reserve(pieces.size());
  for (const PartitionDescriptor& piece : pieces) {
    const Peer* holder = peer(piece.holder);
    const Relation* data = holder ? holder->GetPartitionData(piece.key) : nullptr;
    if (data == nullptr) return std::optional<Relation>(std::nullopt);
    datas.push_back(data);
  }
  std::optional<Relation> merged;
  std::set<std::string> seen_rows;
  for (size_t i = 0; i < pieces.size(); ++i) {
    RETURN_NOT_OK(TransferData(client, pieces[i].holder, *datas[i],
                               /*from_source=*/false));
    if (!merged) merged = Relation(datas[i]->name(), datas[i]->schema());
    for (const Row& row : datas[i]->rows()) {
      // Overlapping partitions duplicate tuples; dedup by encoding.
      wire::Encoder enc;
      for (const Value& v : row) wire::EncodeValue(v, &enc);
      if (seen_rows.insert(enc.Take()).second) {
        merged->AppendUnchecked(row);
      }
    }
  }
  return merged;
}


Result<RangeLookupOutcome> RangeCacheSystem::LookupRange(const PartitionKey& query) {
  ASSIGN_OR_RETURN(const NetAddress origin, ring_->RandomAliveAddress());
  return LookupRangeFrom(origin, query);
}

Result<RangeLookupOutcome> RangeCacheSystem::LookupRangeFrom(
    const NetAddress& origin, const PartitionKey& query) {
  if (peer(origin) == nullptr) {
    return Status::InvalidArgument("unknown origin peer " + origin.ToString());
  }
  RangeLookupOutcome out;
  out.query = query.range;
  ASSIGN_OR_RETURN(out.effective_query, EffectiveRange(query));
  const PartitionKey effective_key{query.relation, query.attribute,
                                   out.effective_query};
  out.identifiers = lsh_->Identifiers(out.effective_query);

  ++metrics_.range_lookups;

  // Route to each identifier's owner and collect its best match.
  std::optional<MatchCandidate> best;
  std::set<NetAddress> owners_seen;
  std::vector<NetAddress> owners(out.identifiers.size());
  std::vector<PartitionDescriptor> coverage_candidates;
  std::set<std::string> coverage_seen;
  for (size_t g = 0; g < out.identifiers.size(); ++g) {
    ASSIGN_OR_RETURN(const chord::LookupResult route,
                     ring_->Lookup(origin, out.identifiers[g]));
    owners[g] = route.owner.addr;
    out.hops += route.hops;
    out.latency_ms += route.latency_ms;
    metrics_.chord_hops += route.hops;
    metrics_.latency_ms += route.latency_ms;
    if (owners_seen.insert(route.owner.addr).second) ++out.peers_contacted;

    const Peer* owner_peer = peer(route.owner.addr);
    if (owner_peer == nullptr) {
      return Status::Internal("ring node " + route.owner.addr.ToString() +
                              " has no application peer");
    }
    const std::optional<MatchCandidate> candidate =
        config_.use_peer_index
            ? owner_peer->store().BestMatchAnywhere(effective_key, config_.criterion)
            : owner_peer->store().BestMatch(out.identifiers[g], effective_key,
                                            config_.criterion);
    if (config_.assemble_coverage) {
      for (MatchCandidate& c : owner_peer->store().OverlappingCandidates(
               out.identifiers[g], effective_key, config_.criterion)) {
        if (coverage_seen.insert(c.descriptor.key.ToString() + "@" +
                                 c.descriptor.holder.ToString())
                .second) {
          coverage_candidates.push_back(std::move(c.descriptor));
        }
      }
    }
    // The owner replies to the origin either way.
    auto reply = DeliverReliable(ring_->network(), route.owner.addr, origin);
    if (reply.ok()) {
      out.latency_ms += *reply;
      metrics_.latency_ms += *reply;
    }
    if (candidate && (!best || candidate->similarity > best->similarity ||
                      (candidate->similarity == best->similarity &&
                       candidate->exact && !best->exact))) {
      best = candidate;
    }
  }

  if (config_.assemble_coverage && !coverage_candidates.empty()) {
    CoverageResult cover = AssembleCoverage(query.range,
                                            std::move(coverage_candidates),
                                            config_.max_coverage_pieces);
    out.coverage_pieces = std::move(cover.pieces);
    out.coverage_recall = cover.covered_fraction;
  }

  if (config_.adaptive_padding) {
    padding_controller_.Observe(
        query.relation + "." + query.attribute,
        best ? query.range.RecallFrom(best->descriptor.key.range) : 0.0);
  }

  if (best) {
    RangeMatch match;
    match.matched = best->descriptor.key;
    match.holder = best->descriptor.holder;
    match.score = best->similarity;
    match.jaccard = query.range.Jaccard(best->descriptor.key.range);
    match.recall = query.range.RecallFrom(best->descriptor.key.range);
    match.exact = best->descriptor.key.range == out.effective_query;
    out.match = match;
    if (match.exact) {
      ++metrics_.exact_hits;
    } else {
      ++metrics_.approx_hits;
    }
  } else {
    ++metrics_.misses;
  }

  // Cache-on-miss (§4): if no exact match exists, the computed
  // partition (the effective range, held by the origin) is stored at
  // the peers owning the l identifiers.
  if (config_.cache_on_miss && (!out.match || !out.match->exact)) {
    const PartitionDescriptor descriptor{effective_key, origin};
    ++metrics_.partitions_published;
    for (size_t g = 0; g < out.identifiers.size(); ++g) {
      StoreReplicated(out.identifiers[g], descriptor, origin, &out.latency_ms);
    }
  }
  return out;
}

void RangeCacheSystem::StoreReplicated(chord::ChordId id,
                                       const PartitionDescriptor& descriptor,
                                       const NetAddress& from,
                                       double* latency_acc) {
  // Resolve the current owner plus (replication - 1) of its live
  // successors; each replica costs one store message.
  auto owner_info = ring_->FindSuccessorOracle(id);
  if (!owner_info.ok()) return;
  std::vector<NetAddress> targets{owner_info->addr};
  const chord::ChordNode* owner_node = ring_->node(owner_info->addr);
  if (owner_node != nullptr) {
    for (const chord::NodeInfo& succ : owner_node->successors()) {
      if (static_cast<int>(targets.size()) >= config_.descriptor_replication) break;
      if (succ.addr == owner_info->addr) continue;
      if (!ring_->network().IsAlive(succ.addr)) continue;
      targets.push_back(succ.addr);
    }
  }
  for (const NetAddress& target : targets) {
    Peer* target_peer = peer(target);
    if (target_peer == nullptr) continue;  // churned away mid-protocol
    // The store RPC must arrive before the descriptor exists there.
    auto msg = DeliverReliable(ring_->network(), from, target);
    if (!msg.ok()) continue;
    if (latency_acc != nullptr) *latency_acc += *msg;
    metrics_.latency_ms += *msg;
    if (target_peer->store().Insert(id, descriptor)) {
      ++metrics_.descriptors_stored;
    }
  }
}

Status RangeCacheSystem::PublishPartition(const PartitionKey& key,
                                          const NetAddress& holder) {
  if (peer(holder) == nullptr) {
    return Status::InvalidArgument("unknown holder peer " + holder.ToString());
  }
  const std::vector<uint32_t> ids = lsh_->Identifiers(key.range);
  const PartitionDescriptor descriptor{key, holder};
  ++metrics_.partitions_published;
  for (uint32_t id : ids) {
    ASSIGN_OR_RETURN(const chord::LookupResult route, ring_->Lookup(holder, id));
    metrics_.chord_hops += route.hops;
    metrics_.latency_ms += route.latency_ms;
    StoreReplicated(id, descriptor, holder, nullptr);
  }
  return Status::OK();
}

Status RangeCacheSystem::MaterializePartition(const PartitionKey& key,
                                              const NetAddress& holder) {
  Peer* holder_peer = peer(holder);
  if (holder_peer == nullptr) {
    return Status::InvalidArgument("unknown holder peer " + holder.ToString());
  }
  ASSIGN_OR_RETURN(const Relation* base, catalog_.GetBaseData(key.relation));
  ASSIGN_OR_RETURN(const AttributeDomain domain, DomainFor(key));
  ASSIGN_OR_RETURN(
      Relation rows,
      base->SelectOrdinalRange(key.attribute, domain.DecodeLo(key.range),
                               domain.DecodeHi(key.range)));
  ++metrics_.source_fetches;
  RETURN_NOT_OK(TransferData(holder, source_, rows, /*from_source=*/true));
  holder_peer->StorePartitionData(key, std::move(rows));
  return Status::OK();
}

namespace {
std::string EqKeyString(const std::string& relation, const std::string& attribute,
                        const Value& v) {
  return relation + "|" + attribute + "|" + v.ToString();
}
}  // namespace

Status RangeCacheSystem::AnswerLeaf(const NetAddress& client,
                                    const TableSelection& leaf,
                                    std::map<std::string, Relation>* inputs,
                                    LeafOutcome* outcome) {
  outcome->table = leaf.table;

  const std::vector<RangeSelection> ranges = leaf.AllRanges();
  if (!ranges.empty()) {
    // Probe the cache for every range-selected attribute of this leaf
    // (one with the paper's base model; several under the §6
    // multi-attribute extension). A partition that fully covers *its*
    // attribute's selection yields the complete leaf answer once the
    // remaining predicates are applied locally by the executor.
    struct Candidate {
      RangeLookupOutcome lookup;
      PartitionKey key;
    };
    std::optional<Candidate> best;
    std::optional<Candidate> best_cover;  // by assembled coverage
    std::optional<RangeLookupOutcome> primary_lookup;
    PartitionKey primary_key;
    for (const RangeSelection& sel : ranges) {
      ASSIGN_OR_RETURN(const AttributeDomain domain,
                       catalog_.GetDomain(leaf.table, sel.attribute));
      ASSIGN_OR_RETURN(const Range encoded,
                       domain.EncodeClampedRange(sel.lo, sel.hi));
      const PartitionKey key{leaf.table, sel.attribute, encoded};
      if (primary_key.relation.empty()) primary_key = key;
      // §6 statistics-based planning: skip probing columns whose cache
      // has proven useless (with periodic exploration).
      const std::string column_key = leaf.table + "." + sel.attribute;
      if (config_.stats_planning && !column_stats_.ShouldProbe(column_key)) {
        ++metrics_.lookups_skipped;
        continue;
      }
      ASSIGN_OR_RETURN(RangeLookupOutcome lookup, LookupRangeFrom(client, key));
      const double recall = lookup.match ? lookup.match->recall : 0.0;
      if (config_.stats_planning) column_stats_.Observe(column_key, recall);
      const double best_recall =
          best && best->lookup.match ? best->lookup.match->recall : -1.0;
      if (!primary_lookup) primary_lookup = lookup;
      if (config_.assemble_coverage && lookup.coverage_recall > 0.0 &&
          (!best_cover || lookup.coverage_recall > best_cover->lookup.coverage_recall)) {
        best_cover = Candidate{lookup, key};
      }
      if (recall > best_recall) {
        best = Candidate{std::move(lookup), key};
      }
    }

    const bool full = best && best->lookup.match && best->lookup.match->recall >= 1.0;
    const bool partial =
        best && best->lookup.match && best->lookup.match->recall > 0.0;
    const bool use_cache = full || (config_.accept_partial_answers && partial);

    if (use_cache) {
      const Peer* holder_peer = peer(best->lookup.match->holder);
      const Relation* data =
          holder_peer == nullptr
              ? nullptr
              : holder_peer->GetPartitionData(best->lookup.match->matched);
      if (data != nullptr) {
        RETURN_NOT_OK(TransferData(client, best->lookup.match->holder, *data,
                                   /*from_source=*/false));
        ++metrics_.cache_fetches;
        inputs->emplace(leaf.table, *data);
        outcome->used_cache = true;
        outcome->recall = best->lookup.match->recall;
        outcome->lookup = std::move(best->lookup);
        return Status::OK();
      }
      // Descriptor with no materialized bytes (holder lost it): treat
      // as a miss and fall through to the source.
    }

    // Multi-partition coverage: several overlapping partitions may
    // jointly cover the selection even though no single one does.
    if (best_cover &&
        best_cover->lookup.coverage_recall >
            (best && best->lookup.match ? best->lookup.match->recall : 0.0)) {
      const double covered = best_cover->lookup.coverage_recall;
      const bool cover_full = covered >= 1.0 - 1e-12;
      if (cover_full || (config_.accept_partial_answers && covered > 0.0)) {
        ASSIGN_OR_RETURN(
            const std::optional<Relation> merged,
            FetchCoverage(client, best_cover->lookup.coverage_pieces));
        if (merged.has_value()) {
          ++metrics_.cache_fetches;
          ++metrics_.coverage_assemblies;
          inputs->emplace(leaf.table, *merged);
          outcome->used_cache = true;
          outcome->recall = covered;
          outcome->lookup = std::move(best_cover->lookup);
          return Status::OK();
        }
      }
    }

    // Go to the source for the primary attribute's (effective)
    // partition. With caching enabled, materialize it at the client
    // and re-publish the descriptors so they point at the client's
    // copy — the lookup's cache-on-miss step does not run on an exact
    // hit, and the exact hit may have been a descriptor whose holder
    // never materialized the bytes (e.g. published by a metadata-only
    // lookup).
    Range primary_effective = primary_key.range;
    if (primary_lookup) {
      primary_effective = primary_lookup->effective_query;
    } else {
      ASSIGN_OR_RETURN(primary_effective, EffectiveRange(primary_key));
    }
    const PartitionKey effective_key{leaf.table, ranges.front().attribute,
                                     primary_effective};
    if (config_.cache_on_miss) {
      RETURN_NOT_OK(MaterializePartition(effective_key, client));
      RETURN_NOT_OK(PublishPartition(effective_key, client));
      const Relation* data = peer(client)->GetPartitionData(effective_key);
      DCHECK(data != nullptr);
      inputs->emplace(leaf.table, *data);
    } else {
      ASSIGN_OR_RETURN(const Relation* base, catalog_.GetBaseData(leaf.table));
      ASSIGN_OR_RETURN(const AttributeDomain domain, DomainFor(effective_key));
      ASSIGN_OR_RETURN(Relation rows,
                       base->SelectOrdinalRange(
                           effective_key.attribute,
                           domain.DecodeLo(effective_key.range),
                           domain.DecodeHi(effective_key.range)));
      ++metrics_.source_fetches;
      RETURN_NOT_OK(TransferData(client, source_, rows, /*from_source=*/true));
      inputs->emplace(leaf.table, std::move(rows));
    }
    outcome->from_source = true;
    outcome->recall = 1.0;
    if (primary_lookup) outcome->lookup = std::move(*primary_lookup);
    return Status::OK();
  }

  if (!leaf.filters.empty()) {
    // Exact-match partition path (§3.1): hash the (relation,
    // attribute, value) key onto the ring, probe the owner.
    const EqFilter& f = leaf.filters.front();
    const std::string eq_key = EqKeyString(leaf.table, f.attribute, f.value);
    const chord::ChordId id = Sha1::Hash32(eq_key);
    ++metrics_.eq_lookups;
    ASSIGN_OR_RETURN(const chord::LookupResult route, ring_->Lookup(client, id));
    metrics_.chord_hops += route.hops;
    metrics_.latency_ms += route.latency_ms;
    Peer* owner_peer = peer(route.owner.addr);
    const std::optional<EqDescriptor> desc = owner_peer->FindEqDescriptor(id, eq_key);
    if (desc) {
      const Peer* holder_peer = peer(desc->holder);
      const Relation* data =
          holder_peer == nullptr ? nullptr : holder_peer->GetEqData(eq_key);
      if (data != nullptr) {
        RETURN_NOT_OK(TransferData(client, desc->holder, *data,
                                   /*from_source=*/false));
        ++metrics_.eq_hits;
        ++metrics_.cache_fetches;
        inputs->emplace(leaf.table, *data);
        outcome->used_cache = true;
        return Status::OK();
      }
    }
    // Source fetch; publish and materialize at the client.
    ASSIGN_OR_RETURN(const Relation* base, catalog_.GetBaseData(leaf.table));
    ASSIGN_OR_RETURN(Relation rows, base->SelectEquals(f.attribute, f.value));
    ++metrics_.source_fetches;
    RETURN_NOT_OK(TransferData(client, source_, rows, /*from_source=*/true));
    if (config_.cache_on_miss) {
      peer(client)->StoreEqData(eq_key, rows);
      owner_peer->StoreEqDescriptor(id, EqDescriptor{eq_key, client});
    }
    inputs->emplace(leaf.table, std::move(rows));
    outcome->from_source = true;
    return Status::OK();
  }

  // Unfiltered leaf: always from the source.
  ASSIGN_OR_RETURN(const Relation* base, catalog_.GetBaseData(leaf.table));
  ++metrics_.source_fetches;
  RETURN_NOT_OK(TransferData(client, source_, *base, /*from_source=*/true));
  inputs->emplace(leaf.table, *base);
  outcome->from_source = true;
  return Status::OK();
}

Result<QueryOutcome> RangeCacheSystem::ExecuteQuery(const std::string& sql) {
  ASSIGN_OR_RETURN(const NetAddress client, ring_->RandomAliveAddress());
  return ExecuteQueryFrom(client, sql);
}

Result<QueryOutcome> RangeCacheSystem::ExecuteQueryFrom(const NetAddress& client,
                                                        const std::string& sql) {
  if (peer(client) == nullptr) {
    return Status::InvalidArgument("unknown client peer " + client.ToString());
  }
  ASSIGN_OR_RETURN(const SelectStatement stmt, ParseSelect(sql));
  PlannerOptions planner_options;
  planner_options.allow_multi_attribute = config_.multi_attribute;
  ASSIGN_OR_RETURN(const QueryPlan plan, BuildPlan(stmt, catalog_, planner_options));

  const uint64_t hops_before = metrics_.chord_hops;
  const double latency_before = metrics_.latency_ms;

  // §6 extension: whole-result cache keyed by the canonical plan (the
  // plan text normalizes literal spellings, bound merging, and column
  // qualification, so equivalent queries share a key).
  const std::string result_key = "QR|" + plan.ToString();
  const chord::ChordId result_id = Sha1::Hash32(result_key);
  chord::NodeInfo result_owner{};
  if (config_.cache_query_results) {
    ++metrics_.result_cache_lookups;
    ASSIGN_OR_RETURN(const chord::LookupResult route,
                     ring_->Lookup(client, result_id));
    metrics_.chord_hops += route.hops;
    metrics_.latency_ms += route.latency_ms;
    result_owner = route.owner;
    Peer* owner_peer = peer(route.owner.addr);
    const std::optional<EqDescriptor> desc =
        owner_peer == nullptr ? std::nullopt
                              : owner_peer->FindEqDescriptor(result_id, result_key);
    if (desc) {
      const Peer* holder_peer = peer(desc->holder);
      const Relation* cached =
          holder_peer == nullptr ? nullptr : holder_peer->GetEqData(result_key);
      if (cached != nullptr) {
        RETURN_NOT_OK(TransferData(client, desc->holder, *cached,
                                   /*from_source=*/false));
        ++metrics_.result_cache_hits;
        QueryOutcome outcome;
        outcome.result = *cached;
        outcome.from_result_cache = true;
        outcome.total_hops = static_cast<int>(metrics_.chord_hops - hops_before);
        outcome.total_latency_ms = metrics_.latency_ms - latency_before;
        return outcome;
      }
    }
  }

  QueryOutcome outcome;
  std::map<std::string, Relation> inputs;
  for (const TableSelection& leaf : plan.leaves) {
    LeafOutcome leaf_outcome;
    RETURN_NOT_OK(AnswerLeaf(client, leaf, &inputs, &leaf_outcome));
    if (leaf_outcome.recall < 1.0) outcome.approximate = true;
    outcome.leaves.push_back(std::move(leaf_outcome));
  }
  ASSIGN_OR_RETURN(outcome.result, ExecutePlan(plan, inputs));

  // Publish the complete result (never an approximate one) at the
  // querying peer for future exact re-asks.
  if (config_.cache_query_results && !outcome.approximate) {
    peer(client)->StoreEqData(result_key, outcome.result);
    Peer* owner_peer = peer(result_owner.addr);
    if (owner_peer != nullptr) {
      owner_peer->StoreEqDescriptor(result_id, EqDescriptor{result_key, client});
    }
  }

  outcome.total_hops = static_cast<int>(metrics_.chord_hops - hops_before);
  outcome.total_latency_ms = metrics_.latency_ms - latency_before;
  return outcome;
}

Result<NetAddress> RangeCacheSystem::AddPeer() {
  ASSIGN_OR_RETURN(const chord::NodeInfo info, ring_->AddNode());
  ring_->StabilizeAll(2);
  peers_.emplace(info.addr,
                 std::make_unique<Peer>(info, config_.store_capacity));
  return info.addr;
}

Status RangeCacheSystem::RemovePeer(const NetAddress& addr, bool graceful) {
  if (addr == source_) {
    return Status::InvalidArgument("the source peer cannot leave the system");
  }
  if (peer(addr) == nullptr) {
    return Status::NotFound("unknown peer " + addr.ToString());
  }
  if (graceful) {
    RETURN_NOT_OK(ring_->Leave(addr));
  } else {
    RETURN_NOT_OK(ring_->Fail(addr));
  }
  ring_->StabilizeAll(1);
  peers_.erase(addr);
  return Status::OK();
}

std::vector<size_t> RangeCacheSystem::DescriptorCountsPerPeer() const {
  std::vector<size_t> counts;
  counts.reserve(peers_.size());
  for (const chord::NodeInfo& info : ring_->AliveNodesSorted()) {
    const Peer* p = peer(info.addr);
    counts.push_back(p == nullptr ? 0 : p->store().num_descriptors());
  }
  return counts;
}

}  // namespace p2prange
