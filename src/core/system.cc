#include "core/system.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "core/coverage.h"
#include "hash/sha1.h"
#include "overlay/chord_overlay.h"
#include "overlay/factory.h"
#include "wire/serde.h"

namespace p2prange {

bool RangeCacheSystem::BudgetExhausted(OpBudget* budget) {
  if (budget == nullptr || config_.fault.op_budget_ms <= 0.0) return false;
  if (budget->spent_ms < config_.fault.op_budget_ms) return false;
  if (!budget->exhausted) {
    budget->exhausted = true;
    ++metrics_.budget_exhausted;
  }
  return true;
}

Result<double> RangeCacheSystem::DeliverWithPolicy(const NetAddress& from,
                                                   const NetAddress& to,
                                                   uint64_t payload_bytes,
                                                   OpBudget* budget) {
  const FaultPolicy& policy = config_.fault;
  double total = 0.0;
  double wait = policy.backoff_base_ms;
  Status last;
  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff before the retransmission; the wait is
      // simulated time the operation spends doing nothing, so it is
      // charged as latency like any network delay.
      double pause = std::min(wait, policy.backoff_max_ms);
      pause *= 1.0 - policy.backoff_jitter +
               policy.backoff_jitter * rng_.NextDouble();
      total += pause;
      metrics_.backoff_latency_ms += pause;
      wait *= policy.backoff_multiplier;
      ++metrics_.retransmissions;
    }
    auto latency = overlay_->DeliverBytes(from, to, payload_bytes);
    if (latency.ok()) {
      total += *latency;
      if (budget != nullptr) budget->spent_ms += total;
      return total;
    }
    last = latency.status();
    if (!last.IsIOError()) break;  // dead peer: retrying is futile
    if (budget != nullptr && config_.fault.op_budget_ms > 0.0 &&
        budget->spent_ms + total >= config_.fault.op_budget_ms) {
      break;  // out of time: give up instead of stalling the operation
    }
  }
  if (budget != nullptr) {
    budget->spent_ms += total;
    (void)BudgetExhausted(budget);
  }
  return last;
}

RangeCacheSystem::RangeCacheSystem(const SystemConfig& config, Catalog catalog)
    : config_(config),
      catalog_(std::move(catalog)),
      padding_controller_(config.adaptive),
      column_stats_(config.stats),
      rng_(config.seed ^ 0xfa017edULL) {}

Result<RangeCacheSystem> RangeCacheSystem::Make(const SystemConfig& config,
                                                Catalog catalog) {
  if (config.padding < 0.0) {
    return Status::InvalidArgument("padding must be non-negative");
  }
  if (config.descriptor_replication < 1) {
    return Status::InvalidArgument("descriptor_replication must be >= 1");
  }
  RETURN_NOT_OK(config.fault.Validate());
  RangeCacheSystem sys(config, std::move(catalog));

  ASSIGN_OR_RETURN(sys.overlay_,
                   overlay::MakeOverlay(config.overlay, config.num_peers,
                                        config.seed, config.chord));

  LshParams lsh_params = config.lsh;
  lsh_params.seed = config.seed ^ 0x5bd1e995u;
  ASSIGN_OR_RETURN(LshScheme scheme, LshScheme::Make(lsh_params));
  sys.lsh_ = std::make_unique<LshScheme>(std::move(scheme));

  const auto nodes = sys.overlay_->AlivePeersOrdered();
  for (const overlay::PeerInfo& info : nodes) {
    sys.peers_.emplace(
        info.addr,
        std::make_unique<Peer>(chord::NodeInfo{info.id, info.addr},
                               config.store_capacity, config.durability));
  }
  sys.source_ = nodes.front().addr;
  return sys;
}

chord::ChordRing& RangeCacheSystem::ring() {
  CHECK(overlay_->kind() == overlay::Kind::kChord)
      << "ring() requires a Chord-backed system, got " << overlay_->name();
  return static_cast<overlay::ChordOverlay*>(overlay_.get())->ring();
}

Peer* RangeCacheSystem::peer(const NetAddress& addr) {
  auto it = peers_.find(addr);
  return it == peers_.end() ? nullptr : it->second.get();
}

const Peer* RangeCacheSystem::peer(const NetAddress& addr) const {
  auto it = peers_.find(addr);
  return it == peers_.end() ? nullptr : it->second.get();
}

Result<AttributeDomain> RangeCacheSystem::DomainFor(const PartitionKey& key) const {
  return catalog_.GetDomain(key.relation, key.attribute);
}

Result<Range> RangeCacheSystem::EffectiveRange(const PartitionKey& key) const {
  const double padding =
      config_.adaptive_padding
          ? padding_controller_.Get(key.relation + "." + key.attribute)
          : config_.padding;
  if (padding <= 0.0) return key.range;
  ASSIGN_OR_RETURN(const AttributeDomain domain, DomainFor(key));
  const uint32_t width_hi = static_cast<uint32_t>(domain.width() - 1);
  return key.range.Padded(padding, 0, width_hi);
}

Status RangeCacheSystem::TransferData(const NetAddress& client,
                                      const NetAddress& server,
                                      const Relation& payload, bool from_source) {
  // Request (control) + response carrying the encoded tuples; both
  // legs retransmit on transit loss under the fault policy.
  auto req = DeliverWithPolicy(client, server, 0, nullptr);
  RETURN_NOT_OK(req.status());
  const size_t bytes = wire::RelationWireSize(payload);
  auto resp = DeliverWithPolicy(server, client, bytes, nullptr);
  RETURN_NOT_OK(resp.status());
  metrics_.latency_ms += *req + *resp;
  if (from_source) {
    metrics_.bytes_from_source += bytes;
  } else {
    metrics_.bytes_from_cache += bytes;
  }
  return Status::OK();
}

Result<std::optional<Relation>> RangeCacheSystem::FetchCoverage(
    const NetAddress& client, const std::vector<PartitionDescriptor>& pieces) {
  if (pieces.empty()) return std::optional<Relation>(std::nullopt);
  // All pieces must be materialized at a *reachable* holder before any
  // bytes move; a dead or empty holder degrades the whole assembly
  // (the caller falls back to a single match or the source).
  std::vector<const Relation*> datas;
  datas.reserve(pieces.size());
  for (const PartitionDescriptor& piece : pieces) {
    if (!overlay_->IsAlive(piece.holder)) {
      return std::optional<Relation>(std::nullopt);
    }
    const Peer* holder = peer(piece.holder);
    const Relation* data = holder ? holder->GetPartitionData(piece.key) : nullptr;
    if (data == nullptr) return std::optional<Relation>(std::nullopt);
    datas.push_back(data);
  }
  std::optional<Relation> merged;
  std::set<std::string> seen_rows;
  for (size_t i = 0; i < pieces.size(); ++i) {
    const Status shipped = TransferData(client, pieces[i].holder, *datas[i],
                                        /*from_source=*/false);
    // A holder crashing mid-assembly (or retries running dry) is a
    // degradation, not a query failure.
    if (!shipped.ok()) return std::optional<Relation>(std::nullopt);
    if (!merged) merged = Relation(datas[i]->name(), datas[i]->schema());
    for (const Row& row : datas[i]->rows()) {
      // Overlapping partitions duplicate tuples; dedup by encoding.
      wire::Encoder enc;
      for (const Value& v : row) wire::EncodeValue(v, &enc);
      if (seen_rows.insert(enc.Take()).second) {
        merged->AppendUnchecked(row);
      }
    }
  }
  return merged;
}


Result<RangeLookupOutcome> RangeCacheSystem::LookupRange(const PartitionKey& query) {
  ASSIGN_OR_RETURN(const NetAddress origin, overlay_->RandomAliveAddress());
  return LookupRangeFrom(origin, query);
}

Result<RangeLookupOutcome> RangeCacheSystem::LookupRangeFrom(
    const NetAddress& origin, const PartitionKey& query) {
  if (peer(origin) == nullptr) {
    return Status::InvalidArgument("unknown origin peer " + origin.ToString());
  }
  if (!overlay_->IsAlive(origin)) {
    return Status::InvalidArgument("origin peer " + origin.ToString() +
                                   " is down");
  }
  RangeLookupOutcome out;
  out.query = query.range;
  ASSIGN_OR_RETURN(out.effective_query, EffectiveRange(query));
  const PartitionKey effective_key{query.relation, query.attribute,
                                   out.effective_query};
  // Batched: all l group signatures in one pass over the flat function
  // table, written straight into the outcome's buffer.
  lsh_->IdentifiersInto(out.effective_query, &out.identifiers);

  ++metrics_.range_lookups;

  // Route to each identifier's owner and collect its best match. A
  // probe that cannot be answered — routing failed, the owner crashed
  // mid-query, its reply was lost beyond the retry budget — degrades
  // the fan-out instead of failing it: the lookup returns the best
  // match among the groups that did answer.
  OpBudget budget;
  std::vector<MatchCandidate> candidates;
  std::set<std::string> candidates_seen;
  std::set<NetAddress> owners_seen;
  std::vector<PartitionDescriptor> coverage_candidates;
  std::set<std::string> coverage_seen;

  // Probes one replica's bucket; commits its candidate and coverage
  // contributions only once the reply reaches the origin.
  auto probe_replica = [&](const NetAddress& target, chord::ChordId id) -> bool {
    Peer* owner_peer = peer(target);
    if (owner_peer == nullptr || !overlay_->IsAlive(target)) return false;
    // Dead holders make their descriptors stale; the probing owner
    // evicts them on sight (lazy repair) and serves the next-best.
    std::optional<MatchCandidate> candidate;
    for (;;) {
      candidate = config_.use_peer_index
                      ? owner_peer->store().BestMatchAnywhere(effective_key,
                                                              config_.criterion)
                      : owner_peer->store().BestMatch(id, effective_key,
                                                      config_.criterion);
      if (!candidate || overlay_->IsAlive(candidate->descriptor.holder)) {
        break;
      }
      metrics_.stale_evictions += owner_peer->EraseStaleDescriptors(
          candidate->descriptor.key, candidate->descriptor.holder);
    }
    std::vector<MatchCandidate> overlapping;
    if (config_.assemble_coverage) {
      for (MatchCandidate& c : owner_peer->store().OverlappingCandidates(
               id, effective_key, config_.criterion)) {
        if (!overlay_->IsAlive(c.descriptor.holder)) {
          metrics_.stale_evictions += owner_peer->EraseStaleDescriptors(
              c.descriptor.key, c.descriptor.holder);
          continue;
        }
        overlapping.push_back(std::move(c));
      }
    }
    // The reply must actually arrive for the origin to learn anything.
    auto reply = DeliverWithPolicy(target, origin, 0, &budget);
    if (!reply.ok()) return false;
    out.latency_ms += *reply;
    metrics_.latency_ms += *reply;
    if (owners_seen.insert(target).second) {
      ++out.peers_contacted;
      out.probed_owners.push_back(target);
    }
    if (candidate) {
      const std::string key = candidate->descriptor.key.ToString() + "@" +
                              candidate->descriptor.holder.ToString();
      if (candidates_seen.insert(key).second) {
        candidates.push_back(std::move(*candidate));
      }
    }
    for (MatchCandidate& c : overlapping) {
      if (coverage_seen.insert(c.descriptor.key.ToString() + "@" +
                               c.descriptor.holder.ToString())
              .second) {
        coverage_candidates.push_back(std::move(c.descriptor));
      }
    }
    return true;
  };

  for (size_t g = 0; g < out.identifiers.size(); ++g) {
    if (BudgetExhausted(&budget)) {
      // Out of time: the remaining probes are abandoned.
      out.probes_failed += static_cast<int>(out.identifiers.size() - g);
      metrics_.probes_failed += out.identifiers.size() - g;
      break;
    }
    auto route = overlay_->RouteToOwner(origin, out.identifiers[g]);
    if (!route.ok()) {
      // Routing never reached this identifier's owner.
      ++out.probes_failed;
      ++metrics_.probes_failed;
      continue;
    }
    out.hops += route->hops;
    out.latency_ms += route->latency_ms;
    metrics_.chord_hops += route->hops;
    metrics_.latency_ms += route->latency_ms;
    budget.spent_ms += route->latency_ms;

    // Routing has committed to an owner; it may still die before it
    // answers (the probe below notices and fails over).
    if (step_hook_) step_hook_("probe");

    if (probe_replica(route->owner.addr, out.identifiers[g])) continue;

    // The owner is unreachable (crashed mid-query, or its reply was
    // lost beyond the retry budget). With replication its successors
    // hold copies of the bucket — fail over to them.
    bool answered = false;
    if (config_.descriptor_replication > 1) {
      int tried = 0;
      for (const overlay::PeerInfo& succ :
           overlay_->ReplicaCandidates(route->owner.addr)) {
        if (tried >= config_.descriptor_replication - 1) break;
        if (!overlay_->IsAlive(succ.addr)) continue;
        ++tried;
        if (step_hook_) step_hook_("failover");
        // One extra hop to reach the replica.
        auto fwd = DeliverWithPolicy(origin, succ.addr, 0, &budget);
        if (!fwd.ok()) continue;
        out.latency_ms += *fwd;
        metrics_.latency_ms += *fwd;
        ++out.hops;
        ++metrics_.chord_hops;
        if (probe_replica(succ.addr, out.identifiers[g])) {
          ++out.failovers;
          ++metrics_.probe_failovers;
          answered = true;
          break;
        }
      }
    }
    if (!answered) {
      ++out.probes_failed;
      ++metrics_.probes_failed;
    }
  }

  out.degraded = out.probes_failed > 0 || budget.exhausted;
  if (out.degraded) ++metrics_.degraded_lookups;

  // Rank the collected candidates best-first: higher similarity wins,
  // exactness breaks ties (matches the single-best rule the protocol
  // used before it kept a ranked list).
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const MatchCandidate& a, const MatchCandidate& b) {
                     if (a.similarity != b.similarity) {
                       return a.similarity > b.similarity;
                     }
                     return a.exact && !b.exact;
                   });
  const std::optional<MatchCandidate> best =
      candidates.empty() ? std::nullopt
                         : std::optional<MatchCandidate>(candidates.front());
  out.ranked.reserve(candidates.size());
  for (const MatchCandidate& c : candidates) {
    RangeMatch m;
    m.matched = c.descriptor.key;
    m.holder = c.descriptor.holder;
    m.score = c.similarity;
    m.jaccard = query.range.Jaccard(c.descriptor.key.range);
    m.recall = query.range.RecallFrom(c.descriptor.key.range);
    m.exact = c.descriptor.key.range == out.effective_query;
    out.ranked.push_back(std::move(m));
  }

  if (config_.assemble_coverage && !coverage_candidates.empty()) {
    CoverageResult cover = AssembleCoverage(query.range,
                                            std::move(coverage_candidates),
                                            config_.max_coverage_pieces);
    out.coverage_pieces = std::move(cover.pieces);
    out.coverage_recall = cover.covered_fraction;
  }

  if (config_.adaptive_padding) {
    padding_controller_.Observe(
        query.relation + "." + query.attribute,
        best ? query.range.RecallFrom(best->descriptor.key.range) : 0.0);
  }

  if (!out.ranked.empty()) {
    out.match = out.ranked.front();
    if (out.match->exact) {
      ++metrics_.exact_hits;
    } else {
      ++metrics_.approx_hits;
    }
  } else {
    ++metrics_.misses;
  }

  // Cache-on-miss (§4): if no exact match exists, the computed
  // partition (the effective range, held by the origin) is stored at
  // the peers owning the l identifiers.
  if (config_.cache_on_miss && (!out.match || !out.match->exact)) {
    const PartitionDescriptor descriptor{effective_key, origin};
    ++metrics_.partitions_published;
    for (size_t g = 0; g < out.identifiers.size(); ++g) {
      StoreReplicated(out.identifiers[g], descriptor, origin, &out.latency_ms);
    }
  }
  return out;
}

void RangeCacheSystem::StoreReplicated(chord::ChordId id,
                                       const PartitionDescriptor& descriptor,
                                       const NetAddress& from,
                                       double* latency_acc) {
  // Resolve the current owner plus (replication - 1) of its live
  // successors; each replica costs one store message.
  auto owner_info = overlay_->OwnerOracle(id);
  if (!owner_info.ok()) return;
  std::vector<NetAddress> targets{owner_info->addr};
  for (const overlay::PeerInfo& succ :
       overlay_->ReplicaCandidates(owner_info->addr)) {
    if (static_cast<int>(targets.size()) >= config_.descriptor_replication) break;
    if (!overlay_->IsAlive(succ.addr)) continue;
    targets.push_back(succ.addr);
  }
  for (const NetAddress& target : targets) {
    Peer* target_peer = peer(target);
    if (target_peer == nullptr) continue;  // churned away mid-protocol
    // The store RPC must arrive before the descriptor exists there.
    auto msg = DeliverWithPolicy(from, target, 0, nullptr);
    if (!msg.ok()) continue;
    if (latency_acc != nullptr) *latency_acc += *msg;
    metrics_.latency_ms += *msg;
    if (target_peer->InsertDescriptor(id, descriptor)) {
      ++metrics_.descriptors_stored;
    }
  }
}

Status RangeCacheSystem::PublishPartition(const PartitionKey& key,
                                          const NetAddress& holder) {
  if (peer(holder) == nullptr) {
    return Status::InvalidArgument("unknown holder peer " + holder.ToString());
  }
  lsh_->IdentifiersInto(key.range, &identifier_scratch_);
  const PartitionDescriptor descriptor{key, holder};
  ++metrics_.partitions_published;
  for (uint32_t id : identifier_scratch_) {
    // A failed route skips this identifier's replicas (the partition
    // stays findable under the other l-1 identifiers).
    auto route = overlay_->RouteToOwner(holder, id);
    if (!route.ok()) continue;
    metrics_.chord_hops += route->hops;
    metrics_.latency_ms += route->latency_ms;
    StoreReplicated(id, descriptor, holder, nullptr);
  }
  return Status::OK();
}

Status RangeCacheSystem::MaterializePartition(const PartitionKey& key,
                                              const NetAddress& holder) {
  Peer* holder_peer = peer(holder);
  if (holder_peer == nullptr) {
    return Status::InvalidArgument("unknown holder peer " + holder.ToString());
  }
  ASSIGN_OR_RETURN(const Relation* base, catalog_.GetBaseData(key.relation));
  ASSIGN_OR_RETURN(const AttributeDomain domain, DomainFor(key));
  ASSIGN_OR_RETURN(
      Relation rows,
      base->SelectOrdinalRange(key.attribute, domain.DecodeLo(key.range),
                               domain.DecodeHi(key.range)));
  ++metrics_.source_fetches;
  RETURN_NOT_OK(TransferData(holder, source_, rows, /*from_source=*/true));
  holder_peer->StorePartitionData(key, std::move(rows));
  return Status::OK();
}

namespace {
std::string EqKeyString(const std::string& relation, const std::string& attribute,
                        const Value& v) {
  return relation + "|" + attribute + "|" + v.ToString();
}
}  // namespace

Status RangeCacheSystem::AnswerLeaf(const NetAddress& client,
                                    const TableSelection& leaf,
                                    std::map<std::string, Relation>* inputs,
                                    LeafOutcome* outcome) {
  outcome->table = leaf.table;

  const std::vector<RangeSelection> ranges = leaf.AllRanges();
  if (!ranges.empty()) {
    // Probe the cache for every range-selected attribute of this leaf
    // (one with the paper's base model; several under the §6
    // multi-attribute extension). A partition that fully covers *its*
    // attribute's selection yields the complete leaf answer once the
    // remaining predicates are applied locally by the executor.
    struct Candidate {
      RangeLookupOutcome lookup;
      PartitionKey key;
    };
    std::optional<Candidate> best;
    std::optional<Candidate> best_cover;  // by assembled coverage
    std::optional<RangeLookupOutcome> primary_lookup;
    PartitionKey primary_key;
    for (const RangeSelection& sel : ranges) {
      ASSIGN_OR_RETURN(const AttributeDomain domain,
                       catalog_.GetDomain(leaf.table, sel.attribute));
      ASSIGN_OR_RETURN(const Range encoded,
                       domain.EncodeClampedRange(sel.lo, sel.hi));
      const PartitionKey key{leaf.table, sel.attribute, encoded};
      if (primary_key.relation.empty()) primary_key = key;
      // §6 statistics-based planning: skip probing columns whose cache
      // has proven useless (with periodic exploration).
      const std::string column_key = leaf.table + "." + sel.attribute;
      if (config_.stats_planning && !column_stats_.ShouldProbe(column_key)) {
        ++metrics_.lookups_skipped;
        continue;
      }
      ASSIGN_OR_RETURN(RangeLookupOutcome lookup, LookupRangeFrom(client, key));
      const double recall = lookup.match ? lookup.match->recall : 0.0;
      if (config_.stats_planning) column_stats_.Observe(column_key, recall);
      const double best_recall =
          best && best->lookup.match ? best->lookup.match->recall : -1.0;
      if (!primary_lookup) primary_lookup = lookup;
      if (config_.assemble_coverage && lookup.coverage_recall > 0.0 &&
          (!best_cover || lookup.coverage_recall > best_cover->lookup.coverage_recall)) {
        best_cover = Candidate{lookup, key};
      }
      if (recall > best_recall) {
        best = Candidate{std::move(lookup), key};
      }
    }

    // Walk the ranked matches until one is actually fetchable. A match
    // whose holder died between the probe and the fetch is stale: its
    // descriptors are lazily evicted at every probed owner and the
    // next-best match takes over; if every match fails, the source
    // answers (a fault can degrade a query, never fail it).
    bool cache_match_failed = false;
    if (best && best->lookup.match) {
      for (const RangeMatch& m : best->lookup.ranked) {
        // The best *surviving* match decides, exactly as the single-
        // match rule did: if it does not qualify for a cache answer,
        // the leaf goes to the source rather than to a worse match.
        const bool acceptable =
            m.recall >= 1.0 || (config_.accept_partial_answers && m.recall > 0.0);
        if (!acceptable) break;
        if (step_hook_) step_hook_("fetch");
        if (!overlay_->IsAlive(m.holder)) {
          // Dead at fetch time: repair the probing owners' buckets.
          for (const NetAddress& owner : best->lookup.probed_owners) {
            Peer* owner_peer = peer(owner);
            if (owner_peer == nullptr) continue;
            metrics_.stale_evictions +=
                owner_peer->EraseStaleDescriptors(m.matched, m.holder);
          }
          cache_match_failed = true;
          continue;
        }
        const Peer* holder_peer = peer(m.holder);
        const Relation* data =
            holder_peer == nullptr ? nullptr
                                   : holder_peer->GetPartitionData(m.matched);
        if (data == nullptr) {
          // Descriptor with no materialized bytes (holder lost or
          // never fetched them): useless, try the next match.
          cache_match_failed = true;
          continue;
        }
        if (!TransferData(client, m.holder, *data, /*from_source=*/false).ok()) {
          // Holder crashed mid-transfer or retries ran dry.
          cache_match_failed = true;
          continue;
        }
        ++metrics_.cache_fetches;
        inputs->emplace(leaf.table, *data);
        outcome->used_cache = true;
        outcome->recall = m.recall;
        outcome->lookup = std::move(best->lookup);
        return Status::OK();
      }
    }

    // Multi-partition coverage: several overlapping partitions may
    // jointly cover the selection even though no single one does.
    if (best_cover &&
        best_cover->lookup.coverage_recall >
            (best && best->lookup.match ? best->lookup.match->recall : 0.0)) {
      const double covered = best_cover->lookup.coverage_recall;
      const bool cover_full = covered >= 1.0 - 1e-12;
      if (cover_full || (config_.accept_partial_answers && covered > 0.0)) {
        ASSIGN_OR_RETURN(
            const std::optional<Relation> merged,
            FetchCoverage(client, best_cover->lookup.coverage_pieces));
        if (merged.has_value()) {
          ++metrics_.cache_fetches;
          ++metrics_.coverage_assemblies;
          inputs->emplace(leaf.table, *merged);
          outcome->used_cache = true;
          outcome->recall = covered;
          outcome->lookup = std::move(best_cover->lookup);
          return Status::OK();
        }
        cache_match_failed = true;  // assembly broke (dead/empty holder)
      }
    }

    if (cache_match_failed) ++metrics_.source_fallbacks;

    // Go to the source for the primary attribute's (effective)
    // partition. With caching enabled, materialize it at the client
    // and re-publish the descriptors so they point at the client's
    // copy — the lookup's cache-on-miss step does not run on an exact
    // hit, and the exact hit may have been a descriptor whose holder
    // never materialized the bytes (e.g. published by a metadata-only
    // lookup).
    Range primary_effective = primary_key.range;
    if (primary_lookup) {
      primary_effective = primary_lookup->effective_query;
    } else {
      ASSIGN_OR_RETURN(primary_effective, EffectiveRange(primary_key));
    }
    const PartitionKey effective_key{leaf.table, ranges.front().attribute,
                                     primary_effective};
    if (config_.cache_on_miss) {
      RETURN_NOT_OK(MaterializePartition(effective_key, client));
      RETURN_NOT_OK(PublishPartition(effective_key, client));
      const Relation* data = peer(client)->GetPartitionData(effective_key);
      DCHECK(data != nullptr);
      inputs->emplace(leaf.table, *data);
    } else {
      ASSIGN_OR_RETURN(const Relation* base, catalog_.GetBaseData(leaf.table));
      ASSIGN_OR_RETURN(const AttributeDomain domain, DomainFor(effective_key));
      ASSIGN_OR_RETURN(Relation rows,
                       base->SelectOrdinalRange(
                           effective_key.attribute,
                           domain.DecodeLo(effective_key.range),
                           domain.DecodeHi(effective_key.range)));
      ++metrics_.source_fetches;
      RETURN_NOT_OK(TransferData(client, source_, rows, /*from_source=*/true));
      inputs->emplace(leaf.table, std::move(rows));
    }
    outcome->from_source = true;
    outcome->recall = 1.0;
    if (primary_lookup) outcome->lookup = std::move(*primary_lookup);
    return Status::OK();
  }

  if (!leaf.filters.empty()) {
    // Exact-match partition path (§3.1): hash the (relation,
    // attribute, value) key onto the ring, probe the owner.
    const EqFilter& f = leaf.filters.front();
    const std::string eq_key = EqKeyString(leaf.table, f.attribute, f.value);
    const chord::ChordId id = Sha1::Hash32(eq_key);
    ++metrics_.eq_lookups;
    // A failed route (or an owner that crashed mid-query) skips the
    // cache probe; the source still answers.
    Peer* owner_peer = nullptr;
    auto route = overlay_->RouteToOwner(client, id);
    if (route.ok()) {
      metrics_.chord_hops += route->hops;
      metrics_.latency_ms += route->latency_ms;
      if (overlay_->IsAlive(route->owner.addr)) {
        owner_peer = peer(route->owner.addr);
      }
    }
    std::optional<EqDescriptor> desc =
        owner_peer == nullptr ? std::nullopt
                              : owner_peer->FindEqDescriptor(id, eq_key);
    if (desc && !overlay_->IsAlive(desc->holder)) {
      // Stale: the holder died with its data. Repair the owner's
      // bucket so later queries go straight to the source.
      if (owner_peer->EraseEqDescriptor(id, eq_key, desc->holder)) {
        ++metrics_.stale_evictions;
      }
      ++metrics_.source_fallbacks;
      desc.reset();
    }
    if (desc) {
      const Peer* holder_peer = peer(desc->holder);
      const Relation* data =
          holder_peer == nullptr ? nullptr : holder_peer->GetEqData(eq_key);
      if (data != nullptr &&
          TransferData(client, desc->holder, *data, /*from_source=*/false).ok()) {
        ++metrics_.eq_hits;
        ++metrics_.cache_fetches;
        inputs->emplace(leaf.table, *data);
        outcome->used_cache = true;
        return Status::OK();
      }
      ++metrics_.source_fallbacks;
    }
    // Source fetch; publish and materialize at the client.
    ASSIGN_OR_RETURN(const Relation* base, catalog_.GetBaseData(leaf.table));
    ASSIGN_OR_RETURN(Relation rows, base->SelectEquals(f.attribute, f.value));
    ++metrics_.source_fetches;
    RETURN_NOT_OK(TransferData(client, source_, rows, /*from_source=*/true));
    if (config_.cache_on_miss) {
      peer(client)->StoreEqData(eq_key, rows);
      if (owner_peer != nullptr) {
        owner_peer->StoreEqDescriptor(id, EqDescriptor{eq_key, client});
      }
    }
    inputs->emplace(leaf.table, std::move(rows));
    outcome->from_source = true;
    return Status::OK();
  }

  // Unfiltered leaf: always from the source.
  ASSIGN_OR_RETURN(const Relation* base, catalog_.GetBaseData(leaf.table));
  ++metrics_.source_fetches;
  RETURN_NOT_OK(TransferData(client, source_, *base, /*from_source=*/true));
  inputs->emplace(leaf.table, *base);
  outcome->from_source = true;
  return Status::OK();
}

Result<QueryOutcome> RangeCacheSystem::ExecuteQuery(const std::string& sql) {
  ASSIGN_OR_RETURN(const NetAddress client, overlay_->RandomAliveAddress());
  return ExecuteQueryFrom(client, sql);
}

Result<QueryOutcome> RangeCacheSystem::ExecuteQueryFrom(const NetAddress& client,
                                                        const std::string& sql) {
  if (peer(client) == nullptr) {
    return Status::InvalidArgument("unknown client peer " + client.ToString());
  }
  if (!overlay_->IsAlive(client)) {
    return Status::InvalidArgument("client peer " + client.ToString() +
                                   " is down");
  }
  ASSIGN_OR_RETURN(const SelectStatement stmt, ParseSelect(sql));
  PlannerOptions planner_options;
  planner_options.allow_multi_attribute = config_.multi_attribute;
  ASSIGN_OR_RETURN(const QueryPlan plan, BuildPlan(stmt, catalog_, planner_options));

  const uint64_t hops_before = metrics_.chord_hops;
  const double latency_before = metrics_.latency_ms;

  // §6 extension: whole-result cache keyed by the canonical plan (the
  // plan text normalizes literal spellings, bound merging, and column
  // qualification, so equivalent queries share a key).
  const std::string result_key = "QR|" + plan.ToString();
  const chord::ChordId result_id = Sha1::Hash32(result_key);
  overlay::PeerInfo result_owner{};
  if (config_.cache_query_results) {
    ++metrics_.result_cache_lookups;
    // A failed route or crashed owner just skips the result cache.
    auto route = overlay_->RouteToOwner(client, result_id);
    Peer* owner_peer = nullptr;
    if (route.ok()) {
      metrics_.chord_hops += route->hops;
      metrics_.latency_ms += route->latency_ms;
      result_owner = route->owner;
      if (overlay_->IsAlive(route->owner.addr)) {
        owner_peer = peer(route->owner.addr);
      }
    }
    std::optional<EqDescriptor> desc =
        owner_peer == nullptr ? std::nullopt
                              : owner_peer->FindEqDescriptor(result_id, result_key);
    if (desc && !overlay_->IsAlive(desc->holder)) {
      if (owner_peer->EraseEqDescriptor(result_id, result_key, desc->holder)) {
        ++metrics_.stale_evictions;
      }
      desc.reset();
    }
    if (desc) {
      const Peer* holder_peer = peer(desc->holder);
      const Relation* cached =
          holder_peer == nullptr ? nullptr : holder_peer->GetEqData(result_key);
      if (cached != nullptr &&
          TransferData(client, desc->holder, *cached, /*from_source=*/false).ok()) {
        ++metrics_.result_cache_hits;
        QueryOutcome outcome;
        outcome.result = *cached;
        outcome.from_result_cache = true;
        outcome.total_hops = static_cast<int>(metrics_.chord_hops - hops_before);
        outcome.total_latency_ms = metrics_.latency_ms - latency_before;
        return outcome;
      }
    }
  }

  QueryOutcome outcome;
  std::map<std::string, Relation> inputs;
  for (const TableSelection& leaf : plan.leaves) {
    LeafOutcome leaf_outcome;
    RETURN_NOT_OK(AnswerLeaf(client, leaf, &inputs, &leaf_outcome));
    if (leaf_outcome.recall < 1.0) outcome.approximate = true;
    outcome.leaves.push_back(std::move(leaf_outcome));
  }
  ASSIGN_OR_RETURN(outcome.result, ExecutePlan(plan, inputs));

  // Publish the complete result (never an approximate one) at the
  // querying peer for future exact re-asks.
  if (config_.cache_query_results && !outcome.approximate) {
    peer(client)->StoreEqData(result_key, outcome.result);
    Peer* owner_peer = overlay_->IsAlive(result_owner.addr)
                           ? peer(result_owner.addr)
                           : nullptr;
    if (owner_peer != nullptr) {
      owner_peer->StoreEqDescriptor(result_id, EqDescriptor{result_key, client});
    }
  }

  outcome.total_hops = static_cast<int>(metrics_.chord_hops - hops_before);
  outcome.total_latency_ms = metrics_.latency_ms - latency_before;
  return outcome;
}

Result<NetAddress> RangeCacheSystem::AddPeer() {
  ASSIGN_OR_RETURN(const overlay::PeerInfo info, overlay_->AddNode());
  overlay_->Stabilize(2);
  peers_.emplace(info.addr,
                 std::make_unique<Peer>(chord::NodeInfo{info.id, info.addr},
                                        config_.store_capacity, config_.durability));
  return info.addr;
}

Status RangeCacheSystem::RemovePeer(const NetAddress& addr, bool graceful) {
  if (addr == source_) {
    return Status::InvalidArgument("the source peer cannot leave the system");
  }
  if (peer(addr) == nullptr) {
    return Status::NotFound("unknown peer " + addr.ToString());
  }
  if (graceful) {
    RETURN_NOT_OK(overlay_->Leave(addr));
  } else {
    RETURN_NOT_OK(overlay_->Fail(addr));
  }
  overlay_->Stabilize(1);
  peers_.erase(addr);
  return Status::OK();
}

Status RangeCacheSystem::CrashPeer(const NetAddress& addr) {
  if (addr == source_) {
    return Status::InvalidArgument("the source peer cannot crash");
  }
  if (peer(addr) == nullptr) {
    return Status::NotFound("unknown peer " + addr.ToString());
  }
  if (!overlay_->IsAlive(addr)) {
    return Status::InvalidArgument("peer " + addr.ToString() + " already down");
  }
  // Abrupt and undetected: no handoff, no stabilization. The ring
  // repairs itself through successor lists during later lookups and
  // maintenance sweeps; the peer's descriptors go stale until the
  // lazy-repair path evicts them.
  RETURN_NOT_OK(overlay_->Fail(addr));
  // Honest crash semantics: everything in RAM is gone. The WAL and
  // checkpoint images inside the peer survive (they model its disk);
  // with durability disabled there is nothing to come back from.
  peer(addr)->CrashVolatileState();
  ++metrics_.peer_crashes;
  return Status::OK();
}

Status RangeCacheSystem::RecoverPeer(const NetAddress& addr) {
  Peer* p = peer(addr);
  if (p == nullptr) {
    return Status::NotFound("unknown peer " + addr.ToString());
  }
  if (overlay_->IsAlive(addr)) {
    return Status::InvalidArgument("peer " + addr.ToString() + " is not down");
  }
  // Local replay first (checkpoint + WAL), then rejoin the ring.
  const store::RecoveryReport report = p->RecoverDurableState();
  ++metrics_.peer_recoveries;
  metrics_.wal_records_replayed += report.wal_records_replayed;
  metrics_.recoveries_torn_tail += report.torn_tail ? 1 : 0;
  metrics_.recoveries_wal_corrupted += report.wal_corrupted ? 1 : 0;
  metrics_.recovery_descriptors_restored += report.descriptors_restored;
  RETURN_NOT_OK(overlay_->Recover(addr));
  overlay_->Stabilize(1);
  RepairRecoveredPeerFromReplicas(addr);
  return Status::OK();
}

void RangeCacheSystem::RepairRecoveredPeerFromReplicas(const NetAddress& addr) {
  // Post-recovery anti-entropy: descriptors the replay could not
  // restore (lost to a torn tail, a rotted log, or disabled
  // durability) still exist at the identifier owners' replicas. The
  // recovered peer pulls from its first descriptor_replication - 1
  // live successors — the peers that replicate exactly the buckets it
  // owns — and re-inserts every descriptor it should hold but lost.
  if (config_.descriptor_replication <= 1) return;
  Peer* recovered = peer(addr);
  if (recovered == nullptr) return;
  // The recovered node's own successor list is freshly re-bootstrapped
  // and may not reflect true ring order until stabilization converges,
  // so resolve the true live successors — the peers a stabilized ring
  // replicated this node's buckets to — from the global sorted view.
  const std::vector<overlay::PeerInfo> sorted = overlay_->AlivePeersOrdered();
  size_t self = sorted.size();
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].addr == addr) {
      self = i;
      break;
    }
  }
  if (self == sorted.size()) return;
  int pulled_from = 0;
  for (size_t step = 1; step < sorted.size(); ++step) {
    if (pulled_from >= config_.descriptor_replication - 1) break;
    const overlay::PeerInfo& succ = sorted[(self + step) % sorted.size()];
    const Peer* replica = peer(succ.addr);
    if (replica == nullptr) continue;
    ++pulled_from;
    uint64_t transferred_bytes = 0;
    size_t repaired = 0;
    for (const auto& [bucket, descriptor] : replica->store().EntriesOldestFirst()) {
      // Only buckets the recovered peer owns belong at it, and only
      // descriptors with a live holder are worth re-publishing.
      auto owner = overlay_->OwnerOracle(bucket);
      if (!owner.ok() || !(owner->addr == addr)) continue;
      if (!overlay_->IsAlive(descriptor.holder)) continue;
      if (recovered->store().ContainsExact(bucket, descriptor.key)) continue;
      wire::Encoder enc;
      enc.PutVarint(bucket);
      wire::EncodePartitionDescriptor(descriptor, &enc);
      transferred_bytes += enc.size();
      recovered->InsertDescriptor(bucket, descriptor);
      ++repaired;
    }
    // One bulk transfer per replica carries all repaired descriptors.
    auto msg = DeliverWithPolicy(succ.addr, addr, transferred_bytes, nullptr);
    if (msg.ok()) metrics_.latency_ms += *msg;
    metrics_.recovery_descriptors_repaired += repaired;
  }
}

std::vector<size_t> RangeCacheSystem::DescriptorCountsPerPeer() const {
  std::vector<size_t> counts;
  counts.reserve(peers_.size());
  for (const overlay::PeerInfo& info : overlay_->AlivePeersOrdered()) {
    const Peer* p = peer(info.addr);
    counts.push_back(p == nullptr ? 0 : p->store().num_descriptors());
  }
  return counts;
}

}  // namespace p2prange
