// Dynamic query padding — the future-work knob named at the end of
// §5.2 ("we will explore dynamically adjusting padding for better
// overall performance").
//
// Fixed padding trades completeness for the minority of queries whose
// padded range matches worse than the original would have (Figure 10).
// The controller below adapts the padding fraction per column from
// observed outcomes with a multiplicative-increase /
// multiplicative-decrease rule:
//   * an incomplete answer (recall < 1) suggests the cache holds no
//     covering partition — pad more so broader partitions are found
//     and published;
//   * a complete answer suggests the current padding suffices — decay
//     toward zero to keep cached partitions (and data transfers) tight.
#ifndef P2PRANGE_CORE_ADAPTIVE_PADDING_H_
#define P2PRANGE_CORE_ADAPTIVE_PADDING_H_

#include <string>
#include <unordered_map>

namespace p2prange {

/// \brief Tunables of the controller.
struct AdaptivePaddingConfig {
  double initial = 0.05;   ///< starting fraction per edge
  double min = 0.0;
  double max = 0.5;        ///< never pad more than half the range per edge
  double increase = 1.5;   ///< multiplier on an incomplete answer
  double decrease = 0.9;   ///< multiplier on a complete answer
  /// Floor used when increasing from (near) zero.
  double step_floor = 0.02;
};

/// \brief Per-column padding state driven by lookup outcomes.
class AdaptivePaddingController {
 public:
  explicit AdaptivePaddingController(AdaptivePaddingConfig config = {})
      : config_(config) {}

  /// Current padding fraction for a column ("relation.attribute").
  double Get(const std::string& column_key) const {
    auto it = state_.find(column_key);
    return it == state_.end() ? config_.initial : it->second;
  }

  /// Feeds one lookup outcome back into the controller.
  void Observe(const std::string& column_key, double recall) {
    double& pad = state_.try_emplace(column_key, config_.initial).first->second;
    if (recall >= 1.0) {
      pad *= config_.decrease;
      if (pad < config_.min) pad = config_.min;
    } else {
      pad = std::max(pad * config_.increase, config_.step_floor);
      if (pad > config_.max) pad = config_.max;
    }
  }

  const AdaptivePaddingConfig& config() const { return config_; }

 private:
  AdaptivePaddingConfig config_;
  std::unordered_map<std::string, double> state_;
};

}  // namespace p2prange

#endif  // P2PRANGE_CORE_ADAPTIVE_PADDING_H_
