// Running counters of the RangeCacheSystem.
#ifndef P2PRANGE_CORE_METRICS_H_
#define P2PRANGE_CORE_METRICS_H_

#include <cstdint>
#include <string>

namespace p2prange {

/// \brief System-wide counters; all costs are simulated.
struct SystemMetrics {
  uint64_t range_lookups = 0;   ///< §4 protocol invocations
  uint64_t exact_hits = 0;      ///< best reply was the identical range
  uint64_t approx_hits = 0;     ///< best reply overlapped but was not exact
  uint64_t misses = 0;          ///< no same-column descriptor found

  uint64_t partitions_published = 0;  ///< distinct (range, l-ids) publishes
  uint64_t descriptors_stored = 0;    ///< descriptor insertions at peers

  uint64_t eq_lookups = 0;
  uint64_t eq_hits = 0;

  uint64_t result_cache_lookups = 0;  ///< whole-query result probes
  uint64_t result_cache_hits = 0;

  uint64_t lookups_skipped = 0;  ///< cache probes avoided by stats planning
  uint64_t coverage_assemblies = 0;  ///< leaves served by multiple partitions

  uint64_t source_fetches = 0;  ///< leaf answered from the base relation
  uint64_t cache_fetches = 0;   ///< leaf answered from a cached partition

  uint64_t bytes_from_source = 0;  ///< payload bytes shipped by the source
  uint64_t bytes_from_cache = 0;   ///< payload bytes shipped by peer caches

  uint64_t chord_hops = 0;      ///< overlay routing messages for lookups
  double latency_ms = 0.0;      ///< simulated latency across all traffic

  // --- Fault-tolerance counters: every degradation is observable ----

  uint64_t retransmissions = 0;    ///< system messages resent after loss
  double backoff_latency_ms = 0.0; ///< latency charged waiting between retries
  uint64_t probes_failed = 0;      ///< identifier probes with no reachable replica
  uint64_t probe_failovers = 0;    ///< probes answered by an owner's successor
  uint64_t degraded_lookups = 0;   ///< lookups that lost >= 1 of their l probes
  uint64_t stale_evictions = 0;    ///< descriptors lazily evicted (dead holder)
  uint64_t source_fallbacks = 0;   ///< leaves sent to the source after a cache
                                   ///< match failed (stale/unreachable holder)
  uint64_t budget_exhausted = 0;   ///< operations cut short by op_budget_ms

  // --- Durability / crash-recovery counters -------------------------

  uint64_t peer_crashes = 0;      ///< CrashPeer calls (volatile state wiped)
  uint64_t peer_recoveries = 0;   ///< RecoverPeer calls that replayed storage
  uint64_t wal_records_replayed = 0;     ///< log records applied on recovery
  uint64_t recoveries_torn_tail = 0;     ///< recoveries that truncated a torn log
  uint64_t recoveries_wal_corrupted = 0; ///< recoveries that voided a rotted log
  uint64_t recovery_descriptors_restored = 0;  ///< descriptors back via replay
  uint64_t recovery_descriptors_repaired = 0;  ///< descriptors re-pulled from
                                               ///< live replicas post-recovery

  // --- Connection-lifecycle counters (live transport, DESIGN.md §11) --
  // Filled from TcpServer RpcStats by the daemons' harnesses; zero in
  // pure-simulation runs.

  uint64_t connections_accepted = 0;     ///< TCP accepts completed
  uint64_t connections_shed = 0;         ///< refused at accept (conn limit)
  uint64_t slow_readers_evicted = 0;     ///< write backlog over the cap
  uint64_t idle_connections_closed = 0;  ///< read-idle/first-frame deadline
  uint64_t corrupt_frames_dropped = 0;   ///< CRC/length/envelope rejections

  // --- Scenario-engine gauges (set by sim::ScenarioEngine; zero in
  // plain RangeCacheSystem runs) -------------------------------------

  uint64_t bytes_per_peer = 0;     ///< resident engine bytes per simulated peer
  uint64_t event_queue_depth = 0;  ///< high-water mark of pending events

  std::string ToString() const;

  /// Single-line JSON object (no trailing newline), for the daemon's
  /// --metrics_json export and harness scraping.
  std::string ToJson() const;
};

}  // namespace p2prange

#endif  // P2PRANGE_CORE_METRICS_H_
