// Retry/backoff/timeout policy for the system's control and data
// messages.
//
// The §4 protocol was evaluated on a stabilized ring with reliable
// delivery; under real churn and message loss every remote interaction
// needs a retransmission discipline. The policy is simulation-honest:
// each retransmission is charged as a network message and every
// backoff wait is charged as latency, so fault tolerance shows up in
// the measured cost of a query rather than being free.
#ifndef P2PRANGE_CORE_FAULT_POLICY_H_
#define P2PRANGE_CORE_FAULT_POLICY_H_

#include "common/status.h"

namespace p2prange {

/// \brief How the system retries, backs off, and gives up.
struct FaultPolicy {
  /// Retransmissions per message after the first attempt. Only transit
  /// loss (IOError) is retried; a dead peer (Unavailable) fails fast.
  int max_retries = 3;

  /// Wait before the first retransmission, in simulated ms; charged to
  /// the operation's latency.
  double backoff_base_ms = 10.0;

  /// Multiplier applied to the wait after every failed attempt.
  double backoff_multiplier = 2.0;

  /// Cap on a single backoff wait.
  double backoff_max_ms = 500.0;

  /// Fraction of each wait randomized uniformly (0 = deterministic,
  /// 1 = full jitter): wait * (1 - jitter + jitter * U[0,1)).
  double backoff_jitter = 0.5;

  /// Latency budget of one top-level operation (a range lookup's whole
  /// l-identifier fan-out), in simulated ms. Once an operation has
  /// accumulated this much latency, remaining probes are skipped and
  /// pending retries abandoned (the lookup degrades instead of
  /// stalling). 0 disables the budget.
  double op_budget_ms = 0.0;

  Status Validate() const {
    if (max_retries < 0) {
      return Status::InvalidArgument("FaultPolicy.max_retries must be >= 0");
    }
    if (backoff_base_ms < 0.0 || backoff_max_ms < 0.0) {
      return Status::InvalidArgument("FaultPolicy backoff waits must be >= 0");
    }
    if (backoff_multiplier < 1.0) {
      return Status::InvalidArgument("FaultPolicy.backoff_multiplier must be >= 1");
    }
    if (backoff_jitter < 0.0 || backoff_jitter > 1.0) {
      return Status::InvalidArgument("FaultPolicy.backoff_jitter must be in [0, 1]");
    }
    if (op_budget_ms < 0.0) {
      return Status::InvalidArgument("FaultPolicy.op_budget_ms must be >= 0");
    }
    return Status::OK();
  }
};

}  // namespace p2prange

#endif  // P2PRANGE_CORE_FAULT_POLICY_H_
