// Per-column cache statistics for planning — the paper's third §6
// future-work item ("the problem of planning a query in a peer-to-peer
// system based on available statistics of the system").
//
// The querying peer tracks, per (relation, attribute), an exponential
// moving average of how useful the P2P lookup protocol has been: the
// recall obtained from the best cached match. A leaf whose column has
// a persistently useless cache (cold column, exotic selections) can
// skip the l Chord lookups and go straight to the source, saving
// O(l log N) routing hops per query.
#ifndef P2PRANGE_CORE_COLUMN_STATS_H_
#define P2PRANGE_CORE_COLUMN_STATS_H_

#include <cstdint>
#include <string>
#include <unordered_map>

namespace p2prange {

/// \brief Planner statistics configuration.
struct StatsPlanningConfig {
  /// EMA smoothing factor for observed recall.
  double alpha = 0.15;
  /// Leaves whose column's expected recall is below this skip the
  /// cache probe entirely (after the exploration phase).
  double skip_threshold = 0.2;
  /// Always probe at least this many times per column before trusting
  /// the estimate, and keep exploring occasionally afterwards.
  uint64_t min_probes = 20;
  /// After the exploration phase, still probe every k-th query of a
  /// skipped column so the estimate can recover when peers warm up.
  uint64_t explore_every = 16;
};

/// \brief Tracks expected cache usefulness per column.
class ColumnStats {
 public:
  explicit ColumnStats(StatsPlanningConfig config = {}) : config_(config) {}

  /// Expected recall of a cache probe for this column (optimistic 1.0
  /// until observed).
  double ExpectedRecall(const std::string& column_key) const {
    auto it = state_.find(column_key);
    return it == state_.end() ? 1.0 : it->second.ema_recall;
  }

  uint64_t Probes(const std::string& column_key) const {
    auto it = state_.find(column_key);
    return it == state_.end() ? 0 : it->second.probes;
  }

  /// \brief Decides whether the next query on this column should probe
  /// the P2P cache. Counts the decision: skipped queries advance the
  /// exploration counter.
  bool ShouldProbe(const std::string& column_key);

  /// Feeds back the recall obtained by a probe (0 when nothing was
  /// found).
  void Observe(const std::string& column_key, double recall);

  const StatsPlanningConfig& config() const { return config_; }

 private:
  struct State {
    double ema_recall = 1.0;
    uint64_t probes = 0;
    uint64_t skips_since_probe = 0;
  };

  StatsPlanningConfig config_;
  std::unordered_map<std::string, State> state_;
};

}  // namespace p2prange

#endif  // P2PRANGE_CORE_COLUMN_STATS_H_
