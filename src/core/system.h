// RangeCacheSystem — the paper's architecture, assembled.
//
// Peers form a Chord ring over a 32-bit identifier space. Horizontal
// partitions of relations are published under l LSH identifiers; a
// range-selection query hashes to the same l identifiers, routes to
// their owners, and takes the best cached match (§4). Full SQL
// execution (§2) resolves every leaf selection through this protocol
// (or through the exact-match path for equality predicates) and joins
// locally at the querying peer.
#ifndef P2PRANGE_CORE_SYSTEM_H_
#define P2PRANGE_CORE_SYSTEM_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chord/ring.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/peer.h"
#include "hash/lsh.h"
#include "overlay/overlay.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/plan.h"
#include "rel/catalog.h"
#include "store/bucket_store.h"

namespace p2prange {

/// \brief The best cached partition found for a range query.
struct RangeMatch {
  PartitionKey matched;
  NetAddress holder;
  /// Score under the system's match criterion against the effective
  /// (possibly padded) query.
  double score = 0.0;
  /// Jaccard similarity against the *original* query range — the §5.1
  /// quality metric (Figures 6-7).
  double jaccard = 0.0;
  /// |Q ∩ R| / |Q| against the original query — the §5.2 recall
  /// metric (Figures 8-10).
  double recall = 0.0;
  /// The stored range equals the effective query range.
  bool exact = false;
};

/// \brief Result of one §4 range-lookup protocol run.
struct RangeLookupOutcome {
  Range query;             ///< as asked
  Range effective_query;   ///< after padding (== query when padding=0)
  std::vector<uint32_t> identifiers;  ///< the l LSH identifiers probed
  std::optional<RangeMatch> match;
  int hops = 0;            ///< Chord routing messages
  double latency_ms = 0.0;
  int peers_contacted = 0; ///< distinct identifier owners probed
  /// With SystemConfig::assemble_coverage: cached partitions jointly
  /// covering the (original) query and their combined coverage.
  std::vector<PartitionDescriptor> coverage_pieces;
  double coverage_recall = 0.0;

  // --- Fault-tolerance bookkeeping (how degraded this lookup was) ----

  /// Identifier probes whose owner (and every replica) was unreachable;
  /// their buckets contributed nothing to the answer.
  int probes_failed = 0;
  /// Probes answered by one of the owner's successors after the owner
  /// itself was unreachable (descriptor_replication > 1).
  int failovers = 0;
  /// True when the fan-out lost at least one probe or was cut short by
  /// FaultPolicy::op_budget_ms — the answer may be worse than a healthy
  /// ring would have produced.
  bool degraded = false;
  /// Every distinct candidate collected from the owners that answered,
  /// best first (`match` duplicates the front). The fetch stage walks
  /// this list when a holder turns out to be dead.
  std::vector<RangeMatch> ranked;
  /// Distinct peers whose buckets were probed (owners and failover
  /// replicas) — the peers to repair when a descriptor proves stale.
  std::vector<NetAddress> probed_owners;
};

/// \brief How one plan leaf was answered.
struct LeafOutcome {
  std::string table;
  bool used_cache = false;
  bool from_source = false;
  /// Range-level recall of the data this leaf was answered from.
  double recall = 1.0;
  std::optional<RangeLookupOutcome> lookup;
};

/// \brief Result of a full SQL query.
struct QueryOutcome {
  Relation result;
  std::vector<LeafOutcome> leaves;
  int total_hops = 0;
  double total_latency_ms = 0.0;
  /// True if some leaf was answered from a partial cached match, i.e.
  /// the result may be missing tuples (never contains wrong ones).
  bool approximate = false;
  /// True if the whole result came from the query-result cache
  /// (SystemConfig::cache_query_results); `leaves` is then empty.
  bool from_result_cache = false;
};

/// \brief The peer-to-peer data sharing system of the paper.
class RangeCacheSystem {
 public:
  /// Builds the overlay and installs `catalog` as the global schema;
  /// the first peer acts as the data source for its base relations.
  static Result<RangeCacheSystem> Make(const SystemConfig& config, Catalog catalog);

  RangeCacheSystem(RangeCacheSystem&&) noexcept = default;
  RangeCacheSystem& operator=(RangeCacheSystem&&) noexcept = default;

  // --- The §4 range-lookup protocol -----------------------------------

  /// Runs the protocol from a uniformly random peer.
  Result<RangeLookupOutcome> LookupRange(const PartitionKey& query);

  /// Runs the protocol from `origin`: hash to l identifiers, locate
  /// their owners via Chord, collect each owner's best bucket match,
  /// pick the overall best; on a non-exact outcome publish the
  /// (effective) query partition at those owners with `origin` as the
  /// holder (the paper's cache-on-miss rule).
  Result<RangeLookupOutcome> LookupRangeFrom(const NetAddress& origin,
                                             const PartitionKey& query);

  /// Publishes descriptors for `key` (holder = `holder`) under its l
  /// identifiers, without running a lookup.
  Status PublishPartition(const PartitionKey& key, const NetAddress& holder);

  /// Fetches `key`'s tuples from the source relation and materializes
  /// them at `holder`.
  Status MaterializePartition(const PartitionKey& key, const NetAddress& holder);

  // --- Full SQL (§2) ----------------------------------------------------

  /// Parses, plans (selection pushdown), answers every leaf through
  /// the P2P caches (or the source), joins locally, projects.
  Result<QueryOutcome> ExecuteQuery(const std::string& sql);
  Result<QueryOutcome> ExecuteQueryFrom(const NetAddress& client,
                                        const std::string& sql);

  // --- Membership (churn) ------------------------------------------------

  /// A new peer joins the overlay (Chord join + stabilization at the
  /// ring layer) and starts with an empty store.
  Result<NetAddress> AddPeer();

  /// A peer departs. `graceful` uses the Chord leave protocol;
  /// otherwise the peer fails abruptly. Its cached descriptors and
  /// materialized partitions are lost either way (the §4 protocol
  /// re-publishes on later misses). The source peer cannot leave.
  Status RemovePeer(const NetAddress& addr, bool graceful = true);

  /// Abrupt crash: `addr` becomes unreachable without handoff or
  /// detection, and its volatile state (descriptor store, materialized
  /// partitions, equality index) is lost. Its durable images — the WAL
  /// and checkpoint snapshots, when SystemConfig::durability is on —
  /// survive for a later RecoverPeer. Descriptors pointing at it go
  /// stale until lazily repaired. The source peer cannot crash.
  Status CrashPeer(const NetAddress& addr);

  /// A crashed peer comes back: it replays its checkpoint + WAL to
  /// rebuild the descriptor store (truncating a torn log tail; falling
  /// back to the last good checkpoint on mid-log corruption),
  /// re-bootstraps its routing, and — with descriptor_replication > 1 —
  /// pulls descriptors the replay lost back from live replicas.
  Status RecoverPeer(const NetAddress& addr);

  /// Fault-injection hook: invoked at protocol step boundaries
  /// ("probe" before each identifier probe, "failover" before a replica
  /// probe, "fetch" before fetching a matched partition) so a harness
  /// can crash or recover peers *during* a query. The hook must not
  /// call back into query execution. Empty function disables.
  using StepHook = std::function<void(const char* stage)>;
  void set_step_hook(StepHook hook) { step_hook_ = std::move(hook); }

  // --- Introspection ---------------------------------------------------

  const SystemMetrics& metrics() const { return metrics_; }
  void ResetMetrics() { metrics_ = SystemMetrics{}; }

  /// The routing substrate behind the system (Chord by default; CAN or
  /// Tapestry via SystemConfig::overlay).
  overlay::Overlay& overlay() { return *overlay_; }
  const overlay::Overlay& overlay() const { return *overlay_; }

  /// Chord-specific escape hatch for callers that poke ring internals
  /// (benches, the live-ring daemon). CHECK-fails unless the system was
  /// built with Kind::kChord.
  chord::ChordRing& ring();

  const Catalog& catalog() const { return catalog_; }
  const LshScheme& lsh() const { return *lsh_; }
  const SystemConfig& config() const { return config_; }

  Peer* peer(const NetAddress& addr);
  const Peer* peer(const NetAddress& addr) const;

  /// The adaptive-padding state (meaningful when
  /// config().adaptive_padding is set).
  const AdaptivePaddingController& padding_controller() const {
    return padding_controller_;
  }

  /// The per-column planner statistics (meaningful when
  /// config().stats_planning is set).
  const ColumnStats& column_stats() const { return column_stats_; }

  /// Address of the data-source peer.
  const NetAddress& source_address() const { return source_; }

  /// Number of stored descriptors per peer, in ring order — the
  /// Figure 11 load metric.
  std::vector<size_t> DescriptorCountsPerPeer() const;

 private:
  RangeCacheSystem(const SystemConfig& config, Catalog catalog);

  /// Latency a single top-level operation has accumulated, checked
  /// against FaultPolicy::op_budget_ms.
  struct OpBudget {
    double spent_ms = 0.0;
    bool exhausted = false;
  };

  /// Delivers one system message under the FaultPolicy: retransmits
  /// transit losses with exponential backoff (jittered, charged as
  /// latency), fails fast on a dead peer, and abandons retries once
  /// `budget` (optional) is exhausted. Returns the total latency of
  /// all attempts including backoff waits.
  Result<double> DeliverWithPolicy(const NetAddress& from, const NetAddress& to,
                                   uint64_t payload_bytes, OpBudget* budget);

  /// True (and counts the exhaustion once) when `budget` has spent the
  /// policy's op budget.
  bool BudgetExhausted(OpBudget* budget);

  /// The attribute-domain for a partition key (for padding bounds and
  /// decoding).
  Result<AttributeDomain> DomainFor(const PartitionKey& key) const;

  /// Applies the configured padding to `r`, clamped to the encoded
  /// domain width.
  Result<Range> EffectiveRange(const PartitionKey& key) const;

  /// Answers one plan leaf, filling `outcome` and inserting the leaf's
  /// input relation into `inputs`.
  Status AnswerLeaf(const NetAddress& client, const TableSelection& leaf,
                    std::map<std::string, Relation>* inputs, LeafOutcome* outcome);

  /// Ships `payload` from `server` to `client`, charging its wire
  /// size; attributes the bytes to source or cache traffic.
  Status TransferData(const NetAddress& client, const NetAddress& server,
                      const Relation& payload, bool from_source);

  /// Fetches every coverage piece's tuples from its holder and merges
  /// them (deduplicated). nullopt when some holder lacks the data.
  Result<std::optional<Relation>> FetchCoverage(
      const NetAddress& client, const std::vector<PartitionDescriptor>& pieces);

  /// Stores a descriptor at identifier `id`'s owner and, with
  /// descriptor_replication > 1, at the owner's next live successors.
  void StoreReplicated(chord::ChordId id, const PartitionDescriptor& descriptor,
                       const NetAddress& from, double* latency_acc);

  /// Post-recovery anti-entropy: the freshly recovered peer at `addr`
  /// pulls descriptors for buckets it owns from its live successor
  /// replicas, restoring what WAL replay could not.
  void RepairRecoveredPeerFromReplicas(const NetAddress& addr);

  SystemConfig config_;
  Catalog catalog_;
  AdaptivePaddingController padding_controller_;
  ColumnStats column_stats_;
  std::unique_ptr<overlay::Overlay> overlay_;
  std::unique_ptr<LshScheme> lsh_;
  std::unordered_map<NetAddress, std::unique_ptr<Peer>, NetAddressHash> peers_;
  NetAddress source_;
  SystemMetrics metrics_;
  Rng rng_;  ///< backoff jitter (deterministic from config.seed)
  StepHook step_hook_;
  /// Reused buffer for batched LSH signature evaluation on the publish
  /// path (the lookup path writes into its outcome's vector directly).
  std::vector<uint32_t> identifier_scratch_;
};

}  // namespace p2prange

#endif  // P2PRANGE_CORE_SYSTEM_H_
