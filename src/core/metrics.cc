#include "core/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace p2prange {

namespace {

/// Every counter with its export name, in one place, so the text and
/// JSON renderings can never disagree on coverage.
struct Field {
  const char* name;
  uint64_t value;
};

void CollectCounters(const SystemMetrics& m, Field (&out)[37]) {
  size_t i = 0;
  out[i++] = {"range_lookups", m.range_lookups};
  out[i++] = {"exact_hits", m.exact_hits};
  out[i++] = {"approx_hits", m.approx_hits};
  out[i++] = {"misses", m.misses};
  out[i++] = {"published", m.partitions_published};
  out[i++] = {"descriptors", m.descriptors_stored};
  out[i++] = {"eq_lookups", m.eq_lookups};
  out[i++] = {"eq_hits", m.eq_hits};
  out[i++] = {"result_cache_lookups", m.result_cache_lookups};
  out[i++] = {"result_cache_hits", m.result_cache_hits};
  out[i++] = {"lookups_skipped", m.lookups_skipped};
  out[i++] = {"source_fetches", m.source_fetches};
  out[i++] = {"cache_fetches", m.cache_fetches};
  out[i++] = {"bytes_from_source", m.bytes_from_source};
  out[i++] = {"bytes_from_cache", m.bytes_from_cache};
  out[i++] = {"chord_hops", m.chord_hops};
  out[i++] = {"retransmissions", m.retransmissions};
  out[i++] = {"probes_failed", m.probes_failed};
  out[i++] = {"probe_failovers", m.probe_failovers};
  out[i++] = {"degraded_lookups", m.degraded_lookups};
  out[i++] = {"stale_evictions", m.stale_evictions};
  out[i++] = {"source_fallbacks", m.source_fallbacks};
  out[i++] = {"budget_exhausted", m.budget_exhausted};
  out[i++] = {"peer_crashes", m.peer_crashes};
  out[i++] = {"peer_recoveries", m.peer_recoveries};
  out[i++] = {"wal_records_replayed", m.wal_records_replayed};
  out[i++] = {"recoveries_torn_tail", m.recoveries_torn_tail};
  out[i++] = {"recoveries_wal_corrupted", m.recoveries_wal_corrupted};
  out[i++] = {"recovery_descriptors_restored", m.recovery_descriptors_restored};
  out[i++] = {"recovery_descriptors_repaired", m.recovery_descriptors_repaired};
  out[i++] = {"connections_accepted", m.connections_accepted};
  out[i++] = {"connections_shed", m.connections_shed};
  out[i++] = {"slow_readers_evicted", m.slow_readers_evicted};
  out[i++] = {"idle_connections_closed", m.idle_connections_closed};
  out[i++] = {"corrupt_frames_dropped", m.corrupt_frames_dropped};
  out[i++] = {"bytes_per_peer", m.bytes_per_peer};
  out[i++] = {"event_queue_depth", m.event_queue_depth};
}

std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string SystemMetrics::ToString() const {
  Field fields[37];
  CollectCounters(*this, fields);
  std::string out;
  for (size_t i = 0; i < 37; ++i) {
    if (i > 0) out += ' ';
    out += fields[i].name;
    out += '=';
    out += std::to_string(fields[i].value);
  }
  return out;
}

std::string SystemMetrics::ToJson() const {
  Field fields[37];
  CollectCounters(*this, fields);
  std::string out = "{";
  for (size_t i = 0; i < 37; ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += fields[i].name;
    out += "\":";
    out += std::to_string(fields[i].value);
  }
  out += ",\"latency_ms\":" + JsonDouble(latency_ms);
  out += ",\"backoff_latency_ms\":" + JsonDouble(backoff_latency_ms);
  out += "}";
  return out;
}

}  // namespace p2prange
