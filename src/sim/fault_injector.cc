#include "sim/fault_injector.h"

#include <algorithm>

#include "common/logging.h"

namespace p2prange {

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kCrash:
      return "crash";
    case FaultAction::kRecover:
      return "recover";
    case FaultAction::kKill:
      return "kill";
  }
  return "unknown";
}

std::string FaultWorkloadReport::ToString() const {
  std::string out;
  out += "queries=" + std::to_string(queries);
  out += " errors=" + std::to_string(errors);
  out += " matched=" + std::to_string(matched);
  out += " complete=" + std::to_string(complete);
  out += " degraded=" + std::to_string(degraded);
  out += " crashes=" + std::to_string(crashes);
  out += " recoveries=" + std::to_string(recoveries);
  out += " kills=" + std::to_string(kills);
  out += " torn_writes=" + std::to_string(torn_writes);
  out += " bit_flips=" + std::to_string(bit_flips);
  return out;
}

FaultInjector::FaultInjector(RangeCacheSystem* system, FaultInjectorConfig config)
    : system_(system), config_(config), rng_(config.seed) {
  CHECK(system_ != nullptr);
}

FaultInjector::~FaultInjector() { RemoveHook(); }

Result<NetAddress> FaultInjector::PickVictim() {
  // Rejection-sample a live peer that is neither the source nor the
  // protected query origin. The eligible set is large in any healthy
  // overlay, so a handful of draws suffices.
  for (int attempt = 0; attempt < 64; ++attempt) {
    ASSIGN_OR_RETURN(const NetAddress addr, system_->overlay().RandomAliveAddress());
    if (addr == system_->source_address()) continue;
    if (addr == protected_) continue;
    return addr;
  }
  return Status::NotFound("no eligible fault victim");
}

Status FaultInjector::CrashRandomPeer() {
  if (system_->overlay().num_alive() <= config_.min_alive) {
    return Status::InvalidArgument("live population already at min_alive");
  }
  ASSIGN_OR_RETURN(const NetAddress victim, PickVictim());
  RETURN_NOT_OK(system_->CrashPeer(victim));
  MaybeCorruptDurableState(victim);
  crashed_.push_back(victim);
  if (active_report_ != nullptr) ++active_report_->crashes;
  return Status::OK();
}

void FaultInjector::MaybeCorruptDurableState(const NetAddress& victim) {
  Peer* p = system_->peer(victim);
  if (p == nullptr) return;
  std::string& wal = p->durable().wal().mutable_image();
  if (config_.torn_write_prob > 0.0 && !wal.empty() &&
      rng_.NextBernoulli(config_.torn_write_prob)) {
    // The crash caught the last append(s) partially flushed: shear a
    // random sliver off the tail, possibly cutting a frame in half.
    const size_t max_tear = std::min<size_t>(wal.size(), 48);
    const size_t tear = static_cast<size_t>(rng_.NextInRange(1, max_tear));
    wal.resize(wal.size() - tear);
    if (active_report_ != nullptr) ++active_report_->torn_writes;
  }
  if (config_.bit_flip_prob > 0.0 && rng_.NextBernoulli(config_.bit_flip_prob)) {
    // One random bit of rot across the WAL and both snapshot slots.
    std::string* images[] = {&wal, &p->durable().snapshots().mutable_slot(0),
                             &p->durable().snapshots().mutable_slot(1)};
    size_t total = 0;
    for (const std::string* img : images) total += img->size();
    if (total > 0) {
      size_t bit = static_cast<size_t>(rng_.NextBounded(total * 8));
      for (std::string* img : images) {
        if (bit < img->size() * 8) {
          (*img)[bit / 8] ^= static_cast<char>(1u << (bit % 8));
          break;
        }
        bit -= img->size() * 8;
      }
      if (active_report_ != nullptr) ++active_report_->bit_flips;
    }
  }
}

Status FaultInjector::RecoverOneCrashedPeer() {
  if (crashed_.empty()) return Status::NotFound("no crashed peers");
  const NetAddress addr = crashed_.front();
  crashed_.erase(crashed_.begin());
  RETURN_NOT_OK(system_->RecoverPeer(addr));
  if (active_report_ != nullptr) ++active_report_->recoveries;
  return Status::OK();
}

Status FaultInjector::KillRandomPeer() {
  if (system_->overlay().num_alive() <= config_.min_alive) {
    return Status::InvalidArgument("live population already at min_alive");
  }
  ASSIGN_OR_RETURN(const NetAddress victim, PickVictim());
  RETURN_NOT_OK(system_->RemovePeer(victim, /*graceful=*/false));
  if (active_report_ != nullptr) ++active_report_->kills;
  return Status::OK();
}

void FaultInjector::ApplyStep(size_t step) {
  for (const FaultEvent& ev : config_.script) {
    if (ev.step != step) continue;
    for (int i = 0; i < ev.count; ++i) {
      switch (ev.action) {
        // NotFound (no eligible peer left) is a legal no-op: fault
        // schedules are best-effort against whatever peers remain.
        case FaultAction::kCrash:
          CrashRandomPeer().IgnoreError();
          break;
        case FaultAction::kRecover:
          RecoverOneCrashedPeer().IgnoreError();
          break;
        case FaultAction::kKill:
          KillRandomPeer().IgnoreError();
          break;
      }
    }
  }
  // As above: running out of crashable/recoverable peers mid-schedule
  // is expected under heavy fault rates, not an error to propagate.
  if (config_.crash_prob > 0.0 && rng_.NextBernoulli(config_.crash_prob)) {
    CrashRandomPeer().IgnoreError();
  }
  if (config_.recover_prob > 0.0 && rng_.NextBernoulli(config_.recover_prob)) {
    RecoverOneCrashedPeer().IgnoreError();
  }
  if (config_.kill_prob > 0.0 && rng_.NextBernoulli(config_.kill_prob)) {
    KillRandomPeer().IgnoreError();
  }
  if (config_.stabilize_every > 0 &&
      step % static_cast<size_t>(config_.stabilize_every) == 0 && step > 0) {
    system_->overlay().Stabilize(1);
    system_->overlay().RepairRouting();
  }
}

void FaultInjector::OnProtocolStep(const char* /*stage*/) {
  if (config_.mid_query_crash_prob <= 0.0) return;
  if (rng_.NextBernoulli(config_.mid_query_crash_prob)) {
    // Mid-query crashes are opportunistic; no victim available is fine.
    CrashRandomPeer().IgnoreError();
  }
}

void FaultInjector::InstallHook() {
  if (config_.mid_query_crash_prob <= 0.0) return;
  system_->set_step_hook([this](const char* stage) { OnProtocolStep(stage); });
  hook_installed_ = true;
}

void FaultInjector::RemoveHook() {
  if (hook_installed_) {
    system_->set_step_hook(nullptr);
    hook_installed_ = false;
  }
}

Result<FaultWorkloadReport> FaultInjector::RunLookups(
    const std::function<PartitionKey()>& make_query, size_t n) {
  FaultWorkloadReport report;
  active_report_ = &report;
  InstallHook();
  double recall_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ApplyStep(i);
    auto origin = system_->overlay().RandomAliveAddress();
    if (!origin.ok()) {
      active_report_ = nullptr;
      RemoveHook();
      return origin.status();
    }
    set_protected_peer(*origin);
    auto outcome = system_->LookupRangeFrom(*origin, make_query());
    set_protected_peer(NetAddress{});
    ++report.queries;
    if (!outcome.ok()) {
      ++report.errors;
      continue;
    }
    report.matched += outcome->match.has_value();
    report.degraded += outcome->degraded;
    const double recall = outcome->match ? outcome->match->recall : 0.0;
    report.complete += recall >= 1.0;
    recall_sum += recall;
  }
  RemoveHook();
  active_report_ = nullptr;
  report.mean_recall =
      report.queries == 0 ? 0.0 : recall_sum / static_cast<double>(report.queries);
  return report;
}

Result<FaultWorkloadReport> FaultInjector::RunQueries(
    const std::function<std::string()>& make_sql, size_t n) {
  FaultWorkloadReport report;
  active_report_ = &report;
  InstallHook();
  double recall_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ApplyStep(i);
    auto client = system_->overlay().RandomAliveAddress();
    if (!client.ok()) {
      active_report_ = nullptr;
      RemoveHook();
      return client.status();
    }
    set_protected_peer(*client);
    auto outcome = system_->ExecuteQueryFrom(*client, make_sql());
    set_protected_peer(NetAddress{});
    ++report.queries;
    if (!outcome.ok()) {
      ++report.errors;
      continue;
    }
    double min_recall = 1.0;
    bool any_match = false;
    bool degraded = false;
    for (const LeafOutcome& leaf : outcome->leaves) {
      min_recall = std::min(min_recall, leaf.recall);
      if (leaf.lookup) {
        any_match |= leaf.lookup->match.has_value();
        degraded |= leaf.lookup->degraded;
      }
    }
    report.matched += any_match;
    report.degraded += degraded;
    report.complete += min_recall >= 1.0;
    recall_sum += min_recall;
  }
  RemoveHook();
  active_report_ = nullptr;
  report.mean_recall =
      report.queries == 0 ? 0.0 : recall_sum / static_cast<double>(report.queries);
  return report;
}

}  // namespace p2prange
