// Event-driven scenario engine for 10^5–10^6 simulated peers.
//
// RangeCacheSystem models every peer as an object graph (stores,
// WALs, finger tables) — faithful, but ~kilobytes per peer. The
// scenario engine strips the §4 protocol to its struct-of-arrays
// skeleton: peers are ranks in a sorted identifier array, descriptors
// are 16-byte packed rows in bucket-indexed tables, and time advances
// through an indexed event queue of query / churn / repair events.
// What it keeps exact: the real LSH identifier scheme, the
// cache-on-miss publish rule, descriptor replication, lazy stale
// eviction, and substrate-shaped routing costs (CompactOverlay).
// What it drops: SQL, payload bytes, per-message latency sampling.
//
// The engine is single-threaded BY DESIGN — determinism comes from a
// totally ordered event queue, so Run() CHECK-fails off the
// constructing thread rather than growing locks.
#ifndef P2PRANGE_SIM_ENGINE_SCENARIO_ENGINE_H_
#define P2PRANGE_SIM_ENGINE_SCENARIO_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/sync.h"
#include "core/metrics.h"
#include "hash/lsh.h"
#include "overlay/overlay.h"
#include "sim/engine/compact_overlay.h"
#include "sim/engine/event_queue.h"

namespace p2prange {
namespace sim {

/// \brief Query-range distribution of a scenario.
enum class WorkloadShape : uint8_t {
  kUniform = 0,  ///< both endpoints uniform over the domain (the paper)
  kZipf = 1,     ///< Zipf-centered ranges (skewed popularity)
  kHotspot = 2,  ///< flash crowd: most queries inside a small window
};

/// \brief Membership dynamics of a scenario.
enum class ChurnMode : uint8_t {
  kNone = 0,       ///< static membership
  kChurn = 1,      ///< steady crash/recover cycles through the run
  kCrashWave = 2,  ///< one simultaneous mass failure mid-run
};

const char* WorkloadShapeName(WorkloadShape shape);
const char* ChurnModeName(ChurnMode mode);

/// \brief One cell of the scenario matrix.
struct ScenarioConfig {
  overlay::Kind kind = overlay::Kind::kChord;
  WorkloadShape shape = WorkloadShape::kUniform;
  ChurnMode churn = ChurnMode::kNone;

  size_t num_peers = 100000;
  size_t num_queries = 100000;

  /// Ranges are drawn over [0, domain].
  uint32_t domain = 1000000;
  double zipf_theta = 0.8;
  double zipf_mean_width = 2000.0;
  /// Hotspot: this fraction of queries lands in the lowest 5% of the
  /// domain.
  double hot_fraction = 0.9;

  double query_interval_ms = 1.0;
  /// kChurn: one crash every interval, recovery after recover_delay.
  double churn_interval_ms = 50.0;
  double recover_delay_ms = 400.0;
  /// kCrashWave: this fraction of peers fails at 40% of the run.
  double crash_wave_fraction = 0.05;

  int can_dims = 2;
  /// Descriptor copies: owner + (replication - 1) alive successors.
  int replication = 3;

  LshParams lsh = LshParams::Paper(HashFamilyType::kApproxMinwise);
  uint64_t seed = 1;

  Status Validate() const;
};

/// \brief What one scenario run measured.
struct ScenarioReport {
  uint64_t queries = 0;
  uint64_t exact_hits = 0;
  uint64_t approx_hits = 0;
  uint64_t misses = 0;
  double recall_sum = 0.0;  ///< Σ |Q ∩ best| / |Q| over all queries

  uint64_t hops = 0;       ///< routing hops across all probes
  uint64_t messages = 0;   ///< hops + store/reply messages
  uint64_t bytes = 0;      ///< control + descriptor wire bytes

  uint64_t publishes = 0;          ///< cache-on-miss publish rounds
  uint64_t descriptors_stored = 0; ///< descriptor copies written
  uint64_t stale_evictions = 0;    ///< copies dropped on sight (dead data)

  uint64_t crashes = 0;
  uint64_t recoveries = 0;

  /// Crash-wave only (NaN-free: negative = not applicable). Mean
  /// recall in the windows before / during / after the wave, and the
  /// simulated time from the wave until the trailing mean recall
  /// regained 95% of its pre-wave level.
  double recall_before_wave = -1.0;
  double recall_during_wave = -1.0;
  double recall_after_wave = -1.0;
  double recovery_ms = -1.0;

  uint64_t bytes_per_peer = 0;    ///< resident engine bytes / peer
  uint64_t event_queue_depth = 0; ///< queue high-water mark
  double end_time_ms = 0.0;       ///< simulated clock at completion

  double mean_recall() const {
    return queries == 0 ? 0.0 : recall_sum / static_cast<double>(queries);
  }
  double mean_hops() const;

  /// Single-line JSON object (scenario_matrix rows).
  std::string ToJson() const;

  /// Copies the counters and the two engine gauges into `m` so the
  /// standard SystemMetrics::ToJson export carries them.
  void FillMetrics(SystemMetrics* m) const;
};

/// \brief Runs one scenario cell to completion.
class ScenarioEngine {
 public:
  static Result<ScenarioEngine> Make(const ScenarioConfig& config);

  ScenarioEngine(ScenarioEngine&&) noexcept = default;
  ScenarioEngine& operator=(ScenarioEngine&&) noexcept = default;

  /// Drains the event queue. Single-shot; CHECK-fails when called off
  /// the thread that built the engine (see file comment) or twice.
  Result<ScenarioReport> Run();

  /// True on the thread that owns the engine (the constructing
  /// thread, re-pinned by Make after the build-and-move dance).
  bool on_owner_thread() const { return owner_checker_.CalledOnOwnerThread(); }

  const ScenarioConfig& config() const { return config_; }

  /// Resident footprint: overlay + descriptor tables + event queue.
  uint64_t MemoryBytes() const;

 private:
  /// One replicated descriptor copy: the published range, who holds
  /// the data, and where/when this copy was stored (epoch-stamped so a
  /// crash invalidates resident copies without an eager sweep).
  struct StoredDesc {
    uint32_t lo = 0;
    uint32_t hi = 0;
    uint32_t holder = 0;      ///< peer slot holding the materialized data
    uint32_t home = 0;        ///< peer slot storing this copy
    uint16_t home_epoch = 0;  ///< crash epoch of `home` at store time
  };
  static_assert(sizeof(StoredDesc) == 20, "descriptor rows must stay packed");

  explicit ScenarioEngine(const ScenarioConfig& config);

  void ScheduleWorkload();
  Range NextQueryRange();
  void RunQuery(ScenarioReport* report);
  void Crash(uint32_t slot, ScenarioReport* report);
  void Recover(uint32_t slot, ScenarioReport* report);
  bool CopyValid(const StoredDesc& d, uint32_t at_slot) const;
  void PublishRange(const Range& r, uint32_t holder, ScenarioReport* report);

  ScenarioConfig config_;
  std::unique_ptr<CompactOverlay> net_;
  std::unique_ptr<LshScheme> lsh_;
  EventQueue queue_;
  Rng rng_;
  std::unique_ptr<ZipfGenerator> zipf_;

  /// bucket identifier -> replicated descriptor copies.
  std::unordered_map<uint32_t, std::vector<StoredDesc>> buckets_;
  /// Per-peer crash epoch; bumping it orphans every resident copy.
  std::vector<uint16_t> crash_epoch_;

  std::vector<uint32_t> identifier_scratch_;
  double now_ms_ = 0.0;
  double wave_time_ms_ = -1.0;
  bool ran_ = false;
  ThreadChecker owner_checker_;

  /// Rolling recall window for the crash-wave recovery clock.
  std::vector<double> recent_recall_;
  size_t recent_pos_ = 0;
};

}  // namespace sim
}  // namespace p2prange

#endif  // P2PRANGE_SIM_ENGINE_SCENARIO_ENGINE_H_
