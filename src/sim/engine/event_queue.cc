#include "sim/engine/event_queue.h"

#include <utility>

namespace p2prange {
namespace sim {

void EventQueue::Push(double time_ms, EventType type, uint32_t subject) {
  Event e;
  e.time_ms = time_ms;
  e.seq = next_seq_++;
  e.type = type;
  e.subject = subject;
  heap_.push_back(e);
  SiftUp(heap_.size() - 1);
  if (heap_.size() > max_depth_) max_depth_ = heap_.size();
}

bool EventQueue::Pop(Event* out) {
  if (heap_.empty()) return false;
  *out = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  return true;
}

void EventQueue::SiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  for (;;) {
    const size_t left = 2 * i + 1;
    const size_t right = left + 1;
    size_t best = i;
    if (left < n && Before(heap_[left], heap_[best])) best = left;
    if (right < n && Before(heap_[right], heap_[best])) best = right;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

}  // namespace sim
}  // namespace p2prange
