// Memory-compact routing models for the scenario engine.
//
// The heavy overlays under src/chord, src/can, and src/tapestry carry
// per-node objects (finger tables, zone lists, routing meshes) that
// cost kilobytes per peer — fine at 10^3 peers, hopeless at 10^6. The
// engine instead routes over *compact* models: a single sorted array
// of peer identifiers plus a Fenwick tree of alive flags, ~10 bytes
// per peer, with each substrate's hop count derived from the same
// structural rules its heavy twin implements (Chord finger descent,
// CAN torus walks on a d-dimensional grid, Tapestry digit
// resolution). Peer "slots" are ranks in identifier order.
#ifndef P2PRANGE_SIM_ENGINE_COMPACT_OVERLAY_H_
#define P2PRANGE_SIM_ENGINE_COMPACT_OVERLAY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "overlay/overlay.h"

namespace p2prange {
namespace sim {

/// \brief Alive-set index: per-slot flags plus a Fenwick tree of
/// counts, so "first alive slot >= r (wrapping)" and "k-th alive
/// slot in [a, b)" are O(log n).
class AliveIndex {
 public:
  explicit AliveIndex(size_t n);

  void Set(uint32_t slot, bool alive);
  bool IsAlive(uint32_t slot) const { return alive_[slot] != 0; }
  size_t num_alive() const { return num_alive_; }
  size_t size() const { return alive_.size(); }

  /// Alive slots in [0, end).
  size_t CountBefore(uint32_t end) const;
  /// Alive slots in [begin, end).
  size_t CountIn(uint32_t begin, uint32_t end) const;

  /// First alive slot >= `slot`, wrapping past the end. Requires
  /// num_alive() > 0.
  uint32_t NextAliveWrapping(uint32_t slot) const;

  /// The k-th (0-based) alive slot overall. Requires k < num_alive().
  uint32_t SelectAlive(size_t k) const;

  uint64_t MemoryBytes() const {
    return alive_.capacity() * sizeof(uint8_t) +
           tree_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<uint8_t> alive_;
  std::vector<uint32_t> tree_;  ///< Fenwick tree over alive_ (1-based)
  size_t num_alive_ = 0;
};

/// \brief Substrate-shaped routing over the compact peer table.
///
/// All slot arguments are ranks in the engine's sorted identifier
/// order. Owner/Route require at least one alive peer; the engine
/// never fails its last peer.
class CompactOverlay {
 public:
  virtual ~CompactOverlay() = default;

  CompactOverlay(const CompactOverlay&) = delete;
  CompactOverlay& operator=(const CompactOverlay&) = delete;

  virtual overlay::Kind kind() const = 0;

  /// Owner slot of identifier `id` among alive peers (the oracle).
  virtual uint32_t Owner(uint32_t id) const = 0;

  /// Routes from `origin` to `id`'s owner; adds the substrate's hop
  /// count for the path to *hops and returns the owner slot.
  virtual uint32_t Route(uint32_t origin, uint32_t id, int* hops) const = 0;

  void SetAlive(uint32_t slot, bool alive) { alive_.Set(slot, alive); }
  bool IsAlive(uint32_t slot) const { return alive_.IsAlive(slot); }
  size_t num_alive() const { return alive_.num_alive(); }
  size_t num_peers() const { return ids_.size(); }
  uint32_t id_of(uint32_t slot) const { return ids_[slot]; }

  /// Successor-style replica slot `k` steps after `owner` in alive
  /// identifier order (the engine's uniform replica placement rule).
  uint32_t ReplicaSlot(uint32_t owner, int k) const;

  /// A uniformly random alive slot.
  uint32_t RandomAliveSlot(Rng& rng) const;

  virtual uint64_t MemoryBytes() const {
    return ids_.capacity() * sizeof(uint32_t) + alive_.MemoryBytes();
  }

 protected:
  /// `ids` must be sorted strictly increasing; slot i owns ids[i].
  explicit CompactOverlay(std::vector<uint32_t> ids);

  /// Successor slot of `id` on the identifier ring, alive slots only.
  uint32_t AliveSuccessorOfId(uint32_t id) const;

  std::vector<uint32_t> ids_;
  AliveIndex alive_;
};

/// \brief Factory: draws `num_peers` distinct identifiers from `seed`
/// and builds the `kind` model (CAN uses `can_dims` torus dimensions).
Result<std::unique_ptr<CompactOverlay>> MakeCompactOverlay(
    overlay::Kind kind, size_t num_peers, uint64_t seed, int can_dims);

}  // namespace sim
}  // namespace p2prange

#endif  // P2PRANGE_SIM_ENGINE_COMPACT_OVERLAY_H_
