#include "sim/engine/scenario_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace p2prange {
namespace sim {

namespace {

/// Control-message wire cost, matching SimNetwork::kControlBytes.
constexpr uint64_t kControlBytes = 64;
/// Marshalled descriptor row on the wire.
constexpr uint64_t kDescriptorBytes = 20;
/// Rolling window width for the recovery clock.
constexpr size_t kRecallWindow = 200;

std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const char* WorkloadShapeName(WorkloadShape shape) {
  switch (shape) {
    case WorkloadShape::kUniform:
      return "uniform";
    case WorkloadShape::kZipf:
      return "zipf";
    case WorkloadShape::kHotspot:
      return "hotspot";
  }
  return "unknown";
}

const char* ChurnModeName(ChurnMode mode) {
  switch (mode) {
    case ChurnMode::kNone:
      return "none";
    case ChurnMode::kChurn:
      return "churn";
    case ChurnMode::kCrashWave:
      return "crash-wave";
  }
  return "unknown";
}

Status ScenarioConfig::Validate() const {
  if (num_peers < 2) {
    return Status::InvalidArgument("scenario needs at least two peers");
  }
  if (num_queries == 0) {
    return Status::InvalidArgument("scenario needs at least one query");
  }
  if (replication < 1) {
    return Status::InvalidArgument("replication must be >= 1");
  }
  if (query_interval_ms <= 0.0 || churn_interval_ms <= 0.0 ||
      recover_delay_ms <= 0.0) {
    return Status::InvalidArgument("intervals must be positive");
  }
  if (crash_wave_fraction < 0.0 || crash_wave_fraction > 0.5) {
    return Status::InvalidArgument("crash_wave_fraction must be in [0, 0.5]");
  }
  if (hot_fraction < 0.0 || hot_fraction > 1.0) {
    return Status::InvalidArgument("hot_fraction must be in [0, 1]");
  }
  return Status::OK();
}

double ScenarioReport::mean_hops() const {
  return queries == 0 ? 0.0
                      : static_cast<double>(hops) / static_cast<double>(queries);
}

std::string ScenarioReport::ToJson() const {
  std::string out = "{";
  auto add_u64 = [&out](const char* name, uint64_t v) {
    if (out.size() > 1) out += ',';
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(v);
  };
  auto add_d = [&out](const char* name, double v) {
    if (out.size() > 1) out += ',';
    out += '"';
    out += name;
    out += "\":";
    out += JsonDouble(v);
  };
  add_u64("queries", queries);
  add_u64("exact_hits", exact_hits);
  add_u64("approx_hits", approx_hits);
  add_u64("misses", misses);
  add_d("mean_recall", mean_recall());
  add_u64("hops", hops);
  add_d("mean_hops", mean_hops());
  add_u64("messages", messages);
  add_u64("bytes", bytes);
  add_u64("publishes", publishes);
  add_u64("descriptors_stored", descriptors_stored);
  add_u64("stale_evictions", stale_evictions);
  add_u64("crashes", crashes);
  add_u64("recoveries", recoveries);
  add_d("recall_before_wave", recall_before_wave);
  add_d("recall_during_wave", recall_during_wave);
  add_d("recall_after_wave", recall_after_wave);
  add_d("recovery_ms", recovery_ms);
  add_u64("bytes_per_peer", bytes_per_peer);
  add_u64("event_queue_depth", event_queue_depth);
  add_d("end_time_ms", end_time_ms);
  out += '}';
  return out;
}

void ScenarioReport::FillMetrics(SystemMetrics* m) const {
  m->range_lookups = queries;
  m->exact_hits = exact_hits;
  m->approx_hits = approx_hits;
  m->misses = misses;
  m->partitions_published = publishes;
  m->descriptors_stored = descriptors_stored;
  m->chord_hops = hops;
  m->stale_evictions = stale_evictions;
  m->peer_crashes = crashes;
  m->peer_recoveries = recoveries;
  m->bytes_per_peer = bytes_per_peer;
  m->event_queue_depth = event_queue_depth;
}

ScenarioEngine::ScenarioEngine(const ScenarioConfig& config)
    : config_(config), rng_(config.seed ^ 0x5CE9A210ULL) {}

Result<ScenarioEngine> ScenarioEngine::Make(const ScenarioConfig& config) {
  RETURN_NOT_OK(config.Validate());
  ScenarioEngine engine(config);

  ASSIGN_OR_RETURN(engine.net_,
                   MakeCompactOverlay(config.kind, config.num_peers,
                                      config.seed, config.can_dims));
  LshParams lsh_params = config.lsh;
  lsh_params.seed = config.seed ^ 0x5bd1e995u;
  ASSIGN_OR_RETURN(LshScheme scheme, LshScheme::Make(lsh_params));
  engine.lsh_ = std::make_unique<LshScheme>(std::move(scheme));
  if (config.shape == WorkloadShape::kZipf) {
    engine.zipf_ = std::make_unique<ZipfGenerator>(
        static_cast<uint64_t>(config.domain) + 1, config.zipf_theta);
  }
  engine.crash_epoch_.assign(config.num_peers, 0);
  engine.recent_recall_.reserve(kRecallWindow);
  // Moving the engine must not re-pin it to a stale thread id.
  engine.owner_checker_.Rebind();
  return engine;
}

void ScenarioEngine::ScheduleWorkload() {
  for (size_t i = 0; i < config_.num_queries; ++i) {
    queue_.Push(static_cast<double>(i + 1) * config_.query_interval_ms,
                EventType::kQuery, static_cast<uint32_t>(i));
  }
  const double horizon =
      static_cast<double>(config_.num_queries) * config_.query_interval_ms;
  if (config_.churn == ChurnMode::kChurn) {
    for (double t = config_.churn_interval_ms; t < horizon;
         t += config_.churn_interval_ms) {
      queue_.Push(t, EventType::kCrash, 0);
    }
  } else if (config_.churn == ChurnMode::kCrashWave) {
    wave_time_ms_ = 0.4 * horizon;
    const size_t wave = static_cast<size_t>(
        config_.crash_wave_fraction * static_cast<double>(config_.num_peers));
    for (size_t i = 0; i < wave; ++i) {
      queue_.Push(wave_time_ms_, EventType::kCrash, 0);
      // Staggered rejoins spread the repair load over the back half.
      queue_.Push(wave_time_ms_ + config_.recover_delay_ms *
                                      (1.0 + static_cast<double>(i) /
                                                 static_cast<double>(wave)),
                  EventType::kRecover, 0);
    }
  }
}

Range ScenarioEngine::NextQueryRange() {
  const uint32_t domain = config_.domain;
  switch (config_.shape) {
    case WorkloadShape::kZipf: {
      const uint32_t center = static_cast<uint32_t>(zipf_->Next(rng_));
      const double u = rng_.NextDouble();
      const uint64_t width =
          1 + static_cast<uint64_t>(-std::log(1.0 - u) *
                                        (config_.zipf_mean_width - 1.0) +
                                    0.5);
      const uint64_t half = width / 2;
      const uint32_t lo =
          center >= half ? static_cast<uint32_t>(center - half) : 0;
      const uint64_t hi64 = static_cast<uint64_t>(lo) + width - 1;
      const uint32_t hi =
          hi64 > domain ? domain : static_cast<uint32_t>(hi64);
      return Range(std::min(lo, hi), std::max(lo, hi));
    }
    case WorkloadShape::kHotspot: {
      const bool hot = rng_.NextDouble() < config_.hot_fraction;
      const uint32_t window_hi = hot ? domain / 20 : domain;
      uint32_t a = static_cast<uint32_t>(rng_.NextBounded(
          static_cast<uint64_t>(window_hi) + 1));
      uint32_t b = static_cast<uint32_t>(rng_.NextBounded(
          static_cast<uint64_t>(window_hi) + 1));
      if (a > b) std::swap(a, b);
      return Range(a, b);
    }
    case WorkloadShape::kUniform:
      break;
  }
  uint32_t a =
      static_cast<uint32_t>(rng_.NextBounded(static_cast<uint64_t>(domain) + 1));
  uint32_t b =
      static_cast<uint32_t>(rng_.NextBounded(static_cast<uint64_t>(domain) + 1));
  if (a > b) std::swap(a, b);
  return Range(a, b);
}

bool ScenarioEngine::CopyValid(const StoredDesc& d, uint32_t at_slot) const {
  return d.home == at_slot && net_->IsAlive(d.home) &&
         d.home_epoch == crash_epoch_[d.home];
}

void ScenarioEngine::PublishRange(const Range& r, uint32_t holder,
                                  ScenarioReport* report) {
  ++report->publishes;
  lsh_->IdentifiersInto(r, &identifier_scratch_);
  for (const uint32_t id : identifier_scratch_) {
    int hops = 0;
    const uint32_t owner = net_->Route(holder, id, &hops);
    report->hops += static_cast<uint64_t>(hops);
    report->messages += static_cast<uint64_t>(hops);
    report->bytes += static_cast<uint64_t>(hops) * kControlBytes;
    std::vector<StoredDesc>& bucket = buckets_[id];
    uint32_t target = owner;
    for (int copy = 0; copy < config_.replication; ++copy) {
      if (copy > 0) {
        const uint32_t next = net_->ReplicaSlot(target, 1);
        if (next == owner) break;  // wrapped: fewer alive peers than copies
        target = next;
      }
      StoredDesc d;
      d.lo = r.lo();
      d.hi = r.hi();
      d.holder = holder;
      d.home = target;
      d.home_epoch = crash_epoch_[target];
      // Refresh an existing copy of the same range instead of letting
      // republishes grow the bucket without bound.
      bool refreshed = false;
      for (StoredDesc& existing : bucket) {
        if (existing.home == target && existing.lo == d.lo &&
            existing.hi == d.hi) {
          existing = d;
          refreshed = true;
          break;
        }
      }
      if (!refreshed) bucket.push_back(d);
      ++report->descriptors_stored;
      report->messages += 1;
      report->bytes += kControlBytes + kDescriptorBytes;
    }
  }
}

void ScenarioEngine::RunQuery(ScenarioReport* report) {
  const Range q = NextQueryRange();
  const uint32_t origin = net_->RandomAliveSlot(rng_);
  lsh_->IdentifiersInto(q, &identifier_scratch_);

  double best_recall = 0.0;
  bool exact = false;
  for (const uint32_t id : identifier_scratch_) {
    int hops = 0;
    const uint32_t owner = net_->Route(origin, id, &hops);
    report->hops += static_cast<uint64_t>(hops);
    report->messages += static_cast<uint64_t>(hops) + 1;  // hops + reply
    report->bytes += (static_cast<uint64_t>(hops) + 1) * kControlBytes;
    auto it = buckets_.find(id);
    if (it == buckets_.end()) continue;
    std::vector<StoredDesc>& bucket = it->second;
    for (size_t i = 0; i < bucket.size();) {
      const StoredDesc& d = bucket[i];
      if (!CopyValid(d, owner)) {
        // Copies resident elsewhere (or orphaned by a crash epoch
        // bump) are invisible to this owner.
        ++i;
        continue;
      }
      if (!net_->IsAlive(d.holder)) {
        // Stale: the holder died with its materialized data.
        bucket[i] = bucket.back();
        bucket.pop_back();
        ++report->stale_evictions;
        continue;
      }
      const Range stored(d.lo, d.hi);
      if (stored.Overlaps(q)) {
        const double recall =
            static_cast<double>(stored.IntersectionSize(q)) /
            static_cast<double>(q.size());
        if (recall > best_recall) best_recall = recall;
        if (d.lo == q.lo() && d.hi == q.hi()) exact = true;
      }
      ++i;
    }
  }

  ++report->queries;
  if (exact) {
    ++report->exact_hits;
    best_recall = 1.0;
  } else if (best_recall > 0.0) {
    ++report->approx_hits;
  } else {
    ++report->misses;
  }
  report->recall_sum += best_recall;

  if (recent_recall_.size() < kRecallWindow) {
    recent_recall_.push_back(best_recall);
  } else {
    recent_recall_[recent_pos_] = best_recall;
    recent_pos_ = (recent_pos_ + 1) % kRecallWindow;
  }

  // The paper's cache-on-miss rule: a non-exact answer publishes the
  // queried range at its l identifier owners, holder = origin.
  if (!exact) PublishRange(q, origin, report);
}

void ScenarioEngine::Crash(uint32_t slot, ScenarioReport* report) {
  if (!net_->IsAlive(slot)) return;
  // Never sink below half the fleet: keeps routing meaningful and the
  // run deterministic under any parameterization.
  if (net_->num_alive() * 2 <= net_->num_peers()) return;
  net_->SetAlive(slot, false);
  ++crash_epoch_[slot];  // orphans every descriptor copy resident here
  ++report->crashes;
}

void ScenarioEngine::Recover(uint32_t slot, ScenarioReport* report) {
  if (net_->IsAlive(slot)) return;
  net_->SetAlive(slot, true);
  ++report->recoveries;
}

uint64_t ScenarioEngine::MemoryBytes() const {
  uint64_t bytes = net_->MemoryBytes() + queue_.MemoryBytes() +
                   crash_epoch_.capacity() * sizeof(uint16_t);
  // unordered_map node overhead, measured generously: bucket array +
  // one heap node (key + vector header + control) per entry.
  bytes += buckets_.bucket_count() * sizeof(void*);
  for (const auto& [id, bucket] : buckets_) {
    (void)id;
    bytes += 48 + bucket.capacity() * sizeof(StoredDesc);
  }
  return bytes;
}

Result<ScenarioReport> ScenarioEngine::Run() {
  CHECK(on_owner_thread())
      << "ScenarioEngine is single-threaded by design; Run() must stay on "
         "the constructing thread";
  CHECK(!ran_) << "ScenarioEngine::Run is single-shot";
  ran_ = true;

  ScheduleWorkload();
  ScenarioReport report;

  double recall_before = 0.0;
  uint64_t queries_before = 0;
  double recall_during = 0.0;
  uint64_t queries_during = 0;
  double recall_after = 0.0;
  uint64_t queries_after = 0;
  const double wave_settle_ms = 2.0 * config_.recover_delay_ms;
  double pre_wave_mean = -1.0;

  std::vector<uint32_t> crash_victims;
  Event e;
  while (queue_.Pop(&e)) {
    now_ms_ = e.time_ms;
    switch (e.type) {
      case EventType::kQuery: {
        const double before_sum = report.recall_sum;
        RunQuery(&report);
        const double recall = report.recall_sum - before_sum;
        if (wave_time_ms_ >= 0.0) {
          if (now_ms_ < wave_time_ms_) {
            recall_before += recall;
            ++queries_before;
          } else if (now_ms_ < wave_time_ms_ + wave_settle_ms) {
            recall_during += recall;
            ++queries_during;
          } else {
            recall_after += recall;
            ++queries_after;
          }
          // Recovery clock: first post-wave instant the rolling mean
          // regains 95% of the pre-wave level.
          if (now_ms_ >= wave_time_ms_ && report.recovery_ms < 0.0 &&
              pre_wave_mean > 0.0 && recent_recall_.size() == kRecallWindow) {
            double sum = 0.0;
            for (const double r : recent_recall_) sum += r;
            if (sum / static_cast<double>(kRecallWindow) >=
                0.95 * pre_wave_mean) {
              report.recovery_ms = now_ms_ - wave_time_ms_;
            }
          }
        }
        break;
      }
      case EventType::kCrash: {
        if (wave_time_ms_ >= 0.0 && pre_wave_mean < 0.0 &&
            queries_before > 0) {
          pre_wave_mean =
              recall_before / static_cast<double>(queries_before);
        }
        const uint32_t victim = net_->RandomAliveSlot(rng_);
        Crash(victim, &report);
        if (config_.churn == ChurnMode::kChurn &&
            !net_->IsAlive(victim)) {
          queue_.Push(now_ms_ + config_.recover_delay_ms, EventType::kRecover,
                      victim);
        } else if (config_.churn == ChurnMode::kCrashWave &&
                   !net_->IsAlive(victim)) {
          crash_victims.push_back(victim);
        }
        break;
      }
      case EventType::kRecover: {
        uint32_t slot = e.subject;
        if (config_.churn == ChurnMode::kCrashWave) {
          if (crash_victims.empty()) break;
          slot = crash_victims.back();
          crash_victims.pop_back();
        }
        Recover(slot, &report);
        break;
      }
      case EventType::kRepair:
        break;
    }
  }

  report.end_time_ms = now_ms_;
  report.event_queue_depth = queue_.max_depth();
  report.bytes_per_peer = MemoryBytes() / config_.num_peers;
  if (wave_time_ms_ >= 0.0) {
    if (queries_before > 0) {
      report.recall_before_wave =
          recall_before / static_cast<double>(queries_before);
    }
    if (queries_during > 0) {
      report.recall_during_wave =
          recall_during / static_cast<double>(queries_during);
    }
    if (queries_after > 0) {
      report.recall_after_wave =
          recall_after / static_cast<double>(queries_after);
    }
  }
  return report;
}

}  // namespace sim
}  // namespace p2prange
