// Indexed event queue of the scenario engine.
//
// A flat binary min-heap over 24-byte POD events, ordered by
// (time_ms, seq) so equal-time events pop in push order — the
// determinism the whole engine rests on. The queue tracks its
// high-water depth, exported as the `event_queue_depth` gauge.
#ifndef P2PRANGE_SIM_ENGINE_EVENT_QUEUE_H_
#define P2PRANGE_SIM_ENGINE_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace p2prange {
namespace sim {

/// \brief What a scheduled event does when it fires.
enum class EventType : uint8_t {
  kQuery = 0,    ///< run one range query; subject = query index
  kCrash = 1,    ///< abrupt failure; subject = peer slot
  kRecover = 2,  ///< crashed peer rejoins; subject = peer slot
  kRepair = 3,   ///< post-wave maintenance sweep; subject unused
};

/// \brief One scheduled simulation event. Kept POD and small (24
/// bytes) so a million pending events cost ~24 MB, not a GB of
/// closures.
struct Event {
  double time_ms = 0.0;
  uint64_t seq = 0;  ///< FIFO tiebreak among equal timestamps
  EventType type = EventType::kQuery;
  uint32_t subject = 0;
};

/// \brief Deterministic binary min-heap of events.
class EventQueue {
 public:
  /// Schedules `type` at `time_ms`; seq is assigned in push order.
  void Push(double time_ms, EventType type, uint32_t subject);

  /// Pops the earliest event into *out; false when empty.
  bool Pop(Event* out);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Largest number of simultaneously pending events so far.
  size_t max_depth() const { return max_depth_; }

  /// Heap storage footprint (the engine's bytes/peer accounting).
  uint64_t MemoryBytes() const { return heap_.capacity() * sizeof(Event); }

 private:
  /// a sorts strictly before b.
  static bool Before(const Event& a, const Event& b) {
    if (a.time_ms != b.time_ms) return a.time_ms < b.time_ms;
    return a.seq < b.seq;
  }

  void SiftUp(size_t i);
  void SiftDown(size_t i);

  std::vector<Event> heap_;
  uint64_t next_seq_ = 0;
  size_t max_depth_ = 0;
};

}  // namespace sim
}  // namespace p2prange

#endif  // P2PRANGE_SIM_ENGINE_EVENT_QUEUE_H_
