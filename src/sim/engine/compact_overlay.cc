#include "sim/engine/compact_overlay.h"

#include <algorithm>
#include <cmath>

#include "can/zone.h"
#include "common/logging.h"
#include "tapestry/tapestry.h"

namespace p2prange {
namespace sim {

// ---------------------------------------------------------------- AliveIndex

AliveIndex::AliveIndex(size_t n) : alive_(n, 1), tree_(n + 1, 0), num_alive_(n) {
  // Build the Fenwick tree for the all-alive state in O(n).
  for (size_t i = 1; i <= n; ++i) {
    tree_[i] += 1;
    const size_t parent = i + (i & (~i + 1));
    if (parent <= n) tree_[parent] += tree_[i];
  }
}

void AliveIndex::Set(uint32_t slot, bool alive) {
  const uint8_t bit = alive ? 1 : 0;
  if (alive_[slot] == bit) return;
  alive_[slot] = bit;
  const int delta = alive ? 1 : -1;
  num_alive_ += delta;
  for (size_t i = slot + 1; i < tree_.size(); i += i & (~i + 1)) {
    tree_[i] = static_cast<uint32_t>(static_cast<int64_t>(tree_[i]) + delta);
  }
}

size_t AliveIndex::CountBefore(uint32_t end) const {
  size_t sum = 0;
  for (size_t i = end; i > 0; i -= i & (~i + 1)) sum += tree_[i];
  return sum;
}

size_t AliveIndex::CountIn(uint32_t begin, uint32_t end) const {
  return begin >= end ? 0 : CountBefore(end) - CountBefore(begin);
}

uint32_t AliveIndex::NextAliveWrapping(uint32_t slot) const {
  DCHECK_GT(num_alive_, 0u);
  const size_t before = CountBefore(slot);
  // `before` alive slots precede `slot`; the next alive slot is the
  // (before)-th overall unless we ran off the end — then wrap.
  return SelectAlive(before < num_alive_ ? before : 0);
}

uint32_t AliveIndex::SelectAlive(size_t k) const {
  DCHECK_LT(k, num_alive_);
  // Classic Fenwick binary lifting: find the smallest prefix holding
  // k+1 alive entries.
  size_t pos = 0;
  size_t remaining = k + 1;
  size_t mask = size_t{1} << (63 - __builtin_clzll((tree_.size() - 1) | 1));
  for (; mask > 0; mask >>= 1) {
    const size_t next = pos + mask;
    if (next < tree_.size() && tree_[next] < remaining) {
      pos = next;
      remaining -= tree_[next];
    }
  }
  return static_cast<uint32_t>(pos);  // tree_ is 1-based: prefix len == slot
}

// ------------------------------------------------------------ CompactOverlay

CompactOverlay::CompactOverlay(std::vector<uint32_t> ids)
    : ids_(std::move(ids)), alive_(ids_.size()) {}

uint32_t CompactOverlay::AliveSuccessorOfId(uint32_t id) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  const uint32_t rank =
      it == ids_.end() ? 0 : static_cast<uint32_t>(it - ids_.begin());
  return alive_.NextAliveWrapping(rank);
}

uint32_t CompactOverlay::ReplicaSlot(uint32_t owner, int k) const {
  uint32_t slot = owner;
  for (int i = 0; i < k; ++i) {
    slot = alive_.NextAliveWrapping(slot + 1 < ids_.size() ? slot + 1 : 0);
  }
  return slot;
}

uint32_t CompactOverlay::RandomAliveSlot(Rng& rng) const {
  return alive_.SelectAlive(
      static_cast<size_t>(rng.NextBounded(alive_.num_alive())));
}

namespace {

// ------------------------------------------------------------- CompactChord

/// Chord: the owner of an identifier is its alive successor on the
/// ring; routing performs greedy power-of-two finger descent, each hop
/// landing on the alive successor of cur + 2^k without passing the
/// target — the same rule ChordRing's finger tables implement.
class CompactChord final : public CompactOverlay {
 public:
  explicit CompactChord(std::vector<uint32_t> ids)
      : CompactOverlay(std::move(ids)) {}

  overlay::Kind kind() const override { return overlay::Kind::kChord; }

  uint32_t Owner(uint32_t id) const override { return AliveSuccessorOfId(id); }

  uint32_t Route(uint32_t origin, uint32_t id, int* hops) const override {
    const uint32_t owner = Owner(id);
    uint32_t cur = origin;
    // 2 * 32 fingers bounds any descent; the fallback successor step
    // always advances, so this is belt-and-braces, not control flow.
    for (int budget = 0; cur != owner && budget < 64; ++budget) {
      const uint32_t cur_id = ids_[cur];
      const uint32_t dist = id - cur_id;  // forward ring distance
      uint32_t chosen = owner;
      for (int k = 31; k >= 0; --k) {
        const uint32_t finger = uint32_t{1} << k;
        if (finger > dist) continue;
        const uint32_t f = AliveSuccessorOfId(cur_id + finger);
        const uint32_t step = ids_[f] - cur_id;
        if (step != 0 && step <= dist) {
          chosen = f;
          break;
        }
        // The first alive node past this finger overshoots the target:
        // it is the target's successor, i.e. the owner itself.
      }
      cur = chosen;
      ++*hops;
    }
    return owner;
  }
};

// --------------------------------------------------------------- CompactCan

/// CAN: the d-torus is modeled as a side^d grid of equal zones, cell
/// (row-major) i owned by slot i. Identifier points map to cells by
/// coordinate scaling; routing walks the torus greedily so the hop
/// count is the toroidal Manhattan distance (the d/4 * n^(1/d) law),
/// plus one hop per dead cell passed over (neighbor takeover).
class CompactCan final : public CompactOverlay {
 public:
  CompactCan(std::vector<uint32_t> ids, int dims)
      : CompactOverlay(std::move(ids)), dims_(dims) {
    side_ = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::floor(std::pow(static_cast<double>(ids_.size()),
                                   1.0 / static_cast<double>(dims)))));
    while (CellCount(side_ + 1) <= ids_.size()) ++side_;
    while (side_ > 1 && CellCount(side_) > ids_.size()) --side_;
    num_cells_ = CellCount(side_);
  }

  overlay::Kind kind() const override { return overlay::Kind::kCan; }

  uint32_t Owner(uint32_t id) const override {
    int ignored = 0;
    return OwnerWithProbes(id, &ignored);
  }

  uint32_t Route(uint32_t origin, uint32_t id, int* hops) const override {
    int probes = 0;
    const uint32_t owner = OwnerWithProbes(id, &probes);
    uint64_t from[can::kMaxDims];
    uint64_t to[can::kMaxDims];
    CellCoords(origin % num_cells_, from);
    CellCoords(owner % num_cells_, to);
    int manhattan = 0;
    for (int k = 0; k < dims_; ++k) {
      const uint64_t d =
          from[k] > to[k] ? from[k] - to[k] : to[k] - from[k];
      manhattan += static_cast<int>(std::min(d, side_ - d));
    }
    *hops += manhattan + probes;
    return owner;
  }

 private:
  uint64_t CellCount(uint64_t side) const {
    uint64_t cells = 1;
    for (int k = 0; k < dims_; ++k) {
      if (cells > (uint64_t{1} << 62) / side) return uint64_t{1} << 62;
      cells *= side;
    }
    return cells;
  }

  void CellCoords(uint64_t cell, uint64_t (&out)[can::kMaxDims]) const {
    for (int k = 0; k < dims_; ++k) {
      out[k] = cell % side_;
      cell /= side_;
    }
  }

  uint32_t OwnerWithProbes(uint32_t id, int* probes) const {
    const can::Point p = can::IdentifierToPoint(id, dims_);
    uint64_t cell = 0;
    for (int k = dims_ - 1; k >= 0; --k) {
      const uint64_t coord =
          (static_cast<uint64_t>(p.coords[static_cast<size_t>(k)]) * side_) >>
          32;
      cell = cell * side_ + coord;
    }
    // Dead cell: the next live cell in row-major order has taken the
    // zone over (each skip costs the router one forwarding probe).
    uint32_t slot = static_cast<uint32_t>(cell);
    for (uint64_t tried = 0; tried < num_cells_ && !IsAlive(slot); ++tried) {
      slot = static_cast<uint32_t>((slot + 1) % num_cells_);
      ++*probes;
    }
    // Every cell owner is down (possible only when the alive peers all
    // sit in the slack slots beyond the grid): any live peer serves.
    if (!IsAlive(slot)) slot = alive_.NextAliveWrapping(slot);
    return slot;
  }

  int dims_;
  uint64_t side_ = 1;
  uint64_t num_cells_ = 1;
};

// ---------------------------------------------------------- CompactTapestry

/// Tapestry: surrogate routing resolves one hex digit per hop. Because
/// a digit prefix is a contiguous span of the sorted identifier array,
/// the global-mesh descent (cyclic successor among digits present at
/// each level, exactly TapestryOverlay::OwnerOracle's rule) runs as a
/// cascade of binary searches plus Fenwick alive-counts.
class CompactTapestry final : public CompactOverlay {
 public:
  explicit CompactTapestry(std::vector<uint32_t> ids)
      : CompactOverlay(std::move(ids)) {}

  overlay::Kind kind() const override { return overlay::Kind::kTapestry; }

  uint32_t Owner(uint32_t id) const override {
    int ignored = 0;
    return OwnerWithLevels(id, &ignored);
  }

  uint32_t Route(uint32_t origin, uint32_t id, int* hops) const override {
    int levels = 0;
    const uint32_t owner = OwnerWithLevels(id, &levels);
    if (owner == origin) return owner;
    // The route leaves the origin's own table at the first digit it
    // does not share with the owner; one hop resolves each remaining
    // level of the descent.
    const int shared = tapestry::SharedPrefixLen(ids_[origin], ids_[owner]);
    *hops += std::max(1, levels - shared);
    return owner;
  }

 private:
  uint32_t OwnerWithLevels(uint32_t id, int* levels) const {
    size_t lo = 0;
    size_t hi = ids_.size();
    uint32_t prefix = 0;
    for (int level = 0; level < tapestry::kDigits; ++level) {
      if (alive_.CountIn(static_cast<uint32_t>(lo), static_cast<uint32_t>(hi)) ==
          1) {
        break;
      }
      const int shift = 4 * (tapestry::kDigits - 1 - level);
      const int desired = tapestry::Digit(id, level);
      for (int k = 0; k < tapestry::kBase; ++k) {
        const int d = (desired + k) % tapestry::kBase;
        const uint64_t base =
            prefix | (static_cast<uint64_t>(d) << shift);
        const uint64_t end = base + (uint64_t{1} << shift);
        const size_t b = RankOf(base, lo, hi);
        const size_t e = end > 0xFFFFFFFFull ? hi : RankOf(end, lo, hi);
        if (alive_.CountIn(static_cast<uint32_t>(b),
                           static_cast<uint32_t>(e)) > 0) {
          lo = b;
          hi = e;
          prefix = static_cast<uint32_t>(base);
          break;
        }
      }
      *levels = level + 1;
    }
    // First alive slot inside the final prefix span.
    return alive_.SelectAlive(alive_.CountBefore(static_cast<uint32_t>(lo)));
  }

  size_t RankOf(uint64_t value, size_t lo, size_t hi) const {
    return static_cast<size_t>(
        std::lower_bound(ids_.begin() + static_cast<ptrdiff_t>(lo),
                         ids_.begin() + static_cast<ptrdiff_t>(hi),
                         static_cast<uint32_t>(value)) -
        ids_.begin());
  }
};

}  // namespace

Result<std::unique_ptr<CompactOverlay>> MakeCompactOverlay(
    overlay::Kind kind, size_t num_peers, uint64_t seed, int can_dims) {
  if (num_peers == 0) {
    return Status::InvalidArgument("compact overlay needs at least one peer");
  }
  if (can_dims < 1 || can_dims > can::kMaxDims) {
    return Status::InvalidArgument("can_dims out of range");
  }
  // One identifier set per seed, shared by every substrate so the
  // scenario matrix compares routing, not id luck.
  Rng rng(seed ^ 0xC0FFEE123ULL);
  std::vector<uint32_t> ids;
  ids.reserve(num_peers);
  while (ids.size() < num_peers) {
    const size_t missing = num_peers - ids.size();
    for (size_t i = 0; i < missing; ++i) ids.push_back(rng.Next32());
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }
  std::unique_ptr<CompactOverlay> out;
  switch (kind) {
    case overlay::Kind::kChord:
      out = std::make_unique<CompactChord>(std::move(ids));
      break;
    case overlay::Kind::kCan:
      out = std::make_unique<CompactCan>(std::move(ids), can_dims);
      break;
    case overlay::Kind::kTapestry:
      out = std::make_unique<CompactTapestry>(std::move(ids));
      break;
  }
  if (out == nullptr) return Status::InvalidArgument("unknown overlay kind");
  return out;
}

}  // namespace sim
}  // namespace p2prange
