#include "sim/churn_sim.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"

namespace p2prange {

namespace {
/// Exponential inter-arrival time for a Poisson process of `rate_hz`.
double NextArrival(Rng& rng, double rate_hz) {
  if (rate_hz <= 0.0) return std::numeric_limits<double>::infinity();
  return -std::log(1.0 - rng.NextDouble()) / rate_hz;
}
}  // namespace

const char* LiveChurnEventKindName(LiveChurnEventKind kind) {
  switch (kind) {
    case LiveChurnEventKind::kJoin:
      return "join";
    case LiveChurnEventKind::kKill:
      return "kill";
    case LiveChurnEventKind::kRestart:
      return "restart";
  }
  return "unknown";
}

std::vector<LiveChurnEvent> GenerateLiveChurnSchedule(
    const ChurnScenarioConfig& config) {
  // Two independent Poisson processes, exactly as the simulator draws
  // them; departures split into kill/restart per event so the
  // fail_fraction holds in expectation at any schedule length.
  Rng rng(config.seed);
  std::vector<LiveChurnEvent> events;
  for (double t = NextArrival(rng, config.join_rate_hz);
       t <= config.duration_s; t += NextArrival(rng, config.join_rate_hz)) {
    events.push_back({t, LiveChurnEventKind::kJoin});
  }
  for (double t = NextArrival(rng, config.leave_rate_hz);
       t <= config.duration_s; t += NextArrival(rng, config.leave_rate_hz)) {
    events.push_back({t, rng.NextBernoulli(config.fail_fraction)
                             ? LiveChurnEventKind::kKill
                             : LiveChurnEventKind::kRestart});
  }
  std::sort(events.begin(), events.end(),
            [](const LiveChurnEvent& a, const LiveChurnEvent& b) {
              return a.t_s < b.t_s;
            });
  return events;
}

ChurnSimulator::ChurnSimulator(RangeCacheSystem* system,
                               std::function<PartitionKey()> make_query,
                               ChurnScenarioConfig config)
    : system_(system), make_query_(std::move(make_query)), config_(config) {
  CHECK(system_ != nullptr);
  CHECK(make_query_ != nullptr);
  rng_ = Rng(config.seed);
}

Result<ChurnReport> ChurnSimulator::Run(int num_slices) {
  if (num_slices < 1) {
    return Status::InvalidArgument("num_slices must be >= 1");
  }
  struct Event {
    double time;
    EventType type;
    bool operator>(const Event& other) const { return time > other.time; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  queue.push({NextArrival(rng_, config_.query_rate_hz), EventType::kQuery});
  queue.push({NextArrival(rng_, config_.join_rate_hz), EventType::kJoin});
  queue.push({NextArrival(rng_, config_.leave_rate_hz), EventType::kLeave});
  if (config_.recover_rate_hz > 0.0) {
    queue.push({NextArrival(rng_, config_.recover_rate_hz), EventType::kRecover});
  }
  if (config_.stabilize_period_s > 0) {
    queue.push({config_.stabilize_period_s, EventType::kStabilize});
  }

  ChurnReport report;
  report.slices.resize(num_slices);
  const double slice_len = config_.duration_s / num_slices;
  for (int s = 0; s < num_slices; ++s) {
    report.slices[s].t_begin = s * slice_len;
    report.slices[s].t_end = (s + 1) * slice_len;
  }
  std::vector<double> recall_sums(num_slices, 0.0);

  // Repair counters are cumulative in SystemMetrics; slices report the
  // delta accumulated while they were current.
  uint64_t prev_stale = system_->metrics().stale_evictions;
  uint64_t prev_repaired = system_->metrics().recovery_descriptors_repaired;
  auto close_slice = [&](int s) {
    ChurnTimeSlice& slice = report.slices[s];
    slice.alive_at_end = system_->overlay().num_alive();
    const uint64_t stale = system_->metrics().stale_evictions;
    const uint64_t repaired = system_->metrics().recovery_descriptors_repaired;
    slice.stale_repairs = stale - prev_stale;
    slice.descriptors_repaired = repaired - prev_repaired;
    prev_stale = stale;
    prev_repaired = repaired;
  };

  int cur_slice = 0;
  while (!queue.empty() && queue.top().time <= config_.duration_s) {
    const Event ev = queue.top();
    queue.pop();
    int slice = static_cast<int>(ev.time / slice_len);
    if (slice >= num_slices) slice = num_slices - 1;
    // Crossing into a new slice: snapshot the overlay size at the end
    // of every slice we just left.
    while (cur_slice < slice) {
      close_slice(cur_slice++);
    }
    ChurnTimeSlice& out = report.slices[slice];

    switch (ev.type) {
      case EventType::kQuery: {
        auto outcome = system_->LookupRange(make_query_());
        ++report.total_queries;
        ++out.queries;
        if (!outcome.ok()) {
          ++report.protocol_errors;
        } else {
          const double recall =
              outcome->match ? outcome->match->recall : 0.0;
          out.matched += outcome->match.has_value();
          out.complete += recall >= 1.0;
          recall_sums[slice] += recall;
        }
        queue.push({ev.time + NextArrival(rng_, config_.query_rate_hz),
                    EventType::kQuery});
        break;
      }
      case EventType::kJoin: {
        if (system_->AddPeer().ok()) ++out.joins;
        queue.push({ev.time + NextArrival(rng_, config_.join_rate_hz),
                    EventType::kJoin});
        break;
      }
      case EventType::kLeave: {
        if (system_->overlay().num_alive() > config_.min_peers) {
          auto victim = system_->overlay().RandomAliveAddress();
          if (victim.ok() && *victim != system_->source_address()) {
            const bool graceful = !rng_.NextBernoulli(config_.fail_fraction);
            if (!graceful && config_.recover_rate_hz > 0.0) {
              // Abrupt departure as a transient crash: the peer keeps
              // its durable images and rejoins on a kRecover event.
              if (system_->CrashPeer(*victim).ok()) {
                crashed_.push_back(*victim);
                ++out.departures;
                ++out.crashes;
              }
            } else if (system_->RemovePeer(*victim, graceful).ok()) {
              ++out.departures;
            }
          }
        }
        queue.push({ev.time + NextArrival(rng_, config_.leave_rate_hz),
                    EventType::kLeave});
        break;
      }
      case EventType::kRecover: {
        if (!crashed_.empty()) {
          const NetAddress addr = crashed_.front();
          crashed_.erase(crashed_.begin());
          if (system_->RecoverPeer(addr).ok()) ++out.recoveries;
        }
        queue.push({ev.time + NextArrival(rng_, config_.recover_rate_hz),
                    EventType::kRecover});
        break;
      }
      case EventType::kStabilize: {
        system_->overlay().Stabilize(1);
        system_->overlay().RepairRouting();
        queue.push({ev.time + config_.stabilize_period_s, EventType::kStabilize});
        break;
      }
    }
  }

  // Slices the run ended in (or never reached) carry the final count.
  while (cur_slice < num_slices) {
    close_slice(cur_slice++);
  }
  for (int s = 0; s < num_slices; ++s) {
    ChurnTimeSlice& out = report.slices[s];
    out.mean_recall =
        out.queries == 0 ? 0.0 : recall_sums[s] / static_cast<double>(out.queries);
  }
  return report;
}

}  // namespace p2prange
