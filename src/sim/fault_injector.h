// Fault-injection harness for the range-cache protocol.
//
// Drives scripted and randomized fault schedules — abrupt crashes,
// recoveries, and permanent departures — against a RangeCacheSystem
// while a query workload runs. Faults fire *between* workload steps
// and, via the system's step hook, *during* the protocol steps of a
// single query (a peer can die after routing resolved it but before
// it answers, or between a match and its fetch). The report, together
// with the system's fault counters (SystemMetrics), makes every
// degradation observable: the acceptance bar is that queries degrade
// but never fail.
#ifndef P2PRANGE_SIM_FAULT_INJECTOR_H_
#define P2PRANGE_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/system.h"

namespace p2prange {

/// \brief What a fault event does to a peer.
enum class FaultAction {
  kCrash,    ///< abrupt transient failure; state survives for a recover
  kRecover,  ///< a crashed peer comes back
  kKill,     ///< permanent abrupt departure (RemovePeer, state lost)
};

const char* FaultActionName(FaultAction action);

/// \brief One scripted fault: before workload step `step`, apply
/// `action` to `count` random eligible peers.
struct FaultEvent {
  size_t step = 0;
  FaultAction action = FaultAction::kCrash;
  int count = 1;
};

/// \brief Shape of a fault schedule. Scripted events and randomized
/// rates compose; all randomness derives from `seed`.
struct FaultInjectorConfig {
  /// Scripted events, fired when their step comes up (any order).
  std::vector<FaultEvent> script;

  /// Randomized schedule, applied before every workload step.
  double crash_prob = 0.0;    ///< P(crash one random peer) per step
  double recover_prob = 0.0;  ///< P(recover one crashed peer) per step
  double kill_prob = 0.0;     ///< P(permanently remove one peer) per step

  /// Mid-query injection: probability, per protocol step ("probe",
  /// "failover", "fetch"), of crashing one random peer while the query
  /// is in flight. 0 disables the hook.
  double mid_query_crash_prob = 0.0;

  /// Storage-fault injection, applied to a victim's durable images at
  /// crash time (when SystemConfig::durability is on):
  /// P(the crash tears a random number of bytes off the WAL tail) —
  /// the classic partially-flushed last append.
  double torn_write_prob = 0.0;
  /// P(one random bit flips in the WAL or a snapshot slot) — media
  /// rot that recovery must *detect*, never silently replay.
  double bit_flip_prob = 0.0;

  /// Crashes/kills never push the live population below this.
  size_t min_alive = 4;

  /// Run a maintenance sweep (stabilize + fix fingers) every N
  /// workload steps; 0 = never (lookups rely on successor lists only).
  int stabilize_every = 0;

  uint64_t seed = 1;
};

/// \brief Outcome of a fault-injected workload run.
struct FaultWorkloadReport {
  uint64_t queries = 0;
  uint64_t errors = 0;    ///< queries that returned an error status
  uint64_t matched = 0;   ///< lookups with any cached match
  uint64_t complete = 0;  ///< lookups with recall >= 1
  uint64_t degraded = 0;  ///< lookups that lost at least one probe
  double mean_recall = 0.0;
  uint64_t crashes = 0;
  uint64_t recoveries = 0;
  uint64_t kills = 0;
  uint64_t torn_writes = 0;  ///< crashes that tore the victim's WAL tail
  uint64_t bit_flips = 0;    ///< crashes that flipped a durable-image bit

  std::string ToString() const;
};

/// \brief Applies fault schedules to a RangeCacheSystem and runs
/// workloads through the faulty system.
class FaultInjector {
 public:
  /// The injector registers the system's step hook only while a
  /// workload runs (when mid_query_crash_prob > 0).
  FaultInjector(RangeCacheSystem* system, FaultInjectorConfig config);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- Manual controls (scripted tests drive these directly) ---------

  /// Crashes one random eligible peer (not the source, not the peer
  /// protected via set_protected_peer, not below min_alive).
  Status CrashRandomPeer();

  /// Recovers the longest-crashed peer.
  Status RecoverOneCrashedPeer();

  /// Permanently removes one random eligible peer (abrupt).
  Status KillRandomPeer();

  /// Applies the scripted and randomized faults due before `step`.
  void ApplyStep(size_t step);

  /// A peer faults must never touch while a query runs from it (the
  /// origin/client of the in-flight query).
  void set_protected_peer(const NetAddress& addr) { protected_ = addr; }

  size_t num_crashed() const { return crashed_.size(); }
  const std::vector<NetAddress>& crashed_peers() const { return crashed_; }

  // --- Fault-injected workloads --------------------------------------

  /// Runs `n` §4 range lookups, one per workload step, injecting
  /// faults between (and, if configured, during) steps.
  Result<FaultWorkloadReport> RunLookups(
      const std::function<PartitionKey()>& make_query, size_t n);

  /// Runs `n` full SQL queries from random live clients under the
  /// fault schedule.
  Result<FaultWorkloadReport> RunQueries(
      const std::function<std::string()>& make_sql, size_t n);

 private:
  /// A uniformly random live peer eligible for a fault, or an error
  /// when none (population at min_alive or only protected peers left).
  Result<NetAddress> PickVictim();

  /// Applies the configured torn-write / bit-flip faults to the
  /// crashed victim's durable images.
  void MaybeCorruptDurableState(const NetAddress& victim);

  void OnProtocolStep(const char* stage);
  void InstallHook();
  void RemoveHook();

  RangeCacheSystem* system_;
  FaultInjectorConfig config_;
  Rng rng_;
  std::vector<NetAddress> crashed_;  ///< oldest first
  NetAddress protected_{};
  FaultWorkloadReport* active_report_ = nullptr;
  bool hook_installed_ = false;
};

}  // namespace p2prange

#endif  // P2PRANGE_SIM_FAULT_INJECTOR_H_
