// Discrete-event churn simulation.
//
// Drives a RangeCacheSystem through a timed scenario: queries, joins,
// and departures arrive as independent Poisson processes; periodic
// stabilization repairs the ring — the evaluation style of the DHT
// papers' churn experiments, applied to the paper's range-cache
// protocol. Produces a time series of cache effectiveness and overlay
// size so the interplay of churn rate, descriptor replication, and
// cache warm-up can be measured (bench/ablation_churn).
#ifndef P2PRANGE_SIM_CHURN_SIM_H_
#define P2PRANGE_SIM_CHURN_SIM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/system.h"

namespace p2prange {

/// \brief Rates and shape of a churn scenario. All rates are events
/// per simulated second; arrivals are Poisson.
struct ChurnScenarioConfig {
  double duration_s = 600.0;
  double query_rate_hz = 2.0;
  double join_rate_hz = 0.02;
  double leave_rate_hz = 0.02;
  /// Fraction of departures that are abrupt failures (no handoff).
  double fail_fraction = 0.5;
  /// Rate at which crashed peers come back through the recovery path
  /// (checkpoint + WAL replay, then replica repair). When > 0, abrupt
  /// departures are transient crashes (CrashPeer) that keep their
  /// durable images and later rejoin (RecoverPeer); when 0, abrupt
  /// departures permanently remove the peer (the pre-durability model).
  double recover_rate_hz = 0.0;
  /// Period of the maintenance sweep (stabilize + fix fingers).
  double stabilize_period_s = 30.0;
  /// Departures never shrink the overlay below this.
  size_t min_peers = 8;
  uint64_t seed = 1;
};

/// \brief Aggregates for one time slice of the run.
struct ChurnTimeSlice {
  double t_begin = 0.0;
  double t_end = 0.0;
  uint64_t queries = 0;
  uint64_t matched = 0;        ///< queries with any cached match
  uint64_t complete = 0;       ///< queries with recall == 1
  double mean_recall = 0.0;
  size_t alive_at_end = 0;
  uint64_t joins = 0;
  uint64_t departures = 0;
  uint64_t crashes = 0;     ///< abrupt departures taken as transient crashes
  uint64_t recoveries = 0;  ///< crashed peers that rejoined via replay
  /// Stale descriptors lazily evicted during this slice (SystemMetrics
  /// stale_evictions delta).
  uint64_t stale_repairs = 0;
  /// Descriptors re-pulled from live replicas by recovering peers
  /// during this slice (recovery_descriptors_repaired delta).
  uint64_t descriptors_repaired = 0;
};

// --------------------------------------------------------------------------
// Live-process churn schedules
// --------------------------------------------------------------------------
//
// The live-ring harnesses (bench/ablation_live_churn, the integration
// acceptance test) replay the same Poisson membership processes the
// simulator draws — but against real daemons, where a "leave" is a
// SIGKILL or a rolling restart and a "join" forks a process. The
// schedule is materialized up front so one seed reproduces one exact
// event sequence across runs and machines.

enum class LiveChurnEventKind : uint8_t {
  kJoin = 0,     ///< fork a fresh daemon that --join's the ring
  kKill = 1,     ///< SIGKILL a running member (abrupt failure)
  kRestart = 2,  ///< SIGTERM (graceful handoff) then rejoin
};
const char* LiveChurnEventKindName(LiveChurnEventKind kind);

struct LiveChurnEvent {
  double t_s = 0.0;
  LiveChurnEventKind kind = LiveChurnEventKind::kJoin;
};

/// \brief Materializes a deterministic event schedule from the same
/// config the simulator runs: joins at join_rate_hz; departures at
/// leave_rate_hz, split into kills (fail_fraction) and graceful
/// restarts (the rest). Query traffic stays with the caller. Events
/// are returned in time order.
std::vector<LiveChurnEvent> GenerateLiveChurnSchedule(
    const ChurnScenarioConfig& config);

/// \brief Result of a scenario run.
struct ChurnReport {
  std::vector<ChurnTimeSlice> slices;
  uint64_t total_queries = 0;
  uint64_t protocol_errors = 0;  ///< lookups that failed outright
};

/// \brief Runs a churn scenario against `system`.
///
/// `make_query` supplies the next query range (called once per query
/// event). The simulator owns event scheduling and membership changes;
/// the system keeps all protocol behavior.
class ChurnSimulator {
 public:
  ChurnSimulator(RangeCacheSystem* system,
                 std::function<PartitionKey()> make_query,
                 ChurnScenarioConfig config);

  /// Runs the full scenario, splitting the duration into `num_slices`
  /// equal reporting windows.
  Result<ChurnReport> Run(int num_slices = 10);

 private:
  enum class EventType { kQuery, kJoin, kLeave, kRecover, kStabilize };

  RangeCacheSystem* system_;
  std::function<PartitionKey()> make_query_;
  ChurnScenarioConfig config_;
  Rng rng_;
  std::vector<NetAddress> crashed_;  ///< oldest crash first
};

}  // namespace p2prange

#endif  // P2PRANGE_SIM_CHURN_SIM_H_
