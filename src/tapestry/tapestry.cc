#include "tapestry/tapestry.h"

#include <algorithm>

#include "common/logging.h"
#include "hash/sha1.h"

namespace p2prange {
namespace tapestry {

void TapestryNode::ClearTable() {
  for (auto& level : table_) level.fill(std::nullopt);
}

size_t TapestryNode::PopulatedSlots() const {
  size_t n = 0;
  for (const auto& level : table_) {
    for (const auto& slot : level) n += slot.has_value();
  }
  return n;
}

TapestryMesh::TapestryMesh(uint64_t seed, LatencyModel latency)
    : rng_(seed),
      net_(std::make_unique<SimNetwork>(latency, seed ^ 0x7A9E57)) {}

Result<MeshNodeInfo> TapestryMesh::CreateNode() {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    NetAddress addr;
    addr.host = rng_.Next32();
    addr.port = static_cast<uint16_t>(1024 + rng_.NextBounded(60000));
    if (nodes_.contains(addr)) continue;
    const uint32_t id = Sha1::Hash32(addr.ToString());
    bool id_taken = false;
    for (const auto& [a, n] : nodes_) id_taken |= (n->id() == id);
    if (id_taken) continue;
    net_->Register(addr);
    nodes_.emplace(addr, std::make_unique<TapestryNode>(id, addr));
    return MeshNodeInfo{id, addr};
  }
  return Status::Internal("could not generate a unique mesh node");
}

Result<TapestryMesh> TapestryMesh::Make(size_t num_nodes, uint64_t seed,
                                        LatencyModel latency) {
  if (num_nodes == 0) {
    return Status::InvalidArgument("a mesh needs at least one node");
  }
  RETURN_NOT_OK(latency.Validate());
  TapestryMesh mesh(seed, latency);
  while (mesh.nodes_.size() < num_nodes) {
    RETURN_NOT_OK(mesh.CreateNode().status());
  }
  mesh.RebuildRoutingTables();
  return mesh;
}

Result<MeshNodeInfo> TapestryMesh::AddNode() {
  ASSIGN_OR_RETURN(const MeshNodeInfo info, CreateNode());
  RebuildRoutingTables();
  return info;
}

Status TapestryMesh::Leave(const NetAddress& addr) {
  if (!nodes_.contains(addr)) return Status::NotFound("unknown mesh node");
  if (!net_->IsAlive(addr)) return Status::InvalidArgument("node already down");
  if (num_alive() == 1) {
    return Status::InvalidArgument("the last mesh node cannot leave");
  }
  RETURN_NOT_OK(net_->SetAlive(addr, false));
  RebuildRoutingTables();
  return Status::OK();
}

Status TapestryMesh::Recover(const NetAddress& addr) {
  if (!nodes_.contains(addr)) return Status::NotFound("unknown mesh node");
  if (net_->IsAlive(addr)) return Status::InvalidArgument("node already up");
  RETURN_NOT_OK(net_->SetAlive(addr, true));
  RebuildRoutingTables();
  return Status::OK();
}

std::vector<MeshNodeInfo> TapestryMesh::AliveInfos() const {
  std::vector<MeshNodeInfo> out;
  out.reserve(nodes_.size());
  for (const auto& [addr, node] : nodes_) {
    if (net_->IsAlive(addr)) out.push_back(node->info());
  }
  std::sort(out.begin(), out.end(),
            [](const MeshNodeInfo& a, const MeshNodeInfo& b) { return a.id < b.id; });
  return out;
}

void TapestryMesh::RebuildRoutingTables() {
  const std::vector<MeshNodeInfo> alive = AliveInfos();
  for (const auto& [addr, node] : nodes_) {
    if (!net_->IsAlive(addr)) continue;
    node->ClearTable();
    for (const MeshNodeInfo& cand : alive) {  // ascending id = min-id fill
      if (cand.id == node->id()) continue;
      const int level = SharedPrefixLen(node->id(), cand.id);
      if (level == kDigits) continue;  // duplicate id (excluded at Make)
      const int digit = Digit(cand.id, level);
      if (!node->slot(level, digit)) {
        node->set_slot(level, digit, cand);
      }
    }
  }
}

size_t TapestryMesh::num_alive() const {
  size_t n = 0;
  for (const auto& [addr, node] : nodes_) n += net_->IsAlive(addr);
  return n;
}

Result<NetAddress> TapestryMesh::RandomAliveAddress() {
  std::vector<NetAddress> alive;
  for (const auto& [addr, node] : nodes_) {
    if (net_->IsAlive(addr)) alive.push_back(addr);
  }
  if (alive.empty()) return Status::NotFound("no live mesh nodes");
  return alive[rng_.NextBounded(alive.size())];
}

const TapestryNode* TapestryMesh::node(const NetAddress& addr) const {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::vector<size_t> TapestryMesh::StateSizes() const {
  std::vector<size_t> out;
  for (const auto& [addr, node] : nodes_) {
    if (net_->IsAlive(addr)) out.push_back(node->PopulatedSlots());
  }
  return out;
}

Status TapestryMesh::Fail(const NetAddress& addr) {
  if (!nodes_.contains(addr)) return Status::NotFound("unknown mesh node");
  return net_->SetAlive(addr, false);
}

Result<MeshLookupResult> TapestryMesh::Lookup(const NetAddress& from,
                                              uint32_t target) {
  const TapestryNode* cur = node(from);
  if (cur == nullptr || !net_->IsAlive(from)) {
    return Status::InvalidArgument("lookup origin " + from.ToString() +
                                   " is not a live mesh node");
  }
  MeshLookupResult result;
  // At most kDigits levels are resolved, and each hop strictly
  // increases the shared-prefix length or terminates, so kDigits * 2
  // bounds the loop generously.
  for (int step = 0; step < 4 * kDigits; ++step) {
    int level = SharedPrefixLen(cur->id(), target);
    if (level == kDigits) {
      return MeshLookupResult{cur->info(), result.hops, result.latency_ms};
    }
    // Surrogate scan: from the desired digit upward (mod base), take
    // the first digit with a candidate; if the first hit is this
    // node's own digit, the node is the best at this level — continue
    // at the next level ("self counts for its own slot").
    const MeshNodeInfo* next = nullptr;
    bool advanced = false;
    while (level < kDigits && next == nullptr) {
      const int desired = Digit(target, level);
      const int own = Digit(cur->id(), level);
      for (int k = 0; k < kBase; ++k) {
        const int d = (desired + k) % kBase;
        if (d == own) {
          // This node occupies the scanned slot: climb a level.
          ++level;
          advanced = true;
          break;
        }
        const auto& slot = cur->slot(level, d);
        if (slot && net_->IsAlive(slot->addr)) {
          next = &*slot;
          break;
        }
      }
      if (!advanced && next == nullptr) {
        // Neither a live candidate nor our own digit: the level is
        // empty of live nodes; this node is the surrogate root.
        return MeshLookupResult{cur->info(), result.hops, result.latency_ms};
      }
      advanced = false;
    }
    if (level == kDigits || next == nullptr) {
      return MeshLookupResult{cur->info(), result.hops, result.latency_ms};
    }
    auto latency = net_->Deliver(from, next->addr);
    RETURN_NOT_OK(latency.status());
    ++result.hops;
    result.latency_ms += *latency;
    cur = node(next->addr);
    DCHECK(cur != nullptr);
  }
  return Status::Internal("tapestry routing did not converge");
}

}  // namespace tapestry
}  // namespace p2prange
