// Tapestry-style prefix routing — the third DHT family the paper's
// introduction surveys (Zhao, Kubiatowicz, Joseph; tech report
// UCB/CSD-01-1141).
//
// Identifiers are 8 hex digits (32 bits, MSB first). Each node keeps a
// routing table of kDigits levels x kBase slots; slot (i, d) points at
// a node sharing the first i digits of this node's identifier and
// having digit d at position i. A lookup fixes one digit of the target
// per hop (O(log16 N) hops), and *surrogate routing* — deterministic
// next-available-digit scanning — resolves identifiers whose exact
// slots are empty to a unique root node.
//
// Slots are filled globally and deterministically (minimum identifier
// among candidates), which makes the surrogate root of every
// identifier consistent across all starting points; the test suite
// checks this root-consistency property explicitly.
#ifndef P2PRANGE_TAPESTRY_TAPESTRY_H_
#define P2PRANGE_TAPESTRY_TAPESTRY_H_

#include <array>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "net/sim_network.h"

namespace p2prange {
namespace tapestry {

inline constexpr int kDigits = 8;  // 32 bits / 4 bits per digit
inline constexpr int kBase = 16;

/// Hex digit `level` of `id`, most significant first.
inline int Digit(uint32_t id, int level) {
  return static_cast<int>((id >> (4 * (kDigits - 1 - level))) & 0xF);
}

/// Number of leading hex digits `a` and `b` share.
inline int SharedPrefixLen(uint32_t a, uint32_t b) {
  for (int i = 0; i < kDigits; ++i) {
    if (Digit(a, i) != Digit(b, i)) return i;
  }
  return kDigits;
}

/// \brief A routing handle.
struct MeshNodeInfo {
  uint32_t id = 0;
  NetAddress addr;

  bool operator==(const MeshNodeInfo&) const = default;
};

/// \brief One Tapestry node: identifier plus routing table.
class TapestryNode {
 public:
  TapestryNode(uint32_t id, NetAddress addr) : id_(id), addr_(addr) {}

  uint32_t id() const { return id_; }
  const NetAddress& addr() const { return addr_; }
  MeshNodeInfo info() const { return MeshNodeInfo{id_, addr_}; }

  const std::optional<MeshNodeInfo>& slot(int level, int digit) const {
    return table_[level][digit];
  }
  void set_slot(int level, int digit, MeshNodeInfo info) {
    table_[level][digit] = info;
  }
  void ClearTable();

  /// Number of populated slots (routing-state metric).
  size_t PopulatedSlots() const;

 private:
  uint32_t id_;
  NetAddress addr_;
  std::array<std::array<std::optional<MeshNodeInfo>, kBase>, kDigits> table_{};
};

/// \brief Outcome of one lookup.
struct MeshLookupResult {
  MeshNodeInfo owner;  ///< the surrogate root of the identifier
  int hops = 0;
  double latency_ms = 0.0;
};

/// \brief A simulated Tapestry mesh.
class TapestryMesh {
 public:
  static Result<TapestryMesh> Make(size_t num_nodes, uint64_t seed,
                                   LatencyModel latency = LatencyModel{});

  TapestryMesh(TapestryMesh&&) noexcept = default;
  TapestryMesh& operator=(TapestryMesh&&) noexcept = default;

  /// Prefix-routes `target` from `from` to its surrogate root.
  Result<MeshLookupResult> Lookup(const NetAddress& from, uint32_t target);

  /// Joins a brand-new node with a fresh address and unique identifier
  /// and repairs the mesh immediately (steady-state model).
  Result<MeshNodeInfo> AddNode();

  /// Graceful departure: the node goes down and the mesh is repaired
  /// immediately (the leaver hands its routing role off).
  Status Leave(const NetAddress& addr);

  /// Marks a node down; call RebuildRoutingTables to repair the mesh
  /// (this substrate models steady state, not Tapestry's incremental
  /// repair protocol).
  Status Fail(const NetAddress& addr);

  /// A failed node comes back with its identifier; the mesh is
  /// repaired immediately.
  Status Recover(const NetAddress& addr);

  /// Recomputes every live node's routing table from global knowledge
  /// with the deterministic minimum-identifier fill.
  void RebuildRoutingTables();

  size_t num_alive() const;
  Result<NetAddress> RandomAliveAddress();
  const TapestryNode* node(const NetAddress& addr) const;

  /// Live nodes in ascending identifier order.
  std::vector<MeshNodeInfo> AliveNodesSorted() const { return AliveInfos(); }

  /// Routing-table occupancy per node (state metric).
  std::vector<size_t> StateSizes() const;

  SimNetwork& network() { return *net_; }

 private:
  TapestryMesh(uint64_t seed, LatencyModel latency);

  /// Registers one node at a fresh address with a unique identifier.
  Result<MeshNodeInfo> CreateNode();

  std::vector<MeshNodeInfo> AliveInfos() const;

  Rng rng_;
  std::unique_ptr<SimNetwork> net_;
  std::unordered_map<NetAddress, std::unique_ptr<TapestryNode>, NetAddressHash>
      nodes_;
};

}  // namespace tapestry
}  // namespace p2prange

#endif  // P2PRANGE_TAPESTRY_TAPESTRY_H_
