#include "query/executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace p2prange {

Result<Relation> ApplyLeafFilters(const TableSelection& leaf, const Relation& input) {
  Relation current = input;
  for (const RangeSelection& sel : leaf.AllRanges()) {
    ASSIGN_OR_RETURN(current,
                     current.SelectOrdinalRange(sel.attribute, sel.lo, sel.hi));
  }
  for (const EqFilter& f : leaf.filters) {
    ASSIGN_OR_RETURN(current, current.SelectEquals(f.attribute, f.value));
  }
  return current;
}

namespace {

/// A relation whose fields are qualified "Table.column".
Relation Qualify(const std::string& table, const Relation& rel) {
  std::vector<Field> fields;
  fields.reserve(rel.schema().num_fields());
  for (const Field& f : rel.schema().fields()) {
    fields.push_back(Field{table + "." + f.name, f.type, f.domain});
  }
  Relation out(table, Schema(std::move(fields)));
  out.Reserve(rel.num_rows());
  for (const Row& r : rel.rows()) out.AppendUnchecked(r);
  return out;
}

/// Hash join of `left` and `right` on the given qualified columns.
Result<Relation> HashJoin(const Relation& left, const std::string& left_col,
                          const Relation& right, const std::string& right_col) {
  ASSIGN_OR_RETURN(const size_t li, left.schema().FieldIndex(left_col));
  ASSIGN_OR_RETURN(const size_t ri, right.schema().FieldIndex(right_col));

  // Build on the smaller side.
  const bool build_left = left.num_rows() <= right.num_rows();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;
  const size_t build_idx = build_left ? li : ri;
  const size_t probe_idx = build_left ? ri : li;

  std::unordered_map<Value, std::vector<size_t>, ValueHash> table;
  table.reserve(build.num_rows());
  for (size_t r = 0; r < build.num_rows(); ++r) {
    table[build.rows()[r][build_idx]].push_back(r);
  }

  // Output schema: left fields then right fields (stable regardless of
  // build side).
  std::vector<Field> fields = left.schema().fields();
  fields.insert(fields.end(), right.schema().fields().begin(),
                right.schema().fields().end());
  Relation out(left.name() + "*" + right.name(), Schema(std::move(fields)));

  for (const Row& probe_row : probe.rows()) {
    auto it = table.find(probe_row[probe_idx]);
    if (it == table.end()) continue;
    for (size_t build_r : it->second) {
      const Row& build_row = build.rows()[build_r];
      const Row& lrow = build_left ? build_row : probe_row;
      const Row& rrow = build_left ? probe_row : build_row;
      Row joined;
      joined.reserve(lrow.size() + rrow.size());
      joined.insert(joined.end(), lrow.begin(), lrow.end());
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      out.AppendUnchecked(std::move(joined));
    }
  }
  return out;
}

}  // namespace

Result<Relation> ExecutePlan(const QueryPlan& plan,
                             const std::map<std::string, Relation>& inputs) {
  if (plan.leaves.empty()) {
    return Status::InvalidArgument("plan has no leaves");
  }
  // Filter every leaf and qualify its columns.
  std::map<std::string, Relation> filtered;
  for (const TableSelection& leaf : plan.leaves) {
    auto it = inputs.find(leaf.table);
    if (it == inputs.end()) {
      return Status::InvalidArgument("no input relation for table '" + leaf.table +
                                     "'");
    }
    ASSIGN_OR_RETURN(Relation f, ApplyLeafFilters(leaf, it->second));
    filtered.emplace(leaf.table, Qualify(leaf.table, f));
  }

  // Left-deep joins: start from the first table, repeatedly join in a
  // table connected to the joined set by some edge.
  std::vector<JoinEdge> remaining = plan.joins;
  std::vector<std::string> joined_tables{plan.leaves.front().table};
  Relation current = filtered.at(plan.leaves.front().table);

  auto in_joined = [&](const std::string& t) {
    return std::find(joined_tables.begin(), joined_tables.end(), t) !=
           joined_tables.end();
  };

  while (!remaining.empty()) {
    bool progressed = false;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const JoinEdge edge = remaining[i];
      const bool l_in = in_joined(edge.left_table);
      const bool r_in = in_joined(edge.right_table);
      if (l_in && r_in) {
        // Both sides already joined: apply as a residual filter.
        ASSIGN_OR_RETURN(const size_t li, current.schema().FieldIndex(
                                              edge.left_table + "." + edge.left_column));
        ASSIGN_OR_RETURN(const size_t ri,
                         current.schema().FieldIndex(edge.right_table + "." +
                                                     edge.right_column));
        Relation next(current.name(), current.schema());
        for (const Row& row : current.rows()) {
          if (row[li] == row[ri]) next.AppendUnchecked(row);
        }
        current = std::move(next);
      } else if (l_in || r_in) {
        const std::string& new_table = l_in ? edge.right_table : edge.left_table;
        const std::string cur_col = l_in ? edge.left_table + "." + edge.left_column
                                         : edge.right_table + "." + edge.right_column;
        const std::string new_col = new_table + "." +
                                    (l_in ? edge.right_column : edge.left_column);
        ASSIGN_OR_RETURN(
            current, HashJoin(current, cur_col, filtered.at(new_table), new_col));
        joined_tables.push_back(new_table);
      } else {
        continue;  // edge not yet connectable
      }
      remaining.erase(remaining.begin() + static_cast<long>(i));
      progressed = true;
      break;
    }
    if (!progressed) {
      return Status::NotImplemented(
          "disconnected join graph (cross products are not supported)");
    }
  }

  // Any FROM table never touched by a join edge is an implicit cross
  // product — reject rather than silently explode.
  for (const TableSelection& leaf : plan.leaves) {
    if (!in_joined(leaf.table) && plan.leaves.size() > 1) {
      return Status::NotImplemented("table '" + leaf.table +
                                    "' is not connected by any join predicate");
    }
  }

  if (plan.projections.empty()) return current;

  std::vector<Field> fields;
  std::vector<size_t> indices;
  for (const ColumnRef& p : plan.projections) {
    ASSIGN_OR_RETURN(const size_t idx, current.schema().FieldIndex(p.ToString()));
    fields.push_back(current.schema().field(idx));
    indices.push_back(idx);
  }
  Relation projected(current.name(), Schema(std::move(fields)));
  projected.Reserve(current.num_rows());
  for (const Row& row : current.rows()) {
    Row out_row;
    out_row.reserve(indices.size());
    for (size_t idx : indices) out_row.push_back(row[idx]);
    projected.AppendUnchecked(std::move(out_row));
  }
  return projected;
}

}  // namespace p2prange
