// Tokenizer for the restricted SQL dialect.
#ifndef P2PRANGE_QUERY_TOKENIZER_H_
#define P2PRANGE_QUERY_TOKENIZER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace p2prange {

enum class TokenType {
  kKeyword,     // SELECT FROM WHERE AND BETWEEN (case-insensitive)
  kIdentifier,  // relation / column names
  kNumber,      // integer or decimal literal
  kString,      // 'single quoted'
  kSymbol,      // , ( ) * . < <= > >= =
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  ///< keywords upper-cased; others verbatim
  size_t offset = 0; ///< position in the input, for error messages

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// \brief Splits `sql` into tokens; the final token is always kEnd.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace p2prange

#endif  // P2PRANGE_QUERY_TOKENIZER_H_
