// Abstract syntax of the restricted SQL dialect of §2.
//
// Supported statements:
//   SELECT <col-list | *> FROM <table-list>
//   [WHERE cond AND cond AND ...]
// where each condition is one of
//   col OP literal           (OP in <, <=, >, >=, =)
//   literal OP col           (normalized to the form above)
//   col BETWEEN lit AND lit
//   col = col                (equi-join)
// Conjunctions only — selections are pushed to the leaves of the plan,
// the well-known algebraic optimization the paper relies on.
#ifndef P2PRANGE_QUERY_AST_H_
#define P2PRANGE_QUERY_AST_H_

#include <string>
#include <vector>

#include "rel/value.h"

namespace p2prange {

/// \brief A possibly table-qualified column name.
struct ColumnRef {
  std::string table;  ///< empty when unqualified
  std::string column;

  bool operator==(const ColumnRef&) const = default;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

enum class CompareOp { kLt, kLe, kGt, kGe, kEq };

const char* CompareOpName(CompareOp op);

/// \brief One conjunct of the WHERE clause.
struct Condition {
  enum class Kind { kCompare, kBetween, kJoin };

  Kind kind = Kind::kCompare;
  ColumnRef lhs;

  // kCompare: lhs op literal.
  CompareOp op = CompareOp::kEq;
  Value literal;

  // kBetween: literal <= lhs <= literal_hi.
  Value literal_hi;

  // kJoin: lhs = rhs.
  ColumnRef rhs;
};

/// \brief A parsed SELECT statement.
struct SelectStatement {
  std::vector<ColumnRef> projections;  ///< empty means '*'
  std::vector<std::string> tables;
  std::vector<Condition> conditions;

  std::string ToString() const;
};

}  // namespace p2prange

#endif  // P2PRANGE_QUERY_AST_H_
