#include "query/tokenizer.h"

#include <cctype>

namespace p2prange {

namespace {
bool IsKeywordWord(const std::string& upper) {
  return upper == "SELECT" || upper == "FROM" || upper == "WHERE" ||
         upper == "AND" || upper == "BETWEEN";
}
}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        word.push_back(sql[i]);
        ++i;
      }
      std::string upper = word;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
      if (IsKeywordWord(upper)) {
        tokens.push_back({TokenType::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenType::kIdentifier, word, start});
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      std::string num;
      if (c == '-') {
        num.push_back(c);
        ++i;
      }
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       (sql[i] == '.' && !seen_dot && i + 1 < n &&
                        std::isdigit(static_cast<unsigned char>(sql[i + 1]))))) {
        seen_dot = seen_dot || sql[i] == '.';
        num.push_back(sql[i]);
        ++i;
      }
      tokens.push_back({TokenType::kNumber, num, start});
    } else if (c == '\'') {
      ++i;
      std::string str;
      while (i < n && sql[i] != '\'') {
        str.push_back(sql[i]);
        ++i;
      }
      if (i >= n) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(start));
      }
      ++i;  // closing quote
      tokens.push_back({TokenType::kString, str, start});
    } else if (c == '<' || c == '>') {
      std::string sym(1, c);
      ++i;
      if (i < n && sql[i] == '=') {
        sym.push_back('=');
        ++i;
      }
      tokens.push_back({TokenType::kSymbol, sym, start});
    } else if (c == '=' || c == ',' || c == '(' || c == ')' || c == '*' ||
               c == '.') {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
    } else {
      return Status::InvalidArgument(std::string("unexpected character '") + c +
                                     "' at offset " + std::to_string(start));
    }
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace p2prange
