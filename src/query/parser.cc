#include "query/parser.h"

#include <charconv>

#include "query/tokenizer.h"

namespace p2prange {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
  }
  return "?";
}

std::string SelectStatement::ToString() const {
  std::string out = "SELECT ";
  if (projections.empty()) {
    out += "*";
  } else {
    for (size_t i = 0; i < projections.size(); ++i) {
      if (i > 0) out += ", ";
      out += projections[i].ToString();
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) out += ", ";
    out += tables[i];
  }
  if (!conditions.empty()) {
    out += " WHERE ";
    for (size_t i = 0; i < conditions.size(); ++i) {
      if (i > 0) out += " AND ";
      const Condition& c = conditions[i];
      switch (c.kind) {
        case Condition::Kind::kCompare:
          out += c.lhs.ToString();
          out += " ";
          out += CompareOpName(c.op);
          out += " ";
          out += c.literal.ToString();
          break;
        case Condition::Kind::kBetween:
          out += c.lhs.ToString() + " BETWEEN " + c.literal.ToString() + " AND " +
                 c.literal_hi.ToString();
          break;
        case Condition::Kind::kJoin:
          out += c.lhs.ToString() + " = " + c.rhs.ToString();
          break;
      }
    }
  }
  return out;
}

namespace {

/// Stream of tokens with one-token lookahead.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_ == tokens_.size() - 1 ? pos_ : pos_++]; }

  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  Status Expect(const char* symbol_or_keyword) {
    const Token& t = Peek();
    if (t.IsSymbol(symbol_or_keyword) || t.IsKeyword(symbol_or_keyword)) {
      Advance();
      return Status::OK();
    }
    return Status::InvalidArgument(std::string("expected '") + symbol_or_keyword +
                                   "' at offset " + std::to_string(t.offset) +
                                   ", found '" + t.text + "'");
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<ColumnRef> ParseColumnRef(TokenCursor& cur) {
  const Token& first = cur.Peek();
  if (first.type != TokenType::kIdentifier) {
    return Status::InvalidArgument("expected column name at offset " +
                                   std::to_string(first.offset) + ", found '" +
                                   first.text + "'");
  }
  cur.Advance();
  ColumnRef ref;
  if (cur.Peek().IsSymbol(".")) {
    cur.Advance();
    const Token& col = cur.Peek();
    if (col.type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected column after '.' at offset " +
                                     std::to_string(col.offset));
    }
    ref.table = first.text;
    ref.column = col.text;
    cur.Advance();
  } else {
    ref.column = first.text;
  }
  return ref;
}

Value LiteralFromToken(const Token& t) {
  if (t.type == TokenType::kString) {
    // Date-shaped strings become dates; anything else stays a string.
    auto date = ParseDate(t.text);
    if (date.ok()) return Value(*date);
    return Value(t.text);
  }
  // Number.
  if (t.text.find('.') != std::string::npos) {
    return Value(std::stod(t.text));
  }
  int64_t v = 0;
  std::from_chars(t.text.data(), t.text.data() + t.text.size(), v);
  return Value(v);
}

Result<CompareOp> ParseCompareOp(TokenCursor& cur) {
  const Token& t = cur.Peek();
  CompareOp op;
  if (t.IsSymbol("<")) {
    op = CompareOp::kLt;
  } else if (t.IsSymbol("<=")) {
    op = CompareOp::kLe;
  } else if (t.IsSymbol(">")) {
    op = CompareOp::kGt;
  } else if (t.IsSymbol(">=")) {
    op = CompareOp::kGe;
  } else if (t.IsSymbol("=")) {
    op = CompareOp::kEq;
  } else {
    return Status::InvalidArgument("expected comparison operator at offset " +
                                   std::to_string(t.offset) + ", found '" +
                                   t.text + "'");
  }
  cur.Advance();
  return op;
}

CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
      return CompareOp::kEq;
  }
  return op;
}

Result<Condition> ParseCondition(TokenCursor& cur) {
  Condition cond;
  const Token& first = cur.Peek();
  if (first.type == TokenType::kNumber || first.type == TokenType::kString) {
    // literal OP col — normalize to col MirrorOp literal.
    const Value lit = LiteralFromToken(first);
    cur.Advance();
    ASSIGN_OR_RETURN(const CompareOp op, ParseCompareOp(cur));
    ASSIGN_OR_RETURN(cond.lhs, ParseColumnRef(cur));
    cond.kind = Condition::Kind::kCompare;
    cond.op = MirrorOp(op);
    cond.literal = lit;
    return cond;
  }

  ASSIGN_OR_RETURN(cond.lhs, ParseColumnRef(cur));
  if (cur.Peek().IsKeyword("BETWEEN")) {
    cur.Advance();
    const Token& lo = cur.Peek();
    if (lo.type != TokenType::kNumber && lo.type != TokenType::kString) {
      return Status::InvalidArgument("expected literal after BETWEEN at offset " +
                                     std::to_string(lo.offset));
    }
    cond.literal = LiteralFromToken(lo);
    cur.Advance();
    RETURN_NOT_OK(cur.Expect("AND"));
    const Token& hi = cur.Peek();
    if (hi.type != TokenType::kNumber && hi.type != TokenType::kString) {
      return Status::InvalidArgument("expected literal after AND at offset " +
                                     std::to_string(hi.offset));
    }
    cond.literal_hi = LiteralFromToken(hi);
    cur.Advance();
    cond.kind = Condition::Kind::kBetween;
    return cond;
  }

  ASSIGN_OR_RETURN(cond.op, ParseCompareOp(cur));
  const Token& rhs = cur.Peek();
  if (rhs.type == TokenType::kIdentifier) {
    if (cond.op != CompareOp::kEq) {
      return Status::InvalidArgument(
          "column-to-column comparison must be an equi-join ('='), at offset " +
          std::to_string(rhs.offset));
    }
    ASSIGN_OR_RETURN(cond.rhs, ParseColumnRef(cur));
    cond.kind = Condition::Kind::kJoin;
    return cond;
  }
  if (rhs.type != TokenType::kNumber && rhs.type != TokenType::kString) {
    return Status::InvalidArgument("expected literal or column at offset " +
                                   std::to_string(rhs.offset) + ", found '" +
                                   rhs.text + "'");
  }
  cond.literal = LiteralFromToken(rhs);
  cur.Advance();
  cond.kind = Condition::Kind::kCompare;
  return cond;
}

}  // namespace

Result<SelectStatement> ParseSelect(const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  TokenCursor cur(std::move(tokens));
  SelectStatement stmt;

  RETURN_NOT_OK(cur.Expect("SELECT"));
  if (cur.Peek().IsSymbol("*")) {
    cur.Advance();
  } else {
    for (;;) {
      ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef(cur));
      stmt.projections.push_back(std::move(ref));
      if (!cur.Peek().IsSymbol(",")) break;
      cur.Advance();
    }
  }

  RETURN_NOT_OK(cur.Expect("FROM"));
  for (;;) {
    const Token& t = cur.Peek();
    if (t.type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected table name at offset " +
                                     std::to_string(t.offset) + ", found '" +
                                     t.text + "'");
    }
    stmt.tables.push_back(t.text);
    cur.Advance();
    if (!cur.Peek().IsSymbol(",")) break;
    cur.Advance();
  }

  if (cur.Peek().IsKeyword("WHERE")) {
    cur.Advance();
    for (;;) {
      ASSIGN_OR_RETURN(Condition cond, ParseCondition(cur));
      stmt.conditions.push_back(std::move(cond));
      if (!cur.Peek().IsKeyword("AND")) break;
      cur.Advance();
    }
  }

  if (!cur.AtEnd()) {
    return Status::InvalidArgument("unexpected trailing input at offset " +
                                   std::to_string(cur.Peek().offset) + ": '" +
                                   cur.Peek().text + "'");
  }
  return stmt;
}

}  // namespace p2prange
