// Local physical execution of a logical plan.
//
// The querying peer executes the upper plan (filters not satisfied by
// the fetched partitions, equi-joins, projection) locally over the
// data it obtained from the P2P layer or the sources, exactly as in
// §2: "The located peers ... can send the data over to the requesting
// peer which can now compute the remaining query locally".
#ifndef P2PRANGE_QUERY_EXECUTOR_H_
#define P2PRANGE_QUERY_EXECUTOR_H_

#include <map>
#include <string>

#include "common/result.h"
#include "query/plan.h"
#include "rel/relation.h"

namespace p2prange {

/// \brief Executes `plan` over per-table input relations.
///
/// Inputs may be *broader* than the leaf selections (approximate
/// matches fetch superset/overlapping partitions); the executor
/// re-applies each leaf's range and equality filters, so the output
/// contains no false positives. Rows of the inputs that the leaf
/// selection would not include are simply filtered out; rows the input
/// is *missing* cannot be recovered — that is the recall the paper
/// measures.
///
/// The joined schema qualifies every column as "Table.column".
Result<Relation> ExecutePlan(const QueryPlan& plan,
                             const std::map<std::string, Relation>& inputs);

/// \brief Applies one leaf's range + equality filters to `input`.
Result<Relation> ApplyLeafFilters(const TableSelection& leaf, const Relation& input);

}  // namespace p2prange

#endif  // P2PRANGE_QUERY_EXECUTOR_H_
