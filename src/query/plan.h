// Logical query plans with selections pushed to the leaves.
//
// BuildPlan turns a parsed statement into per-table leaf selections
// (the data partitions the P2P layer will try to locate, per §2) plus
// the equi-join edges and the projection list.
#ifndef P2PRANGE_QUERY_PLAN_H_
#define P2PRANGE_QUERY_PLAN_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/ast.h"
#include "rel/catalog.h"

namespace p2prange {

/// \brief The range selection of one leaf, in attribute-domain
/// ordinals (already clamped to the declared domain).
struct RangeSelection {
  std::string attribute;
  int64_t lo = 0;
  int64_t hi = 0;

  bool operator==(const RangeSelection&) const = default;
};

/// \brief A non-range (equality) filter applied locally after fetch.
struct EqFilter {
  std::string attribute;
  Value value;

  bool operator==(const EqFilter&) const = default;
};

/// \brief One leaf of the plan: scan of `table` filtered by an
/// optional range selection plus equality filters.
///
/// With PlannerOptions::allow_multi_attribute, further range
/// selections on *other* ordinal attributes of the same relation land
/// in `secondary_ranges` (the paper's §6 future-work extension); the
/// P2P layer may resolve the leaf through the cache of whichever
/// attribute matches best and apply the rest as local filters.
struct TableSelection {
  std::string table;
  std::optional<RangeSelection> range;
  std::vector<RangeSelection> secondary_ranges;
  std::vector<EqFilter> filters;

  /// All range selections, primary first.
  std::vector<RangeSelection> AllRanges() const {
    std::vector<RangeSelection> out;
    if (range) out.push_back(*range);
    out.insert(out.end(), secondary_ranges.begin(), secondary_ranges.end());
    return out;
  }
};

/// \brief An equi-join edge between two tables.
struct JoinEdge {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
};

/// \brief A validated logical plan.
struct QueryPlan {
  std::vector<TableSelection> leaves;     ///< one per FROM table, in order
  std::vector<JoinEdge> joins;
  std::vector<ColumnRef> projections;     ///< fully qualified; empty = *

  const TableSelection* LeafFor(const std::string& table) const;

  std::string ToString() const;
};

/// \brief Planner knobs.
struct PlannerOptions {
  /// The paper's base model (§2) allows one range-selected attribute
  /// per relation; enabling this lifts the restriction (§6 extension)
  /// and routes extra attributes into TableSelection::secondary_ranges.
  bool allow_multi_attribute = false;
};

/// \brief Validates names/types against the catalog, resolves
/// unqualified columns, merges comparison conjuncts into per-table
/// range selections (pushdown), and (by default) enforces the paper's
/// restriction of at most one range-selected attribute per relation.
///
/// One-sided predicates (e.g. age > 40) are completed with the
/// attribute's declared domain bound. Equality on a non-ordinal
/// attribute becomes an EqFilter; equality on an ordinal attribute
/// becomes the degenerate range [v, v].
Result<QueryPlan> BuildPlan(const SelectStatement& stmt, const Catalog& catalog,
                            const PlannerOptions& options = PlannerOptions{});

}  // namespace p2prange

#endif  // P2PRANGE_QUERY_PLAN_H_
