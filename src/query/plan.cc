#include "query/plan.h"

#include <algorithm>
#include <map>
#include <set>

namespace p2prange {

const TableSelection* QueryPlan::LeafFor(const std::string& table) const {
  for (const TableSelection& leaf : leaves) {
    if (leaf.table == table) return &leaf;
  }
  return nullptr;
}

std::string QueryPlan::ToString() const {
  std::string out;
  for (const TableSelection& leaf : leaves) {
    out += "scan " + leaf.table;
    for (const RangeSelection& sel : leaf.AllRanges()) {
      out += " [" + sel.attribute + " in " + std::to_string(sel.lo) + ".." +
             std::to_string(sel.hi) + "]";
    }
    for (const EqFilter& f : leaf.filters) {
      out += " {" + f.attribute + " = " + f.value.ToString() + "}";
    }
    out += "\n";
  }
  for (const JoinEdge& j : joins) {
    out += "join " + j.left_table + "." + j.left_column + " = " + j.right_table +
           "." + j.right_column + "\n";
  }
  if (!projections.empty()) {
    out += "project";
    for (const ColumnRef& p : projections) out += " " + p.ToString();
    out += "\n";
  }
  return out;
}

namespace {

/// Resolves a column reference to its owning table (validating that a
/// qualified table is in the FROM list and actually has the column;
/// that an unqualified column is unambiguous).
Result<ColumnRef> Resolve(const ColumnRef& ref,
                          const std::vector<std::string>& tables,
                          const Catalog& catalog) {
  if (!ref.table.empty()) {
    if (std::find(tables.begin(), tables.end(), ref.table) == tables.end()) {
      return Status::InvalidArgument("table '" + ref.table +
                                     "' is not in the FROM clause");
    }
    ASSIGN_OR_RETURN(const Schema schema, catalog.GetSchema(ref.table));
    if (!schema.HasField(ref.column)) {
      return Status::InvalidArgument("relation '" + ref.table +
                                     "' has no attribute '" + ref.column + "'");
    }
    return ref;
  }
  std::string owner;
  for (const std::string& t : tables) {
    ASSIGN_OR_RETURN(const Schema schema, catalog.GetSchema(t));
    if (schema.HasField(ref.column)) {
      if (!owner.empty()) {
        return Status::InvalidArgument("column '" + ref.column +
                                       "' is ambiguous between '" + owner +
                                       "' and '" + t + "'");
      }
      owner = t;
    }
  }
  if (owner.empty()) {
    return Status::InvalidArgument("column '" + ref.column +
                                   "' not found in any FROM table");
  }
  return ColumnRef{owner, ref.column};
}

/// Accumulated bounds for one table's ordinal attribute.
struct Bounds {
  std::string attribute;
  int64_t lo;
  int64_t hi;
};

Status TightenBounds(Bounds* b, CompareOp op, int64_t v) {
  switch (op) {
    case CompareOp::kLt:
      b->hi = std::min(b->hi, v - 1);
      break;
    case CompareOp::kLe:
      b->hi = std::min(b->hi, v);
      break;
    case CompareOp::kGt:
      b->lo = std::max(b->lo, v + 1);
      break;
    case CompareOp::kGe:
      b->lo = std::max(b->lo, v);
      break;
    case CompareOp::kEq:
      b->lo = std::max(b->lo, v);
      b->hi = std::min(b->hi, v);
      break;
  }
  if (b->lo > b->hi) {
    return Status::InvalidArgument("selection on '" + b->attribute +
                                   "' is empty (contradictory bounds)");
  }
  return Status::OK();
}

/// The literal as an ordinal compatible with the field type.
Result<int64_t> LiteralOrdinal(const Field& field, const Value& literal) {
  if (field.type == ValueType::kInt64 && literal.is_int()) {
    return literal.AsInt();
  }
  if (field.type == ValueType::kDate && literal.is_date()) {
    return static_cast<int64_t>(literal.AsDate().days);
  }
  return Status::InvalidArgument("literal '" + literal.ToString() +
                                 "' is not comparable with " +
                                 ValueTypeName(field.type) + " attribute '" +
                                 field.name + "'");
}

}  // namespace

Result<QueryPlan> BuildPlan(const SelectStatement& stmt, const Catalog& catalog,
                            const PlannerOptions& options) {
  if (stmt.tables.empty()) {
    return Status::InvalidArgument("FROM clause is empty");
  }
  for (const std::string& t : stmt.tables) {
    if (!catalog.HasRelation(t)) {
      return Status::NotFound("relation '" + t + "' is not in the global schema");
    }
  }
  if (std::set<std::string>(stmt.tables.begin(), stmt.tables.end()).size() !=
      stmt.tables.size()) {
    return Status::NotImplemented("self-joins (repeated FROM tables)");
  }

  QueryPlan plan;
  // table -> accumulated bounds, one entry per range-selected
  // attribute, in first-mention order.
  std::map<std::string, std::vector<Bounds>> range_bounds;
  std::map<std::string, std::vector<EqFilter>> eq_filters;

  for (const Condition& cond : stmt.conditions) {
    ASSIGN_OR_RETURN(const ColumnRef lhs, Resolve(cond.lhs, stmt.tables, catalog));
    ASSIGN_OR_RETURN(const Schema schema, catalog.GetSchema(lhs.table));
    ASSIGN_OR_RETURN(const size_t idx, schema.FieldIndex(lhs.column));
    const Field& field = schema.field(idx);

    switch (cond.kind) {
      case Condition::Kind::kJoin: {
        ASSIGN_OR_RETURN(const ColumnRef rhs, Resolve(cond.rhs, stmt.tables, catalog));
        if (lhs.table == rhs.table) {
          return Status::NotImplemented("intra-table column equality");
        }
        ASSIGN_OR_RETURN(const Schema rschema, catalog.GetSchema(rhs.table));
        ASSIGN_OR_RETURN(const size_t ridx, rschema.FieldIndex(rhs.column));
        if (rschema.field(ridx).type != field.type) {
          return Status::InvalidArgument("join columns " + lhs.ToString() + " and " +
                                         rhs.ToString() + " have different types");
        }
        plan.joins.push_back(JoinEdge{lhs.table, lhs.column, rhs.table, rhs.column});
        break;
      }
      case Condition::Kind::kCompare:
      case Condition::Kind::kBetween: {
        const bool ordinal =
            field.type == ValueType::kInt64 || field.type == ValueType::kDate;
        if (!ordinal) {
          if (cond.kind == Condition::Kind::kBetween ||
              (cond.kind == Condition::Kind::kCompare && cond.op != CompareOp::kEq)) {
            return Status::InvalidArgument("attribute '" + lhs.ToString() +
                                           "' of type " + ValueTypeName(field.type) +
                                           " does not support range predicates");
          }
          if (cond.literal.type() != field.type) {
            return Status::InvalidArgument("literal '" + cond.literal.ToString() +
                                           "' does not match type of " +
                                           lhs.ToString());
          }
          eq_filters[lhs.table].push_back(EqFilter{lhs.column, cond.literal});
          break;
        }
        // Ordinal attribute: fold into this table's bounds for that
        // attribute.
        auto& bounds_vec = range_bounds[lhs.table];
        Bounds* bounds = nullptr;
        for (Bounds& b : bounds_vec) {
          if (b.attribute == lhs.column) {
            bounds = &b;
            break;
          }
        }
        if (bounds == nullptr) {
          if (!bounds_vec.empty() && !options.allow_multi_attribute) {
            return Status::InvalidArgument(
                "relation '" + lhs.table + "' has range selections on both '" +
                bounds_vec.front().attribute + "' and '" + lhs.column +
                "'; the paper's model allows one range attribute per relation "
                "(enable PlannerOptions::allow_multi_attribute to lift this)");
          }
          if (!field.domain) {
            return Status::InvalidArgument("attribute '" + lhs.ToString() +
                                           "' has no declared ordered domain");
          }
          bounds_vec.push_back(
              Bounds{lhs.column, field.domain->lo, field.domain->hi});
          bounds = &bounds_vec.back();
        }
        if (cond.kind == Condition::Kind::kBetween) {
          ASSIGN_OR_RETURN(const int64_t lo, LiteralOrdinal(field, cond.literal));
          ASSIGN_OR_RETURN(const int64_t hi, LiteralOrdinal(field, cond.literal_hi));
          RETURN_NOT_OK(TightenBounds(bounds, CompareOp::kGe, lo));
          RETURN_NOT_OK(TightenBounds(bounds, CompareOp::kLe, hi));
        } else {
          ASSIGN_OR_RETURN(const int64_t v, LiteralOrdinal(field, cond.literal));
          RETURN_NOT_OK(TightenBounds(bounds, cond.op, v));
        }
        break;
      }
    }
  }

  for (const std::string& t : stmt.tables) {
    TableSelection leaf;
    leaf.table = t;
    auto rit = range_bounds.find(t);
    if (rit != range_bounds.end()) {
      const std::vector<Bounds>& bounds = rit->second;
      leaf.range = RangeSelection{bounds[0].attribute, bounds[0].lo, bounds[0].hi};
      for (size_t i = 1; i < bounds.size(); ++i) {
        leaf.secondary_ranges.push_back(
            RangeSelection{bounds[i].attribute, bounds[i].lo, bounds[i].hi});
      }
    }
    auto fit = eq_filters.find(t);
    if (fit != eq_filters.end()) leaf.filters = fit->second;
    plan.leaves.push_back(std::move(leaf));
  }

  for (const ColumnRef& p : stmt.projections) {
    ASSIGN_OR_RETURN(ColumnRef resolved, Resolve(p, stmt.tables, catalog));
    plan.projections.push_back(std::move(resolved));
  }
  return plan;
}

}  // namespace p2prange
