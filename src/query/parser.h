// Recursive-descent parser for the restricted SQL dialect (see ast.h).
#ifndef P2PRANGE_QUERY_PARSER_H_
#define P2PRANGE_QUERY_PARSER_H_

#include <string>

#include "common/result.h"
#include "query/ast.h"

namespace p2prange {

/// \brief Parses one SELECT statement. String literals that look like
/// dates ('YYYY-MM-DD') become Date values; bare numbers with a '.'
/// become doubles, otherwise int64.
Result<SelectStatement> ParseSelect(const std::string& sql);

}  // namespace p2prange

#endif  // P2PRANGE_QUERY_PARSER_H_
