// Query-range workload generators.
//
// The §5 evaluation draws 10,000 ranges uniformly at random over the
// integers [0, 1000] (both endpoints uniform, ordered), which yields
// ~0.2% repeated ranges. Fixed-size ranges drive the Figure 5 timing
// sweep. Zipf-centered ranges are provided as a skewed extension for
// ablations.
#ifndef P2PRANGE_WORKLOAD_RANGE_WORKLOAD_H_
#define P2PRANGE_WORKLOAD_RANGE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "hash/range.h"

namespace p2prange {

/// \brief Uniform random ranges: lo and hi drawn uniformly over the
/// domain and swapped into order (the paper's workload).
class UniformRangeGenerator {
 public:
  UniformRangeGenerator(uint32_t domain_lo, uint32_t domain_hi, uint64_t seed)
      : lo_(domain_lo), hi_(domain_hi), rng_(seed) {}

  Range Next();

  uint32_t domain_lo() const { return lo_; }
  uint32_t domain_hi() const { return hi_; }

 private:
  uint32_t lo_;
  uint32_t hi_;
  Rng rng_;
};

/// \brief Ranges of exactly `size` elements with a uniform start (the
/// Figure 5 sweep).
class FixedSizeRangeGenerator {
 public:
  /// `size` must be >= 1 and fit in the domain.
  FixedSizeRangeGenerator(uint32_t domain_lo, uint32_t domain_hi, uint32_t size,
                          uint64_t seed);

  Range Next();

 private:
  uint32_t lo_;
  uint32_t max_start_;
  uint32_t size_;
  Rng rng_;
};

/// \brief Skewed workload: range centers follow a Zipf distribution
/// over the domain (hot regions queried often), widths geometric with
/// the given mean.
class ZipfRangeGenerator {
 public:
  ZipfRangeGenerator(uint32_t domain_lo, uint32_t domain_hi, double theta,
                     double mean_width, uint64_t seed);

  Range Next();

 private:
  uint32_t lo_;
  uint32_t hi_;
  double mean_width_;
  ZipfGenerator zipf_;
  Rng rng_;
};

/// \brief Flash-crowd workload: a fixed fraction of queries draws both
/// endpoints inside a small hot window; the rest are domain-uniform.
/// Models the hotspot column of the scenario-matrix grid.
class HotspotRangeGenerator {
 public:
  /// `hot_fraction` in [0, 1]; the hot window must lie in the domain.
  HotspotRangeGenerator(uint32_t domain_lo, uint32_t domain_hi, uint32_t hot_lo,
                        uint32_t hot_hi, double hot_fraction, uint64_t seed);

  Range Next();

 private:
  uint32_t lo_;
  uint32_t hi_;
  uint32_t hot_lo_;
  uint32_t hot_hi_;
  double hot_fraction_;
  Rng rng_;
};

/// \brief Draws `n` ranges from any generator.
template <typename Generator>
std::vector<Range> DrawRanges(Generator& gen, size_t n) {
  std::vector<Range> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(gen.Next());
  return out;
}

/// \brief Fraction of ranges in `ranges` that repeat an earlier range
/// exactly (the paper reports 0.2% for its workload).
double RepetitionRate(const std::vector<Range>& ranges);

}  // namespace p2prange

#endif  // P2PRANGE_WORKLOAD_RANGE_WORKLOAD_H_
