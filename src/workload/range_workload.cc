#include "workload/range_workload.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace p2prange {

Range UniformRangeGenerator::Next() {
  uint32_t a = static_cast<uint32_t>(rng_.NextInRange(lo_, hi_));
  uint32_t b = static_cast<uint32_t>(rng_.NextInRange(lo_, hi_));
  if (a > b) std::swap(a, b);
  return Range(a, b);
}

FixedSizeRangeGenerator::FixedSizeRangeGenerator(uint32_t domain_lo,
                                                 uint32_t domain_hi, uint32_t size,
                                                 uint64_t seed)
    : lo_(domain_lo), size_(size), rng_(seed) {
  CHECK_GE(size, 1u);
  CHECK_LE(domain_lo, domain_hi);
  CHECK_LE(static_cast<uint64_t>(size),
           static_cast<uint64_t>(domain_hi) - domain_lo + 1)
      << "range size exceeds the domain";
  max_start_ = domain_hi - (size - 1);
}

Range FixedSizeRangeGenerator::Next() {
  const uint32_t start = static_cast<uint32_t>(rng_.NextInRange(lo_, max_start_));
  return Range(start, start + size_ - 1);
}

ZipfRangeGenerator::ZipfRangeGenerator(uint32_t domain_lo, uint32_t domain_hi,
                                       double theta, double mean_width, uint64_t seed)
    : lo_(domain_lo),
      hi_(domain_hi),
      mean_width_(mean_width),
      zipf_(static_cast<uint64_t>(domain_hi) - domain_lo + 1, theta),
      rng_(seed) {
  CHECK_GE(mean_width, 1.0);
}

Range ZipfRangeGenerator::Next() {
  const uint32_t center = lo_ + static_cast<uint32_t>(zipf_.Next(rng_));
  // Geometric width with the requested mean (at least 1).
  const double u = rng_.NextDouble();
  const uint64_t width =
      1 + static_cast<uint64_t>(-std::log(1.0 - u) * (mean_width_ - 1.0) + 0.5);
  const uint64_t half = width / 2;
  const uint32_t start =
      center >= lo_ + half ? static_cast<uint32_t>(center - half) : lo_;
  uint64_t end64 = static_cast<uint64_t>(start) + width - 1;
  const uint32_t end = end64 > hi_ ? hi_ : static_cast<uint32_t>(end64);
  return Range(std::min(start, end), std::max(start, end));
}

HotspotRangeGenerator::HotspotRangeGenerator(uint32_t domain_lo,
                                             uint32_t domain_hi, uint32_t hot_lo,
                                             uint32_t hot_hi, double hot_fraction,
                                             uint64_t seed)
    : lo_(domain_lo),
      hi_(domain_hi),
      hot_lo_(hot_lo),
      hot_hi_(hot_hi),
      hot_fraction_(hot_fraction),
      rng_(seed) {
  CHECK_LE(domain_lo, domain_hi);
  CHECK_LE(hot_lo, hot_hi);
  CHECK_GE(hot_lo, domain_lo);
  CHECK_LE(hot_hi, domain_hi);
  CHECK_GE(hot_fraction, 0.0);
  CHECK_LE(hot_fraction, 1.0);
}

Range HotspotRangeGenerator::Next() {
  const bool hot = rng_.NextDouble() < hot_fraction_;
  const uint32_t window_lo = hot ? hot_lo_ : lo_;
  const uint32_t window_hi = hot ? hot_hi_ : hi_;
  uint32_t a = static_cast<uint32_t>(rng_.NextInRange(window_lo, window_hi));
  uint32_t b = static_cast<uint32_t>(rng_.NextInRange(window_lo, window_hi));
  if (a > b) std::swap(a, b);
  return Range(a, b);
}

double RepetitionRate(const std::vector<Range>& ranges) {
  if (ranges.empty()) return 0.0;
  std::unordered_set<uint64_t> seen;
  seen.reserve(ranges.size());
  size_t repeats = 0;
  for (const Range& r : ranges) {
    const uint64_t key = (static_cast<uint64_t>(r.lo()) << 32) | r.hi();
    if (!seen.insert(key).second) ++repeats;
  }
  return static_cast<double>(repeats) / static_cast<double>(ranges.size());
}

}  // namespace p2prange
