// Identity of a cached horizontal partition.
//
// A partition is the set of tuples of one relation selected by a range
// over one attribute (§2's "data partition"); its identity is the
// (relation, attribute, range) triple. The bytes of the partition live
// wherever a peer materialized them; descriptors of the partition are
// what the DHT stores.
#ifndef P2PRANGE_STORE_PARTITION_KEY_H_
#define P2PRANGE_STORE_PARTITION_KEY_H_

#include <cstdint>
#include <string>

#include "hash/range.h"
#include "net/address.h"

namespace p2prange {

/// \brief (relation, attribute, range): the identity of a partition.
struct PartitionKey {
  std::string relation;
  std::string attribute;
  Range range;

  bool operator==(const PartitionKey&) const = default;

  /// True if the other key selects over the same relation/attribute
  /// (only then are the ranges comparable).
  bool SameColumn(const PartitionKey& other) const {
    return relation == other.relation && attribute == other.attribute;
  }

  /// "relation.attribute[lo, hi]"
  std::string ToString() const {
    return relation + "." + attribute + range.ToString();
  }
};

struct PartitionKeyHash {
  size_t operator()(const PartitionKey& k) const {
    size_t h = std::hash<std::string>()(k.relation);
    h = h * 1000003 ^ std::hash<std::string>()(k.attribute);
    h = h * 1000003 ^ std::hash<uint64_t>()(
            (static_cast<uint64_t>(k.range.lo()) << 32) | k.range.hi());
    return h;
  }
};

/// \brief What the DHT stores in a bucket: which peer holds the bytes
/// of which partition.
struct PartitionDescriptor {
  PartitionKey key;
  NetAddress holder;  ///< peer that materialized the tuples

  bool operator==(const PartitionDescriptor&) const = default;
};

}  // namespace p2prange

#endif  // P2PRANGE_STORE_PARTITION_KEY_H_
