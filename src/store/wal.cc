#include "store/wal.h"

#include "common/crc32c.h"

namespace p2prange {
namespace store {

namespace {

void PutFixed32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

const char* WalOpName(WalRecord::Op op) {
  switch (op) {
    case WalRecord::Op::kInsert:
      return "insert";
    case WalRecord::Op::kErase:
      return "erase";
    case WalRecord::Op::kEvict:
      return "evict";
  }
  return "unknown";
}

void EncodeWalRecord(const WalRecord& rec, wire::Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(rec.op));
  enc->PutVarint(rec.seq);
  enc->PutVarint(rec.bucket);
  wire::EncodePartitionDescriptor(rec.descriptor, enc);
}

Result<WalRecord> DecodeWalRecord(wire::Decoder* dec) {
  WalRecord rec;
  ASSIGN_OR_RETURN(const uint8_t op, dec->U8());
  if (op > static_cast<uint8_t>(WalRecord::Op::kEvict)) {
    return Status::InvalidArgument("unknown wal op " + std::to_string(op));
  }
  rec.op = static_cast<WalRecord::Op>(op);
  ASSIGN_OR_RETURN(rec.seq, dec->Varint());
  ASSIGN_OR_RETURN(const uint64_t bucket, dec->Varint());
  if (bucket > 0xFFFFFFFFull) {
    return Status::InvalidArgument("wal bucket id exceeds the ring width");
  }
  rec.bucket = static_cast<chord::ChordId>(bucket);
  ASSIGN_OR_RETURN(rec.descriptor, wire::DecodePartitionDescriptor(dec));
  return rec;
}

size_t WriteAheadLog::Append(const WalRecord& rec) {
  wire::Encoder enc;
  EncodeWalRecord(rec, &enc);
  const std::string payload = enc.Take();
  PutFixed32(&image_, static_cast<uint32_t>(payload.size()));
  PutFixed32(&image_, Crc32cMask(Crc32c(payload)));
  image_.append(payload);
  ++appended_;
  return kFrameHeaderBytes + payload.size();
}

WriteAheadLog::ReplayResult WriteAheadLog::Replay(std::string_view image) {
  ReplayResult out;
  size_t pos = 0;
  while (pos < image.size()) {
    if (image.size() - pos < kFrameHeaderBytes) {
      out.torn_tail = true;  // header cut short mid-append
      break;
    }
    const uint32_t len = GetFixed32(image.data() + pos);
    const uint32_t stored_crc =
        Crc32cUnmask(GetFixed32(image.data() + pos + 4));
    if (len > image.size() - pos - kFrameHeaderBytes) {
      // Payload extends past the end of the image: either the append
      // was torn mid-payload, or the length field itself is damaged.
      // Both are indistinguishable from a torn tail at this point and
      // are treated as one — nothing past `pos` is trusted.
      out.torn_tail = true;
      break;
    }
    const std::string_view payload = image.substr(pos + kFrameHeaderBytes, len);
    if (Crc32c(payload) != stored_crc) {
      out.corrupted = true;  // complete frame, damaged bytes: bit rot
      break;
    }
    wire::Decoder dec(payload);
    auto rec = DecodeWalRecord(&dec);
    if (!rec.ok() || !dec.AtEnd()) {
      // CRC-consistent but undecodable: written by a damaged encoder
      // or a CRC collision. Treated as corruption, never replayed.
      out.corrupted = true;
      break;
    }
    out.records.push_back(std::move(*rec));
    pos += kFrameHeaderBytes + len;
    out.valid_bytes = pos;
  }
  return out;
}

}  // namespace store
}  // namespace p2prange
