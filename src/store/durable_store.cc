#include "store/durable_store.h"

namespace p2prange {
namespace store {

DurableDescriptorStore::DurableDescriptorStore(size_t store_capacity,
                                               DurabilityConfig config)
    : capacity_(store_capacity), config_(config), store_(store_capacity) {
  AttachEvictionListener();
}

void DurableDescriptorStore::AttachEvictionListener() {
  store_.set_eviction_listener(
      [this](chord::ChordId bucket, const PartitionDescriptor& victim) {
        // An insert overflowed capacity; the eviction is part of that
        // insert's effect and must replay in the same place. Suppressed
        // during replay: the re-applied insert re-triggers it there.
        if (config_.enabled && !replaying_) {
          LogRecord(WalRecord::Op::kEvict, bucket, victim);
        }
      });
}

void DurableDescriptorStore::LogRecord(WalRecord::Op op, chord::ChordId bucket,
                                       const PartitionDescriptor& descriptor) {
  WalRecord rec;
  rec.op = op;
  rec.seq = ++wal_seq_;
  rec.bucket = bucket;
  rec.descriptor = descriptor;
  wal_.Append(rec);
  ++records_since_checkpoint_;
}

bool DurableDescriptorStore::Insert(chord::ChordId id,
                                    const PartitionDescriptor& descriptor) {
  // Write-ahead: the record hits the log before the store mutates, so
  // a crash after this line replays to the post-insert state and a
  // crash before it (a torn append) replays to the pre-insert state.
  if (config_.enabled) LogRecord(WalRecord::Op::kInsert, id, descriptor);
  const bool fresh = store_.Insert(id, descriptor);
  MaybeCheckpoint();
  return fresh;
}

size_t DurableDescriptorStore::EraseStale(const PartitionKey& key,
                                          const NetAddress& holder) {
  if (config_.enabled) {
    PartitionDescriptor d;
    d.key = key;
    d.holder = holder;
    LogRecord(WalRecord::Op::kErase, /*bucket=*/0, d);
  }
  const size_t removed = store_.EraseStale(key, holder);
  MaybeCheckpoint();
  return removed;
}

void DurableDescriptorStore::MaybeCheckpoint() {
  if (!config_.enabled || config_.checkpoint_every == 0) return;
  if (records_since_checkpoint_ >= config_.checkpoint_every) ForceCheckpoint();
}

void DurableDescriptorStore::ForceCheckpoint() {
  if (!config_.enabled) return;
  SnapshotData snap;
  snap.wal_seq = wal_seq_;
  snap.entries = store_.EntriesOldestFirst();
  snaps_.Write(snap);
  ++checkpoints_;
  // Crash window: the snapshot is durable but the log still holds the
  // records it covers. Recovery skips them by sequence number; the
  // hook lets crash harnesses capture exactly this state.
  if (checkpoint_hook_) checkpoint_hook_();
  wal_.Clear();
  records_since_checkpoint_ = 0;
}

void DurableDescriptorStore::Crash() {
  store_ = BucketStore(capacity_);
  AttachEvictionListener();
}

RecoveryReport DurableDescriptorStore::Recover() {
  RecoveryReport report;
  store_ = BucketStore(capacity_);
  AttachEvictionListener();
  records_since_checkpoint_ = 0;
  if (!config_.enabled) {
    // Nothing was ever persisted; an empty store is the honest result.
    wal_.Clear();
    return report;
  }

  replaying_ = true;
  const SnapshotStore::LoadResult snap = snaps_.LoadLatestValid();
  report.snapshot_fallback = snap.slot_corrupt;
  uint64_t applied_seq = 0;
  if (snap.found) {
    applied_seq = snap.data.wal_seq;
    report.snapshot_entries = snap.data.entries.size();
    for (const auto& [bucket, descriptor] : snap.data.entries) {
      store_.Insert(bucket, descriptor);
    }
  }

  const WriteAheadLog::ReplayResult replay = WriteAheadLog::Replay(wal_.image());
  report.torn_tail = replay.torn_tail;
  report.wal_corrupted = replay.corrupted;
  if (!replay.corrupted) {
    for (const WalRecord& rec : replay.records) {
      if (rec.seq <= applied_seq) continue;  // already in the snapshot
      if (rec.seq != applied_seq + 1) {
        // The log starts past the snapshot it would have to extend —
        // the bridging records were truncated at a newer checkpoint
        // whose snapshot slot we could not load. Replaying across the
        // gap would fabricate a state that never existed.
        report.wal_gap = true;
        break;
      }
      switch (rec.op) {
        case WalRecord::Op::kInsert:
          store_.Insert(rec.bucket, rec.descriptor);
          break;
        case WalRecord::Op::kErase:
          store_.EraseStale(rec.descriptor.key, rec.descriptor.holder);
          break;
        case WalRecord::Op::kEvict:
          // Usually a no-op: replaying the triggering insert already
          // re-evicted it. Kept for logs whose capacity context differs.
          store_.EraseOne(rec.bucket, rec.descriptor.key);
          break;
      }
      ++report.wal_records_replayed;
      applied_seq = rec.seq;
    }
  }
  replaying_ = false;

  // Future records must order after everything this recovery trusted.
  wal_seq_ = applied_seq;
  report.descriptors_restored = store_.num_descriptors();
  // Re-establish a clean baseline so the next crash replays from here
  // instead of re-walking (or re-trusting) the damaged log.
  ForceCheckpoint();
  return report;
}

}  // namespace store
}  // namespace p2prange
