#include "store/bucket_store.h"

#include <algorithm>

#include "common/logging.h"

namespace p2prange {

const char* MatchCriterionName(MatchCriterion c) {
  switch (c) {
    case MatchCriterion::kJaccard:
      return "jaccard";
    case MatchCriterion::kContainment:
      return "containment";
  }
  return "unknown";
}

double BucketStore::Score(const Range& query, const Range& stored,
                          MatchCriterion criterion) {
  switch (criterion) {
    case MatchCriterion::kJaccard:
      return query.Jaccard(stored);
    case MatchCriterion::kContainment:
      return query.ContainmentIn(stored);
  }
  return 0.0;
}

bool BucketStore::Insert(chord::ChordId id, const PartitionDescriptor& descriptor) {
  auto& bucket = buckets_[id];
  for (auto it : bucket) {
    if (it->descriptor.key == descriptor.key) {
      // Refresh: move to the front of the recency list, adopt the
      // (possibly new) holder.
      it->descriptor.holder = descriptor.holder;
      recency_.splice(recency_.begin(), recency_, it);
      return false;
    }
  }
  recency_.push_front(Entry{id, descriptor});
  bucket.push_back(recency_.begin());
  index_.Insert(descriptor);
  ++key_refs_[descriptor.key];
  EvictIfNeeded();
  return true;
}

void BucketStore::DropIndexReference(const PartitionKey& key) {
  auto it = key_refs_.find(key);
  DCHECK(it != key_refs_.end());
  if (it == key_refs_.end()) return;
  if (--it->second == 0) {
    key_refs_.erase(it);
    index_.Erase(key);
  }
}

void BucketStore::EvictIfNeeded() {
  if (max_descriptors_ == 0) return;
  while (recency_.size() > max_descriptors_) {
    const Entry& victim = recency_.back();
    if (eviction_listener_) eviction_listener_(victim.bucket, victim.descriptor);
    auto bucket_it = buckets_.find(victim.bucket);
    DCHECK(bucket_it != buckets_.end());
    auto& vec = bucket_it->second;
    auto last = std::prev(recency_.end());
    std::erase_if(vec, [&](const RecencyList::iterator& it) { return it == last; });
    if (vec.empty()) buckets_.erase(bucket_it);
    DropIndexReference(victim.descriptor.key);
    recency_.pop_back();
    ++evictions_;
  }
}

size_t BucketStore::EraseStale(const PartitionKey& key, const NetAddress& holder) {
  size_t removed = 0;
  for (auto it = recency_.begin(); it != recency_.end();) {
    if (it->descriptor.key != key || !(it->descriptor.holder == holder)) {
      ++it;
      continue;
    }
    auto bucket_it = buckets_.find(it->bucket);
    DCHECK(bucket_it != buckets_.end());
    if (bucket_it != buckets_.end()) {
      auto& vec = bucket_it->second;
      std::erase_if(vec, [&](const RecencyList::iterator& e) { return e == it; });
      if (vec.empty()) buckets_.erase(bucket_it);
    }
    DropIndexReference(it->descriptor.key);
    it = recency_.erase(it);
    ++removed;
  }
  return removed;
}

std::optional<MatchCandidate> BucketStore::BestMatch(chord::ChordId id,
                                                     const PartitionKey& query,
                                                     MatchCriterion criterion) const {
  auto it = buckets_.find(id);
  if (it == buckets_.end()) return std::nullopt;
  std::optional<MatchCandidate> best;
  for (const auto& entry_it : it->second) {
    const PartitionDescriptor& d = entry_it->descriptor;
    if (!d.key.SameColumn(query)) continue;
    const double score = Score(query.range, d.key.range, criterion);
    if (!best || score > best->similarity) {
      best = MatchCandidate{d, score, d.key.range == query.range};
    }
  }
  return best;
}

std::optional<MatchCandidate> BucketStore::BestMatchAnywhere(
    const PartitionKey& query, MatchCriterion criterion) const {
  // Only overlapping ranges can score above zero under either
  // criterion, so the interval index enumerates exactly the candidates
  // that matter in O(log n + k).
  std::optional<MatchCandidate> best;
  index_.ForEachOverlapping(query, [&](const PartitionDescriptor& d) {
    const double score = Score(query.range, d.key.range, criterion);
    if (!best || score > best->similarity) {
      best = MatchCandidate{d, score, d.key.range == query.range};
    }
  });
  if (!best) {
    // Zero-similarity fallback: the §4 protocol still reports the best
    // (here: any) same-column partition when nothing overlaps.
    const PartitionDescriptor* any = index_.AnyOfColumn(query);
    if (any != nullptr) best = MatchCandidate{*any, 0.0, false};
  }
  return best;
}

std::vector<MatchCandidate> BucketStore::OverlappingCandidates(
    chord::ChordId id, const PartitionKey& query, MatchCriterion criterion) const {
  std::vector<MatchCandidate> out;
  auto it = buckets_.find(id);
  if (it == buckets_.end()) return out;
  for (const auto& entry_it : it->second) {
    const PartitionDescriptor& d = entry_it->descriptor;
    if (!d.key.SameColumn(query)) continue;
    if (!query.range.Overlaps(d.key.range)) continue;
    out.push_back(MatchCandidate{d, Score(query.range, d.key.range, criterion),
                                 d.key.range == query.range});
  }
  return out;
}

bool BucketStore::EraseOne(chord::ChordId id, const PartitionKey& key) {
  auto bucket_it = buckets_.find(id);
  if (bucket_it == buckets_.end()) return false;
  auto& vec = bucket_it->second;
  for (size_t i = 0; i < vec.size(); ++i) {
    RecencyList::iterator entry_it = vec[i];
    if (!(entry_it->descriptor.key == key)) continue;
    vec.erase(vec.begin() + static_cast<ptrdiff_t>(i));
    if (vec.empty()) buckets_.erase(bucket_it);
    DropIndexReference(entry_it->descriptor.key);
    recency_.erase(entry_it);
    return true;
  }
  return false;
}

std::vector<std::pair<chord::ChordId, PartitionDescriptor>>
BucketStore::EntriesOldestFirst() const {
  std::vector<std::pair<chord::ChordId, PartitionDescriptor>> out;
  out.reserve(recency_.size());
  for (auto it = recency_.rbegin(); it != recency_.rend(); ++it) {
    out.emplace_back(it->bucket, it->descriptor);
  }
  return out;
}

bool BucketStore::ContainsExact(chord::ChordId id, const PartitionKey& key) const {
  auto it = buckets_.find(id);
  if (it == buckets_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [&](const RecencyList::iterator& e) {
                       return e->descriptor.key == key;
                     });
}

std::vector<PartitionDescriptor> BucketStore::BucketContents(chord::ChordId id) const {
  std::vector<PartitionDescriptor> out;
  auto it = buckets_.find(id);
  if (it == buckets_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& entry_it : it->second) out.push_back(entry_it->descriptor);
  return out;
}

}  // namespace p2prange
