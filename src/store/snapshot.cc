#include "store/snapshot.h"

#include "common/crc32c.h"
#include "wire/serde.h"

namespace p2prange {
namespace store {

namespace {

void PutFixed32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

void SnapshotStore::Write(const SnapshotData& snap) {
  wire::Encoder enc;
  enc.PutVarint(snap.wal_seq);
  enc.PutVarint(snap.entries.size());
  for (const auto& [bucket, descriptor] : snap.entries) {
    enc.PutVarint(bucket);
    wire::EncodePartitionDescriptor(descriptor, &enc);
  }
  const std::string payload = enc.Take();
  std::string image;
  image.reserve(8 + payload.size());
  PutFixed32(&image, static_cast<uint32_t>(payload.size()));
  PutFixed32(&image, Crc32cMask(Crc32c(payload)));
  image.append(payload);

  // Overwrite the slot that does NOT hold the newest valid snapshot.
  // Chosen by inspecting the slots rather than a volatile cursor, so
  // the decision survives crash/recovery cycles.
  size_t target = 0;
  uint64_t best_seq = 0;
  bool any = false;
  for (size_t i = 0; i < kNumSlots; ++i) {
    auto parsed = ParseSlot(i);
    if (parsed.ok() && (!any || parsed->wal_seq >= best_seq)) {
      any = true;
      best_seq = parsed->wal_seq;
      target = 1 - i;
    }
  }
  slots_[any ? target : 0] = std::move(image);
}

Result<SnapshotData> SnapshotStore::ParseSlot(size_t i) const {
  const std::string& image = slots_[i];
  if (image.empty()) return Status::NotFound("empty snapshot slot");
  if (image.size() < 8) {
    return Status::InvalidArgument("snapshot slot truncated in the header");
  }
  const uint32_t len = GetFixed32(image.data());
  const uint32_t stored_crc = Crc32cUnmask(GetFixed32(image.data() + 4));
  if (len != image.size() - 8) {
    return Status::InvalidArgument("snapshot slot length mismatch");
  }
  const std::string_view payload = std::string_view(image).substr(8, len);
  if (Crc32c(payload) != stored_crc) {
    return Status::InvalidArgument("snapshot slot failed its CRC");
  }
  wire::Decoder dec(payload);
  SnapshotData out;
  ASSIGN_OR_RETURN(out.wal_seq, dec.Varint());
  ASSIGN_OR_RETURN(const uint64_t n, dec.Varint());
  // Each entry costs >= 5 encoded bytes (bucket + key + holder).
  if (n > dec.remaining() / 5) {
    return Status::InvalidArgument("snapshot entry count exceeds payload");
  }
  out.entries.reserve(n);
  for (uint64_t e = 0; e < n; ++e) {
    ASSIGN_OR_RETURN(const uint64_t bucket, dec.Varint());
    if (bucket > 0xFFFFFFFFull) {
      return Status::InvalidArgument("snapshot bucket id exceeds ring width");
    }
    ASSIGN_OR_RETURN(PartitionDescriptor d, wire::DecodePartitionDescriptor(&dec));
    out.entries.emplace_back(static_cast<chord::ChordId>(bucket), std::move(d));
  }
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("snapshot payload has trailing bytes");
  }
  return out;
}

SnapshotStore::LoadResult SnapshotStore::LoadLatestValid() const {
  LoadResult out;
  for (size_t i = 0; i < kNumSlots; ++i) {
    auto parsed = ParseSlot(i);
    if (parsed.ok()) {
      if (!out.found || parsed->wal_seq > out.data.wal_seq) {
        out.found = true;
        out.data = std::move(*parsed);
      }
    } else if (!parsed.status().IsNotFound()) {
      out.slot_corrupt = true;  // non-empty slot failed validation
    }
  }
  return out;
}

}  // namespace store
}  // namespace p2prange
