#include "store/interval_index.h"

#include <algorithm>

namespace p2prange {

void IntervalIndex::Column::Rebuild() const {
  sorted.clear();
  sorted.reserve(live.size());
  for (const auto& [packed, d] : live) sorted.push_back(&d);
  std::sort(sorted.begin(), sorted.end(),
            [](const PartitionDescriptor* a, const PartitionDescriptor* b) {
              if (a->key.range.lo() != b->key.range.lo()) {
                return a->key.range.lo() < b->key.range.lo();
              }
              return a->key.range.hi() < b->key.range.hi();
            });
  prefix_max_hi.resize(sorted.size());
  uint32_t running = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    running = std::max(running, sorted[i]->key.range.hi());
    prefix_max_hi[i] = running;
  }
  dirty = false;
}

void IntervalIndex::Insert(const PartitionDescriptor& descriptor) {
  Column& col = columns_[ColumnKey(descriptor.key)];
  auto [it, inserted] =
      col.live.emplace(PackRange(descriptor.key.range), descriptor);
  if (!inserted) {
    it->second.holder = descriptor.holder;  // refresh, structure unchanged
    return;
  }
  col.dirty = true;
  ++size_;
}

bool IntervalIndex::Erase(const PartitionKey& key) {
  auto cit = columns_.find(ColumnKey(key));
  if (cit == columns_.end()) return false;
  if (cit->second.live.erase(PackRange(key.range)) == 0) return false;
  --size_;
  if (cit->second.live.empty()) {
    columns_.erase(cit);
  } else {
    cit->second.dirty = true;
  }
  return true;
}

void IntervalIndex::ForEachOverlapping(
    const PartitionKey& query,
    const std::function<void(const PartitionDescriptor&)>& fn) const {
  auto cit = columns_.find(ColumnKey(query));
  if (cit == columns_.end()) return;
  const Column& col = cit->second;
  if (col.dirty) col.Rebuild();
  if (col.sorted.empty()) return;
  // Entries with lo <= query.hi form a prefix of the sorted order.
  const Range& q = query.range;
  auto past = std::upper_bound(
      col.sorted.begin(), col.sorted.end(), q.hi(),
      [](uint32_t hi, const PartitionDescriptor* d) {
        return hi < d->key.range.lo();
      });
  // Walk that prefix backwards; once the prefix-maximum of ends drops
  // below query.lo no earlier entry can overlap.
  for (auto i = static_cast<int64_t>(past - col.sorted.begin()) - 1; i >= 0; --i) {
    if (col.prefix_max_hi[static_cast<size_t>(i)] < q.lo()) break;
    const PartitionDescriptor* d = col.sorted[static_cast<size_t>(i)];
    if (d->key.range.hi() >= q.lo()) fn(*d);
  }
}

const PartitionDescriptor* IntervalIndex::AnyOfColumn(
    const PartitionKey& query) const {
  auto cit = columns_.find(ColumnKey(query));
  if (cit == columns_.end() || cit->second.live.empty()) return nullptr;
  if (cit->second.dirty) cit->second.Rebuild();
  return cit->second.sorted.front();
}

}  // namespace p2prange
