// Periodic checkpoint snapshots of a peer's descriptor store.
//
// A checkpoint bounds WAL replay time and the damage a corrupted log
// can do: recovery loads the newest valid snapshot and replays only
// the WAL records logged after it. Snapshots are written to two
// alternating slots so a crash *during* a checkpoint write can never
// destroy the previous good snapshot — the torn slot fails its CRC
// and recovery falls back to the other one.
//
// Slot image format: one CRC32C frame (same framing as the WAL)
// whose payload is
//
//   varint wal_seq        -- log sequence number this snapshot covers
//   varint n              -- number of descriptor entries
//   n x (varint bucket, PartitionDescriptor)   -- oldest-first, so
//                            re-inserting in order rebuilds LRU order
#ifndef P2PRANGE_STORE_SNAPSHOT_H_
#define P2PRANGE_STORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "chord/id.h"
#include "common/result.h"
#include "store/partition_key.h"

namespace p2prange {
namespace store {

/// \brief The logical content of one checkpoint.
struct SnapshotData {
  /// Log sequence number (records logged since the peer was born) the
  /// snapshot covers; WAL records at seq > wal_seq replay on top.
  uint64_t wal_seq = 0;
  /// Descriptor entries in recency order, oldest first.
  std::vector<std::pair<chord::ChordId, PartitionDescriptor>> entries;
};

/// \brief Two-slot checkpoint storage with CRC-validated loads.
class SnapshotStore {
 public:
  static constexpr size_t kNumSlots = 2;

  /// Writes `snap` to the slot NOT holding the newest valid snapshot,
  /// so the previous checkpoint survives until this one is complete.
  void Write(const SnapshotData& snap);

  /// \brief Outcome of scanning both slots at recovery.
  struct LoadResult {
    bool found = false;        ///< some valid snapshot exists
    bool slot_corrupt = false; ///< a non-empty slot failed validation
    SnapshotData data;         ///< newest valid snapshot (when found)
  };
  LoadResult LoadLatestValid() const;

  const std::string& slot(size_t i) const { return slots_[i]; }

  /// Raw slot images for crash harnesses (tear / bit-flip injection).
  std::string& mutable_slot(size_t i) { return slots_[i]; }

  /// Total snapshot bytes currently held.
  size_t TotalBytes() const { return slots_[0].size() + slots_[1].size(); }

 private:
  Result<SnapshotData> ParseSlot(size_t i) const;

  std::string slots_[kNumSlots];
};

}  // namespace store
}  // namespace p2prange

#endif  // P2PRANGE_STORE_SNAPSHOT_H_
