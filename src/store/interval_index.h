// A per-column interval index over cached partition ranges.
//
// The §5.3 peer-wide matcher must find, among every descriptor a peer
// holds, the best match for a query range. A linear scan is O(n) per
// probe; this index keeps each column's ranges sorted by start with a
// prefix-maximum of ends, so the overlapping set is enumerated in
// O(log n + k) after a lazy O(n log n) rebuild following mutations.
// (This realizes the "build up an index over all the partitions that
// get stored ... at a peer" idea the paper sketches.)
#ifndef P2PRANGE_STORE_INTERVAL_INDEX_H_
#define P2PRANGE_STORE_INTERVAL_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/partition_key.h"

namespace p2prange {

/// \brief Index of partition descriptors addressable by column and
/// queried by range overlap.
class IntervalIndex {
 public:
  /// Inserts or refreshes (same key: holder updated).
  void Insert(const PartitionDescriptor& descriptor);

  /// Removes by key; false if absent.
  bool Erase(const PartitionKey& key);

  /// Calls `fn` for every descriptor of `query`'s column whose range
  /// overlaps `query.range`.
  void ForEachOverlapping(
      const PartitionKey& query,
      const std::function<void(const PartitionDescriptor&)>& fn) const;

  /// Any descriptor of the query's column (the zero-similarity
  /// fallback the §4 protocol returns when nothing overlaps), or
  /// nullptr if the column is empty. Stable across calls between
  /// mutations.
  const PartitionDescriptor* AnyOfColumn(const PartitionKey& query) const;

  size_t size() const { return size_; }
  size_t num_columns() const { return columns_.size(); }

 private:
  struct Column {
    // Live descriptors keyed by packed (lo, hi).
    std::unordered_map<uint64_t, PartitionDescriptor> live;
    // Lazily rebuilt query structures, sorted by range start.
    mutable std::vector<const PartitionDescriptor*> sorted;
    mutable std::vector<uint32_t> prefix_max_hi;
    mutable bool dirty = true;

    void Rebuild() const;
  };

  static uint64_t PackRange(const Range& r) {
    return (static_cast<uint64_t>(r.lo()) << 32) | r.hi();
  }
  static std::string ColumnKey(const PartitionKey& k) {
    return k.relation + "|" + k.attribute;
  }

  std::unordered_map<std::string, Column> columns_;
  size_t size_ = 0;
};

}  // namespace p2prange

#endif  // P2PRANGE_STORE_INTERVAL_INDEX_H_
