// Per-peer write-ahead log of descriptor-store mutations.
//
// The paper's premise is that peers *durably* hold their horizontal
// partitions and descriptors across sessions (§2, §4). This log is the
// durable half of a peer's BucketStore: every insert / stale-erase /
// LRU-evict is appended as a CRC32C-framed record before the next
// operation proceeds, and recovery replays checkpoint + log to rebuild
// the exact pre-crash store.
//
// Frame format (little-endian fixed-width header so a torn header is
// detectable by length alone):
//
//   [payload_len u32][masked crc32c(payload) u32][payload bytes]
//
// Replay walks frames front to back and classifies the first failure:
//  * an incomplete frame (header cut short, or payload_len pointing
//    past the end of the image) is a *torn tail* — the crash hit
//    mid-append; the validated prefix is the recovered log.
//  * a complete frame whose CRC mismatches (or whose payload does not
//    decode) is *corruption* — bit rot inside the log; the caller must
//    not trust anything past the last checkpoint.
//
// The "disk" is an in-memory byte image: the simulation's crash
// semantics wipe a peer's volatile stores but keep these images, and
// the fault injector tears / bit-flips them to model real crash and
// media faults.
#ifndef P2PRANGE_STORE_WAL_H_
#define P2PRANGE_STORE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "chord/id.h"
#include "store/partition_key.h"
#include "wire/serde.h"

namespace p2prange {
namespace store {

/// \brief One logged mutation of a peer's descriptor store.
struct WalRecord {
  enum class Op : uint8_t {
    kInsert = 0,  ///< descriptor inserted into (or refreshed in) `bucket`
    kErase = 1,   ///< stale erase of (key, holder) across all buckets
    kEvict = 2,   ///< LRU eviction of `descriptor.key` from `bucket`
  };

  Op op = Op::kInsert;
  /// Log sequence number, 1-based over the peer's lifetime. Recovery
  /// skips records with seq <= the snapshot's wal_seq (a crash between
  /// snapshot write and log truncation leaves them in the image) and
  /// refuses to replay across a seq gap (the records bridging an older
  /// fallback snapshot to the log were truncated at a checkpoint).
  uint64_t seq = 0;
  chord::ChordId bucket = 0;  ///< meaningful for kInsert / kEvict
  PartitionDescriptor descriptor;

  bool operator==(const WalRecord&) const = default;
};

const char* WalOpName(WalRecord::Op op);

void EncodeWalRecord(const WalRecord& rec, wire::Encoder* enc);
Result<WalRecord> DecodeWalRecord(wire::Decoder* dec);

/// \brief CRC32C-framed append-only log over an in-memory disk image.
class WriteAheadLog {
 public:
  /// Appends one framed record; returns the frame size in bytes.
  size_t Append(const WalRecord& rec);

  /// Truncates the log (after a checkpoint made its contents redundant).
  void Clear() { image_.clear(); }

  const std::string& image() const { return image_; }

  /// The raw disk image, exposed so crash harnesses can tear the tail
  /// or flip bits exactly as a real crash or media fault would.
  std::string& mutable_image() { return image_; }

  /// Records appended over this object's lifetime (not reset by Clear).
  uint64_t appended() const { return appended_; }

  /// \brief What replaying a (possibly damaged) image yielded.
  struct ReplayResult {
    std::vector<WalRecord> records;  ///< the validated prefix, in order
    bool torn_tail = false;   ///< incomplete frame at the end (truncated)
    bool corrupted = false;   ///< complete frame failed CRC / decode
    size_t valid_bytes = 0;   ///< image offset of the first invalid byte
  };

  /// Validates and decodes `image` front to back (see file comment for
  /// the torn-tail vs corruption rule).
  static ReplayResult Replay(std::string_view image);

  /// Frame overhead per record, exposed for tests sizing tears.
  static constexpr size_t kFrameHeaderBytes = 8;

 private:
  std::string image_;
  uint64_t appended_ = 0;
};

}  // namespace store
}  // namespace p2prange

#endif  // P2PRANGE_STORE_WAL_H_
