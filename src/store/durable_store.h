// The durable half of a peer's descriptor store.
//
// Wraps the volatile BucketStore with a write-ahead log and periodic
// two-slot checkpoint snapshots so a crashed peer can rebuild its
// descriptors instead of silently forgetting them (the paper assumes
// peers hold their partitions durably across sessions, §2). Every
// mutation is logged *before* it is applied; LRU evictions triggered
// by an insert are logged through the store's eviction listener, so
// the log is a complete, deterministic replay script.
//
// Crash model: Crash() discards the volatile store only — the WAL and
// snapshot byte images survive, exactly like files on disk. Recover()
// loads the newest valid snapshot, replays the WAL's validated prefix
// on top (skipping records the snapshot already covers, by sequence
// number), and re-establishes a clean checkpoint. A torn log tail is
// truncated; mid-log corruption (a complete frame failing its CRC)
// voids the whole log and recovery falls back to the snapshot alone.
#ifndef P2PRANGE_STORE_DURABLE_STORE_H_
#define P2PRANGE_STORE_DURABLE_STORE_H_

#include <cstdint>
#include <functional>

#include "store/bucket_store.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace p2prange {
namespace store {

/// \brief Knobs for per-peer descriptor durability.
struct DurabilityConfig {
  /// When false, Crash() loses everything and Recover() restores an
  /// empty store (the honest pre-WAL behaviour, kept for ablations).
  bool enabled = true;
  /// Checkpoint after this many WAL records; 0 disables checkpoints
  /// (the log grows without bound and replays from the beginning).
  uint64_t checkpoint_every = 64;
};

/// \brief What one Recover() call reconstructed, for metrics/tests.
struct RecoveryReport {
  size_t snapshot_entries = 0;      ///< entries loaded from the snapshot
  size_t wal_records_replayed = 0;  ///< log records applied on top
  size_t descriptors_restored = 0;  ///< store size after recovery
  bool torn_tail = false;           ///< log ended in a torn append
  bool wal_corrupted = false;       ///< mid-log CRC/decode failure
  bool snapshot_fallback = false;   ///< a non-empty snapshot slot was bad
  bool wal_gap = false;             ///< log did not connect to snapshot
};

/// \brief BucketStore + WAL + checkpoints behind one mutation API.
///
/// All descriptor mutations MUST go through Insert / EraseStale here
/// (reads can use store() freely); mutating the BucketStore directly
/// would desynchronize it from the log.
class DurableDescriptorStore {
 public:
  DurableDescriptorStore(size_t store_capacity, DurabilityConfig config);

  DurableDescriptorStore(const DurableDescriptorStore&) = delete;
  DurableDescriptorStore& operator=(const DurableDescriptorStore&) = delete;

  /// Logs and applies an insert; returns true on a fresh insert.
  bool Insert(chord::ChordId id, const PartitionDescriptor& descriptor);

  /// Logs and applies a stale erase; returns descriptors removed.
  size_t EraseStale(const PartitionKey& key, const NetAddress& holder);

  /// Drops the volatile store, keeping the durable images — what a
  /// process crash does to a peer.
  void Crash();

  /// Rebuilds the store from snapshot + WAL (see file comment).
  RecoveryReport Recover();

  /// Writes a checkpoint now and truncates the log.
  void ForceCheckpoint();

  const BucketStore& store() const { return store_; }
  BucketStore& store() { return store_; }

  const WriteAheadLog& wal() const { return wal_; }
  WriteAheadLog& wal() { return wal_; }
  const SnapshotStore& snapshots() const { return snaps_; }
  SnapshotStore& snapshots() { return snaps_; }
  const DurabilityConfig& config() const { return config_; }
  uint64_t wal_seq() const { return wal_seq_; }
  uint64_t checkpoints() const { return checkpoints_; }

  /// Test seam: invoked between the snapshot write and the WAL
  /// truncation of a checkpoint, so crash harnesses can capture the
  /// disk mid-checkpoint (snapshot complete, log not yet cleared).
  void set_checkpoint_hook(std::function<void()> hook) {
    checkpoint_hook_ = std::move(hook);
  }

 private:
  void AttachEvictionListener();
  void LogRecord(WalRecord::Op op, chord::ChordId bucket,
                 const PartitionDescriptor& descriptor);
  void MaybeCheckpoint();

  size_t capacity_;
  DurabilityConfig config_;
  BucketStore store_;
  WriteAheadLog wal_;
  SnapshotStore snaps_;
  uint64_t wal_seq_ = 0;  ///< seq of the last record logged
  uint64_t records_since_checkpoint_ = 0;
  uint64_t checkpoints_ = 0;
  bool replaying_ = false;  ///< suppress logging while Recover() applies
  std::function<void()> checkpoint_hook_;
};

}  // namespace store
}  // namespace p2prange

#endif  // P2PRANGE_STORE_DURABLE_STORE_H_
