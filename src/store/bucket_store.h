// The per-peer store of partition descriptors, keyed by DHT identifier.
//
// A peer owns a slice of the identifier ring; every identifier in that
// slice is a *bucket* that may hold descriptors of several partitions
// (distinct ranges can collide on an identifier, and one range is
// published under l identifiers). A lookup probes one bucket and
// returns the best match under the chosen similarity; §5.3's extension
// instead searches an index over all buckets the peer holds.
#ifndef P2PRANGE_STORE_BUCKET_STORE_H_
#define P2PRANGE_STORE_BUCKET_STORE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chord/id.h"
#include "common/result.h"
#include "store/interval_index.h"
#include "store/partition_key.h"

namespace p2prange {

/// \brief How a bucket picks its best match for a query range (§5.2).
enum class MatchCriterion {
  kJaccard,      ///< maximize |Q∩R| / |Q∪R| (what the hashing optimizes)
  kContainment,  ///< maximize |Q∩R| / |Q| (what the user actually wants)
};

const char* MatchCriterionName(MatchCriterion c);

/// \brief A candidate answer: a stored descriptor plus its score
/// against the query range under the criterion used.
struct MatchCandidate {
  PartitionDescriptor descriptor;
  double similarity = 0.0;  ///< score under the criterion that selected it
  bool exact = false;       ///< stored range equals the query range
};

/// \brief Capacity-bounded descriptor store of one peer.
class BucketStore {
 public:
  /// `max_descriptors` == 0 means unbounded; otherwise least-recently-
  /// used descriptors are evicted once the total exceeds the bound.
  explicit BucketStore(size_t max_descriptors = 0)
      : max_descriptors_(max_descriptors) {}

  /// Inserts a descriptor into bucket `id`. Duplicate (bucket, key)
  /// pairs refresh recency and update the holder instead of growing
  /// the bucket. Returns true on a fresh insert, false on a refresh.
  bool Insert(chord::ChordId id, const PartitionDescriptor& descriptor);

  /// \brief Best match for `query` among the descriptors of bucket
  /// `id` over the same relation+attribute. nullopt if the bucket is
  /// empty (or holds only other columns).
  std::optional<MatchCandidate> BestMatch(chord::ChordId id,
                                          const PartitionKey& query,
                                          MatchCriterion criterion) const;

  /// \brief §5.3 extension: best match across *all* buckets this peer
  /// holds, via a per-column index rather than one bucket's list.
  std::optional<MatchCandidate> BestMatchAnywhere(const PartitionKey& query,
                                                  MatchCriterion criterion) const;

  /// \brief All same-column candidates of bucket `id` that overlap the
  /// query range, scored under `criterion` (for multi-partition
  /// coverage assembly).
  std::vector<MatchCandidate> OverlappingCandidates(chord::ChordId id,
                                                    const PartitionKey& query,
                                                    MatchCriterion criterion) const;

  /// \brief Lazy repair: removes every descriptor of `key` whose
  /// holder is `holder`, across all buckets. Called by a probing owner
  /// when it learns the holder is dead (the descriptor outlived the
  /// peer). Returns the number of descriptors removed.
  size_t EraseStale(const PartitionKey& key, const NetAddress& holder);

  /// \brief Removes `key` from bucket `id` alone (other buckets keep
  /// their copies). Used by WAL replay to re-apply a logged LRU
  /// eviction; a no-op returning false when the pair is absent, so
  /// replay stays idempotent when capacity already evicted it.
  bool EraseOne(chord::ChordId id, const PartitionKey& key);

  /// True if bucket `id` holds exactly `key`.
  bool ContainsExact(chord::ChordId id, const PartitionKey& key) const;

  /// \brief Every (bucket, descriptor) entry in recency order, oldest
  /// first — re-inserting in this order rebuilds the identical store,
  /// including LRU order. Checkpoint and replica-repair both walk this.
  std::vector<std::pair<chord::ChordId, PartitionDescriptor>> EntriesOldestFirst()
      const;

  /// \brief Observer invoked just before an LRU eviction removes an
  /// entry (the durable store logs the eviction through this seam).
  using EvictionListener =
      std::function<void(chord::ChordId, const PartitionDescriptor&)>;
  void set_eviction_listener(EvictionListener listener) {
    eviction_listener_ = std::move(listener);
  }

  size_t num_descriptors() const { return recency_.size(); }
  size_t num_buckets() const { return buckets_.size(); }
  size_t max_descriptors() const { return max_descriptors_; }
  uint64_t evictions() const { return evictions_; }

  /// All descriptors in bucket `id` (diagnostics/tests).
  std::vector<PartitionDescriptor> BucketContents(chord::ChordId id) const;

 private:
  struct Entry {
    chord::ChordId bucket;
    PartitionDescriptor descriptor;
  };
  using RecencyList = std::list<Entry>;

  static double Score(const Range& query, const Range& stored,
                      MatchCriterion criterion);

  void EvictIfNeeded();

  /// Removes one (bucket, key) reference from the peer-wide index,
  /// erasing the index entry when no bucket holds the key anymore.
  void DropIndexReference(const PartitionKey& key);

  size_t max_descriptors_;
  uint64_t evictions_ = 0;
  EvictionListener eviction_listener_;
  // LRU order: front = most recent. Buckets point into the list.
  RecencyList recency_;
  std::unordered_map<chord::ChordId, std::vector<RecencyList::iterator>> buckets_;
  // §5.3 peer-wide index: one entry per distinct key, reference-counted
  // across buckets.
  IntervalIndex index_;
  std::unordered_map<PartitionKey, size_t, PartitionKeyHash> key_refs_;
};

}  // namespace p2prange

#endif  // P2PRANGE_STORE_BUCKET_STORE_H_
