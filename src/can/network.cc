#include "can/network.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/logging.h"

namespace p2prange {
namespace can {

double CanNode::DistanceTo(const Point& p) const {
  double best = std::numeric_limits<double>::infinity();
  for (const Zone& z : zones_) best = std::min(best, z.DistanceTo(p));
  return best;
}

CanNetwork::CanNetwork(CanConfig config, uint64_t seed)
    : config_(config),
      rng_(seed),
      net_(std::make_unique<SimNetwork>(config.latency, seed ^ 0x123456)) {}

Result<NetAddress> CanNetwork::CreateAddress() {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    NetAddress addr;
    addr.host = rng_.Next32();
    addr.port = static_cast<uint16_t>(1024 + rng_.NextBounded(60000));
    if (!nodes_.contains(addr)) return addr;
  }
  return Status::Internal("could not generate a unique address");
}

Result<CanNetwork> CanNetwork::Make(size_t num_nodes, uint64_t seed,
                                    CanConfig config) {
  if (num_nodes == 0) {
    return Status::InvalidArgument("a CAN needs at least one node");
  }
  if (config.dims < 1 || config.dims > kMaxDims) {
    return Status::InvalidArgument("dims must be in [1, " +
                                   std::to_string(kMaxDims) + "]");
  }
  RETURN_NOT_OK(config.latency.Validate());
  CanNetwork net(config, seed);
  // Bootstrap node owns the whole space.
  ASSIGN_OR_RETURN(const NetAddress first, net.CreateAddress());
  auto node = std::make_unique<CanNode>(first);
  node->mutable_zones().push_back(Zone::Root(config.dims));
  net.net_->Register(first);
  net.nodes_.emplace(first, std::move(node));
  net.addresses_.push_back(first);
  for (size_t i = 1; i < num_nodes; ++i) {
    RETURN_NOT_OK(net.AddNode().status());
  }
  net.net_->ResetStats();
  return net;
}

CanNode* CanNetwork::mutable_node(const NetAddress& addr) {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

const CanNode* CanNetwork::node(const NetAddress& addr) const {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

size_t CanNetwork::num_alive() const {
  size_t n = 0;
  for (const auto& [addr, node] : nodes_) {
    if (net_->IsAlive(addr)) ++n;
  }
  return n;
}

Result<NetAddress> CanNetwork::RandomAliveAddress() {
  std::vector<NetAddress> alive;
  alive.reserve(nodes_.size());
  for (const auto& [addr, node] : nodes_) {
    if (net_->IsAlive(addr)) alive.push_back(addr);
  }
  if (alive.empty()) return Status::NotFound("no live CAN nodes");
  return alive[rng_.NextBounded(alive.size())];
}

std::vector<NetAddress> CanNetwork::AliveAddresses() const {
  std::vector<NetAddress> out;
  out.reserve(addresses_.size());
  for (const NetAddress& addr : addresses_) {
    if (net_->IsAlive(addr)) out.push_back(addr);
  }
  return out;
}

Result<NetAddress> CanNetwork::FindOwnerOracle(const Point& p) const {
  for (const auto& [addr, node] : nodes_) {
    if (net_->IsAlive(addr) && node->Owns(p)) return addr;
  }
  return Status::NotFound("no live node owns the point");
}

Result<NetAddress> CanNetwork::Route(const NetAddress& from, const Point& p,
                                     CanLookupResult* out) {
  const CanNode* cur = node(from);
  if (cur == nullptr || !net_->IsAlive(from)) {
    return Status::InvalidArgument("route origin " + from.ToString() +
                                   " is not a live CAN node");
  }
  std::set<NetAddress> visited;
  for (int step = 0; step < config_.max_route_steps; ++step) {
    if (cur->Owns(p)) return cur->addr();
    visited.insert(cur->addr());
    // Greedy: forward to the neighbor whose zones are closest to the
    // target point; skip dead or already-visited nodes.
    const CanNode* best = nullptr;
    double best_dist = std::numeric_limits<double>::infinity();
    for (const NetAddress& naddr : cur->neighbors()) {
      if (!net_->IsAlive(naddr) || visited.contains(naddr)) continue;
      const CanNode* cand = node(naddr);
      const double dist = cand->DistanceTo(p);
      if (dist < best_dist) {
        best_dist = dist;
        best = cand;
      }
    }
    if (best == nullptr) {
      return Status::Unavailable("greedy routing is stuck at " +
                                 cur->addr().ToString());
    }
    auto latency = net_->Deliver(from, best->addr());
    RETURN_NOT_OK(latency.status());
    if (out != nullptr) {
      ++out->hops;
      out->latency_ms += *latency;
    }
    cur = best;
  }
  return Status::Internal("CAN routing did not converge");
}

Result<CanLookupResult> CanNetwork::Lookup(const NetAddress& from,
                                           uint32_t identifier) {
  CanLookupResult result;
  const Point p = IdentifierToPoint(identifier, config_.dims);
  ASSIGN_OR_RETURN(result.owner, Route(from, p, &result));
  return result;
}

void CanNetwork::RebuildNeighborhoods(const std::vector<NetAddress>& affected) {
  // Collect the affected nodes plus everything currently adjacent to
  // them, then recompute pairwise adjacency within that set against
  // all live nodes. Ring sizes here are simulation-scale; local
  // recomputation keeps the protocol logic simple and correct.
  std::set<NetAddress> frontier(affected.begin(), affected.end());
  for (const NetAddress& a : affected) {
    const CanNode* n = node(a);
    if (n == nullptr) continue;
    for (const NetAddress& nb : n->neighbors()) frontier.insert(nb);
  }
  for (const NetAddress& a : frontier) {
    CanNode* n = mutable_node(a);
    if (n == nullptr || !net_->IsAlive(a)) continue;
    auto& nbrs = n->mutable_neighbors();
    nbrs.clear();
    for (const auto& [baddr, bnode] : nodes_) {
      if (baddr == a || !net_->IsAlive(baddr)) continue;
      bool adjacent = false;
      for (const Zone& za : n->zones()) {
        for (const Zone& zb : bnode->zones()) {
          if (za.IsNeighbor(zb)) {
            adjacent = true;
            break;
          }
        }
        if (adjacent) break;
      }
      if (adjacent) nbrs.push_back(baddr);
    }
  }
}

Result<NetAddress> CanNetwork::AddNode() {
  // Pick a bootstrap and a random target point, then run the join.
  ASSIGN_OR_RETURN(const NetAddress bootstrap, RandomAliveAddress());
  ASSIGN_OR_RETURN(const NetAddress addr, CreateAddress());

  for (int attempt = 0; attempt < 64; ++attempt) {
    Point p;
    for (int d = 0; d < config_.dims; ++d) p.coords[d] = rng_.Next32();
    ASSIGN_OR_RETURN(const NetAddress owner_addr, Route(bootstrap, p, nullptr));
    CanNode* owner = mutable_node(owner_addr);
    // Split the owner's zone that contains the point, along its widest
    // dimension. The newcomer takes the half containing the point.
    size_t zone_idx = 0;
    while (zone_idx < owner->zones().size() &&
           !owner->zones()[zone_idx].Contains(p)) {
      ++zone_idx;
    }
    DCHECK_LT(zone_idx, owner->zones().size());
    const Zone zone = owner->zones()[zone_idx];
    const int dim = zone.WidestDim();
    if (zone.width(dim) < 2) continue;  // unsplittable sliver; new point
    auto [lower, upper] = zone.Split(dim);
    const Zone& newcomer_half = lower.Contains(p) ? lower : upper;
    const Zone& owner_half = lower.Contains(p) ? upper : lower;
    owner->mutable_zones()[zone_idx] = owner_half;

    auto fresh = std::make_unique<CanNode>(addr);
    fresh->mutable_zones().push_back(newcomer_half);
    net_->Register(addr);
    nodes_.emplace(addr, std::move(fresh));
    addresses_.push_back(addr);
    RebuildNeighborhoods({owner_addr, addr});
    return addr;
  }
  return Status::Internal("could not find a splittable zone to join into");
}

Status CanNetwork::Leave(const NetAddress& addr) {
  CanNode* leaver = mutable_node(addr);
  if (leaver == nullptr) return Status::NotFound("unknown CAN node");
  if (!net_->IsAlive(addr)) return Status::InvalidArgument("node already down");
  if (num_alive() == 1) {
    return Status::InvalidArgument("the last CAN node cannot leave");
  }

  std::vector<NetAddress> affected{addr};
  for (const Zone& zone : leaver->zones()) {
    // Prefer a neighbor whose zone merges with this one into a box;
    // otherwise the smallest-volume neighbor takes it over verbatim.
    CanNode* taker = nullptr;
    size_t merge_idx = 0;
    bool mergeable = false;
    double best_volume = std::numeric_limits<double>::infinity();
    for (const NetAddress& naddr : leaver->neighbors()) {
      CanNode* cand = mutable_node(naddr);
      if (cand == nullptr || !net_->IsAlive(naddr)) continue;
      for (size_t zi = 0; zi < cand->zones().size(); ++zi) {
        if (cand->zones()[zi].CanMergeWith(zone, nullptr)) {
          taker = cand;
          merge_idx = zi;
          mergeable = true;
          break;
        }
      }
      if (mergeable) break;
      if (cand->Volume() < best_volume) {
        best_volume = cand->Volume();
        taker = cand;
      }
    }
    if (taker == nullptr) {
      return Status::Internal("departing node has no live neighbor");
    }
    if (mergeable) {
      taker->mutable_zones()[merge_idx] =
          taker->zones()[merge_idx].MergeWith(zone);
    } else {
      taker->mutable_zones().push_back(zone);
    }
    affected.push_back(taker->addr());
  }
  RETURN_NOT_OK(net_->SetAlive(addr, false));
  leaver->mutable_zones().clear();
  RebuildNeighborhoods(affected);
  return Status::OK();
}

Status CanNetwork::Fail(const NetAddress& addr) {
  if (node(addr) == nullptr) return Status::NotFound("unknown CAN node");
  if (!net_->IsAlive(addr)) return Status::InvalidArgument("node already down");
  if (num_alive() == 1) {
    return Status::InvalidArgument("the last CAN node cannot fail");
  }
  return net_->SetAlive(addr, false);
}

Status CanNetwork::Recover(const NetAddress& addr) {
  CanNode* n = mutable_node(addr);
  if (n == nullptr) return Status::NotFound("unknown CAN node");
  if (net_->IsAlive(addr)) return Status::InvalidArgument("node already up");
  RETURN_NOT_OK(net_->SetAlive(addr, true));
  if (!n->zones().empty()) {
    // Crash not yet taken over: the node simply resumes its zones.
    RebuildNeighborhoods({addr});
    return Status::OK();
  }
  return JoinExisting(addr);
}

Status CanNetwork::JoinExisting(const NetAddress& addr) {
  // Bootstrap through a deterministic live, zone-owning node.
  const CanNode* bootstrap = nullptr;
  for (const NetAddress& a : addresses_) {
    const CanNode* cand = node(a);
    if (a == addr || cand == nullptr || !net_->IsAlive(a)) continue;
    if (cand->zones().empty()) continue;
    bootstrap = cand;
    break;
  }
  if (bootstrap == nullptr) {
    return Status::Internal("no live zone-owning node to bootstrap from");
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    Point p;
    for (int d = 0; d < config_.dims; ++d) p.coords[d] = rng_.Next32();
    ASSIGN_OR_RETURN(const NetAddress owner_addr,
                     Route(bootstrap->addr(), p, nullptr));
    CanNode* owner = mutable_node(owner_addr);
    size_t zone_idx = 0;
    while (zone_idx < owner->zones().size() &&
           !owner->zones()[zone_idx].Contains(p)) {
      ++zone_idx;
    }
    DCHECK_LT(zone_idx, owner->zones().size());
    const Zone zone = owner->zones()[zone_idx];
    const int dim = zone.WidestDim();
    if (zone.width(dim) < 2) continue;  // unsplittable sliver; new point
    auto [lower, upper] = zone.Split(dim);
    const Zone& newcomer_half = lower.Contains(p) ? lower : upper;
    const Zone& owner_half = lower.Contains(p) ? upper : lower;
    owner->mutable_zones()[zone_idx] = owner_half;
    mutable_node(addr)->mutable_zones().push_back(newcomer_half);
    RebuildNeighborhoods({owner_addr, addr});
    return Status::OK();
  }
  return Status::Internal("could not find a splittable zone to join into");
}

size_t CanNetwork::TakeoverDeadZones() {
  size_t transferred = 0;
  for (const NetAddress& dead_addr : addresses_) {
    CanNode* dead = mutable_node(dead_addr);
    if (dead == nullptr || net_->IsAlive(dead_addr) || dead->zones().empty()) {
      continue;
    }
    std::vector<NetAddress> affected;
    bool all_taken = true;
    std::vector<Zone> remaining;
    for (const Zone& zone : dead->zones()) {
      // Prefer a live node with a mergeable zone (neighbors first, as
      // the takeover protocol would find); otherwise the
      // smallest-volume live node absorbs the zone verbatim.
      CanNode* taker = nullptr;
      size_t merge_idx = 0;
      bool mergeable = false;
      double best_volume = std::numeric_limits<double>::infinity();
      auto consider = [&](CanNode* cand) {
        if (mergeable || cand == nullptr || cand == dead) return;
        if (!net_->IsAlive(cand->addr())) return;
        for (size_t zi = 0; zi < cand->zones().size(); ++zi) {
          if (cand->zones()[zi].CanMergeWith(zone, nullptr)) {
            taker = cand;
            merge_idx = zi;
            mergeable = true;
            return;
          }
        }
        if (cand->Volume() < best_volume) {
          best_volume = cand->Volume();
          taker = cand;
        }
      };
      for (const NetAddress& naddr : dead->neighbors()) {
        consider(mutable_node(naddr));
      }
      if (taker == nullptr) {
        for (const NetAddress& a : addresses_) consider(mutable_node(a));
      }
      if (taker == nullptr) {
        // No live node anywhere: the zone stays orphaned for now.
        remaining.push_back(zone);
        all_taken = false;
        continue;
      }
      if (mergeable) {
        taker->mutable_zones()[merge_idx] =
            taker->zones()[merge_idx].MergeWith(zone);
      } else {
        taker->mutable_zones().push_back(zone);
      }
      affected.push_back(taker->addr());
      ++transferred;
    }
    dead->mutable_zones() = std::move(remaining);
    // The dead node's former neighbors abut the transferred zones but
    // may not have been adjacent to any taker before the transfer, so
    // they must be rebuilt too or they keep pointing at the dead node.
    for (const NetAddress& naddr : dead->neighbors()) {
      affected.push_back(naddr);
    }
    if (all_taken) dead->mutable_neighbors().clear();
    if (!affected.empty()) RebuildNeighborhoods(affected);
  }
  return transferred;
}

std::vector<double> CanNetwork::Volumes() const {
  std::vector<double> out;
  for (const auto& [addr, node] : nodes_) {
    if (net_->IsAlive(addr)) out.push_back(node->Volume());
  }
  return out;
}

std::vector<size_t> CanNetwork::NeighborCounts() const {
  std::vector<size_t> out;
  for (const auto& [addr, node] : nodes_) {
    if (net_->IsAlive(addr)) out.push_back(node->neighbors().size());
  }
  return out;
}

Status CanNetwork::CheckInvariants() const {
  // Volumes tile the space.
  double total = 0;
  for (double v : Volumes()) total += v;
  if (std::abs(total - 1.0) > 1e-9) {
    return Status::Internal("zone volumes sum to " + std::to_string(total));
  }
  // Sampled points have exactly one owner.
  Rng probe(99);
  for (int i = 0; i < 256; ++i) {
    Point p;
    for (int d = 0; d < config_.dims; ++d) p.coords[d] = probe.Next32();
    int owners = 0;
    for (const auto& [addr, node] : nodes_) {
      if (net_->IsAlive(addr) && node->Owns(p)) ++owners;
    }
    if (owners != 1) {
      return Status::Internal("point owned by " + std::to_string(owners) +
                              " nodes");
    }
  }
  // Neighbor sets are symmetric.
  for (const auto& [addr, n] : nodes_) {
    if (!net_->IsAlive(addr)) continue;
    for (const NetAddress& nb : n->neighbors()) {
      const CanNode* other = node(nb);
      if (other == nullptr || !net_->IsAlive(nb)) {
        return Status::Internal("neighbor list references a dead node");
      }
      const auto& back = other->neighbors();
      if (std::find(back.begin(), back.end(), addr) == back.end()) {
        return Status::Internal("asymmetric neighbor relation");
      }
    }
  }
  return Status::OK();
}

}  // namespace can
}  // namespace p2prange
