// Zones of the CAN (Content-Addressable Network) coordinate space.
//
// CAN [Ratnasamy et al., SIGCOMM'01] is the other DHT the paper
// discusses as a substrate (and the one Harren et al. used for DHT
// joins). The coordinate space is a d-dimensional unit torus; each
// node owns a hyper-rectangular zone, keys hash to points, and the
// node whose zone contains a key's point owns the key.
//
// Coordinates are fixed-point: each dimension is a [lo, hi) interval
// of 32-bit fractions, so splits at powers of two are exact and zone
// arithmetic has no floating-point edge cases.
#ifndef P2PRANGE_CAN_ZONE_H_
#define P2PRANGE_CAN_ZONE_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/logging.h"

namespace p2prange {
namespace can {

/// Maximum supported dimensionality.
inline constexpr int kMaxDims = 8;

/// \brief A point in the d-dimensional unit torus; each coordinate is
/// a 32-bit fixed-point fraction in [0, 1).
struct Point {
  std::array<uint32_t, kMaxDims> coords{};

  bool operator==(const Point&) const = default;
};

/// \brief An axis-aligned box [lo_i, hi_i) per dimension. hi == 0 with
/// lo != 0 is not used; the whole-axis interval is [0, 2^32) which we
/// encode as lo == 0, hi == 0 (wrap) only at the root: to keep the
/// arithmetic simple we represent interval width by uint64 and the
/// root axis as lo = 0, width = 2^32.
class Zone {
 public:
  Zone() = default;

  /// The whole space in `dims` dimensions.
  static Zone Root(int dims);

  int dims() const { return dims_; }
  uint32_t lo(int d) const { return lo_[d]; }
  /// Width of the zone along dimension d (up to 2^32 for the root).
  uint64_t width(int d) const { return width_[d]; }

  bool Contains(const Point& p) const;

  /// Splits this zone in half along `dim` (width must be >= 2).
  /// Returns {lower half, upper half}.
  std::pair<Zone, Zone> Split(int dim) const;

  /// Index of the widest dimension (ties broken by lowest index) —
  /// CAN's canonical split choice keeps zones near-square.
  int WidestDim() const;

  /// Fraction of the whole space this zone covers, in (0, 1].
  double Volume() const;

  /// True if the two zones share a (d-1)-dimensional face: abutting
  /// (modulo wraparound) in exactly one dimension and overlapping in
  /// all others.
  bool IsNeighbor(const Zone& other) const;

  /// True if merging with `other` along some dimension yields a box
  /// (same extent in all other dimensions and adjacent in one);
  /// `*merge_dim` receives the dimension.
  bool CanMergeWith(const Zone& other, int* merge_dim) const;

  /// The merged box (requires CanMergeWith).
  Zone MergeWith(const Zone& other) const;

  /// Torus distance from the zone to a point: 0 if contained, else the
  /// Euclidean distance (in unit-cube units) from the closest boundary
  /// point, accounting for wraparound. Used by greedy routing.
  double DistanceTo(const Point& p) const;

  bool operator==(const Zone&) const = default;

  std::string ToString() const;

 private:
  /// Distance along one (circular) axis from interval [lo, lo+width)
  /// to coordinate c; 0 when inside.
  static uint32_t AxisDistance(uint32_t lo, uint64_t width, uint32_t c);

  int dims_ = 0;
  std::array<uint32_t, kMaxDims> lo_{};
  std::array<uint64_t, kMaxDims> width_{};
};

/// \brief Maps a 32-bit DHT identifier to a point in d dimensions by
/// expanding it with SplitMix64 — deterministic and uniform.
Point IdentifierToPoint(uint32_t identifier, int dims);

}  // namespace can
}  // namespace p2prange

#endif  // P2PRANGE_CAN_ZONE_H_
