#include "can/zone.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace p2prange {
namespace can {

namespace {
constexpr uint64_t kAxisSpan = 1ULL << 32;
}  // namespace

Zone Zone::Root(int dims) {
  CHECK_GE(dims, 1);
  CHECK_LE(dims, kMaxDims);
  Zone z;
  z.dims_ = dims;
  for (int d = 0; d < dims; ++d) {
    z.lo_[d] = 0;
    z.width_[d] = kAxisSpan;
  }
  return z;
}

bool Zone::Contains(const Point& p) const {
  for (int d = 0; d < dims_; ++d) {
    // Circular containment: offset of the coordinate from lo, mod 2^32.
    const uint32_t offset = p.coords[d] - lo_[d];
    if (offset >= width_[d]) return false;
  }
  return true;
}

std::pair<Zone, Zone> Zone::Split(int dim) const {
  DCHECK_GE(dim, 0);
  DCHECK_LT(dim, dims_);
  DCHECK_GE(width_[dim], 2u) << "zone too thin to split";
  Zone lower = *this;
  Zone upper = *this;
  const uint64_t half = width_[dim] / 2;
  lower.width_[dim] = half;
  upper.lo_[dim] = static_cast<uint32_t>(lo_[dim] + half);
  upper.width_[dim] = width_[dim] - half;
  return {lower, upper};
}

int Zone::WidestDim() const {
  int best = 0;
  for (int d = 1; d < dims_; ++d) {
    if (width_[d] > width_[best]) best = d;
  }
  return best;
}

double Zone::Volume() const {
  double v = 1.0;
  for (int d = 0; d < dims_; ++d) {
    v *= static_cast<double>(width_[d]) / static_cast<double>(kAxisSpan);
  }
  return v;
}

bool Zone::IsNeighbor(const Zone& other) const {
  DCHECK_EQ(dims_, other.dims_);
  // Zones produced by recursive splitting never wrap: treat intervals
  // as [lo, lo+width] within [0, 2^32], with torus adjacency between
  // the two ends of each axis.
  int abutting = 0;
  for (int d = 0; d < dims_; ++d) {
    const uint64_t a_lo = lo_[d], a_hi = lo_[d] + width_[d];
    const uint64_t b_lo = other.lo_[d], b_hi = other.lo_[d] + other.width_[d];
    const bool overlaps = std::min(a_hi, b_hi) > std::max(a_lo, b_lo);
    const bool abuts = a_hi == b_lo || b_hi == a_lo ||
                       (a_hi == kAxisSpan && b_lo == 0) ||
                       (b_hi == kAxisSpan && a_lo == 0);
    if (overlaps) continue;
    if (abuts) {
      ++abutting;
      continue;
    }
    return false;  // separated along this dimension
  }
  return abutting == 1;
}

bool Zone::CanMergeWith(const Zone& other, int* merge_dim) const {
  DCHECK_EQ(dims_, other.dims_);
  int candidate = -1;
  for (int d = 0; d < dims_; ++d) {
    if (lo_[d] == other.lo_[d] && width_[d] == other.width_[d]) continue;
    // Exactly adjacent along d, without crossing the wrap boundary (a
    // merged zone must remain a non-wrapping box).
    const uint64_t a_hi = static_cast<uint64_t>(lo_[d]) + width_[d];
    const uint64_t b_hi = static_cast<uint64_t>(other.lo_[d]) + other.width_[d];
    const bool adjacent = a_hi == other.lo_[d] || b_hi == lo_[d];
    if (!adjacent || candidate != -1) return false;
    candidate = d;
  }
  if (candidate == -1) return false;  // identical zones
  if (merge_dim != nullptr) *merge_dim = candidate;
  return true;
}

Zone Zone::MergeWith(const Zone& other) const {
  int dim = -1;
  CHECK(CanMergeWith(other, &dim));
  Zone merged = *this;
  if (static_cast<uint64_t>(other.lo_[dim]) + other.width_[dim] == lo_[dim]) {
    merged.lo_[dim] = other.lo_[dim];
  }
  merged.width_[dim] = width_[dim] + other.width_[dim];
  return merged;
}

uint32_t Zone::AxisDistance(uint32_t lo, uint64_t width, uint32_t c) {
  const uint32_t offset = c - lo;
  if (offset < width) return 0;  // inside
  // Distance to the nearer end, around the circle.
  const uint32_t to_lo = lo - c;                                  // going up to lo
  const uint32_t past_hi = offset - static_cast<uint32_t>(width);  // beyond hi
  return std::min(to_lo, past_hi);
}

double Zone::DistanceTo(const Point& p) const {
  double sum = 0;
  for (int d = 0; d < dims_; ++d) {
    const double axis = static_cast<double>(AxisDistance(lo_[d], width_[d],
                                                         p.coords[d])) /
                        static_cast<double>(kAxisSpan);
    sum += axis * axis;
  }
  return std::sqrt(sum);
}

std::string Zone::ToString() const {
  std::string out = "{";
  for (int d = 0; d < dims_; ++d) {
    if (d > 0) out += " x ";
    const double lo = static_cast<double>(lo_[d]) / static_cast<double>(kAxisSpan);
    const double w = static_cast<double>(width_[d]) / static_cast<double>(kAxisSpan);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "[%.4f,%.4f)", lo, lo + w);
    out += buf;
  }
  out += "}";
  return out;
}

Point IdentifierToPoint(uint32_t identifier, int dims) {
  CHECK_GE(dims, 1);
  CHECK_LE(dims, kMaxDims);
  Point p;
  uint64_t state = 0x51a7b2c9u ^ identifier;
  for (int d = 0; d < dims; ++d) {
    p.coords[d] = static_cast<uint32_t>(SplitMix64(state) >> 32);
  }
  return p;
}

}  // namespace can
}  // namespace p2prange
