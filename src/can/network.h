// The CAN overlay: zone ownership, greedy routing, join and takeover.
//
// Mirrors ChordRing's interface so the two DHT substrates can be
// compared head to head (bench/ablation_can_vs_chord): identifiers map
// to points in the d-torus, lookups route greedily through zone
// neighbors with per-hop accounting, joins split the zone containing a
// random point, and departures are absorbed by neighbor takeover.
#ifndef P2PRANGE_CAN_NETWORK_H_
#define P2PRANGE_CAN_NETWORK_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "can/zone.h"
#include "common/random.h"
#include "common/result.h"
#include "net/sim_network.h"

namespace p2prange {
namespace can {

/// \brief Tunables of the CAN overlay.
struct CanConfig {
  int dims = 2;  ///< dimensionality d of the coordinate space
  /// Safety bound on greedy routing steps.
  int max_route_steps = 4096;
  /// Latency/loss model of the underlying simulated network.
  LatencyModel latency;
};

/// \brief Outcome of one lookup.
struct CanLookupResult {
  NetAddress owner;
  int hops = 0;
  double latency_ms = 0.0;
};

/// \brief One CAN node: its zones (one, or several after takeovers)
/// and its current neighbor set.
class CanNode {
 public:
  explicit CanNode(NetAddress addr) : addr_(addr) {}

  const NetAddress& addr() const { return addr_; }

  const std::vector<Zone>& zones() const { return zones_; }
  std::vector<Zone>& mutable_zones() { return zones_; }

  const std::vector<NetAddress>& neighbors() const { return neighbors_; }
  std::vector<NetAddress>& mutable_neighbors() { return neighbors_; }

  bool Owns(const Point& p) const {
    for (const Zone& z : zones_) {
      if (z.Contains(p)) return true;
    }
    return false;
  }

  /// Total fraction of the coordinate space owned.
  double Volume() const {
    double v = 0;
    for (const Zone& z : zones_) v += z.Volume();
    return v;
  }

  /// Distance from this node's closest zone to `p`.
  double DistanceTo(const Point& p) const;

 private:
  NetAddress addr_;
  std::vector<Zone> zones_;
  std::vector<NetAddress> neighbors_;
};

/// \brief A simulated CAN over the d-dimensional unit torus.
class CanNetwork {
 public:
  /// Grows a network to `num_nodes` through the real join protocol
  /// (random point, route, split), then clears the accumulated
  /// routing statistics.
  static Result<CanNetwork> Make(size_t num_nodes, uint64_t seed,
                                 CanConfig config = CanConfig{});

  CanNetwork(CanNetwork&&) noexcept = default;
  CanNetwork& operator=(CanNetwork&&) noexcept = default;

  /// Greedy lookup of `identifier`'s point starting at `from`.
  Result<CanLookupResult> Lookup(const NetAddress& from, uint32_t identifier);

  /// Zero-cost oracle: the owner of a point.
  Result<NetAddress> FindOwnerOracle(const Point& p) const;

  /// Joins a new node (random target point, protocol route + split).
  Result<NetAddress> AddNode();

  /// Graceful departure: each zone merges into a mergeable neighbor
  /// where possible, otherwise the smallest-volume neighbor takes it
  /// over (and temporarily manages multiple zones, as in CAN).
  Status Leave(const NetAddress& addr);

  /// Abrupt failure: the node goes down with no handoff. Its zones
  /// stay assigned to it (points there are unowned) until
  /// TakeoverDeadZones reassigns them — CAN's takeover protocol run
  /// as periodic maintenance.
  Status Fail(const NetAddress& addr);

  /// A failed node comes back at its address. If its zones were not
  /// yet taken over it resumes them; otherwise it re-joins through
  /// the protocol (route + split) keeping the address.
  Status Recover(const NetAddress& addr);

  /// Reassigns every zone still held by a dead node to a live one
  /// (mergeable neighbor first, then the smallest-volume live node),
  /// as CAN's takeover timer would. Returns the number of zones
  /// transferred.
  size_t TakeoverDeadZones();

  size_t num_alive() const;
  const CanNode* node(const NetAddress& addr) const;
  Result<NetAddress> RandomAliveAddress();

  /// Live node addresses in deterministic (join) order.
  std::vector<NetAddress> AliveAddresses() const;

  /// Volumes of all live nodes (sums to ~1); the CAN load metric.
  std::vector<double> Volumes() const;

  /// Per-node neighbor-set sizes (CAN state is O(d) per node).
  std::vector<size_t> NeighborCounts() const;

  SimNetwork& network() { return *net_; }
  const CanConfig& config() const { return config_; }

  /// Validation hook for tests: checks that zones tile the space
  /// (volumes sum to 1), ownership is disjoint on sampled points, and
  /// neighbor sets are symmetric and correct.
  Status CheckInvariants() const;

 private:
  CanNetwork(CanConfig config, uint64_t seed);

  CanNode* mutable_node(const NetAddress& addr);
  Result<NetAddress> CreateAddress();

  /// Protocol join of the already-registered, zoneless, live node at
  /// `addr`: route to a random point from a zone-owning bootstrap and
  /// split the owner's zone. Used by Recover after a takeover.
  Status JoinExisting(const NetAddress& addr);

  /// Routes from `from` to the owner of `p`, charging hops.
  Result<NetAddress> Route(const NetAddress& from, const Point& p,
                           CanLookupResult* out);

  /// Recomputes the neighbor sets of `affected` nodes and of everyone
  /// adjacent to them.
  void RebuildNeighborhoods(const std::vector<NetAddress>& affected);

  CanConfig config_;
  Rng rng_;
  std::unique_ptr<SimNetwork> net_;
  std::unordered_map<NetAddress, std::unique_ptr<CanNode>, NetAddressHash> nodes_;
  std::vector<NetAddress> addresses_;
};

}  // namespace can
}  // namespace p2prange

#endif  // P2PRANGE_CAN_NETWORK_H_
