#include "wire/serde.h"

#include <limits>

namespace p2prange {
namespace wire {

void Encoder::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void Encoder::PutString(std::string_view s) {
  PutVarint(s.size());
  buf_.append(s.data(), s.size());
}

Result<uint8_t> Decoder::U8() {
  if (pos_ >= data_.size()) {
    return Status::OutOfRange("decoder: truncated buffer (u8)");
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint64_t> Decoder::Varint() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos_ >= data_.size()) {
      return Status::OutOfRange("decoder: truncated varint");
    }
    if (shift >= 64) {
      return Status::InvalidArgument("decoder: varint too long");
    }
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

Result<int64_t> Decoder::ZigZag() {
  ASSIGN_OR_RETURN(const uint64_t raw, Varint());
  return UnZigZag(raw);
}

Result<size_t> Decoder::GuardedCount(size_t min_bytes_per_item,
                                     size_t max_items) {
  ASSIGN_OR_RETURN(const uint64_t n, Varint());
  if (n > max_items) {
    return Status::InvalidArgument("element count " + std::to_string(n) +
                                   " exceeds cap " +
                                   std::to_string(max_items));
  }
  const size_t per_item = min_bytes_per_item == 0 ? 1 : min_bytes_per_item;
  if (n > remaining() / per_item) {
    return Status::InvalidArgument("element count " + std::to_string(n) +
                                   " exceeds remaining buffer");
  }
  return static_cast<size_t>(n);
}

Result<std::string> Decoder::String() {
  ASSIGN_OR_RETURN(const uint64_t len, Varint());
  if (len > remaining()) {
    return Status::OutOfRange("decoder: truncated string of length " +
                              std::to_string(len));
  }
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

namespace {
// Wire tags for ValueType; never renumber.
constexpr uint8_t kTagInt = 0;
constexpr uint8_t kTagDouble = 1;
constexpr uint8_t kTagString = 2;
constexpr uint8_t kTagDate = 3;
}  // namespace

void EncodeValue(const Value& v, Encoder* enc) {
  switch (v.type()) {
    case ValueType::kInt64:
      enc->PutU8(kTagInt);
      enc->PutZigZag(v.AsInt());
      return;
    case ValueType::kDouble: {
      enc->PutU8(kTagDouble);
      uint64_t bits;
      const double d = v.AsDouble();
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      enc->PutVarint(bits);
      return;
    }
    case ValueType::kString:
      enc->PutU8(kTagString);
      enc->PutString(v.AsString());
      return;
    case ValueType::kDate:
      enc->PutU8(kTagDate);
      enc->PutZigZag(v.AsDate().days);
      return;
  }
}

Result<Value> DecodeValue(Decoder* dec) {
  ASSIGN_OR_RETURN(const uint8_t tag, dec->U8());
  switch (tag) {
    case kTagInt: {
      ASSIGN_OR_RETURN(const int64_t v, dec->ZigZag());
      return Value(v);
    }
    case kTagDouble: {
      ASSIGN_OR_RETURN(const uint64_t bits, dec->Varint());
      double d;
      __builtin_memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case kTagString: {
      ASSIGN_OR_RETURN(std::string s, dec->String());
      return Value(std::move(s));
    }
    case kTagDate: {
      ASSIGN_OR_RETURN(const int64_t days, dec->ZigZag());
      if (days < std::numeric_limits<int32_t>::min() ||
          days > std::numeric_limits<int32_t>::max()) {
        return Status::InvalidArgument("date days out of 32-bit range: " +
                                       std::to_string(days));
      }
      return Value(Date{static_cast<int32_t>(days)});
    }
    default:
      return Status::InvalidArgument("unknown value tag " + std::to_string(tag));
  }
}

void EncodeSchema(const Schema& s, Encoder* enc) {
  enc->PutVarint(s.num_fields());
  for (const Field& f : s.fields()) {
    enc->PutString(f.name);
    enc->PutU8(static_cast<uint8_t>(f.type));
    enc->PutU8(f.domain.has_value() ? 1 : 0);
    if (f.domain) {
      enc->PutZigZag(f.domain->lo);
      enc->PutZigZag(f.domain->hi);
    }
  }
}

Result<Schema> DecodeSchema(Decoder* dec) {
  ASSIGN_OR_RETURN(const uint64_t n, dec->Varint());
  // Every field costs at least 3 encoded bytes (name length, type,
  // domain presence); a count beyond that is garbage. Checked before
  // reserve() so corrupt input cannot force a huge allocation.
  if (n > dec->remaining() / 3) {
    return Status::InvalidArgument("field count " + std::to_string(n) +
                                   " exceeds remaining buffer");
  }
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Field f;
    ASSIGN_OR_RETURN(f.name, dec->String());
    ASSIGN_OR_RETURN(const uint8_t type, dec->U8());
    if (type > static_cast<uint8_t>(ValueType::kDate)) {
      return Status::InvalidArgument("unknown field type " + std::to_string(type));
    }
    f.type = static_cast<ValueType>(type);
    ASSIGN_OR_RETURN(const uint8_t has_domain, dec->U8());
    if (has_domain == 1) {
      AttributeDomain d;
      ASSIGN_OR_RETURN(d.lo, dec->ZigZag());
      ASSIGN_OR_RETURN(d.hi, dec->ZigZag());
      if (d.lo > d.hi) {
        return Status::InvalidArgument("domain lo exceeds hi on the wire");
      }
      f.domain = d;
    } else if (has_domain != 0) {
      return Status::InvalidArgument("corrupt domain presence byte");
    }
    fields.push_back(std::move(f));
  }
  return Schema(std::move(fields));
}

void EncodeRelation(const Relation& r, Encoder* enc) {
  enc->PutString(r.name());
  EncodeSchema(r.schema(), enc);
  enc->PutVarint(r.num_rows());
  for (const Row& row : r.rows()) {
    for (const Value& v : row) EncodeValue(v, enc);
  }
}

Result<Relation> DecodeRelation(Decoder* dec) {
  ASSIGN_OR_RETURN(std::string name, dec->String());
  ASSIGN_OR_RETURN(Schema schema, DecodeSchema(dec));
  ASSIGN_OR_RETURN(const uint64_t rows, dec->Varint());
  // Each row costs at least one byte per value; a zero-column schema
  // cannot carry rows at all. Checked before Reserve() so corrupt
  // input can neither force a huge allocation nor spin the row loop.
  const size_t fields = schema.num_fields();
  if (fields == 0 ? rows != 0 : rows > dec->remaining() / fields) {
    return Status::InvalidArgument("row count " + std::to_string(rows) +
                                   " exceeds remaining buffer");
  }
  Relation out(std::move(name), std::move(schema));
  out.Reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    Row row;
    row.reserve(out.schema().num_fields());
    for (size_t c = 0; c < out.schema().num_fields(); ++c) {
      ASSIGN_OR_RETURN(Value v, DecodeValue(dec));
      if (v.type() != out.schema().field(c).type) {
        return Status::InvalidArgument("row value type mismatch on the wire");
      }
      row.push_back(std::move(v));
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

void EncodePartitionKey(const PartitionKey& k, Encoder* enc) {
  enc->PutString(k.relation);
  enc->PutString(k.attribute);
  enc->PutVarint(k.range.lo());
  enc->PutVarint(k.range.hi());
}

Result<PartitionKey> DecodePartitionKey(Decoder* dec) {
  PartitionKey k;
  ASSIGN_OR_RETURN(k.relation, dec->String());
  ASSIGN_OR_RETURN(k.attribute, dec->String());
  ASSIGN_OR_RETURN(const uint64_t lo, dec->Varint());
  ASSIGN_OR_RETURN(const uint64_t hi, dec->Varint());
  if (lo > hi || hi > 0xFFFFFFFFull) {
    return Status::InvalidArgument("corrupt range on the wire");
  }
  ASSIGN_OR_RETURN(k.range, Range::Make(static_cast<uint32_t>(lo),
                                        static_cast<uint32_t>(hi)));
  return k;
}

void EncodeNetAddress(const NetAddress& a, Encoder* enc) {
  enc->PutVarint(a.host);
  enc->PutVarint(a.port);
}

Result<NetAddress> DecodeNetAddress(Decoder* dec) {
  ASSIGN_OR_RETURN(const uint64_t host, dec->Varint());
  ASSIGN_OR_RETURN(const uint64_t port, dec->Varint());
  if (host > 0xFFFFFFFFull || port > 0xFFFFull) {
    return Status::InvalidArgument("corrupt net address on the wire");
  }
  return NetAddress{static_cast<uint32_t>(host), static_cast<uint16_t>(port)};
}

void EncodePartitionDescriptor(const PartitionDescriptor& d, Encoder* enc) {
  EncodePartitionKey(d.key, enc);
  EncodeNetAddress(d.holder, enc);
}

Result<PartitionDescriptor> DecodePartitionDescriptor(Decoder* dec) {
  PartitionDescriptor d;
  ASSIGN_OR_RETURN(d.key, DecodePartitionKey(dec));
  ASSIGN_OR_RETURN(d.holder, DecodeNetAddress(dec));
  return d;
}

size_t RelationWireSize(const Relation& r) {
  Encoder enc;
  EncodeRelation(r, &enc);
  return enc.size();
}

}  // namespace wire
}  // namespace p2prange
