// Binary wire format for everything peers ship to each other: values,
// rows, schemas, whole relations, and partition descriptors.
//
// Purpose-built, compact, and versioned-by-tag: varint-encoded lengths
// and zigzag integers, no external dependencies. The SimNetwork
// charges these encoded sizes, so "bytes from source" vs "bytes from
// caches" in the system metrics reflect real payloads rather than
// counts.
#ifndef P2PRANGE_WIRE_SERDE_H_
#define P2PRANGE_WIRE_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "rel/relation.h"
#include "rel/schema.h"
#include "store/partition_key.h"

namespace p2prange {
namespace wire {

/// \brief Appends primitives to a byte buffer.
class Encoder {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutVarint(uint64_t v);
  void PutZigZag(int64_t v) { PutVarint(ZigZag(v)); }
  void PutString(std::string_view s);

  /// Encoded size so far.
  size_t size() const { return buf_.size(); }
  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

  static uint64_t ZigZag(int64_t v) {
    return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  }

 private:
  std::string buf_;
};

/// \brief Reads primitives back; every accessor validates bounds.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Result<uint8_t> U8();
  Result<uint64_t> Varint();
  Result<int64_t> ZigZag();
  Result<std::string> String();

  /// \brief Reads a varint element count and validates it before any
  /// allocation: the count must not exceed `max_items`, and the buffer
  /// must hold at least `min_bytes_per_item` bytes per element. The
  /// one sanctioned way to read a repeated-field length from untrusted
  /// bytes — a hostile prefix can then neither force a huge reserve()
  /// nor spin a decode loop past the payload.
  Result<size_t> GuardedCount(size_t min_bytes_per_item, size_t max_items);

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  static int64_t UnZigZag(uint64_t v) {
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// --- Domain types -----------------------------------------------------

void EncodeValue(const Value& v, Encoder* enc);
Result<Value> DecodeValue(Decoder* dec);

void EncodeSchema(const Schema& s, Encoder* enc);
Result<Schema> DecodeSchema(Decoder* dec);

void EncodeRelation(const Relation& r, Encoder* enc);
Result<Relation> DecodeRelation(Decoder* dec);

void EncodePartitionKey(const PartitionKey& k, Encoder* enc);
Result<PartitionKey> DecodePartitionKey(Decoder* dec);

void EncodeNetAddress(const NetAddress& a, Encoder* enc);
Result<NetAddress> DecodeNetAddress(Decoder* dec);

/// \brief Descriptor records: what the durable store logs and what
/// recovery pulls from replicas (key + holder).
void EncodePartitionDescriptor(const PartitionDescriptor& d, Encoder* enc);
Result<PartitionDescriptor> DecodePartitionDescriptor(Decoder* dec);

/// \brief The wire size of a relation payload (encode-and-measure).
size_t RelationWireSize(const Relation& r);

}  // namespace wire
}  // namespace p2prange

#endif  // P2PRANGE_WIRE_SERDE_H_
