// Per-peer Chord routing state: identifier, predecessor, successor
// list, and finger table. Protocol logic (join, stabilize, lookup)
// lives in ChordRing; a node only answers questions about its own
// state, which is exactly what a real Chord node can do locally.
#ifndef P2PRANGE_CHORD_NODE_H_
#define P2PRANGE_CHORD_NODE_H_

#include <array>
#include <functional>
#include <optional>
#include <vector>

#include "chord/id.h"
#include "net/address.h"

namespace p2prange {
namespace chord {

/// \brief A (identifier, address) pair — the routing handle for a peer.
struct NodeInfo {
  ChordId id = 0;
  NetAddress addr;

  bool operator==(const NodeInfo&) const = default;
};

/// \brief The finger table: entry i points at the first node whose
/// identifier succeeds FingerStart(n, i) = n + 2^i.
class FingerTable {
 public:
  /// Entry accessors; unset entries are nullopt.
  const std::optional<NodeInfo>& entry(int i) const { return entries_[i]; }
  void set_entry(int i, NodeInfo info) { entries_[i] = info; }
  void clear_entry(int i) { entries_[i] = std::nullopt; }
  void Clear() { entries_.fill(std::nullopt); }

  static constexpr int size() { return kIdBits; }

 private:
  std::array<std::optional<NodeInfo>, kIdBits> entries_{};
};

/// \brief Routing state of one peer.
class ChordNode {
 public:
  ChordNode(ChordId id, NetAddress addr) : info_{id, addr} {}

  const NodeInfo& info() const { return info_; }
  ChordId id() const { return info_.id; }
  const NetAddress& addr() const { return info_.addr; }

  const std::optional<NodeInfo>& predecessor() const { return predecessor_; }
  void set_predecessor(std::optional<NodeInfo> p) { predecessor_ = std::move(p); }

  /// The successor list, closest first. successors()[0] is the
  /// immediate successor (== self only in a single-node ring).
  const std::vector<NodeInfo>& successors() const { return successors_; }
  std::vector<NodeInfo>& mutable_successors() { return successors_; }

  /// Immediate successor; self if the list is empty (fresh node).
  NodeInfo successor() const {
    return successors_.empty() ? info_ : successors_.front();
  }

  const FingerTable& fingers() const { return fingers_; }
  FingerTable& mutable_fingers() { return fingers_; }

  /// True if this node owns identifier `x`, i.e. x ∈ (predecessor, id].
  /// With no predecessor knowledge the node cannot claim ownership
  /// except in a single-node ring.
  bool OwnsId(ChordId x) const {
    if (!predecessor_) return successors_.empty() || successor() == info_;
    return InOpenClosed(predecessor_->id, info_.id, x);
  }

  /// \brief The local routing decision of the Chord lookup: the
  /// closest node strictly preceding `target` among this node's
  /// fingers and successor list, restricted to nodes accepted by
  /// `usable` (the caller's failure knowledge). Returns nullopt when
  /// no known node improves on self.
  std::optional<NodeInfo> ClosestPrecedingNode(
      ChordId target, const std::function<bool(const NodeInfo&)>& usable) const;

 private:
  NodeInfo info_;
  std::optional<NodeInfo> predecessor_;
  std::vector<NodeInfo> successors_;
  FingerTable fingers_;
};

}  // namespace chord
}  // namespace p2prange

#endif  // P2PRANGE_CHORD_NODE_H_
