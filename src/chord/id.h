// Circular identifier-space arithmetic for the 32-bit Chord ring.
//
// The paper (§4) uses a 32-bit identifier space organized as a ring;
// both peer identifiers (SHA-1 of address) and data-partition
// identifiers (LSH of the range set) live in this space.
#ifndef P2PRANGE_CHORD_ID_H_
#define P2PRANGE_CHORD_ID_H_

#include <cstdint>

namespace p2prange {
namespace chord {

using ChordId = uint32_t;

/// Ring width in bits; the identifier space is [0, 2^32).
inline constexpr int kIdBits = 32;

/// Clockwise distance from a to b (how far forward b is from a).
/// Unsigned wraparound gives the mod-2^32 ring metric for free.
inline uint32_t ClockwiseDistance(ChordId a, ChordId b) { return b - a; }

/// x ∈ (a, b] walking clockwise. When a == b the interval is the whole
/// ring (Chord's convention for a single-node ring).
inline bool InOpenClosed(ChordId a, ChordId b, ChordId x) {
  if (a == b) return true;
  return ClockwiseDistance(a, x) != 0 && ClockwiseDistance(a, x) <= ClockwiseDistance(a, b);
}

/// x ∈ (a, b) walking clockwise. When a == b the interval is the whole
/// ring minus a itself.
inline bool InOpenOpen(ChordId a, ChordId b, ChordId x) {
  if (a == b) return x != a;
  return ClockwiseDistance(a, x) != 0 && ClockwiseDistance(a, x) < ClockwiseDistance(a, b);
}

/// x ∈ [a, b) walking clockwise.
inline bool InClosedOpen(ChordId a, ChordId b, ChordId x) {
  if (a == b) return true;
  return ClockwiseDistance(a, x) < ClockwiseDistance(a, b);
}

/// The start of finger i of node n: n + 2^i (mod 2^32), i in [0, 32).
inline ChordId FingerStart(ChordId n, int i) {
  return n + (static_cast<uint32_t>(1) << i);
}

}  // namespace chord
}  // namespace p2prange

#endif  // P2PRANGE_CHORD_ID_H_
