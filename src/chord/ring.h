// The Chord overlay: membership, maintenance, and lookup.
//
// ChordRing is the simulation harness around a set of ChordNodes. It
// plays the role the MIT Chord simulator played in the paper: nodes
// hold only their own routing state; every remote interaction during a
// lookup is charged through the SimNetwork so hop counts (the paper's
// "path length", Figure 12) are honest.
#ifndef P2PRANGE_CHORD_RING_H_
#define P2PRANGE_CHORD_RING_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "chord/node.h"
#include "common/random.h"
#include "common/result.h"
#include "net/sim_network.h"
#include "rpc/transport.h"

namespace p2prange {
namespace chord {

/// \brief Tunables of the overlay.
struct ChordConfig {
  /// Successor-list length (fault tolerance; Chord suggests O(log N)).
  int successor_list_len = 8;
  /// Safety bound on routing steps before a lookup is declared broken.
  int max_lookup_steps = 3 * kIdBits;
  /// Latency/loss model of the underlying simulated network.
  LatencyModel latency;
  /// Retransmissions per routing message when it is lost in transit.
  int max_message_retries = 3;
};

/// \brief Outcome of one lookup: the owning node plus routing cost.
struct LookupResult {
  NodeInfo owner;
  /// Number of remote nodes contacted (the paper's path length).
  int hops = 0;
  /// Total simulated network latency of the contacted path.
  double latency_ms = 0.0;
  /// Identifiers of the contacted nodes in order (excludes the origin).
  std::vector<ChordId> path;
};

/// \brief A simulated Chord ring over a 32-bit identifier space.
class ChordRing {
 public:
  /// Builds a ring of `num_nodes` peers with SHA-1-derived identifiers
  /// and fully correct routing state (the steady state a long-running
  /// stabilized ring converges to).
  static Result<ChordRing> Make(size_t num_nodes, uint64_t seed,
                                ChordConfig config = ChordConfig{});

  /// Same, over a caller-supplied transport (e.g. a pre-configured
  /// SimTransport, or a future real one). When `transport` is null the
  /// default SimTransport is built from `config.latency` and `seed`.
  static Result<ChordRing> Make(size_t num_nodes, uint64_t seed,
                                ChordConfig config,
                                std::unique_ptr<rpc::Transport> transport);

  ChordRing(ChordRing&&) noexcept = default;
  ChordRing& operator=(ChordRing&&) noexcept = default;

  // --- Membership -----------------------------------------------------

  /// Joins a brand-new peer at a generated address via the Chord join
  /// protocol (bootstrap through an existing node; fingers built with
  /// protocol lookups). Returns the new node's info.
  Result<NodeInfo> AddNode();

  /// Gracefully removes a peer: its predecessor and successor are
  /// patched, the peer goes down; remaining stale references are
  /// repaired by stabilization and lookup fallback.
  Status Leave(const NetAddress& addr);

  /// Abrupt failure: the peer simply goes down.
  Status Fail(const NetAddress& addr);

  /// A previously failed peer comes back up with its identifier. It
  /// re-bootstraps its routing state through a live node (protocol
  /// lookups), like a fresh join but keeping its address and id.
  Status Recover(const NetAddress& addr);

  // --- Maintenance ----------------------------------------------------

  /// One round of Chord stabilization + notify on every live node.
  void StabilizeAll(int rounds = 1);

  /// Rebuilds every live node's fingers with protocol lookups.
  void FixAllFingers();

  /// Oracle maintenance: installs exactly correct predecessors,
  /// successor lists, and fingers on all live nodes.
  void RebuildPerfectState();

  // --- Lookup ---------------------------------------------------------

  /// Iterative Chord lookup of `target` initiated at `from`. Routes
  /// around failed peers using successor lists. Hop and latency costs
  /// are recorded in the result and in network().stats().
  Result<LookupResult> Lookup(const NetAddress& from, ChordId target);

  /// Zero-cost oracle: the correct owner of `target` among live nodes.
  Result<NodeInfo> FindSuccessorOracle(ChordId target) const;

  // --- Introspection ----------------------------------------------------

  size_t num_alive() const;
  size_t num_total() const { return nodes_.size(); }

  /// Live nodes in identifier order.
  std::vector<NodeInfo> AliveNodesSorted() const;

  /// A uniformly random live peer (e.g. to originate a lookup).
  Result<NetAddress> RandomAliveAddress();

  ChordNode* node(const NetAddress& addr);
  const ChordNode* node(const NetAddress& addr) const;

  /// The message layer every remote interaction is charged through.
  /// Default rings use a SimTransport wrapping the simulator the paper
  /// evaluation always ran on.
  rpc::Transport& network() { return *net_; }
  const ChordConfig& config() const { return config_; }

 private:
  ChordRing(ChordConfig config, uint64_t seed,
            std::unique_ptr<rpc::Transport> transport);

  /// Registers a fresh node with a unique generated address/id.
  Result<NodeInfo> CreateNode();

  /// The first live entry of n's successor list (n's own knowledge of
  /// its successor after failure detection); n itself if none.
  NodeInfo FirstAliveSuccessor(const ChordNode& n) const;

  /// Protocol find_successor initiated at `from`; accumulates cost
  /// into `out` when non-null.
  Result<NodeInfo> ProtocolFindSuccessor(const NetAddress& from, ChordId target,
                                         LookupResult* out);

  void Stabilize(ChordNode& n);
  void Notify(ChordNode& successor, const NodeInfo& candidate);
  void FixFingers(ChordNode& n);

  void MarkDirty() { sorted_dirty_ = true; }
  const std::vector<NodeInfo>& SortedAlive() const;

  ChordConfig config_;
  Rng rng_;
  std::unique_ptr<rpc::Transport> net_;
  std::unordered_map<NetAddress, std::unique_ptr<ChordNode>, NetAddressHash> nodes_;
  std::vector<NetAddress> addresses_;  // insertion order, includes dead peers

  mutable std::vector<NodeInfo> sorted_alive_;
  mutable bool sorted_dirty_ = true;
};

}  // namespace chord
}  // namespace p2prange

#endif  // P2PRANGE_CHORD_RING_H_
