#include "chord/node.h"

namespace p2prange {
namespace chord {

std::optional<NodeInfo> ChordNode::ClosestPrecedingNode(
    ChordId target, const std::function<bool(const NodeInfo&)>& usable) const {
  std::optional<NodeInfo> best;
  auto consider = [&](const NodeInfo& cand) {
    if (cand.id == info_.id) return;
    if (!InOpenOpen(info_.id, target, cand.id)) return;
    if (usable && !usable(cand)) return;
    // "Closest preceding" = largest clockwise distance from self while
    // still strictly before the target.
    if (!best ||
        ClockwiseDistance(info_.id, cand.id) > ClockwiseDistance(info_.id, best->id)) {
      best = cand;
    }
  };
  for (int i = FingerTable::size() - 1; i >= 0; --i) {
    if (fingers_.entry(i)) consider(*fingers_.entry(i));
  }
  for (const NodeInfo& s : successors_) consider(s);
  return best;
}

}  // namespace chord
}  // namespace p2prange
