#include "chord/ring.h"

#include <algorithm>

#include "common/logging.h"
#include "hash/sha1.h"
#include "rpc/sim_transport.h"

namespace p2prange {
namespace chord {

ChordRing::ChordRing(ChordConfig config, uint64_t seed,
                     std::unique_ptr<rpc::Transport> transport)
    : config_(config),
      rng_(seed),
      net_(transport ? std::move(transport)
                     : std::make_unique<rpc::SimTransport>(config.latency,
                                                           seed ^ 0xABCDEF)) {}

Result<ChordRing> ChordRing::Make(size_t num_nodes, uint64_t seed, ChordConfig config) {
  return Make(num_nodes, seed, config, nullptr);
}

Result<ChordRing> ChordRing::Make(size_t num_nodes, uint64_t seed, ChordConfig config,
                                  std::unique_ptr<rpc::Transport> transport) {
  if (num_nodes == 0) {
    return Status::InvalidArgument("a ring needs at least one node");
  }
  if (config.successor_list_len < 1) {
    return Status::InvalidArgument("successor_list_len must be >= 1");
  }
  if (config.max_message_retries < 0) {
    return Status::InvalidArgument("max_message_retries must be >= 0");
  }
  RETURN_NOT_OK(config.latency.Validate());
  ChordRing ring(config, seed, std::move(transport));
  for (size_t i = 0; i < num_nodes; ++i) {
    RETURN_NOT_OK(ring.CreateNode().status());
  }
  ring.RebuildPerfectState();
  return ring;
}

Result<NodeInfo> ChordRing::CreateNode() {
  // Draw addresses until both the address and its SHA-1 identifier are
  // unused. Identifier collisions are ~N^2/2^33 likely, so a couple of
  // retries suffice at any realistic scale.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    NetAddress addr;
    addr.host = rng_.Next32();
    addr.port = static_cast<uint16_t>(1024 + rng_.NextBounded(60000));
    if (nodes_.contains(addr)) continue;
    const ChordId id = Sha1::Hash32(addr.ToString());
    bool id_taken = false;
    for (const auto& [a, n] : nodes_) {
      if (n->id() == id) {
        id_taken = true;
        break;
      }
    }
    if (id_taken) continue;
    auto node = std::make_unique<ChordNode>(id, addr);
    const NodeInfo info = node->info();
    net_->Register(addr);
    nodes_.emplace(addr, std::move(node));
    addresses_.push_back(addr);
    MarkDirty();
    return info;
  }
  return Status::Internal("could not generate a unique node identifier");
}

const std::vector<NodeInfo>& ChordRing::SortedAlive() const {
  if (sorted_dirty_) {
    sorted_alive_.clear();
    sorted_alive_.reserve(nodes_.size());
    for (const auto& [addr, node] : nodes_) {
      if (net_->IsAlive(addr)) sorted_alive_.push_back(node->info());
    }
    std::sort(sorted_alive_.begin(), sorted_alive_.end(),
              [](const NodeInfo& a, const NodeInfo& b) { return a.id < b.id; });
    sorted_dirty_ = false;
  }
  return sorted_alive_;
}

size_t ChordRing::num_alive() const { return SortedAlive().size(); }

std::vector<NodeInfo> ChordRing::AliveNodesSorted() const { return SortedAlive(); }

Result<NetAddress> ChordRing::RandomAliveAddress() {
  const auto& alive = SortedAlive();
  if (alive.empty()) return Status::NotFound("no live nodes");
  return alive[rng_.NextBounded(alive.size())].addr;
}

ChordNode* ChordRing::node(const NetAddress& addr) {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

const ChordNode* ChordRing::node(const NetAddress& addr) const {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

Result<NodeInfo> ChordRing::FindSuccessorOracle(ChordId target) const {
  const auto& alive = SortedAlive();
  if (alive.empty()) return Status::NotFound("no live nodes");
  // First node with id >= target, wrapping to the smallest id.
  auto it = std::lower_bound(
      alive.begin(), alive.end(), target,
      [](const NodeInfo& n, ChordId t) { return n.id < t; });
  if (it == alive.end()) it = alive.begin();
  return *it;
}

void ChordRing::RebuildPerfectState() {
  const auto& alive = SortedAlive();
  const size_t n = alive.size();
  if (n == 0) return;
  // Index of each live node in ring order.
  for (size_t i = 0; i < n; ++i) {
    ChordNode* nd = node(alive[i].addr);
    // Predecessor: previous in ring order (self in a 1-node ring).
    nd->set_predecessor(alive[(i + n - 1) % n]);
    // Successor list: the next `successor_list_len` nodes clockwise.
    auto& succ = nd->mutable_successors();
    succ.clear();
    const size_t len = std::min<size_t>(config_.successor_list_len, n);
    for (size_t j = 1; j <= len; ++j) succ.push_back(alive[(i + j) % n]);
    if (succ.empty()) succ.push_back(nd->info());  // 1-node ring
    // Fingers: successor of id + 2^k.
    FingerTable& ft = nd->mutable_fingers();
    for (int k = 0; k < FingerTable::size(); ++k) {
      const ChordId start = FingerStart(nd->id(), k);
      auto it = std::lower_bound(
          alive.begin(), alive.end(), start,
          [](const NodeInfo& a, ChordId t) { return a.id < t; });
      if (it == alive.end()) it = alive.begin();
      ft.set_entry(k, *it);
    }
  }
}

NodeInfo ChordRing::FirstAliveSuccessor(const ChordNode& n) const {
  for (const NodeInfo& s : n.successors()) {
    if (net_->IsAlive(s.addr)) return s;
  }
  return n.info();
}

Result<NodeInfo> ChordRing::ProtocolFindSuccessor(const NetAddress& from,
                                                  ChordId target, LookupResult* out) {
  const ChordNode* origin = node(from);
  if (origin == nullptr || !net_->IsAlive(from)) {
    return Status::InvalidArgument("lookup origin " + from.ToString() +
                                   " is not a live peer");
  }
  auto charge = [&](const NetAddress& to) -> Status {
    // Messages to live peers may be lost in transit; retransmit a few
    // times before giving up. Every attempt pays latency.
    Status last;
    for (int attempt = 0; attempt <= config_.max_message_retries; ++attempt) {
      auto latency = net_->Deliver(from, to);
      if (latency.ok()) {
        if (out != nullptr) {
          ++out->hops;
          out->latency_ms += *latency;
          out->path.push_back(node(to)->id());
        }
        return Status::OK();
      }
      last = latency.status();
      if (!last.IsIOError()) return last;  // dead peer: retrying is futile
      if (out != nullptr) out->latency_ms += config_.latency.base_ms;
    }
    return last;
  };

  const ChordNode* cur = origin;
  for (int step = 0; step < config_.max_lookup_steps; ++step) {
    const NodeInfo succ = FirstAliveSuccessor(*cur);
    if (InOpenClosed(cur->id(), succ.id, target)) {
      // succ owns the target; contact it (the final routing hop),
      // unless the owner is the node we are already talking to.
      if (succ.addr != cur->addr()) RETURN_NOT_OK(charge(succ.addr));
      return succ;
    }
    auto usable = [this](const NodeInfo& cand) { return net_->IsAlive(cand.addr); };
    std::optional<NodeInfo> next = cur->ClosestPrecedingNode(target, usable);
    if (!next || next->addr == cur->addr()) {
      next = succ;  // cannot improve; fall through to the successor
    }
    if (next->addr == cur->addr()) {
      // Degenerate ring (everything points at cur): cur is the owner.
      return cur->info();
    }
    RETURN_NOT_OK(charge(next->addr));
    cur = node(next->addr);
    DCHECK(cur != nullptr);
  }
  return Status::Internal("lookup for " + std::to_string(target) +
                          " did not converge; ring state is inconsistent");
}

Result<LookupResult> ChordRing::Lookup(const NetAddress& from, ChordId target) {
  LookupResult result;
  ASSIGN_OR_RETURN(result.owner, ProtocolFindSuccessor(from, target, &result));
  return result;
}

Result<NodeInfo> ChordRing::AddNode() {
  // Pick a bootstrap peer before registering the newcomer.
  auto bootstrap = RandomAliveAddress();
  ASSIGN_OR_RETURN(const NodeInfo info, CreateNode());
  ChordNode* fresh = node(info.addr);
  if (!bootstrap.ok()) {
    // First node of the system: a ring of one.
    fresh->mutable_successors().push_back(info);
    fresh->set_predecessor(info);
    return info;
  }
  // Chord join: resolve our own identifier through the bootstrap node.
  ASSIGN_OR_RETURN(const NodeInfo succ,
                   ProtocolFindSuccessor(*bootstrap, info.id, nullptr));
  auto& list = fresh->mutable_successors();
  list.push_back(succ);
  const ChordNode* succ_node = node(succ.addr);
  for (const NodeInfo& s : succ_node->successors()) {
    if (static_cast<int>(list.size()) >= config_.successor_list_len) break;
    if (s.addr == info.addr) continue;
    if (std::find(list.begin(), list.end(), s) != list.end()) continue;
    list.push_back(s);
  }
  Stabilize(*fresh);
  FixFingers(*fresh);
  return info;
}

Status ChordRing::Leave(const NetAddress& addr) {
  ChordNode* n = node(addr);
  if (n == nullptr) return Status::NotFound("unknown peer " + addr.ToString());
  if (!net_->IsAlive(addr)) return Status::InvalidArgument("peer already down");
  // Graceful departure: hand our successor to our predecessor and our
  // predecessor to our successor, then go down.
  const NodeInfo succ = FirstAliveSuccessor(*n);
  if (n->predecessor() && net_->IsAlive(n->predecessor()->addr) &&
      n->predecessor()->addr != addr) {
    ChordNode* pred = node(n->predecessor()->addr);
    auto& list = pred->mutable_successors();
    std::erase_if(list, [&](const NodeInfo& s) { return s.addr == addr; });
    if (succ.addr != addr &&
        std::find(list.begin(), list.end(), succ) == list.end()) {
      list.insert(list.begin(), succ);
    }
  }
  if (succ.addr != addr) {
    ChordNode* s = node(succ.addr);
    if (s->predecessor() && s->predecessor()->addr == addr) {
      s->set_predecessor(n->predecessor());
    }
  }
  RETURN_NOT_OK(net_->SetAlive(addr, false));
  MarkDirty();
  return Status::OK();
}

Status ChordRing::Fail(const NetAddress& addr) {
  if (node(addr) == nullptr) return Status::NotFound("unknown peer " + addr.ToString());
  RETURN_NOT_OK(net_->SetAlive(addr, false));
  MarkDirty();
  return Status::OK();
}

Status ChordRing::Recover(const NetAddress& addr) {
  ChordNode* n = node(addr);
  if (n == nullptr) return Status::NotFound("unknown peer " + addr.ToString());
  if (net_->IsAlive(addr)) return Status::InvalidArgument("peer already up");
  // Stale routing state from before the crash would point anywhere;
  // wipe it and re-bootstrap like a joiner.
  n->mutable_successors().clear();
  n->set_predecessor(std::nullopt);
  n->mutable_fingers().Clear();
  auto bootstrap = RandomAliveAddress();
  RETURN_NOT_OK(net_->SetAlive(addr, true));
  MarkDirty();
  if (!bootstrap.ok()) {
    // Everyone else is down: a ring of one.
    n->mutable_successors().push_back(n->info());
    n->set_predecessor(n->info());
    return Status::OK();
  }
  auto succ = ProtocolFindSuccessor(*bootstrap, n->id(), nullptr);
  if (!succ.ok() || succ->addr == addr) {
    // Bootstrap routing failed (e.g. heavy loss) or resolved to the
    // recovering node itself: start as a self-ring; notifies during
    // later stabilization sweeps reconnect it.
    n->mutable_successors().push_back(n->info());
    return Status::OK();
  }
  auto& list = n->mutable_successors();
  list.push_back(*succ);
  const ChordNode* succ_node = node(succ->addr);
  for (const NodeInfo& s : succ_node->successors()) {
    if (static_cast<int>(list.size()) >= config_.successor_list_len) break;
    if (s.addr == addr) continue;
    if (std::find(list.begin(), list.end(), s) != list.end()) continue;
    list.push_back(s);
  }
  Stabilize(*n);
  FixFingers(*n);
  return Status::OK();
}

void ChordRing::Stabilize(ChordNode& n) {
  NodeInfo succ = FirstAliveSuccessor(n);
  if (succ.addr == n.addr()) {
    // Self-ring. If a joiner has announced itself as our predecessor,
    // adopt it as successor (this is how a 1-node ring grows);
    // otherwise stay collapsed until a notify reconnects us.
    if (n.predecessor() && n.predecessor()->addr != n.addr() &&
        net_->IsAlive(n.predecessor()->addr)) {
      succ = *n.predecessor();
      n.mutable_successors().assign(1, succ);
    } else {
      n.mutable_successors().assign(1, n.info());
      return;
    }
  }
  ChordNode* s = node(succ.addr);
  // Adopt the successor's predecessor when it sits between us.
  const auto& x = s->predecessor();
  if (x && net_->IsAlive(x->addr) && InOpenOpen(n.id(), succ.id, x->id)) {
    succ = *x;
    s = node(succ.addr);
  }
  // Reconcile the successor list from the (possibly new) successor.
  auto& list = n.mutable_successors();
  list.clear();
  list.push_back(succ);
  for (const NodeInfo& e : s->successors()) {
    if (static_cast<int>(list.size()) >= config_.successor_list_len) break;
    if (e.addr == n.addr()) continue;
    if (!net_->IsAlive(e.addr)) continue;
    if (std::find(list.begin(), list.end(), e) == list.end()) list.push_back(e);
  }
  Notify(*s, n.info());
  // Drop a dead predecessor so a live one can claim the slot.
  if (n.predecessor() && !net_->IsAlive(n.predecessor()->addr)) {
    n.set_predecessor(std::nullopt);
  }
}

void ChordRing::Notify(ChordNode& successor, const NodeInfo& candidate) {
  const auto& pred = successor.predecessor();
  if (!pred || !net_->IsAlive(pred->addr) ||
      InOpenOpen(pred->id, successor.id(), candidate.id)) {
    if (candidate.addr != successor.addr()) successor.set_predecessor(candidate);
  }
}

void ChordRing::FixFingers(ChordNode& n) {
  for (int k = 0; k < FingerTable::size(); ++k) {
    auto succ = ProtocolFindSuccessor(n.addr(), FingerStart(n.id(), k), nullptr);
    if (succ.ok()) {
      n.mutable_fingers().set_entry(k, *succ);
    } else {
      n.mutable_fingers().clear_entry(k);
    }
  }
}

void ChordRing::StabilizeAll(int rounds) {
  for (int r = 0; r < rounds; ++r) {
    for (const NetAddress& addr : addresses_) {
      if (!net_->IsAlive(addr)) continue;
      Stabilize(*node(addr));
    }
  }
}

void ChordRing::FixAllFingers() {
  for (const NetAddress& addr : addresses_) {
    if (!net_->IsAlive(addr)) continue;
    FixFingers(*node(addr));
  }
}

}  // namespace chord
}  // namespace p2prange
