// CSV import/export for relations (RFC 4180 quoting), so external
// data can be loaded into a catalog and query results exported.
#ifndef P2PRANGE_REL_CSV_H_
#define P2PRANGE_REL_CSV_H_

#include <iostream>
#include <string>

#include "common/result.h"
#include "rel/relation.h"

namespace p2prange {

/// \brief Writes `rel` as CSV: a header row of field names, then one
/// row per tuple. Strings containing commas, quotes, or newlines are
/// quoted with doubled inner quotes; dates print as YYYY-MM-DD.
Status WriteCsv(const Relation& rel, std::ostream* out);

/// \brief Parses CSV produced by WriteCsv (or any RFC 4180 file whose
/// columns match `schema` in order). The header row is validated
/// against the schema's field names. Values are typed by the schema:
/// int64, double, date ("YYYY-MM-DD"), or string.
Result<Relation> ReadCsv(const std::string& relation_name, const Schema& schema,
                         std::istream* in);

}  // namespace p2prange

#endif  // P2PRANGE_REL_CSV_H_
