#include "rel/generator.h"

#include "common/logging.h"

namespace p2prange {

namespace {

const char* kFirstNames[] = {"Alice", "Bob",  "Carol", "Dave",  "Erin",
                             "Frank", "Grace", "Heidi", "Ivan", "Judy",
                             "Mallory", "Niaj", "Olivia", "Peggy", "Rupert",
                             "Sybil", "Trent", "Uma", "Victor", "Wendy"};
const char* kLastNames[] = {"Adams",  "Brown",  "Clark", "Davis", "Evans",
                            "Flores", "Garcia", "Hill",  "Irwin", "Jones",
                            "King", "Lopez", "Moore", "Nguyen", "Ortiz",
                            "Patel", "Quinn", "Reyes", "Smith", "Turner"};
const char* kDiagnoses[] = {"Glaucoma",     "Diabetes",   "Hypertension",
                            "Asthma",       "Arthritis",  "Migraine",
                            "Bronchitis",   "Anemia",     "Cataract",
                            "Dermatitis"};
const char* kSpecializations[] = {"Ophthalmology", "Cardiology", "Neurology",
                                  "Pediatrics",    "Oncology",   "Orthopedics"};
const char* kDrugs[] = {"Timolol",    "Metformin", "Lisinopril", "Albuterol",
                        "Ibuprofen",  "Sumatriptan", "Amoxicillin",
                        "Ferrous sulfate", "Latanoprost", "Hydrocortisone"};

std::string RandomName(Rng& rng) {
  return std::string(kFirstNames[rng.NextBounded(std::size(kFirstNames))]) + " " +
         kLastNames[rng.NextBounded(std::size(kLastNames))];
}

template <typename T, size_t N>
const T& Pick(const T (&arr)[N], Rng& rng) {
  return arr[rng.NextBounded(N)];
}

}  // namespace

Status PopulateMedicalData(const MedicalDataSpec& spec, Catalog* catalog) {
  CHECK(catalog != nullptr);
  Rng rng(spec.seed);

  ASSIGN_OR_RETURN(const Schema patient_schema, catalog->GetSchema("Patient"));
  ASSIGN_OR_RETURN(const Schema physician_schema, catalog->GetSchema("Physician"));
  ASSIGN_OR_RETURN(const Schema prescription_schema,
                   catalog->GetSchema("Prescription"));
  ASSIGN_OR_RETURN(const Schema diagnosis_schema, catalog->GetSchema("Diagnosis"));
  ASSIGN_OR_RETURN(const AttributeDomain date_domain,
                   catalog->GetDomain("Prescription", "date"));

  Relation patients("Patient", patient_schema);
  patients.Reserve(spec.num_patients);
  for (size_t i = 0; i < spec.num_patients; ++i) {
    RETURN_NOT_OK(patients.Append(
        {Value(static_cast<int64_t>(i)), Value(RandomName(rng)),
         Value(static_cast<int64_t>(rng.NextInRange(0, 100)))}));
  }

  Relation physicians("Physician", physician_schema);
  physicians.Reserve(spec.num_physicians);
  for (size_t i = 0; i < spec.num_physicians; ++i) {
    RETURN_NOT_OK(physicians.Append(
        {Value(static_cast<int64_t>(i)), Value("Dr. " + RandomName(rng)),
         Value(static_cast<int64_t>(rng.NextInRange(28, 70))),
         Value(Pick(kSpecializations, rng))}));
  }

  Relation prescriptions("Prescription", prescription_schema);
  prescriptions.Reserve(spec.num_prescriptions);
  for (size_t i = 0; i < spec.num_prescriptions; ++i) {
    const int32_t day = static_cast<int32_t>(rng.NextInRange(
        static_cast<uint64_t>(date_domain.lo), static_cast<uint64_t>(date_domain.hi)));
    RETURN_NOT_OK(prescriptions.Append(
        {Value(static_cast<int64_t>(i)), Value(Date{day}), Value(Pick(kDrugs, rng)),
         Value(std::string("take as directed"))}));
  }

  Relation diagnoses("Diagnosis", diagnosis_schema);
  diagnoses.Reserve(spec.num_diagnoses);
  for (size_t i = 0; i < spec.num_diagnoses; ++i) {
    RETURN_NOT_OK(diagnoses.Append(
        {Value(static_cast<int64_t>(rng.NextBounded(spec.num_patients))),
         Value(Pick(kDiagnoses, rng)),
         Value(static_cast<int64_t>(rng.NextBounded(spec.num_physicians))),
         Value(static_cast<int64_t>(rng.NextBounded(spec.num_prescriptions)))}));
  }

  RETURN_NOT_OK(catalog->InstallBaseData(std::move(patients)));
  RETURN_NOT_OK(catalog->InstallBaseData(std::move(physicians)));
  RETURN_NOT_OK(catalog->InstallBaseData(std::move(prescriptions)));
  RETURN_NOT_OK(catalog->InstallBaseData(std::move(diagnoses)));
  return Status::OK();
}

Catalog MakeNumbersCatalog(size_t n, int64_t domain_lo, int64_t domain_hi,
                           uint64_t seed) {
  CHECK_LE(domain_lo, domain_hi);
  Catalog cat;
  const AttributeDomain key_domain{domain_lo, domain_hi};
  Schema schema({Field{"key", ValueType::kInt64, key_domain},
                 Field{"payload", ValueType::kInt64, std::nullopt}});
  CHECK(cat.RegisterSchema("Numbers", schema).ok());
  Relation rows("Numbers", schema);
  rows.Reserve(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const int64_t key =
        domain_lo + static_cast<int64_t>(rng.NextBounded(
                        static_cast<uint64_t>(domain_hi - domain_lo) + 1));
    rows.AppendUnchecked({Value(key), Value(static_cast<int64_t>(i))});
  }
  CHECK(cat.InstallBaseData(std::move(rows)).ok());
  return cat;
}

}  // namespace p2prange
