// The global schema and the data sources.
//
// Per §2, every peer knows the global schema, and the base relations
// live at source peers that are part of the system. The Catalog holds
// both: schema metadata (always available) and, at source peers, the
// base relation contents.
#ifndef P2PRANGE_REL_CATALOG_H_
#define P2PRANGE_REL_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/relation.h"
#include "rel/schema.h"

namespace p2prange {

/// \brief Registry of relation schemas plus (optionally) their base
/// contents.
class Catalog {
 public:
  /// Registers a schema; fails if the name is taken.
  Status RegisterSchema(const std::string& relation, Schema schema);

  /// Installs base contents for a registered relation (the relation
  /// becomes a data source for it). The relation's schema must match.
  Status InstallBaseData(Relation relation);

  Result<Schema> GetSchema(const std::string& relation) const;
  bool HasRelation(const std::string& relation) const;

  /// The base contents; NotFound if this catalog is not a source for
  /// the relation.
  Result<const Relation*> GetBaseData(const std::string& relation) const;

  /// The domain of a range-selectable attribute, or an error if the
  /// attribute is untyped for selection.
  Result<AttributeDomain> GetDomain(const std::string& relation,
                                    const std::string& attribute) const;

  std::vector<std::string> RelationNames() const;

 private:
  std::map<std::string, Schema> schemas_;
  std::map<std::string, Relation> base_data_;
};

/// \brief The paper's example global schema (§2): Patient, Diagnosis,
/// Physician, Prescription — with range-selectable age and date
/// attributes.
Catalog MakeMedicalCatalog();

}  // namespace p2prange

#endif  // P2PRANGE_REL_CATALOG_H_
