// In-memory relations and horizontal partitions.
#ifndef P2PRANGE_REL_RELATION_H_
#define P2PRANGE_REL_RELATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "hash/range.h"
#include "rel/schema.h"
#include "rel/value.h"

namespace p2prange {

/// \brief One tuple; values are positionally aligned with a Schema.
using Row = std::vector<Value>;

/// \brief A named relation: schema + tuples.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  /// Appends a row after checking arity and types.
  Status Append(Row row);
  /// Appends without checks (bulk internal use).
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  void Reserve(size_t n) { rows_.reserve(n); }

  /// \brief The tuples whose `attribute` ordinal lies in
  /// [sel_lo, sel_hi] — a horizontal partition's contents.
  Result<Relation> SelectOrdinalRange(const std::string& attribute, int64_t sel_lo,
                                      int64_t sel_hi) const;

  /// \brief The tuples whose `attribute` equals `v`.
  Result<Relation> SelectEquals(const std::string& attribute, const Value& v) const;

  std::string ToString(size_t max_rows = 10) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

/// \brief A materialized horizontal partition: the tuples of
/// `relation` selected by `range` (domain-encoded) over `attribute`.
struct HorizontalPartition {
  std::string relation;
  std::string attribute;
  Range range;  ///< domain-encoded (see AttributeDomain)
  Relation data;
};

}  // namespace p2prange

#endif  // P2PRANGE_REL_RELATION_H_
