#include "rel/csv.h"

#include <charconv>

namespace p2prange {

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\r\n") != std::string::npos;
}

void WriteField(const std::string& s, std::ostream* out) {
  if (!NeedsQuoting(s)) {
    *out << s;
    return;
  }
  *out << '"';
  for (char c : s) {
    if (c == '"') *out << '"';
    *out << c;
  }
  *out << '"';
}

/// Splits one logical CSV record (which may span physical lines when
/// quoted fields contain newlines) into fields. Returns false at EOF
/// with no data.
Result<bool> ReadRecord(std::istream* in, std::vector<std::string>* fields) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  bool any = false;
  int c;
  while ((c = in->get()) != EOF) {
    any = true;
    if (in_quotes) {
      if (c == '"') {
        const int next = in->peek();
        if (next == '"') {
          in->get();
          field.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(static_cast<char>(c));
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::InvalidArgument("csv: quote inside unquoted field");
        }
        in_quotes = true;
        break;
      case ',':
        fields->push_back(std::move(field));
        field.clear();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        fields->push_back(std::move(field));
        return true;
      default:
        field.push_back(static_cast<char>(c));
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("csv: unterminated quoted field");
  }
  if (!any) return false;
  fields->push_back(std::move(field));
  return true;
}

Result<Value> ParseTyped(const std::string& raw, const Field& field, size_t line) {
  const std::string where =
      " for field '" + field.name + "' at data row " + std::to_string(line);
  switch (field.type) {
    case ValueType::kInt64: {
      int64_t v = 0;
      auto [p, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), v);
      if (ec != std::errc() || p != raw.data() + raw.size()) {
        return Status::InvalidArgument("csv: bad int64 '" + raw + "'" + where);
      }
      return Value(v);
    }
    case ValueType::kDouble: {
      double d = 0.0;
      auto [p, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), d);
      if (ec != std::errc() || p != raw.data() + raw.size()) {
        return Status::InvalidArgument("csv: bad double '" + raw + "'" + where);
      }
      return Value(d);
    }
    case ValueType::kDate: {
      auto date = ParseDate(raw);
      if (!date.ok()) {
        return Status::InvalidArgument("csv: bad date '" + raw + "'" + where);
      }
      return Value(*date);
    }
    case ValueType::kString:
      return Value(raw);
  }
  return Status::Internal("unreachable");
}

}  // namespace

Status WriteCsv(const Relation& rel, std::ostream* out) {
  CHECK(out != nullptr);
  const Schema& schema = rel.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) *out << ',';
    WriteField(schema.field(c).name, out);
  }
  *out << '\n';
  for (const Row& row : rel.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) *out << ',';
      WriteField(row[c].ToString(), out);
    }
    *out << '\n';
  }
  if (!out->good()) return Status::IOError("csv: write failed");
  return Status::OK();
}

Result<Relation> ReadCsv(const std::string& relation_name, const Schema& schema,
                         std::istream* in) {
  CHECK(in != nullptr);
  std::vector<std::string> fields;
  ASSIGN_OR_RETURN(const bool has_header, ReadRecord(in, &fields));
  if (!has_header) return Status::InvalidArgument("csv: empty input");
  if (fields.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "csv: header has " + std::to_string(fields.size()) + " columns, schema " +
        std::to_string(schema.num_fields()));
  }
  for (size_t c = 0; c < fields.size(); ++c) {
    if (fields[c] != schema.field(c).name) {
      return Status::InvalidArgument("csv: header column '" + fields[c] +
                                     "' does not match schema field '" +
                                     schema.field(c).name + "'");
    }
  }

  Relation out(relation_name, schema);
  size_t line = 0;
  for (;;) {
    ASSIGN_OR_RETURN(const bool more, ReadRecord(in, &fields));
    if (!more) break;
    ++line;
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != schema.num_fields()) {
      return Status::InvalidArgument(
          "csv: row " + std::to_string(line) + " has " +
          std::to_string(fields.size()) + " columns, expected " +
          std::to_string(schema.num_fields()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      ASSIGN_OR_RETURN(Value v, ParseTyped(fields[c], schema.field(c), line));
      row.push_back(std::move(v));
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

}  // namespace p2prange
