// Relation schemas and attribute domains.
//
// The paper assumes a global schema known to every peer (§2). For each
// range-selectable attribute the schema records its ordered domain
// [lo, hi]; a selection range over the attribute is encoded into the
// 32-bit hash domain as offsets from lo, so dates and negative
// integers hash identically to small counting numbers.
#ifndef P2PRANGE_REL_SCHEMA_H_
#define P2PRANGE_REL_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "hash/range.h"
#include "rel/value.h"

namespace p2prange {

/// \brief The ordered domain of a range-selectable attribute, as 64-bit
/// ordinals (int value, or date day-number).
struct AttributeDomain {
  int64_t lo = 0;
  int64_t hi = 0;

  /// Width must fit the 32-bit hash domain.
  Result<Range> EncodeRange(int64_t sel_lo, int64_t sel_hi) const;

  /// Clamps a selection to the domain before encoding; fails only if
  /// the selection misses the domain entirely.
  Result<Range> EncodeClampedRange(int64_t sel_lo, int64_t sel_hi) const;

  int64_t DecodeLo(const Range& r) const { return lo + static_cast<int64_t>(r.lo()); }
  int64_t DecodeHi(const Range& r) const { return lo + static_cast<int64_t>(r.hi()); }

  uint64_t width() const { return static_cast<uint64_t>(hi - lo) + 1; }

  bool operator==(const AttributeDomain&) const = default;
};

/// \brief One column: name, type, and (for range-selectable columns)
/// its domain.
struct Field {
  std::string name;
  ValueType type = ValueType::kInt64;
  std::optional<AttributeDomain> domain;  ///< set for selectable columns

  bool operator==(const Field&) const = default;
};

/// \brief An ordered list of fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Index of the named field, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;

  bool HasField(const std::string& name) const;

  bool operator==(const Schema&) const = default;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace p2prange

#endif  // P2PRANGE_REL_SCHEMA_H_
