#include "rel/relation.h"

#include <sstream>

namespace p2prange {

Status Relation::Append(Row row) {
  if (row.size() != schema_.num_fields()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_fields()) + " for relation " + name_);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != schema_.field(i).type) {
      return Status::InvalidArgument(
          "field '" + schema_.field(i).name + "' expects " +
          ValueTypeName(schema_.field(i).type) + ", got " +
          ValueTypeName(row[i].type()));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<Relation> Relation::SelectOrdinalRange(const std::string& attribute,
                                              int64_t sel_lo, int64_t sel_hi) const {
  ASSIGN_OR_RETURN(const size_t idx, schema_.FieldIndex(attribute));
  Relation out(name_, schema_);
  for (const Row& row : rows_) {
    ASSIGN_OR_RETURN(const int64_t ord, row[idx].Ordinal());
    if (ord >= sel_lo && ord <= sel_hi) out.AppendUnchecked(row);
  }
  return out;
}

Result<Relation> Relation::SelectEquals(const std::string& attribute,
                                        const Value& v) const {
  ASSIGN_OR_RETURN(const size_t idx, schema_.FieldIndex(attribute));
  Relation out(name_, schema_);
  for (const Row& row : rows_) {
    if (row[idx] == v) out.AppendUnchecked(row);
  }
  return out;
}

std::string Relation::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << name_ << schema_.ToString() << ", " << rows_.size() << " rows\n";
  const size_t limit = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < limit; ++r) {
    os << "  ";
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) os << " | ";
      os << rows_[r][c].ToString();
    }
    os << "\n";
  }
  if (rows_.size() > limit) os << "  ... (" << rows_.size() - limit << " more)\n";
  return os.str();
}

}  // namespace p2prange
