#include "rel/value.h"

#include <charconv>

#include "common/logging.h"

namespace p2prange {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kDate:
      return "date";
  }
  return "unknown";
}

namespace {
// Howard Hinnant's days_from_civil algorithm.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = static_cast<int>((y >= 0 ? y : y - 399) / 400);
  const unsigned yoe = static_cast<unsigned>(y - era * 400);           // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;          // [0, 146096]
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* yy, int* mm, int* dd) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  *yy = static_cast<int>(y + (m <= 2));
  *mm = static_cast<int>(m);
  *dd = static_cast<int>(d);
}
}  // namespace

Date MakeDate(int year, int month, int day) {
  return Date{static_cast<int32_t>(DaysFromCivil(year, month, day))};
}

void DateToCivil(Date d, int* year, int* month, int* day) {
  CivilFromDays(d.days, year, month, day);
}

Result<Date> ParseDate(const std::string& s) {
  int y = 0, m = 0, d = 0;
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') {
    return Status::InvalidArgument("date must be YYYY-MM-DD, got '" + s + "'");
  }
  auto parse_int = [&](size_t pos, size_t len, int* out) {
    auto [p, ec] = std::from_chars(s.data() + pos, s.data() + pos + len, *out);
    return ec == std::errc() && p == s.data() + pos + len;
  };
  if (!parse_int(0, 4, &y) || !parse_int(5, 2, &m) || !parse_int(8, 2, &d)) {
    return Status::InvalidArgument("date must be YYYY-MM-DD, got '" + s + "'");
  }
  if (m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("date out of range: '" + s + "'");
  }
  return MakeDate(y, m, d);
}

std::string DateToString(Date d) {
  int y, m, dd;
  DateToCivil(d, &y, &m, &dd);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, dd);
  return buf;
}

ValueType Value::type() const {
  if (is_int()) return ValueType::kInt64;
  if (is_double()) return ValueType::kDouble;
  if (is_string()) return ValueType::kString;
  return ValueType::kDate;
}

Result<int64_t> Value::Ordinal() const {
  if (is_int()) return AsInt();
  if (is_date()) return static_cast<int64_t>(AsDate().days);
  return Status::InvalidArgument(std::string("type ") + ValueTypeName(type()) +
                                 " has no ordinal (range selections need an "
                                 "ordered discrete domain)");
}

bool Value::LessThan(const Value& other) const {
  CHECK(type() == other.type())
      << "comparing " << ValueTypeName(type()) << " with "
      << ValueTypeName(other.type());
  if (is_int()) return AsInt() < other.AsInt();
  if (is_double()) return AsDouble() < other.AsDouble();
  if (is_string()) return AsString() < other.AsString();
  return AsDate() < other.AsDate();
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) return std::to_string(AsDouble());
  if (is_string()) return AsString();
  return DateToString(AsDate());
}

}  // namespace p2prange
