#include "rel/catalog.h"

namespace p2prange {

Status Catalog::RegisterSchema(const std::string& relation, Schema schema) {
  if (schemas_.contains(relation)) {
    return Status::AlreadyExists("relation '" + relation + "' already registered");
  }
  schemas_.emplace(relation, std::move(schema));
  return Status::OK();
}

Status Catalog::InstallBaseData(Relation relation) {
  auto it = schemas_.find(relation.name());
  if (it == schemas_.end()) {
    return Status::NotFound("relation '" + relation.name() + "' is not registered");
  }
  if (!(it->second == relation.schema())) {
    return Status::InvalidArgument("schema mismatch for relation '" +
                                   relation.name() + "'");
  }
  base_data_[relation.name()] = std::move(relation);
  return Status::OK();
}

Result<Schema> Catalog::GetSchema(const std::string& relation) const {
  auto it = schemas_.find(relation);
  if (it == schemas_.end()) {
    return Status::NotFound("relation '" + relation + "' is not registered");
  }
  return it->second;
}

bool Catalog::HasRelation(const std::string& relation) const {
  return schemas_.contains(relation);
}

Result<const Relation*> Catalog::GetBaseData(const std::string& relation) const {
  auto it = base_data_.find(relation);
  if (it == base_data_.end()) {
    return Status::NotFound("no base data for relation '" + relation +
                            "' at this catalog");
  }
  return &it->second;
}

Result<AttributeDomain> Catalog::GetDomain(const std::string& relation,
                                           const std::string& attribute) const {
  ASSIGN_OR_RETURN(const Schema schema, GetSchema(relation));
  ASSIGN_OR_RETURN(const size_t idx, schema.FieldIndex(attribute));
  const Field& field = schema.field(idx);
  if (!field.domain) {
    return Status::InvalidArgument("attribute '" + relation + "." + attribute +
                                   "' has no declared ordered domain");
  }
  return *field.domain;
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(schemas_.size());
  for (const auto& [name, schema] : schemas_) names.push_back(name);
  return names;
}

Catalog MakeMedicalCatalog() {
  Catalog cat;
  const AttributeDomain age_domain{0, 120};
  const AttributeDomain id_domain{0, 1'000'000};
  // Dates between 1990-01-01 and 2009-12-31, as day numbers.
  const AttributeDomain date_domain{MakeDate(1990, 1, 1).days,
                                    MakeDate(2009, 12, 31).days};

  CHECK(cat.RegisterSchema(
               "Patient",
               Schema({Field{"patient_id", ValueType::kInt64, id_domain},
                       Field{"name", ValueType::kString, std::nullopt},
                       Field{"age", ValueType::kInt64, age_domain}}))
            .ok());
  CHECK(cat.RegisterSchema(
               "Diagnosis",
               Schema({Field{"patient_id", ValueType::kInt64, id_domain},
                       Field{"diagnosis", ValueType::kString, std::nullopt},
                       Field{"physician_id", ValueType::kInt64, id_domain},
                       Field{"prescription_id", ValueType::kInt64, id_domain}}))
            .ok());
  CHECK(cat.RegisterSchema(
               "Physician",
               Schema({Field{"physician_id", ValueType::kInt64, id_domain},
                       Field{"name", ValueType::kString, std::nullopt},
                       Field{"age", ValueType::kInt64, age_domain},
                       Field{"specialization", ValueType::kString, std::nullopt}}))
            .ok());
  CHECK(cat.RegisterSchema(
               "Prescription",
               Schema({Field{"prescription_id", ValueType::kInt64, id_domain},
                       Field{"date", ValueType::kDate, date_domain},
                       Field{"prescription", ValueType::kString, std::nullopt},
                       Field{"comments", ValueType::kString, std::nullopt}}))
            .ok());
  return cat;
}

}  // namespace p2prange
