#include "rel/schema.h"

#include <algorithm>
#include <limits>

namespace p2prange {

Result<Range> AttributeDomain::EncodeRange(int64_t sel_lo, int64_t sel_hi) const {
  if (sel_lo > sel_hi) {
    return Status::InvalidArgument("selection lo " + std::to_string(sel_lo) +
                                   " exceeds hi " + std::to_string(sel_hi));
  }
  if (sel_lo < lo || sel_hi > hi) {
    return Status::OutOfRange("selection [" + std::to_string(sel_lo) + ", " +
                              std::to_string(sel_hi) + "] outside domain [" +
                              std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  const uint64_t off_lo = static_cast<uint64_t>(sel_lo - lo);
  const uint64_t off_hi = static_cast<uint64_t>(sel_hi - lo);
  if (off_hi > std::numeric_limits<uint32_t>::max()) {
    return Status::OutOfRange("attribute domain wider than the 32-bit hash space");
  }
  return Range(static_cast<uint32_t>(off_lo), static_cast<uint32_t>(off_hi));
}

Result<Range> AttributeDomain::EncodeClampedRange(int64_t sel_lo, int64_t sel_hi) const {
  const int64_t clamped_lo = std::max(sel_lo, lo);
  const int64_t clamped_hi = std::min(sel_hi, hi);
  if (clamped_lo > clamped_hi) {
    return Status::OutOfRange("selection [" + std::to_string(sel_lo) + ", " +
                              std::to_string(sel_hi) +
                              "] does not intersect the attribute domain");
  }
  return EncodeRange(clamped_lo, clamped_hi);
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named '" + name + "'");
}

bool Schema::HasField(const std::string& name) const {
  return std::any_of(fields_.begin(), fields_.end(),
                     [&](const Field& f) { return f.name == name; });
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += ValueTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace p2prange
