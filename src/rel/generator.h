// Synthetic data for the paper's medical schema.
//
// The paper does not publish a dataset; these generators produce
// deterministic, referentially consistent relations (every Diagnosis
// points at an existing Patient/Physician/Prescription) so the query
// examples and integration tests exercise realistic multi-relation
// plans.
#ifndef P2PRANGE_REL_GENERATOR_H_
#define P2PRANGE_REL_GENERATOR_H_

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "rel/catalog.h"
#include "rel/relation.h"

namespace p2prange {

/// \brief Sizes for the generated medical dataset.
struct MedicalDataSpec {
  size_t num_patients = 1000;
  size_t num_physicians = 50;
  size_t num_prescriptions = 2000;
  size_t num_diagnoses = 2000;
  uint64_t seed = 7;
};

/// \brief Generates all four relations and installs them as base data
/// into `catalog` (which must already carry the medical schema).
Status PopulateMedicalData(const MedicalDataSpec& spec, Catalog* catalog);

/// \brief A single-relation integer table "Numbers(key, payload)" with
/// `n` rows whose key is uniform in the declared domain — the neutral
/// substrate for the §5 range-selection experiments.
Catalog MakeNumbersCatalog(size_t n, int64_t domain_lo, int64_t domain_hi,
                           uint64_t seed);

}  // namespace p2prange

#endif  // P2PRANGE_REL_GENERATOR_H_
