// Typed values for the relational layer.
//
// The global schema of §2 needs integers (ids, ages), strings (names,
// diagnoses), doubles, and dates. Dates are stored as days since
// 1970-01-01 so that date ranges are integer ranges and hash exactly
// like any other ordered attribute.
#ifndef P2PRANGE_REL_VALUE_H_
#define P2PRANGE_REL_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "common/result.h"

namespace p2prange {

enum class ValueType { kInt64, kDouble, kString, kDate };

const char* ValueTypeName(ValueType t);

/// \brief Days since the Unix epoch; negative for earlier dates.
struct Date {
  int32_t days = 0;
  bool operator==(const Date&) const = default;
  auto operator<=>(const Date&) const = default;
};

/// \brief Civil-date helpers (proleptic Gregorian).
Date MakeDate(int year, int month, int day);
void DateToCivil(Date d, int* year, int* month, int* day);
/// Parses "YYYY-MM-DD".
Result<Date> ParseDate(const std::string& s);
std::string DateToString(Date d);

/// \brief A dynamically typed relational value.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}
  explicit Value(Date d) : v_(d) {}

  ValueType type() const;

  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_date() const { return std::holds_alternative<Date>(v_); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  Date AsDate() const { return std::get<Date>(v_); }

  /// \brief For range-selectable (ordered integer-like) types, the
  /// value as a signed 64-bit ordinal: int64 as-is, date as its day
  /// number. Errors for doubles/strings (the paper's selections are
  /// over ordered discrete domains).
  Result<int64_t> Ordinal() const;

  /// Three-way comparison between same-typed values; comparing values
  /// of different types is an error surfaced as InvalidArgument by the
  /// callers that need it. operator== is exact (type and payload).
  bool operator==(const Value&) const = default;

  /// True if *this < other; both must have the same type (CHECKed).
  bool LessThan(const Value& other) const;

  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string, Date> v_;
};

/// \brief Hash functor so values can key hash-join tables.
struct ValueHash {
  size_t operator()(const Value& v) const {
    switch (v.type()) {
      case ValueType::kInt64:
        return std::hash<int64_t>()(v.AsInt());
      case ValueType::kDouble:
        return std::hash<double>()(v.AsDouble());
      case ValueType::kString:
        return std::hash<std::string>()(v.AsString());
      case ValueType::kDate:
        return std::hash<int32_t>()(v.AsDate().days) * 1000003;
    }
    return 0;
  }
};

}  // namespace p2prange

#endif  // P2PRANGE_REL_VALUE_H_
