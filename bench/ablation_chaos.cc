// Ablation: the live ring under scripted network chaos (DESIGN.md §11).
//
// Forks five real p2prange_node daemons, each on its own loopback
// host, with every link — node↔node and client↔node — routed through
// a p2prange_chaosproxy. A seeded query load runs continuously while
// the proxy replays one fault regime per phase:
//
//   clean       no chaos — the baseline the later phases answer to;
//   partition   minority {0,1} cut from majority {2,3,4} (node links
//               only), load running through the detector's strikes;
//   heal        the cut removed: time-to-reconvergence through the
//               membership reconnect sweep, then recall again;
//   slow_loris  a pack of sockets that send one byte and stall,
//               aimed straight at the daemons' listen addresses —
//               the first-frame deadline must cut every one;
//   corrupt     every inter-node direction flips a bit in ~1% of
//               segments under a little jitter (client links clean);
//   recovery    chaos off — recall must return to baseline.
//
// Per phase it reports lookup counts, availability (every probe group
// answered), recall against the clean baseline, and the worst lookup
// latency (a hung client would blow this up — the acceptance bar is
// that deadlines, not luck, bound every call). Output is a JSON array
// on stdout, checked in as BENCH_chaos.json; stderr carries progress.
//
//   ablation_chaos [phase_duration_s] [--smoke]
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_args.h"
#include "common/logging.h"
#include "rel/generator.h"
#include "rpc/ring_client.h"
#include "rpc/tcp.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace bench {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kSeed = 7;
constexpr int64_t kDomainLo = 0;
constexpr int64_t kDomainHi = 1000;
constexpr size_t kNodes = 5;
constexpr size_t kPublishes = 40;
constexpr size_t kLorisSockets = 8;

NetAddress HostAddr(uint32_t host, uint16_t port) {
  NetAddress a;
  a.host = host;
  a.port = port;
  return a;
}

/// Daemon i listens on 127.0.1.<i+1>; the proxy (and the client) live
/// on 127.0.0.1. Distinct source hosts are how the proxy tells links
/// apart.
NetAddress NodeHost(size_t index, uint16_t port) {
  return HostAddr(0x7F000100u + static_cast<uint32_t>(index + 1), port);
}

NetAddress ClientHost(uint16_t port) { return HostAddr(0x7F000001u, port); }

std::string BinaryNextToBench(const char* name) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  const fs::path candidate =
      fs::path(buf).parent_path().parent_path() / "tools" / name;
  return fs::exists(candidate) ? candidate.string() : "";
}

NetAddress ReservePortOn(const NetAddress& host) {
  auto sock = rpc::Listen(host);
  CHECK(sock.ok()) << sock.status();
  const NetAddress bound = sock->bound;
  ::close(sock->fd);
  return bound;
}

/// One forked child (daemon or proxy); destroyed = SIGKILLed, reaped.
class Child {
 public:
  Child(const std::string& binary, std::vector<std::string> args) {
    args.insert(args.begin(), binary);
    std::vector<char*> argv;
    for (std::string& s : args) argv.push_back(s.data());
    argv.push_back(nullptr);
    pid_ = ::fork();
    if (pid_ == 0) {
      ::execv(binary.c_str(), argv.data());
      _exit(127);
    }
  }

  ~Child() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
  }

  Child(const Child&) = delete;
  Child& operator=(const Child&) = delete;

  void Signal(int signo) const { ::kill(pid_, signo); }

  /// SIGTERM and reap; true iff it exited 0 within ~10s.
  bool Terminate() {
    if (pid_ <= 0) return false;
    ::kill(pid_, SIGTERM);
    for (int i = 0; i < 200; ++i) {
      int status = 0;
      if (::waitpid(pid_, &status, WNOHANG) == pid_) {
        pid_ = -1;
        return WIFEXITED(status) && WEXITSTATUS(status) == 0;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
  }

 private:
  pid_t pid_ = -1;
};

void WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << content;
  }
  CHECK(std::rename(tmp.c_str(), path.c_str()) == 0) << "rename " << path;
}

/// Sums every `"key":<integer>` in a flat JSON metrics file.
uint64_t SumJsonCounter(const std::string& path, const std::string& key) {
  std::ifstream in(path);
  if (!in) return 0;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string needle = "\"" + key + "\":";
  uint64_t sum = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    sum += std::strtoull(text.c_str() + pos + needle.size(), nullptr, 10);
  }
  return sum;
}

rpc::RingClientOptions ClientOptions() {
  rpc::RingClientOptions options;
  options.lsh =
      LshParams::Paper(HashFamilyType::kApproxMinwise, kSeed ^ 0x5bd1e995u);
  options.descriptor_replication = 2;
  options.deadline_ms = 2000.0;
  options.transport.default_deadline_ms = 2000.0;
  options.fault.max_retries = 2;
  return options;
}

bool AwaitPing(rpc::RingClient& client, const NetAddress& member) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (client.Ping(member).ok()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

bool AwaitViewSize(rpc::RingClient& client, size_t expected) {
  for (int attempt = 0; attempt < 600; ++attempt) {
    client.RefreshView().IgnoreError();
    if (client.view().size() == expected) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

struct Phase {
  std::string name;
  size_t queries = 0;
  size_t lookup_failures = 0;  ///< Lookup() errored outright
  size_t answered_clean = 0;   ///< zero failed probe groups
  double recall = 0.0;         ///< mean over answered lookups
  double max_lookup_ms = 0.0;  ///< a hung client would blow this up
  double extra_value = 0.0;    ///< phase-specific (heal_ms, ...)
  std::string extra_key;
};

/// Runs the seeded load for `duration_s`, accumulating one Phase.
Phase RunPhase(rpc::RingClient& client, const std::string& name,
               double duration_s) {
  Phase phase;
  phase.name = name;
  // The same draw sequence every phase, so recall numbers are directly
  // comparable across fault regimes.
  UniformRangeGenerator qgen(kDomainLo, kDomainHi, kSeed ^ 0x9E3779B9u);
  const auto t0 = std::chrono::steady_clock::now();
  double recall_sum = 0.0;
  size_t answered = 0;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() < duration_s) {
    const Range q = qgen.Next();
    const auto started = std::chrono::steady_clock::now();
    auto outcome = client.Lookup(PartitionKey{"T", "a", q});
    const double took =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started)
            .count();
    phase.max_lookup_ms = std::max(phase.max_lookup_ms, took);
    ++phase.queries;
    if (!outcome.ok()) {
      ++phase.lookup_failures;
    } else {
      phase.answered_clean += outcome->probes_failed == 0;
      if (!outcome->ranked.empty()) {
        recall_sum += q.RecallFrom(outcome->ranked.front().descriptor.key.range);
        ++answered;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  phase.recall = answered == 0 ? 0.0 : recall_sum / static_cast<double>(answered);
  return phase;
}

void PrintJson(const std::vector<Phase>& phases, bool clean_shutdown) {
  std::printf("[");
  for (size_t i = 0; i < phases.size(); ++i) {
    const Phase& p = phases[i];
    const double availability =
        p.queries == 0 ? 0.0
                       : static_cast<double>(p.answered_clean) /
                             static_cast<double>(p.queries);
    std::printf(
        "%s\n  {\"phase\":\"%s\",\"queries\":%zu,\"lookup_failures\":%zu,"
        "\"availability\":%.4f,\"recall\":%.4f,\"max_lookup_ms\":%.1f",
        i == 0 ? "" : ",", p.name.c_str(), p.queries, p.lookup_failures,
        availability, p.recall, p.max_lookup_ms);
    if (!p.extra_key.empty()) {
      std::printf(",\"%s\":%.1f", p.extra_key.c_str(), p.extra_value);
    }
    std::printf("}");
  }
  std::printf("\n,\n  {\"phase\":\"shutdown\",\"clean\":%s}\n]\n",
              clean_shutdown ? "true" : "false");
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  using namespace p2prange;
  using namespace p2prange::bench;

  const std::string node_binary = BinaryNextToBench("p2prange_node");
  const std::string proxy_binary = BinaryNextToBench("p2prange_chaosproxy");
  if (node_binary.empty() || proxy_binary.empty()) {
    std::fprintf(stderr, "p2prange_node/p2prange_chaosproxy not found\n");
    return 1;
  }
  std::string scratch = fs::temp_directory_path() / "chaos_bench_XXXXXX";
  if (::mkdtemp(scratch.data()) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const double duration_s = ScaleFromArgs(argc, argv, /*full=*/5.0,
                                          /*smoke=*/1.0);

  // --- Topology: proxy in front of every link -------------------------
  const std::string plan_path = scratch + "/plan.chaos";
  const std::string proxy_metrics = scratch + "/proxy_metrics.json";
  WriteFileAtomic(plan_path, "# clean\n");
  std::vector<NetAddress> real, advertised;
  for (size_t i = 0; i < kNodes; ++i) {
    real.push_back(ReservePortOn(NodeHost(i, 0)));
    advertised.push_back(ReservePortOn(ClientHost(0)));
  }
  auto join_comma = [](const std::vector<NetAddress>& addrs) {
    std::string out;
    for (const NetAddress& a : addrs) {
      if (!out.empty()) out += ",";
      out += a.ToString();
    }
    return out;
  };
  Child proxy(proxy_binary, {
                                "--listen=" + join_comma(advertised),
                                "--upstream=" + join_comma(real),
                                "--plan=" + plan_path,
                                "--metrics_json=" + proxy_metrics,
                                "--seed=42",
                                "--quiet",
                            });
  auto replan = [&](const std::string& rules) {
    WriteFileAtomic(plan_path, rules);
    proxy.Signal(SIGHUP);
  };

  std::vector<std::unique_ptr<Child>> daemons;
  std::vector<std::string> metrics;
  for (size_t i = 0; i < kNodes; ++i) {
    const std::string dir = scratch + "/n" + std::to_string(i);
    fs::create_directories(dir);
    metrics.push_back(dir + "/metrics.json");
    std::vector<std::string> args = {
        "--listen=" + real[i].ToString(),
        "--advertise=" + advertised[i].ToString(),
        "--wal_dir=" + dir,
        "--metrics_json=" + metrics.back(),
        "--replication=2",
        "--probe_ms=100",
        "--gossip_ms=100",
        "--stabilize_ms=100",
        "--probe_timeout_ms=300",
        "--reconnect_ms=300",
        "--backoff_max_ms=400",
        "--handoff_deadline_ms=3000",
        // The hardening under test: bounded buffers, deadlines on
        // silent and trickling sockets, an accept cap.
        "--write_buffer_cap=8388608",
        "--idle_timeout_ms=5000",
        "--first_frame_timeout_ms=500",
        "--max_conns=64",
        "--quiet",
    };
    if (i > 0) args.push_back("--join=" + advertised[0].ToString());
    daemons.push_back(std::make_unique<Child>(node_binary, args));
  }

  auto client_result = rpc::RingClient::Make(advertised, ClientOptions());
  CHECK(client_result.ok()) << client_result.status();
  rpc::RingClient& client = **client_result;
  for (const NetAddress& a : advertised) {
    CHECK(AwaitPing(client, a)) << "daemon " << a.ToString() << " never up";
  }
  CHECK(AwaitViewSize(client, kNodes)) << "initial ring never converged";

  UniformRangeGenerator gen(kDomainLo, kDomainHi, kSeed);
  for (size_t i = 0; i < kPublishes; ++i) {
    const Status published = client.Publish(PartitionKey{"T", "a", gen.Next()},
                                            advertised[i % kNodes]);
    CHECK(published.ok()) << published;
  }

  std::vector<Phase> phases;

  // --- clean -----------------------------------------------------------
  std::fprintf(stderr, "phase clean (%.1fs)...\n", duration_s);
  phases.push_back(RunPhase(client, "clean", duration_s));
  const double baseline = phases.back().recall;

  // --- partition -------------------------------------------------------
  std::fprintf(stderr, "phase partition...\n");
  replan("0..inf link=* partition groups=0,1|2,3,4\n");
  phases.push_back(RunPhase(client, "partition", duration_s));

  // --- heal: time until the views hold all five members again ----------
  std::fprintf(stderr, "phase heal...\n");
  replan("# healed\n");
  const auto heal_t0 = std::chrono::steady_clock::now();
  const bool reconverged = AwaitViewSize(client, kNodes);
  const double heal_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - heal_t0)
          .count();
  CHECK(reconverged) << "ring never re-converged after the heal";
  phases.push_back(RunPhase(client, "heal", duration_s));
  phases.back().extra_key = "heal_ms";
  phases.back().extra_value = heal_ms;

  // --- slow_loris ------------------------------------------------------
  // One-byte tricklers aimed straight at the daemons (past the proxy:
  // the guard under test is the daemon's own first-frame deadline).
  std::fprintf(stderr, "phase slow_loris...\n");
  std::vector<int> loris;
  for (size_t i = 0; i < kLorisSockets; ++i) {
    auto fd = rpc::StartConnect(real[i % kNodes]);
    if (!fd.ok() || !rpc::FinishConnect(*fd, 1000).ok()) continue;
    const char byte = 'x';
    (void)!::send(*fd, &byte, 1, MSG_NOSIGNAL);
    loris.push_back(*fd);
  }
  phases.push_back(RunPhase(client, "slow_loris", duration_s));
  uint64_t idle_closed = 0;
  for (int attempt = 0; attempt < 200 && idle_closed < loris.size();
       ++attempt) {
    idle_closed = 0;
    for (const std::string& m : metrics) {
      idle_closed += SumJsonCounter(m, "idle_closed");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  for (const int fd : loris) ::close(fd);
  phases.back().extra_key = "loris_cut";
  phases.back().extra_value = static_cast<double>(idle_closed);

  // --- corrupt ---------------------------------------------------------
  std::fprintf(stderr, "phase corrupt...\n");
  std::string rules;
  for (size_t i = 0; i < kNodes; ++i) {
    for (size_t j = 0; j < kNodes; ++j) {
      if (i == j) continue;
      rules += "0..inf link=" + std::to_string(i) + "->" + std::to_string(j) +
               " corrupt p=0.01\n";
      rules += "0..inf link=" + std::to_string(i) + "->" + std::to_string(j) +
               " delay ms=2 jitter=2\n";
    }
  }
  replan(rules);
  phases.push_back(RunPhase(client, "corrupt", duration_s));
  phases.back().extra_key = "segments_corrupted";
  phases.back().extra_value =
      static_cast<double>(SumJsonCounter(proxy_metrics, "segments_corrupted"));

  // --- recovery --------------------------------------------------------
  std::fprintf(stderr, "phase recovery...\n");
  replan("# healed\n");
  CHECK(AwaitViewSize(client, kNodes)) << "view degraded under corruption";
  // Recall must climb back to the clean baseline before the phase is
  // measured — convergence, not instant repair, is the contract.
  for (int attempt = 0; attempt < 200; ++attempt) {
    Phase probe = RunPhase(client, "recovery", 0.2);
    if (probe.recall >= baseline - 0.02 && probe.lookup_failures == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  phases.push_back(RunPhase(client, "recovery", duration_s));

  bool clean_shutdown = true;
  for (auto& daemon : daemons) {
    if (!daemon->Terminate()) clean_shutdown = false;
  }
  if (!proxy.Terminate()) clean_shutdown = false;

  PrintJson(phases, clean_shutdown);
  std::error_code ec;
  fs::remove_all(scratch, ec);
  return 0;
}
