// Shared CLI parsing for the figure and ablation benches.
//
// Every bench accepts an optional positional scale argument (query
// count, duration, ...) plus `--smoke`, which selects a tiny
// configuration that exercises the full harness in well under a
// second. tools/check.sh runs each binary with --smoke so that
// signature-affecting regressions in the figure harnesses are caught
// before anyone pays for a full regeneration run.
#ifndef P2PRANGE_BENCH_BENCH_ARGS_H_
#define P2PRANGE_BENCH_BENCH_ARGS_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>

namespace p2prange {
namespace bench {

/// Scale from argv: `--smoke` anywhere wins and selects `smoke`;
/// otherwise the first parsable positive number overrides `full`.
inline double ScaleFromArgs(int argc, char** argv, double full, double smoke) {
  double scale = full;
  bool overridden = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return smoke;
    if (!overridden) {
      const double v = std::strtod(argv[i], nullptr);
      if (v > 0) {
        scale = v;
        overridden = true;
      }
    }
  }
  return scale;
}

/// ScaleFromArgs for integer-count benches.
inline size_t CountFromArgs(int argc, char** argv, size_t full, size_t smoke) {
  return static_cast<size_t>(ScaleFromArgs(argc, argv,
                                           static_cast<double>(full),
                                           static_cast<double>(smoke)));
}

}  // namespace bench
}  // namespace p2prange

#endif  // P2PRANGE_BENCH_BENCH_ARGS_H_
