// Ablation: recall and availability of the LIVE ring under churn.
//
// Unlike ablation_churn (discrete-event simulation), this bench forks
// real p2prange_node daemons on loopback and replays a deterministic
// LiveChurnSchedule against them — joins fork a daemon that --join's
// the bootstrap, kills are SIGKILL, restarts are SIGTERM (graceful
// handoff) followed by a rejoin on the same WAL directory — while a
// seeded query load runs throughout. Per churn rate it reports:
//
//   * availability: fraction of lookups during churn whose every probe
//     group was answered by some replica (lookups that error outright
//     count against it twice over — they also show up as failures);
//   * recall during churn and after re-convergence, against the
//     pre-churn baseline of the same seeded query batch.
//
// Output is a JSON array on stdout (one object per churn rate) —
// checked in as BENCH_live_churn.json so the trajectory of this
// number is tracked across changes. stderr carries progress lines.
//
//   ablation_live_churn [duration_s] [--smoke]
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_args.h"
#include "common/logging.h"
#include "common/random.h"
#include "rel/generator.h"
#include "rpc/ring_client.h"
#include "rpc/tcp.h"
#include "sim/churn_sim.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace bench {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kSeed = 7;
constexpr int64_t kDomainLo = 0;
constexpr int64_t kDomainHi = 1000;
constexpr size_t kPublishes = 24;
constexpr size_t kRecallQueries = 16;

NetAddress Loopback(uint16_t port) {
  NetAddress a;
  a.host = 0x7F000001;
  a.port = port;
  return a;
}

std::string NodeBinary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  const fs::path candidate =
      fs::path(buf).parent_path().parent_path() / "tools" / "p2prange_node";
  return fs::exists(candidate) ? candidate.string() : "";
}

NetAddress ReservePort() {
  auto sock = rpc::Listen(Loopback(0));
  CHECK(sock.ok()) << sock.status();
  const NetAddress bound = sock->bound;
  ::close(sock->fd);
  return bound;
}

/// One daemon process; destroyed = SIGKILLed and reaped.
class Daemon {
 public:
  Daemon(const std::string& binary, const NetAddress& addr,
         const std::string& wal_dir, const std::string& join) {
    addr_ = addr;
    wal_dir_ = wal_dir;
    std::vector<std::string> argv_store = {
        binary,
        "--listen=" + addr.ToString(),
        "--wal_dir=" + wal_dir,
        "--replication=2",
        "--probe_ms=100",
        "--gossip_ms=100",
        "--stabilize_ms=100",
        "--probe_timeout_ms=300",
        "--quiet",
    };
    if (!join.empty()) argv_store.push_back("--join=" + join);
    std::vector<char*> argv;
    for (std::string& s : argv_store) argv.push_back(s.data());
    argv.push_back(nullptr);
    pid_ = ::fork();
    if (pid_ == 0) {
      ::execv(binary.c_str(), argv.data());
      _exit(127);
    }
  }

  ~Daemon() { Kill(); }
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  const NetAddress& address() const { return addr_; }
  const std::string& wal_dir() const { return wal_dir_; }

  void Kill() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }

  /// SIGTERM and reap; true iff the daemon exited 0 within ~10s.
  bool Terminate() {
    if (pid_ <= 0) return false;
    ::kill(pid_, SIGTERM);
    for (int i = 0; i < 200; ++i) {
      int status = 0;
      if (::waitpid(pid_, &status, WNOHANG) == pid_) {
        pid_ = -1;
        return WIFEXITED(status) && WEXITSTATUS(status) == 0;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    Kill();
    return false;
  }

 private:
  pid_t pid_ = -1;
  NetAddress addr_;
  std::string wal_dir_;
};

rpc::RingClientOptions ClientOptions() {
  rpc::RingClientOptions options;
  options.lsh =
      LshParams::Paper(HashFamilyType::kApproxMinwise, kSeed ^ 0x5bd1e995u);
  options.descriptor_replication = 2;
  options.deadline_ms = 2000.0;
  options.transport.default_deadline_ms = 2000.0;
  options.fault.max_retries = 1;
  return options;
}

bool AwaitPing(rpc::RingClient& client, const NetAddress& member) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (client.Ping(member).ok()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

bool AwaitViewSize(rpc::RingClient& client, size_t expected) {
  for (int attempt = 0; attempt < 300; ++attempt) {
    if (client.RefreshView().ok() && client.view().size() == expected) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

/// The fixed recall batch: the same draws every call, comparable
/// across phases and churn rates.
double RecallBatch(rpc::RingClient& client) {
  UniformRangeGenerator qgen(kDomainLo, kDomainHi, kSeed ^ 0x9E3779B9);
  double recall = 0.0;
  for (size_t i = 0; i < kRecallQueries; ++i) {
    const Range q = qgen.Next();
    auto outcome = client.Lookup(PartitionKey{"T", "a", q});
    if (outcome.ok() && !outcome->ranked.empty()) {
      recall += q.RecallFrom(outcome->ranked.front().descriptor.key.range);
    }
  }
  return recall / static_cast<double>(kRecallQueries);
}

struct RunResult {
  double churn_hz = 0.0;
  size_t joins = 0, kills = 0, restarts = 0, skipped = 0;
  size_t queries = 0;          ///< lookups issued while churn was active
  size_t lookup_failures = 0;  ///< lookups that errored outright
  size_t answered_clean = 0;   ///< lookups with zero failed probe groups
  int failovers = 0, redirects = 0, view_refreshes = 0;
  double recall_baseline = 0.0, recall_during = 0.0, recall_final = 0.0;
  bool shutdown_clean = true;
};

RunResult RunOne(const std::string& binary, const std::string& scratch,
                 double churn_hz, double duration_s) {
  RunResult run;
  run.churn_hz = churn_hz;

  auto wal = [&](const std::string& name) {
    const std::string dir =
        scratch + "/hz" + std::to_string(churn_hz) + "_" + name;
    fs::create_directories(dir);
    return dir;
  };

  // Boot a 3-member ring grown by joins, then seed it.
  std::vector<std::unique_ptr<Daemon>> daemons;
  daemons.push_back(
      std::make_unique<Daemon>(binary, ReservePort(), wal("n0"), ""));
  const std::string bootstrap = daemons[0]->address().ToString();
  auto client_result =
      rpc::RingClient::Make({daemons[0]->address()}, ClientOptions());
  CHECK(client_result.ok()) << client_result.status();
  rpc::RingClient& client = **client_result;
  CHECK(AwaitPing(client, daemons[0]->address())) << "bootstrap never came up";
  for (int i = 1; i < 3; ++i) {
    daemons.push_back(std::make_unique<Daemon>(
        binary, ReservePort(), wal("n" + std::to_string(i)), bootstrap));
    CHECK(AwaitPing(client, daemons.back()->address()));
  }
  CHECK(AwaitViewSize(client, 3)) << "initial ring never converged";

  UniformRangeGenerator gen(kDomainLo, kDomainHi, kSeed);
  for (size_t i = 0; i < kPublishes; ++i) {
    const Status published =
        client.Publish(PartitionKey{"T", "a", gen.Next()},
                       daemons[i % daemons.size()]->address());
    CHECK(published.ok()) << published;
  }
  run.recall_baseline = RecallBatch(client);

  // The deterministic schedule, replayed on the wall clock.
  ChurnScenarioConfig scenario;
  scenario.duration_s = duration_s;
  scenario.join_rate_hz = churn_hz;
  scenario.leave_rate_hz = churn_hz;
  scenario.fail_fraction = 0.5;
  scenario.seed = kSeed;
  const auto schedule = GenerateLiveChurnSchedule(scenario);

  Rng victims(kSeed ^ 0xc4u);
  int spawned = 3;
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed_s = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  size_t next_event = 0;
  UniformRangeGenerator qgen(kDomainLo, kDomainHi, kSeed ^ 0x51ce);
  while (elapsed_s() < duration_s || next_event < schedule.size()) {
    if (next_event < schedule.size() &&
        elapsed_s() >= schedule[next_event].t_s) {
      const LiveChurnEvent& ev = schedule[next_event++];
      // The bootstrap (index 0) is immortal: joins always have a
      // target, and the client always has a reachable contact.
      const size_t victim =
          daemons.size() > 1 ? 1 + victims.NextBounded(daemons.size() - 1) : 0;
      switch (ev.kind) {
        case LiveChurnEventKind::kJoin: {
          daemons.push_back(std::make_unique<Daemon>(
              binary, ReservePort(), wal("j" + std::to_string(spawned++)),
              bootstrap));
          ++run.joins;
          break;
        }
        case LiveChurnEventKind::kKill: {
          if (daemons.size() <= 2) {
            ++run.skipped;  // never shrink below a ring of two
            break;
          }
          client.transport().Disconnect(daemons[victim]->address());
          daemons[victim]->Kill();
          daemons.erase(daemons.begin() + static_cast<long>(victim));
          ++run.kills;
          break;
        }
        case LiveChurnEventKind::kRestart: {
          if (daemons.size() <= 2) {
            ++run.skipped;
            break;
          }
          const NetAddress addr = daemons[victim]->address();
          const std::string dir = daemons[victim]->wal_dir();
          if (!daemons[victim]->Terminate()) run.shutdown_clean = false;
          client.transport().Disconnect(addr);
          daemons[victim] =
              std::make_unique<Daemon>(binary, addr, dir, bootstrap);
          ++run.restarts;
          break;
        }
      }
      continue;  // drain due events before querying again
    }

    const Range q = qgen.Next();
    auto outcome = client.Lookup(PartitionKey{"T", "a", q});
    ++run.queries;
    if (!outcome.ok()) {
      ++run.lookup_failures;
    } else {
      run.answered_clean += outcome->probes_failed == 0;
      run.failovers += outcome->failovers;
      run.redirects += outcome->redirects;
      run.view_refreshes += outcome->view_refreshes;
      if (!outcome->ranked.empty()) {
        run.recall_during +=
            q.RecallFrom(outcome->ranked.front().descriptor.key.range) /
            1.0;  // summed here, normalized below
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const size_t answered = run.queries - run.lookup_failures;
  run.recall_during =
      answered == 0 ? 0.0 : run.recall_during / static_cast<double>(answered);

  // Let the ring re-converge, then take the final recall.
  CHECK(AwaitViewSize(client, daemons.size())) << "ring never re-converged";
  for (int attempt = 0; attempt < 100; ++attempt) {
    run.recall_final = RecallBatch(client);
    if (run.recall_final >= run.recall_baseline - 0.02) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  for (auto& daemon : daemons) {
    if (!daemon->Terminate()) run.shutdown_clean = false;
  }
  return run;
}

void PrintJson(const std::vector<RunResult>& runs) {
  std::printf("[");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    const double availability =
        r.queries == 0 ? 0.0
                       : static_cast<double>(r.answered_clean) /
                             static_cast<double>(r.queries);
    std::printf(
        "%s\n  {\"churn_hz\":%.3f,"
        "\"events\":{\"joins\":%zu,\"kills\":%zu,\"restarts\":%zu,"
        "\"skipped\":%zu},"
        "\"queries\":%zu,\"lookup_failures\":%zu,"
        "\"availability\":%.4f,"
        "\"failovers\":%d,\"redirects\":%d,\"view_refreshes\":%d,"
        "\"recall_baseline\":%.4f,\"recall_during\":%.4f,"
        "\"recall_final\":%.4f,\"clean_shutdown\":%s}",
        i == 0 ? "" : ",", r.churn_hz, r.joins, r.kills, r.restarts, r.skipped,
        r.queries, r.lookup_failures, availability, r.failovers, r.redirects,
        r.view_refreshes, r.recall_baseline, r.recall_during, r.recall_final,
        r.shutdown_clean ? "true" : "false");
  }
  std::printf("\n]\n");
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  using namespace p2prange;
  using namespace p2prange::bench;

  const std::string binary = NodeBinary();
  if (binary.empty()) {
    std::fprintf(stderr, "p2prange_node not found next to this bench\n");
    return 1;
  }
  std::string scratch = fs::temp_directory_path() / "live_churn_bench_XXXXXX";
  if (::mkdtemp(scratch.data()) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  const double duration_s = ScaleFromArgs(argc, argv, /*full=*/20.0,
                                          /*smoke=*/3.0);
  const bool smoke = duration_s <= 3.0;
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.5} : std::vector<double>{0.1, 0.25, 0.5};

  std::vector<RunResult> runs;
  for (const double hz : rates) {
    std::fprintf(stderr, "churn %.2f Hz over %.0fs...\n", hz, duration_s);
    runs.push_back(RunOne(binary, scratch, hz, duration_s));
  }
  PrintJson(runs);
  std::error_code ec;
  fs::remove_all(scratch, ec);
  return 0;
}
