// Regenerates Figure 8: recall ("part of query answered") for the
// three hash-function families, as a reverse CDF — for thresholds x
// from 1 down to 0, the percentage of measured queries whose best
// match covers at least x of the query.
//
// Same workload as Figures 6-7 (10,000 uniform ranges over [0,1000],
// 20% warmup, Jaccard best-match inside buckets).
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/bench_args.h"

namespace p2prange {
namespace bench {
namespace {

std::vector<std::pair<double, double>> RecallSeries(HashFamilyType family,
                                                    size_t n,
                                                    uint64_t linear_prime) {
  SystemConfig cfg;
  cfg.num_peers = 1000;
  cfg.lsh = LshParams::Paper(family, /*seed=*/42);
  cfg.lsh.linear_prime = linear_prime;
  cfg.criterion = MatchCriterion::kJaccard;
  cfg.seed = 42;
  const WorkloadResult result = RunPaperWorkload(cfg, n, /*workload_seed=*/4242);
  return FractionAtLeast(result.recalls, /*points=*/20);
}

void Run(size_t n) {
  const auto minwise = RecallSeries(HashFamilyType::kMinwise, n,
                                    LinearHashFunction::kPrime);
  const auto approx = RecallSeries(HashFamilyType::kApproxMinwise, n,
                                   LinearHashFunction::kPrime);
  const auto linear = RecallSeries(HashFamilyType::kLinear, n,
                                   NextPrimeAtLeast(kDomainHi + 1));

  TablePrinter table({"part of query answered >=", "% min-wise", "% approx",
                      "% linear"});
  for (size_t i = 0; i < minwise.size(); ++i) {
    table.AddRow({TablePrinter::Fmt(minwise[i].first, 2),
                  TablePrinter::Fmt(minwise[i].second, 1),
                  TablePrinter::Fmt(approx[i].second, 1),
                  TablePrinter::Fmt(linear[i].second, 1)});
  }
  table.Print(std::cout, "Figure 8: recall for the hash function families (" +
                             std::to_string(n) + " queries)");
  std::cout << "completely answered:  min-wise "
            << TablePrinter::Fmt(minwise.front().second, 1) << "%   approx "
            << TablePrinter::Fmt(approx.front().second, 1) << "%   linear "
            << TablePrinter::Fmt(linear.front().second, 1) << "%\n";
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 10000, 300);
  p2prange::bench::Run(n);
  return 0;
}
