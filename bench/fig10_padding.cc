// Regenerates Figure 10: recall with the selection range expanded 20%
// on each edge before hashing ("query padding"), versus no padding —
// both with containment matching and approximate min-wise hashing.
//
// Padding finds broader cached partitions that fully contain the
// original query (the paper reports ~70% of queries answered
// completely, roughly doubling the unpadded containment figure), at
// the cost of lower recall for the queries where the padded range
// matches worse than the original would have.
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/bench_args.h"

namespace p2prange {
namespace bench {
namespace {

std::vector<std::pair<double, double>> Series(double padding, size_t n,
                                              double* complete) {
  SystemConfig cfg;
  cfg.num_peers = 1000;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, /*seed=*/42);
  cfg.criterion = MatchCriterion::kContainment;
  cfg.padding = padding;
  cfg.seed = 42;
  const WorkloadResult result = RunPaperWorkload(cfg, n, /*workload_seed=*/4242);
  const auto series = FractionAtLeast(result.recalls, /*points=*/20);
  *complete = series.front().second;
  return series;
}

void Run(size_t n) {
  double complete_plain = 0, complete_padded = 0;
  const auto plain = Series(0.0, n, &complete_plain);
  const auto padded = Series(0.2, n, &complete_padded);

  TablePrinter table(
      {"part of query answered >=", "% 20% padding", "% no padding"});
  for (size_t i = 0; i < plain.size(); ++i) {
    table.AddRow({TablePrinter::Fmt(plain[i].first, 2),
                  TablePrinter::Fmt(padded[i].second, 1),
                  TablePrinter::Fmt(plain[i].second, 1)});
  }
  table.Print(std::cout,
              "Figure 10: recall with 20% query padding (containment "
              "matching, " +
                  std::to_string(n) + " queries)");
  std::cout << "completely answered:  padded "
            << TablePrinter::Fmt(complete_padded, 1) << "%   unpadded "
            << TablePrinter::Fmt(complete_plain, 1)
            << "%  (paper: ~70% vs ~60%... vs ~35% under jaccard)\n";
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 10000, 300);
  p2prange::bench::Run(n);
  return 0;
}
