// Ablation: sustained throughput of the LIVE ring's data path.
//
// Forks a 5-daemon p2prange_node ring on loopback and drives it with
// a mixed closed-loop load — client threads issuing range lookups
// (each thread: lookup, wait, lookup, ...) while bulk threads
// continuously fetch multi-megarow materialized partitions, the
// paper's retrieve-after-locate step — under three configurations of
// the same binary:
//
//   * single_loop          — workers=0, client batching off: every
//     request is handled inline by the daemon's poll loop, one frame
//     per probe. The pre-worker-pool daemon, as a baseline. A bulk
//     fetch parks the loop for milliseconds, so every probe queued
//     behind it stalls (head-of-line blocking).
//   * worker_pool          — workers=4: the poll loop stays the socket
//     owner but handler work runs on the executor's worker threads.
//   * worker_pool_batched  — workers=4 and kMultiOp batching on: the
//     client's first probe wave coalesces same-owner probes into one
//     frame.
//
// Per configuration it reports sustained lookups/s and p50/p99 lookup
// latency under that bulk pressure; the headline number is the QPS
// ratio of the full configuration over the single-loop baseline.
//
// A second, open-loop phase aims a pipelined probe burst far beyond
// service capacity at one small-queue daemon and verifies the
// admission controller holds: overflow is shed with ResourceExhausted,
// every in-flight call resolves (no hung clients), and the daemon
// answers pings afterwards and exits cleanly.
//
// Output is one JSON object on stdout — checked in as
// BENCH_live_ring.json so the trajectory of these numbers is tracked
// across changes. stderr carries progress lines.
//
//   ablation_live_ring [duration_s] [--smoke]
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_args.h"
#include "common/logging.h"
#include "rel/generator.h"
#include "rpc/multi_op.h"
#include "rpc/ring_client.h"
#include "rpc/tcp.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace bench {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kSeed = 11;
// A narrow, heavily overlapping range domain: published ranges share
// LSH identifiers, so buckets grow fat and a probe does real matching
// work instead of a hash-map miss.
constexpr int64_t kDomainLo = 0;
constexpr int64_t kDomainHi = 240;
constexpr size_t kRingSize = 5;

NetAddress Loopback(uint16_t port) {
  NetAddress a;
  a.host = 0x7F000001;
  a.port = port;
  return a;
}

std::string NodeBinary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  const fs::path candidate =
      fs::path(buf).parent_path().parent_path() / "tools" / "p2prange_node";
  return fs::exists(candidate) ? candidate.string() : "";
}

NetAddress ReservePort() {
  auto sock = rpc::Listen(Loopback(0));
  CHECK(sock.ok()) << sock.status();
  const NetAddress bound = sock->bound;
  ::close(sock->fd);
  return bound;
}

/// One daemon process; destroyed = SIGKILLed and reaped.
class Daemon {
 public:
  Daemon(const std::string& binary, const NetAddress& addr,
         const std::string& wal_dir, const std::string& join, int workers,
         size_t queue_depth) {
    addr_ = addr;
    std::vector<std::string> argv_store = {
        binary,
        "--listen=" + addr.ToString(),
        "--wal_dir=" + wal_dir,
        "--replication=2",
        "--workers=" + std::to_string(workers),
        "--queue_depth=" + std::to_string(queue_depth),
        "--probe_ms=200",
        "--gossip_ms=200",
        "--stabilize_ms=200",
        "--probe_timeout_ms=500",
        "--quiet",
    };
    if (!join.empty()) argv_store.push_back("--join=" + join);
    std::vector<char*> argv;
    for (std::string& s : argv_store) argv.push_back(s.data());
    argv.push_back(nullptr);
    pid_ = ::fork();
    if (pid_ == 0) {
      ::execv(binary.c_str(), argv.data());
      _exit(127);
    }
  }

  ~Daemon() { Kill(); }
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  const NetAddress& address() const { return addr_; }

  void Kill() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }

  /// SIGTERM and reap; true iff the daemon exited 0 within ~10s.
  bool Terminate() {
    if (pid_ <= 0) return false;
    ::kill(pid_, SIGTERM);
    for (int i = 0; i < 200; ++i) {
      int status = 0;
      if (::waitpid(pid_, &status, WNOHANG) == pid_) {
        pid_ = -1;
        return WIFEXITED(status) && WEXITSTATUS(status) == 0;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    Kill();
    return false;
  }

 private:
  pid_t pid_ = -1;
  NetAddress addr_;
};

rpc::RingClientOptions ClientOptions(bool batch) {
  rpc::RingClientOptions options;
  options.lsh =
      LshParams::Paper(HashFamilyType::kApproxMinwise, kSeed ^ 0x5bd1e995u);
  options.descriptor_replication = 2;
  options.deadline_ms = 2000.0;
  options.transport.default_deadline_ms = 2000.0;
  options.fault.max_retries = 1;
  options.batch_probes = batch;
  return options;
}

bool AwaitPing(rpc::RingClient& client, const NetAddress& member) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (client.Ping(member).ok()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

bool AwaitViewSize(rpc::RingClient& client, size_t expected) {
  for (int attempt = 0; attempt < 300; ++attempt) {
    if (client.RefreshView().ok() && client.view().size() == expected) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t idx = std::min(
      sorted_in_place->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_in_place->size())));
  return (*sorted_in_place)[idx];
}

// --- Closed-loop phase --------------------------------------------------

struct LoopConfig {
  const char* name;
  int workers;
  size_t queue_depth;
  bool batch;
};

struct LoopResult {
  const char* name = "";
  int workers = 0;
  bool batch = false;
  size_t lookups = 0;
  size_t failures = 0;       ///< lookups that errored outright
  size_t probes_failed = 0;  ///< probe groups no replica answered
  size_t batched_probes = 0;
  size_t bulk_fetches = 0;   ///< background partition fetches completed
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool shutdown_clean = true;
};

LoopResult RunClosedLoop(const std::string& binary, const std::string& scratch,
                         const LoopConfig& config, double duration_s,
                         size_t client_threads, size_t publishes,
                         size_t bulk_rows) {
  LoopResult result;
  result.name = config.name;
  result.workers = config.workers;
  result.batch = config.batch;

  auto wal = [&](const std::string& name) {
    const std::string dir = scratch + "/" + config.name + "_" + name;
    fs::create_directories(dir);
    return dir;
  };

  // Boot the 5-member ring grown by joins.
  std::vector<std::unique_ptr<Daemon>> daemons;
  daemons.push_back(std::make_unique<Daemon>(binary, ReservePort(), wal("n0"),
                                             "", config.workers,
                                             config.queue_depth));
  const std::string bootstrap = daemons[0]->address().ToString();
  auto control = rpc::RingClient::Make({daemons[0]->address()},
                                       ClientOptions(config.batch));
  CHECK(control.ok()) << control.status();
  CHECK(AwaitPing(**control, daemons[0]->address()))
      << "bootstrap never came up";
  for (size_t i = 1; i < kRingSize; ++i) {
    daemons.push_back(std::make_unique<Daemon>(
        binary, ReservePort(), wal("n" + std::to_string(i)), bootstrap,
        config.workers, config.queue_depth));
    CHECK(AwaitPing(**control, daemons.back()->address()));
  }
  CHECK(AwaitViewSize(**control, kRingSize)) << "ring never converged";

  // Seed the corpus.
  UniformRangeGenerator gen(kDomainLo, kDomainHi, kSeed);
  for (size_t i = 0; i < publishes; ++i) {
    const Status published =
        (*control)->Publish(PartitionKey{"T", "a", gen.Next()},
                            daemons[i % daemons.size()]->address());
    CHECK(published.ok()) << published;
  }

  // One big materialized partition per daemon: the bulk stream below
  // fetches these, and serving one costs the daemon milliseconds of
  // encode work — the op a single poll loop cannot take off the
  // critical path of everyone else's probes.
  Schema bulk_schema(
      {Field{"v", ValueType::kInt64, AttributeDomain{0, 1 << 30}}});
  Relation bulk_tuples("B", bulk_schema);
  for (size_t r = 0; r < bulk_rows; ++r) {
    CHECK(bulk_tuples.Append({Value(static_cast<int64_t>(r * 2654435761u))})
              .ok());
  }
  std::vector<PartitionKey> bulk_keys;
  for (size_t i = 0; i < daemons.size(); ++i) {
    bulk_keys.push_back(PartitionKey{
        "B", "v",
        Range(static_cast<uint32_t>(i), static_cast<uint32_t>(i + 1))});
    const Status stored = (*control)->StorePartition(
        bulk_keys.back(), bulk_tuples, daemons[i]->address());
    CHECK(stored.ok()) << stored;
  }

  std::vector<NetAddress> members;
  for (const auto& d : daemons) members.push_back(d->address());

  // Closed loop: every thread is one client with its own transport,
  // issuing the next lookup the moment the previous one answers.
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> latencies(client_threads);
  std::vector<size_t> failures(client_threads, 0);
  std::vector<size_t> probes_failed(client_threads, 0);
  std::vector<size_t> batched(client_threads, 0);
  for (size_t t = 0; t < client_threads; ++t) {
    threads.emplace_back([&, t] {
      auto client =
          rpc::RingClient::Make(members, ClientOptions(config.batch));
      CHECK(client.ok()) << client.status();
      UniformRangeGenerator qgen(kDomainLo, kDomainHi,
                                 kSeed ^ (0x51ce + t * 977));
      const auto t0 = std::chrono::steady_clock::now();
      while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count() < duration_s) {
        const Range q = qgen.Next();
        const auto started = std::chrono::steady_clock::now();
        auto outcome = (*client)->Lookup(PartitionKey{"T", "a", q});
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - started)
                              .count();
        latencies[t].push_back(ms);
        if (!outcome.ok()) {
          ++failures[t];
        } else {
          probes_failed[t] += static_cast<size_t>(outcome->probes_failed);
          batched[t] += static_cast<size_t>(outcome->batched_probes);
        }
      }
    });
  }
  // The bulk stream: raw-transport threads fetching the big
  // partitions round-robin for the whole measurement window. The
  // response bytes are received but never decoded — each thread
  // re-fires the moment the frame lands, so the daemons see
  // back-to-back multi-millisecond encode jobs. Completions are
  // counted but their latency is not the metric — the lookups stuck
  // behind them are.
  std::atomic<size_t> bulk_done{0};
  std::vector<std::thread> bulk_threads;
  for (size_t b = 0; b < bulk_keys.size(); ++b) {
    bulk_threads.emplace_back([&, b] {
      rpc::TcpTransport transport;
      const auto t0 = std::chrono::steady_clock::now();
      // Each thread pins one daemon, so that daemon's queue always
      // holds a bulk job: the single-loop build must serve it before
      // any probe behind it, every time.
      const size_t d = b % bulk_keys.size();
      while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count() < duration_s) {
        auto fetched = transport.Call(
            NetAddress{}, members[d], rpc::MsgType::kFetchPartition,
            rpc::EncodeFetchPartitionRequest(bulk_keys[d]));
        if (fetched.ok()) ++bulk_done;
      }
    });
  }

  for (auto& th : threads) th.join();
  for (auto& th : bulk_threads) th.join();
  result.bulk_fetches = bulk_done;

  std::vector<double> all;
  for (size_t t = 0; t < client_threads; ++t) {
    all.insert(all.end(), latencies[t].begin(), latencies[t].end());
    result.failures += failures[t];
    result.probes_failed += probes_failed[t];
    result.batched_probes += batched[t];
  }
  result.lookups = all.size();
  result.qps = static_cast<double>(all.size()) / duration_s;
  result.p50_ms = Percentile(&all, 0.50);
  result.p99_ms = Percentile(&all, 0.99);

  for (auto& daemon : daemons) {
    if (!daemon->Terminate()) result.shutdown_clean = false;
  }
  return result;
}

// --- Open-loop overload phase -------------------------------------------

struct OverloadResult {
  size_t requests = 0;
  size_t ok = 0;
  size_t shed = 0;      ///< answered ResourceExhausted by admission control
  size_t errors = 0;    ///< any other failure
  size_t hung = 0;      ///< calls that never resolved inside their deadline
  bool daemon_alive_after = false;
  bool shutdown_clean = false;
};

OverloadResult RunOverload(const std::string& binary,
                           const std::string& scratch, size_t descriptors,
                           size_t burst_per_thread, size_t threads_n) {
  OverloadResult result;
  const std::string dir = scratch + "/overload";
  fs::create_directories(dir);

  // One daemon with a deliberately tiny queue: two workers, four
  // slots. The burst below outruns them by construction.
  Daemon daemon(binary, ReservePort(), dir, "", /*workers=*/2,
                /*queue_depth=*/4);
  auto control = rpc::RingClient::Make({daemon.address()},
                                       ClientOptions(/*batch=*/false));
  CHECK(control.ok()) << control.status();
  CHECK(AwaitPing(**control, daemon.address())) << "daemon never came up";

  // One fat bucket: every probe scans `descriptors` candidates, so a
  // probe costs real worker time and the queue actually fills.
  rpc::StoreDescriptorRequest store;
  store.bucket = 1;
  UniformRangeGenerator gen(kDomainLo, kDomainHi, kSeed ^ 0xfeed);
  for (size_t i = 0; i < descriptors; ++i) {
    store.descriptor =
        PartitionDescriptor{PartitionKey{"T", "a", gen.Next()},
                            daemon.address()};
    auto stored = (*control)->transport().Call(
        NetAddress{}, daemon.address(), rpc::MsgType::kStoreDescriptor,
        rpc::EncodeStoreDescriptorRequest(store));
    CHECK(stored.ok()) << stored.status();
  }

  rpc::ProbeBucketRequest probe;
  probe.bucket = 1;
  probe.query = PartitionKey{"T", "a", Range(kDomainLo, kDomainHi)};
  const std::string probe_body = rpc::EncodeProbeBucketRequest(probe);

  // Open loop: each thread fires its whole burst before waiting for
  // anything, then drains. Arrival rate >> service rate, so the
  // admission controller must shed — and every call must still get an
  // answer (shed or served), promptly.
  std::vector<std::thread> threads;
  std::vector<OverloadResult> per_thread(threads_n);
  const NetAddress target = daemon.address();
  for (size_t t = 0; t < threads_n; ++t) {
    threads.emplace_back([&, t] {
      rpc::TcpTransport transport;
      std::vector<uint64_t> calls;
      for (size_t i = 0; i < burst_per_thread; ++i) {
        auto id = transport.StartCall(target, rpc::MsgType::kProbeBucket,
                                      probe_body);
        if (!id.ok()) {
          ++per_thread[t].errors;
          continue;
        }
        calls.push_back(*id);
      }
      per_thread[t].requests = burst_per_thread;
      for (const uint64_t id : calls) {
        auto answer = transport.WaitCall(target, id, /*deadline_ms=*/15000.0);
        if (answer.ok()) {
          ++per_thread[t].ok;
        } else if (answer.status().IsResourceExhausted()) {
          ++per_thread[t].shed;
        } else if (answer.status().IsIOError()) {
          ++per_thread[t].hung;  // deadline burned: the call never resolved
        } else {
          ++per_thread[t].errors;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const OverloadResult& r : per_thread) {
    result.requests += r.requests;
    result.ok += r.ok;
    result.shed += r.shed;
    result.errors += r.errors;
    result.hung += r.hung;
  }

  result.daemon_alive_after = (*control)->Ping(daemon.address()).ok();
  result.shutdown_clean = daemon.Terminate();
  return result;
}

void PrintJson(const std::vector<LoopResult>& loops,
               const OverloadResult& overload, double duration_s,
               size_t clients, size_t publishes) {
  double base_qps = 0.0, full_qps = 0.0;
  for (const LoopResult& r : loops) {
    if (std::string(r.name) == "single_loop") base_qps = r.qps;
    if (std::string(r.name) == "worker_pool_batched") full_qps = r.qps;
  }
  std::printf("{\n  \"ring_size\":%zu,\"duration_s\":%.2f,\"clients\":%zu,"
              "\"corpus\":%zu,\n  \"closed_loop\":[",
              kRingSize, duration_s, clients, publishes);
  for (size_t i = 0; i < loops.size(); ++i) {
    const LoopResult& r = loops[i];
    std::printf(
        "%s\n    {\"config\":\"%s\",\"workers\":%d,\"batched\":%s,"
        "\"lookups\":%zu,\"qps\":%.1f,\"p50_ms\":%.2f,\"p99_ms\":%.2f,"
        "\"failures\":%zu,\"probes_failed\":%zu,\"batched_probes\":%zu,"
        "\"bulk_fetches\":%zu,\"clean_shutdown\":%s}",
        i == 0 ? "" : ",", r.name, r.workers, r.batch ? "true" : "false",
        r.lookups, r.qps, r.p50_ms, r.p99_ms, r.failures, r.probes_failed,
        r.batched_probes, r.bulk_fetches,
        r.shutdown_clean ? "true" : "false");
  }
  std::printf(
      "\n  ],\n  \"speedup_qps\":%.2f,\n"
      "  \"open_loop\":{\"workers\":2,\"queue_depth\":4,\"requests\":%zu,"
      "\"ok\":%zu,\"shed\":%zu,\"errors\":%zu,\"hung\":%zu,"
      "\"daemon_alive_after\":%s,\"clean_shutdown\":%s}\n}\n",
      base_qps > 0.0 ? full_qps / base_qps : 0.0, overload.requests,
      overload.ok, overload.shed, overload.errors, overload.hung,
      overload.daemon_alive_after ? "true" : "false",
      overload.shutdown_clean ? "true" : "false");
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  using namespace p2prange;
  using namespace p2prange::bench;

  const std::string binary = NodeBinary();
  if (binary.empty()) {
    std::fprintf(stderr, "p2prange_node not found next to this bench\n");
    return 1;
  }
  std::string scratch = fs::temp_directory_path() / "live_ring_bench_XXXXXX";
  if (::mkdtemp(scratch.data()) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  const double duration_s = ScaleFromArgs(argc, argv, /*full=*/12.0,
                                          /*smoke=*/1.5);
  const bool smoke = duration_s <= 1.5;
  const size_t clients = smoke ? 4 : 4;
  const size_t publishes = smoke ? 120 : 120;
  const size_t bulk_rows = smoke ? 150000 : 150000;
  const std::vector<LoopConfig> configs = {
      {"single_loop", 0, 128, false},
      {"worker_pool", 4, 128, false},
      {"worker_pool_batched", 4, 128, true},
  };

  std::vector<LoopResult> loops;
  for (const LoopConfig& config : configs) {
    std::fprintf(stderr, "closed loop: %s over %.1fs...\n", config.name,
                 duration_s);
    loops.push_back(RunClosedLoop(binary, scratch, config, duration_s,
                                  clients, publishes, bulk_rows));
  }
  std::fprintf(stderr, "open loop: overload burst...\n");
  const OverloadResult overload =
      RunOverload(binary, scratch, /*descriptors=*/smoke ? 400 : 1200,
                  /*burst_per_thread=*/smoke ? 150 : 300,
                  /*threads_n=*/4);
  PrintJson(loops, overload, duration_s, clients, publishes);
  std::error_code ec;
  fs::remove_all(scratch, ec);
  return 0;
}
