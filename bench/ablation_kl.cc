// Ablation (paper §5.1 design choice): the effect of k (functions per
// group) and l (groups) on match behavior. The paper picks k=20, l=5
// so that 1-(1-p^k)^l approximates a step function at similarity 0.9;
// this bench shows what other choices trade away.
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/bench_args.h"

namespace p2prange {
namespace bench {
namespace {

void Measure(int k, int l, size_t n, TablePrinter* table) {
  SystemConfig cfg;
  cfg.num_peers = 500;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 42);
  cfg.lsh.k = k;
  cfg.lsh.l = l;
  cfg.seed = 42;
  const WorkloadResult r = RunPaperWorkload(cfg, n, 4242);
  UnitHistogram hist(10);
  for (double j : r.jaccards) hist.Add(j);
  // A "false" match is one with similarity below 0.5 — the sigmoid's
  // job is to suppress these while keeping the >= 0.9 ones.
  double low = 0;
  for (int b = 1; b < 5; ++b) low += hist.Percentage(b);
  table->AddRow(
      {TablePrinter::Fmt(k), TablePrinter::Fmt(l),
       TablePrinter::Fmt(100.0 * r.frac_matched, 1),
       TablePrinter::Fmt(hist.Percentage(9), 1), TablePrinter::Fmt(low, 1),
       TablePrinter::Fmt(LshScheme::CollisionProbability(0.9, k, l), 3),
       TablePrinter::Fmt(LshScheme::CollisionProbability(0.7, k, l), 3)});
}

void Run(size_t n) {
  TablePrinter table({"k", "l", "% matched", "% sim>=0.9", "% sim in [0.1,0.5)",
                      "ideal P(hit|0.9)", "ideal P(hit|0.7)"});
  for (int k : {5, 10, 20, 40}) Measure(k, 5, n, &table);
  for (int l : {1, 3, 10}) Measure(20, l, n, &table);
  table.Print(std::cout, "Ablation: LSH amplification parameters k and l (" +
                             std::to_string(n) + " queries, approx min-wise)");
  std::cout << "(small k admits low-similarity matches; small l misses\n"
               " high-similarity ones; k=20, l=5 is the paper's step at 0.9)\n";
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 4000, 200);
  p2prange::bench::Run(n);
  return 0;
}
