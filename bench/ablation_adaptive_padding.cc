// Ablation (§5.2 future work): dynamically adjusted padding vs the
// fixed settings of Figure 10.
//
// Reports, for no padding / fixed 20% / adaptive: the fraction of
// queries answered completely, the mean recall, and the mean padded
// width overhead (how much extra range the system asked for — the cost
// side of the trade-off Figure 10 discusses).
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/bench_args.h"

namespace p2prange {
namespace bench {
namespace {

struct Row {
  double complete_pct = 0;
  double mean_recall = 0;
  double mean_overhead = 0;  // (effective - original) / original size
  double final_padding = 0;
};

Row Measure(bool adaptive, double fixed_padding, size_t n) {
  SystemConfig cfg;
  cfg.num_peers = 500;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 42);
  cfg.criterion = MatchCriterion::kContainment;
  cfg.adaptive_padding = adaptive;
  cfg.padding = fixed_padding;
  if (adaptive) cfg.adaptive.initial = 0.0;
  cfg.seed = 42;
  auto sys = RangeCacheSystem::Make(
      cfg, MakeNumbersCatalog(10, kDomainLo, kDomainHi, 1));
  CHECK(sys.ok());
  UniformRangeGenerator gen(kDomainLo, kDomainHi, 4242);
  const size_t warmup = n / 5;
  Summary recalls, overheads;
  size_t complete = 0, measured = 0;
  for (size_t i = 0; i < n; ++i) {
    const Range q = gen.Next();
    auto outcome = sys->LookupRange(PartitionKey{"Numbers", "key", q});
    CHECK(outcome.ok());
    if (i < warmup) continue;
    ++measured;
    const double recall = outcome->match ? outcome->match->recall : 0.0;
    recalls.Add(recall);
    if (recall >= 1.0) ++complete;
    overheads.Add(static_cast<double>(outcome->effective_query.size() -
                                      q.size()) /
                  static_cast<double>(q.size()));
  }
  Row row;
  row.complete_pct =
      100.0 * static_cast<double>(complete) / static_cast<double>(measured);
  row.mean_recall = recalls.Mean();
  row.mean_overhead = overheads.Mean();
  row.final_padding = sys->padding_controller().Get("Numbers.key");
  return row;
}

void Run(size_t n) {
  TablePrinter table({"policy", "% complete", "mean recall",
                      "mean width overhead", "final pad (adaptive)"});
  const Row none = Measure(false, 0.0, n);
  table.AddRow({"no padding", TablePrinter::Fmt(none.complete_pct, 1),
                TablePrinter::Fmt(none.mean_recall, 3),
                TablePrinter::Fmt(none.mean_overhead, 3), "-"});
  const Row fixed = Measure(false, 0.2, n);
  table.AddRow({"fixed 20%", TablePrinter::Fmt(fixed.complete_pct, 1),
                TablePrinter::Fmt(fixed.mean_recall, 3),
                TablePrinter::Fmt(fixed.mean_overhead, 3), "-"});
  const Row adaptive = Measure(true, 0.0, n);
  table.AddRow({"adaptive", TablePrinter::Fmt(adaptive.complete_pct, 1),
                TablePrinter::Fmt(adaptive.mean_recall, 3),
                TablePrinter::Fmt(adaptive.mean_overhead, 3),
                TablePrinter::Fmt(adaptive.final_padding, 3)});
  table.Print(std::cout,
              "Ablation: dynamically adjusted padding (the paper's named "
              "future work; " + std::to_string(n) + " queries)");
  std::cout << "(goal: adaptive approaches fixed-20%'s completion rate at a\n"
               " lower width overhead once the cache is warm)\n";
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 6000, 300);
  p2prange::bench::Run(n);
  return 0;
}
