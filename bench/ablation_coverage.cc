// Ablation: multi-partition coverage assembly vs single-best-match.
//
// The paper's protocol uses only the single best cached partition per
// query. This bench quantifies how often a small set of overlapping
// partitions jointly completes a query that no single partition could,
// on the standard uniform workload.
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/bench_args.h"

namespace p2prange {
namespace bench {
namespace {

struct Row {
  double complete_single = 0;   // best single match covers fully
  double complete_assembled = 0;  // assembled coverage covers fully
  double mean_pieces = 0;         // pieces used when assembly wins
};

Row Measure(size_t n, size_t max_pieces) {
  SystemConfig cfg;
  cfg.num_peers = 500;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 42);
  cfg.criterion = MatchCriterion::kContainment;
  cfg.assemble_coverage = true;
  cfg.max_coverage_pieces = max_pieces;
  cfg.seed = 42;
  auto sys = RangeCacheSystem::Make(
      cfg, MakeNumbersCatalog(10, kDomainLo, kDomainHi, 1));
  CHECK(sys.ok());
  UniformRangeGenerator gen(kDomainLo, kDomainHi, 4242);
  const size_t warmup = n / 5;
  size_t measured = 0, single_full = 0, assembled_full = 0;
  Summary pieces_used;
  for (size_t i = 0; i < n; ++i) {
    const Range q = gen.Next();
    auto outcome = sys->LookupRange(PartitionKey{"Numbers", "key", q});
    CHECK(outcome.ok());
    if (i < warmup) continue;
    ++measured;
    const double single = outcome->match ? outcome->match->recall : 0.0;
    const double assembled = std::max(single, outcome->coverage_recall);
    if (single >= 1.0) ++single_full;
    if (assembled >= 1.0) {
      ++assembled_full;
      if (single < 1.0) {
        pieces_used.AddCount(outcome->coverage_pieces.size());
      }
    }
  }
  Row row;
  row.complete_single =
      100.0 * static_cast<double>(single_full) / static_cast<double>(measured);
  row.complete_assembled = 100.0 * static_cast<double>(assembled_full) /
                           static_cast<double>(measured);
  row.mean_pieces = pieces_used.Mean();
  return row;
}

void Run(size_t n) {
  TablePrinter table({"max pieces", "% complete (single best)",
                      "% complete (assembled)", "mean pieces when assembly wins"});
  for (size_t pieces : {2u, 4u, 8u}) {
    const Row row = Measure(n, pieces);
    table.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(pieces)),
                  TablePrinter::Fmt(row.complete_single, 1),
                  TablePrinter::Fmt(row.complete_assembled, 1),
                  TablePrinter::Fmt(row.mean_pieces, 2)});
  }
  table.Print(std::cout,
              "Ablation: multi-partition coverage assembly (" +
                  std::to_string(n) + " uniform queries, containment matching)");
  std::cout << "(single-best is the paper's protocol; assembly combines\n"
               " overlapping cached partitions found in the probed buckets)\n";
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 6000, 300);
  p2prange::bench::Run(n);
  return 0;
}
