// Shared helpers for the figure-regeneration benches.
#ifndef P2PRANGE_BENCH_BENCH_UTIL_H_
#define P2PRANGE_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>
#include <vector>

#include "core/system.h"
#include "rel/generator.h"
#include "stats/summary.h"
#include "stats/table_printer.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace bench {

/// The paper's evaluation workload (§5.1): uniform integer ranges over
/// [0, 1000].
inline constexpr uint32_t kDomainLo = 0;
inline constexpr uint32_t kDomainHi = 1000;

/// Result of replaying the §5 protocol for one configuration.
struct WorkloadResult {
  std::vector<double> jaccards;  ///< matched similarity per measured query (0 = none)
  std::vector<double> recalls;   ///< recall per measured query (0 = none)
  double frac_matched = 0;       ///< fraction of measured queries with any match
  SystemMetrics metrics;
};

/// Replays `n` uniform range queries through a fresh system, excluding
/// the first `warmup_fraction` from measurement (they still populate
/// the caches), exactly as in §5.1.
inline WorkloadResult RunPaperWorkload(const SystemConfig& config, size_t n,
                                       uint64_t workload_seed,
                                       double warmup_fraction = 0.2) {
  auto sys = RangeCacheSystem::Make(
      config, MakeNumbersCatalog(/*n=*/10, kDomainLo, kDomainHi, /*seed=*/1));
  CHECK(sys.ok()) << sys.status();
  UniformRangeGenerator gen(kDomainLo, kDomainHi, workload_seed);
  const size_t warmup = static_cast<size_t>(warmup_fraction * static_cast<double>(n));
  WorkloadResult result;
  size_t matched = 0;
  for (size_t i = 0; i < n; ++i) {
    const Range q = gen.Next();
    auto outcome = sys->LookupRange(PartitionKey{"Numbers", "key", q});
    CHECK(outcome.ok()) << outcome.status();
    if (i < warmup) continue;
    result.jaccards.push_back(outcome->match ? outcome->match->jaccard : 0.0);
    result.recalls.push_back(outcome->match ? outcome->match->recall : 0.0);
    if (outcome->match) ++matched;
  }
  result.frac_matched =
      static_cast<double>(matched) / static_cast<double>(result.jaccards.size());
  result.metrics = sys->metrics();
  return result;
}

}  // namespace bench
}  // namespace p2prange

#endif  // P2PRANGE_BENCH_BENCH_UTIL_H_
