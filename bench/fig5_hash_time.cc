// Regenerates Figure 5: execution time of hashing a query range with
// the l*k = 100 hash functions, as a function of the range size.
//
// The paper timed a straightforward implementation on a 900 MHz
// Pentium and reported milliseconds; we report microseconds. Two
// numbers are given for each bit-shuffle family:
//   * "naive": round-by-round evaluation of the Figure 3 shuffle —
//     the implementation the paper measures, where the full min-wise
//     family costs log2(W)=5 rounds and the approximate family 1;
//   * "compiled": this library's production path for per-element
//     evaluation, which compiles the (fixed) bit-position permutation
//     into byte lookup tables, making both families equally cheap per
//     element;
//   * "kernel": the sublinear range-min kernels (hash/kernels.h) the
//     probe path actually uses — O(log p) for linear, O(W) for the
//     shuffles — whose cost is flat in range size. Bit-identical
//     results; only the figure's cost model changes.
// The paper's orderings — time linear in range size; linear
// permutations fastest, full min-wise slowest — hold in the naive
// column, with ratios set by 5 rounds vs 1 round vs one multiply.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/random.h"
#include "hash/bit_permutation.h"
#include "hash/kernels.h"
#include "hash/minwise.h"
#include "stats/table_printer.h"
#include "workload/range_workload.h"

#include "bench/bench_args.h"

namespace p2prange {
namespace {

constexpr int kNumFunctions = 100;  // l * k = 5 * 20

/// Average microseconds to hash `ranges` with all functions, where
/// `hash_all` hashes one range with all functions.
template <typename HashAll>
double TimeMicros(const std::vector<Range>& ranges, HashAll&& hash_all) {
  // One warmup pass, then timed passes.
  uint64_t sink = 0;
  for (const Range& r : ranges) sink += hash_all(r);
  const auto start = std::chrono::steady_clock::now();
  for (const Range& r : ranges) sink += hash_all(r);
  const auto end = std::chrono::steady_clock::now();
  if (sink == 0xDEADBEEF) std::cerr << "";  // defeat dead-code elimination
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count());
  return ns / 1000.0 / static_cast<double>(ranges.size());
}

struct FamilyTimers {
  std::vector<BitPermutation> full;      // 5 rounds
  std::vector<BitPermutation> approx;    // 1 round
  std::vector<LinearHashFunction> linear;
};

FamilyTimers SampleFunctions(uint64_t seed) {
  FamilyTimers t;
  Rng rng(seed);
  for (int i = 0; i < kNumFunctions; ++i) {
    const BitShuffleKeys keys = BitShuffleKeys::Sample(32, rng);
    t.full.emplace_back(keys, keys.num_levels());
    t.approx.emplace_back(keys, 1);
    t.linear.emplace_back(rng);
  }
  return t;
}

/// Range-at-a-time evaluation through the sublinear kernels.
template <typename HashOne>
uint64_t MinHashAllKernel(int n, HashOne&& hash_one) {
  uint64_t acc = 0;
  for (int f = 0; f < n; ++f) acc += hash_one(f);
  return acc;
}

template <typename Eval>
uint64_t MinHashAllFunctions(const Range& r, int n, Eval&& eval) {
  uint64_t acc = 0;
  for (int f = 0; f < n; ++f) {
    uint32_t best = ~0u;
    for (uint32_t x = r.lo();; ++x) {
      const uint32_t h = eval(f, x);
      if (h < best) best = h;
      if (x == r.hi()) break;
    }
    acc += best;
  }
  return acc;
}

void Run(size_t ranges_per_size) {
  const FamilyTimers fns = SampleFunctions(7);
  TablePrinter table({"range size", "linear (us)", "approx naive (us)",
                      "min-wise naive (us)", "approx compiled (us)",
                      "min-wise compiled (us)", "linear kernel (us)",
                      "approx kernel (us)", "min-wise kernel (us)"});
  for (uint32_t size : {10u, 50u, 100u, 200u, 400u, 800u, 1200u, 1500u}) {
    FixedSizeRangeGenerator gen(0, 100000, size, size);
    std::vector<Range> ranges;
    for (size_t i = 0; i < ranges_per_size; ++i) ranges.push_back(gen.Next());

    const double linear_us = TimeMicros(ranges, [&](const Range& r) {
      return MinHashAllFunctions(r, kNumFunctions, [&](int f, uint32_t x) {
        return fns.linear[f].Permute(x);
      });
    });
    const double approx_naive_us = TimeMicros(ranges, [&](const Range& r) {
      return MinHashAllFunctions(r, kNumFunctions, [&](int f, uint32_t x) {
        return fns.approx[f].ApplyNaive(x);
      });
    });
    const double full_naive_us = TimeMicros(ranges, [&](const Range& r) {
      return MinHashAllFunctions(r, kNumFunctions, [&](int f, uint32_t x) {
        return fns.full[f].ApplyNaive(x);
      });
    });
    const double approx_fast_us = TimeMicros(ranges, [&](const Range& r) {
      return MinHashAllFunctions(r, kNumFunctions, [&](int f, uint32_t x) {
        return fns.approx[f].Apply(x);
      });
    });
    const double full_fast_us = TimeMicros(ranges, [&](const Range& r) {
      return MinHashAllFunctions(r, kNumFunctions, [&](int f, uint32_t x) {
        return fns.full[f].Apply(x);
      });
    });
    const double linear_kernel_us = TimeMicros(ranges, [&](const Range& r) {
      return MinHashAllKernel(kNumFunctions, [&](int f) {
        return fns.linear[f].HashRange(r);
      });
    });
    const double approx_kernel_us = TimeMicros(ranges, [&](const Range& r) {
      return MinHashAllKernel(kNumFunctions, [&](int f) {
        return MinPermutedOverRange(fns.approx[f], 0, r);
      });
    });
    const double full_kernel_us = TimeMicros(ranges, [&](const Range& r) {
      return MinHashAllKernel(kNumFunctions, [&](int f) {
        return MinPermutedOverRange(fns.full[f], 0, r);
      });
    });
    table.AddRow({TablePrinter::Fmt(static_cast<int>(size)),
                  TablePrinter::Fmt(linear_us, 1),
                  TablePrinter::Fmt(approx_naive_us, 1),
                  TablePrinter::Fmt(full_naive_us, 1),
                  TablePrinter::Fmt(approx_fast_us, 1),
                  TablePrinter::Fmt(full_fast_us, 1),
                  TablePrinter::Fmt(linear_kernel_us, 1),
                  TablePrinter::Fmt(approx_kernel_us, 1),
                  TablePrinter::Fmt(full_kernel_us, 1)});
  }
  table.Print(std::cout,
              "Figure 5: time to hash a query range with 100 hash functions");
  std::cout << "(paper: msec on a 900 MHz Pentium; shape to check: linear in\n"
               " range size, linear << approx < min-wise in the naive column;\n"
               " the kernel columns — the probe path's actual cost — stay flat)\n";
}

}  // namespace
}  // namespace p2prange

int main(int argc, char** argv) {
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 20, 2);
  p2prange::Run(n);
  return 0;
}
