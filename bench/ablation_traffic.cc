// Traffic ablation: how many payload bytes the data source serves with
// the P2P cache enabled vs disabled — the paper's §1/§2 motivation
// ("access to the base relations may in general be undesirable due to
// load") made quantitative.
//
// A hotspot workload (Zipf-centered ranges) of SQL queries runs
// against the same data twice: once with caching (cache-on-miss,
// containment matching, 10% padding) and once with every leaf forced
// to the source. Reported per phase of the run: bytes served by the
// source, bytes served by peer caches, and source requests.
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/bench_args.h"

namespace p2prange {
namespace bench {
namespace {

void Run(size_t queries) {
  TablePrinter table({"config", "phase", "source reqs", "source KiB",
                      "cache KiB", "% bytes from cache"});
  for (bool caching : {true, false}) {
    SystemConfig cfg;
    cfg.num_peers = 100;
    cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 42);
    cfg.criterion = MatchCriterion::kContainment;
    cfg.padding = caching ? 0.1 : 0.0;
    cfg.cache_on_miss = caching;
    cfg.seed = 42;
    auto sys = RangeCacheSystem::Make(
        cfg, MakeNumbersCatalog(20000, kDomainLo, kDomainHi, 1));
    CHECK(sys.ok());

    ZipfRangeGenerator gen(kDomainLo, kDomainHi, /*theta=*/0.9,
                           /*mean_width=*/120, /*seed=*/4242);
    const size_t phase = queries / 4;
    SystemMetrics prev;
    for (size_t i = 0; i < queries; ++i) {
      const Range q = gen.Next();
      char sql[128];
      std::snprintf(sql, sizeof(sql),
                    "SELECT * FROM Numbers WHERE key >= %u AND key <= %u",
                    q.lo(), q.hi());
      // Without caching we still route through the system but nothing
      // is ever found, so every leaf goes to the source.
      auto outcome = sys->ExecuteQuery(sql);
      CHECK(outcome.ok()) << outcome.status();
      if ((i + 1) % phase == 0) {
        const SystemMetrics& m = sys->metrics();
        const uint64_t src = m.bytes_from_source - prev.bytes_from_source;
        const uint64_t cache = m.bytes_from_cache - prev.bytes_from_cache;
        const double pct =
            src + cache == 0
                ? 0.0
                : 100.0 * static_cast<double>(cache) /
                      static_cast<double>(src + cache);
        table.AddRow({caching ? "P2P caching" : "no caching",
                      "Q" + std::to_string((i + 1) / phase),
                      TablePrinter::Fmt(m.source_fetches - prev.source_fetches),
                      TablePrinter::Fmt(static_cast<double>(src) / 1024.0, 0),
                      TablePrinter::Fmt(static_cast<double>(cache) / 1024.0, 0),
                      TablePrinter::Fmt(pct, 1)});
        prev = m;
      }
    }
  }
  table.Print(std::cout, "Traffic ablation: source offload from P2P caching (" +
                             std::to_string(queries) + " hotspot queries)");
  std::cout << "(expected: with caching, the cache share of bytes grows phase\n"
               " over phase as the hotspot's partitions replicate to peers)\n";
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 400, 60);
  p2prange::bench::Run(n);
  return 0;
}
