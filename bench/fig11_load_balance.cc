// Regenerates Figure 11: load balance of stored partition descriptors.
//
//  (a) 10^4 unique partitions, each stored under its l=5 identifiers
//      (5*10^4 stored descriptors), over rings of 100..5000 peers:
//      mean / 1st / 99th percentile of descriptors per node.
//  (b) A 1000-node ring with the total stored descriptors swept from
//      ~35,000 to ~180,000.
//
// Partitions are published through the full §4 protocol (hash with
// approximate min-wise permutations, route via Chord, store at the l
// identifier owners), exactly as the paper's modified Chord simulator
// did.
#include <cstdlib>
#include <set>

#include "bench/bench_util.h"
#include "bench/bench_args.h"

namespace p2prange {
namespace bench {
namespace {

/// `unique_partitions` distinct uniform ranges, drawn deterministically.
std::vector<Range> UniqueRanges(size_t unique_partitions, uint64_t seed) {
  UniformRangeGenerator gen(kDomainLo, kDomainHi, seed);
  std::set<std::pair<uint32_t, uint32_t>> seen;
  std::vector<Range> out;
  while (out.size() < unique_partitions) {
    const Range r = gen.Next();
    if (seen.emplace(r.lo(), r.hi()).second) out.push_back(r);
  }
  return out;
}

struct LoadRow {
  double mean, p1, p99;
  size_t stored;
};

LoadRow MeasureLoad(size_t num_peers, const std::vector<Range>& partitions,
                    uint64_t seed) {
  SystemConfig cfg;
  cfg.num_peers = num_peers;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, seed);
  cfg.seed = seed;
  auto sys = RangeCacheSystem::Make(
      cfg, MakeNumbersCatalog(10, kDomainLo, kDomainHi, 1));
  CHECK(sys.ok()) << sys.status();
  for (const Range& r : partitions) {
    auto outcome = sys->LookupRange(PartitionKey{"Numbers", "key", r});
    CHECK(outcome.ok()) << outcome.status();
  }
  Summary per_node;
  for (size_t c : sys->DescriptorCountsPerPeer()) per_node.AddCount(c);
  return LoadRow{per_node.Mean(), per_node.Percentile(1), per_node.Percentile(99),
                 static_cast<size_t>(sys->metrics().descriptors_stored)};
}

void Run(size_t unique_partitions) {
  // (a) Load vs number of peers, 5 * unique_partitions stored.
  const std::vector<Range> partitions = UniqueRanges(unique_partitions, 77);
  TablePrinter a({"peers", "stored descriptors", "mean/node", "1st pct",
                  "99th pct"});
  for (size_t peers : {100u, 300u, 1000u, 2000u, 5000u}) {
    const LoadRow row = MeasureLoad(peers, partitions, 7);
    a.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(peers)),
              TablePrinter::Fmt(static_cast<uint64_t>(row.stored)),
              TablePrinter::Fmt(row.mean, 1), TablePrinter::Fmt(row.p1, 0),
              TablePrinter::Fmt(row.p99, 0)});
  }
  a.Print(std::cout, "Figure 11(a): load vs number of peers (" +
                         std::to_string(unique_partitions) +
                         " unique partitions x l=5)");
  std::cout << "\n";

  // (b) Load vs partitions stored, 1000-node system.
  TablePrinter b({"stored descriptors", "mean/node", "1st pct", "99th pct"});
  for (size_t unique : {unique_partitions * 7 / 10, unique_partitions,
                        unique_partitions * 2, unique_partitions * 3,
                        unique_partitions * 36 / 10}) {
    const LoadRow row = MeasureLoad(1000, UniqueRanges(unique, 99), 7);
    b.AddRow({TablePrinter::Fmt(static_cast<uint64_t>(row.stored)),
              TablePrinter::Fmt(row.mean, 1), TablePrinter::Fmt(row.p1, 0),
              TablePrinter::Fmt(row.p99, 0)});
  }
  b.Print(std::cout, "Figure 11(b): load vs stored partitions, 1000 nodes");
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  // Paper scale: 10000 unique partitions. Pass a smaller count for a
  // quick run.
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 10000, 400);
  p2prange::bench::Run(n);
  return 0;
}
