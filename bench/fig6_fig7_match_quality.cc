// Regenerates Figures 6(a), 6(b), and 7: the similarity histogram of
// the matched partition for each hash-function family.
//
// Protocol (§5.1): 10,000 uniform random integer ranges over [0,1000];
// the system starts empty; any non-exactly-matched query range is
// cached; the first 20% of queries are warmup and excluded. The x-axis
// is Jaccard similarity of the best match; the y-axis the percentage
// of measured queries per similarity bin (bin 0 collects the queries
// with no match at all, which the paper plots at similarity 0).
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/bench_args.h"

namespace p2prange {
namespace bench {
namespace {

void RunFamily(HashFamilyType family, const char* figure, size_t n,
               uint64_t linear_prime = LinearHashFunction::kPrime) {
  SystemConfig cfg;
  cfg.num_peers = 1000;
  cfg.lsh = LshParams::Paper(family, /*seed=*/42);
  cfg.lsh.linear_prime = linear_prime;
  cfg.criterion = MatchCriterion::kJaccard;
  cfg.seed = 42;
  const WorkloadResult result = RunPaperWorkload(cfg, n, /*workload_seed=*/4242);

  UnitHistogram hist(10);
  for (double j : result.jaccards) hist.Add(j);

  TablePrinter table({"similarity bin", "% of queries"});
  for (int b = 0; b < hist.num_bins(); ++b) {
    char label[32];
    std::snprintf(label, sizeof(label), "[%.1f, %.1f%s", hist.BinLo(b),
                  hist.BinHi(b), b == hist.num_bins() - 1 ? "]" : ")");
    table.AddRow({label, TablePrinter::Fmt(hist.Percentage(b), 2)});
  }
  table.Print(std::cout, std::string(figure) + ": " + HashFamilyName(family) +
                             " (" + std::to_string(n) + " queries, k=20, l=5)");
  std::cout << "matched: " << TablePrinter::Fmt(100.0 * result.frac_matched, 1)
            << "%   matched with sim >= 0.9: "
            << TablePrinter::Fmt(hist.Percentage(9), 1) << "%\n\n";
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  // A smaller query count (for quick runs) can be passed as argv[1].
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 10000, 300);
  using p2prange::HashFamilyType;
  p2prange::bench::RunFamily(HashFamilyType::kMinwise, "Figure 6(a)", n);
  p2prange::bench::RunFamily(HashFamilyType::kApproxMinwise, "Figure 6(b)", n);
  // Figure 7, paper mode: Broder-style permutation of the attribute
  // universe (domain-sized prime). Signatures collapse to ~10 bits, so
  // buckets collide across dissimilar ranges and match quality is poor
  // — exactly the behavior the paper reports for linear permutations.
  p2prange::bench::RunFamily(
      HashFamilyType::kLinear, "Figure 7 (domain-sized prime, paper mode)", n,
      p2prange::NextPrimeAtLeast(p2prange::bench::kDomainHi + 1));
  // Full-width prime: the well-behaved variant, shown for contrast.
  p2prange::bench::RunFamily(HashFamilyType::kLinear,
                             "Figure 7 (full 32-bit prime variant)", n);
  return 0;
}
