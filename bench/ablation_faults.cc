// Ablation: lookup robustness under injected faults.
//
// The paper's protocol assumes reachable identifier owners and live
// descriptor holders. This bench drives the full query path through
// the fault injector at several fault intensities — abrupt transient
// crashes between and during queries, plus transit loss — and reports
// how gracefully the protocol degrades: query success rate, answer
// completeness, and the extra messages the fault machinery costs
// (retransmissions, failover probes, source fallbacks), for
// descriptor replication 1, 2, and 3.
#include <cstdlib>
#include <iostream>

#include "bench/bench_args.h"
#include "bench/bench_util.h"
#include "sim/fault_injector.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace bench {
namespace {

void RunScenario(double fault_prob, int replication, size_t num_queries,
                 TablePrinter* table) {
  SystemConfig cfg;
  cfg.num_peers = 100;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 42);
  cfg.criterion = MatchCriterion::kContainment;
  cfg.descriptor_replication = replication;
  cfg.chord.latency.loss_rate = fault_prob > 0.0 ? 0.05 : 0.0;
  cfg.chord.max_message_retries = 6;
  cfg.fault.max_retries = 6;
  cfg.seed = 42;
  auto sys = RangeCacheSystem::Make(
      cfg, MakeNumbersCatalog(10, kDomainLo, kDomainHi, 1));
  CHECK(sys.ok());

  FaultInjectorConfig fcfg;
  fcfg.crash_prob = fault_prob;
  fcfg.recover_prob = fault_prob / 2.0;
  fcfg.mid_query_crash_prob = fault_prob / 10.0;
  fcfg.stabilize_every = 10;
  fcfg.min_alive = 10;
  fcfg.seed = 4242;
  FaultInjector injector(&*sys, fcfg);

  UniformRangeGenerator gen(kDomainLo, kDomainHi, 4242);
  auto report = injector.RunLookups(
      [&gen] { return PartitionKey{"Numbers", "key", gen.Next()}; },
      num_queries);
  CHECK(report.ok()) << report.status();

  const SystemMetrics& m = sys->metrics();
  const double q = static_cast<double>(report->queries);
  const double extra_msgs =
      static_cast<double>(m.retransmissions + m.probe_failovers) / q;
  table->AddRow(
      {TablePrinter::Fmt(fault_prob, 2), TablePrinter::Fmt(replication),
       TablePrinter::Fmt(report->queries),
       TablePrinter::Fmt(100.0 *
                             static_cast<double>(report->queries -
                                                 report->errors) /
                             q,
                         1),
       TablePrinter::Fmt(
           100.0 * static_cast<double>(report->matched) / q, 1),
       TablePrinter::Fmt(100.0 * report->mean_recall, 1),
       TablePrinter::Fmt(
           100.0 * static_cast<double>(report->degraded) / q, 1),
       TablePrinter::Fmt(extra_msgs, 2),
       TablePrinter::Fmt(m.stale_evictions),
       TablePrinter::Fmt(report->crashes + report->kills)});
}

void Run(size_t num_queries) {
  TablePrinter table({"fault prob", "replication", "queries", "% ok",
                      "% matched", "mean recall %", "% degraded",
                      "extra msgs/query", "stale evictions", "faults"});
  for (double fault : {0.0, 0.05, 0.15, 0.3}) {
    for (int repl : {1, 2, 3}) {
      RunScenario(fault, repl, num_queries, &table);
      if (fault == 0.0) break;  // replication is irrelevant without faults
    }
  }
  table.Print(std::cout, "Ablation: lookup robustness under injected faults (" +
                             TablePrinter::Fmt(num_queries) + " lookups)");
  std::cout << "(expected: success rate stays at 100% — faults degrade\n"
               " answers, never fail queries; higher fault rates depress\n"
               " match/recall and inflate extra messages, replication\n"
               " buys back match rate at the cost of failover probes)\n";
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 400, 60);
  p2prange::bench::Run(n);
  return 0;
}
