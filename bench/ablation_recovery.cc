// Ablation: crash recovery cost vs checkpoint interval.
//
// Every peer journals its descriptor mutations to a CRC32C-framed WAL
// and periodically folds the log into a checkpoint snapshot. This
// bench sweeps the checkpoint interval (0 = never, so recovery is a
// pure log replay) against descriptor replication, crashes 20% of the
// overlay mid-workload with storage faults armed (torn WAL tails, bit
// flips), recovers everyone, and reports what recovery cost and what
// it got back: durable bytes per peer, log records replayed, torn /
// corrupted logs detected, descriptors restored by replay vs re-pulled
// from live replicas, and cache recall before vs after the crash wave.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/bench_args.h"
#include "bench/bench_util.h"
#include "sim/fault_injector.h"
#include "workload/range_workload.h"

namespace p2prange {
namespace bench {
namespace {

double MeanRecall(RangeCacheSystem& sys, const std::vector<PartitionKey>& probes) {
  double sum = 0.0;
  for (const PartitionKey& key : probes) {
    auto outcome = sys.LookupRange(key);
    CHECK(outcome.ok()) << outcome.status();
    if (outcome->match) sum += outcome->match->recall;
  }
  return sum / static_cast<double>(probes.size());
}

void RunScenario(uint64_t checkpoint_every, int replication, size_t num_queries,
                 TablePrinter* table) {
  SystemConfig cfg;
  cfg.num_peers = 60;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 42);
  cfg.descriptor_replication = replication;
  cfg.durability.checkpoint_every = checkpoint_every;
  cfg.seed = 42;
  auto sys = RangeCacheSystem::Make(
      cfg, MakeNumbersCatalog(10, kDomainLo, kDomainHi, 1));
  CHECK(sys.ok()) << sys.status();

  UniformRangeGenerator gen(kDomainLo, kDomainHi, 4242);
  for (size_t i = 0; i < num_queries; ++i) {
    const Range q = gen.Next();
    CHECK(sys->LookupRange(PartitionKey{"Numbers", "key", q}).ok());
  }
  std::vector<PartitionKey> probes;
  UniformRangeGenerator probe_gen(kDomainLo, kDomainHi, 977);
  for (int i = 0; i < 25; ++i) {
    probes.push_back(PartitionKey{"Numbers", "key", probe_gen.Next()});
  }
  const double pre = MeanRecall(*sys, probes);

  // Durable footprint across the overlay at crash time.
  uint64_t wal_bytes = 0, snap_bytes = 0;
  size_t counted = 0;
  for (const chord::NodeInfo& info : sys->ring().AliveNodesSorted()) {
    const Peer* p = sys->peer(info.addr);
    if (p == nullptr) continue;
    wal_bytes += p->durable().wal().image().size();
    snap_bytes += p->durable().snapshots().TotalBytes();
    ++counted;
  }

  FaultInjectorConfig fcfg;
  fcfg.torn_write_prob = 0.5;
  fcfg.bit_flip_prob = 0.25;
  fcfg.min_alive = 8;
  fcfg.seed = 4242;
  FaultInjector injector(&*sys, fcfg);
  const size_t to_crash = cfg.num_peers / 5;  // 20% of the overlay
  for (size_t i = 0; i < to_crash; ++i) {
    CHECK(injector.CrashRandomPeer().ok());
  }
  while (injector.RecoverOneCrashedPeer().ok()) {
  }
  const double post = MeanRecall(*sys, probes);

  const SystemMetrics& m = sys->metrics();
  table->AddRow(
      {TablePrinter::Fmt(checkpoint_every), TablePrinter::Fmt(replication),
       TablePrinter::Fmt(static_cast<double>(wal_bytes) /
                             static_cast<double>(counted),
                         1),
       TablePrinter::Fmt(static_cast<double>(snap_bytes) /
                             static_cast<double>(counted),
                         1),
       TablePrinter::Fmt(m.wal_records_replayed),
       TablePrinter::Fmt(m.recoveries_torn_tail),
       TablePrinter::Fmt(m.recoveries_wal_corrupted),
       TablePrinter::Fmt(m.recovery_descriptors_restored),
       TablePrinter::Fmt(m.recovery_descriptors_repaired),
       TablePrinter::Fmt(100.0 * pre, 1), TablePrinter::Fmt(100.0 * post, 1)});
}

void Run(size_t num_queries) {
  TablePrinter table({"ckpt every", "repl", "wal B/peer", "snap B/peer",
                      "replayed", "torn", "corrupt", "restored", "repaired",
                      "pre recall %", "post recall %"});
  for (uint64_t ckpt : {0ULL, 1ULL, 16ULL, 64ULL, 256ULL}) {
    for (int repl : {1, 2}) {
      RunScenario(ckpt, repl, num_queries, &table);
    }
  }
  table.Print(std::cout,
              "Ablation: recovery cost vs checkpoint interval, 20% crash wave (" +
                  TablePrinter::Fmt(num_queries) + " warm lookups)");
  std::cout << "(expected: ckpt=0 maximizes WAL bytes and records replayed;\n"
               " aggressive checkpoints shrink the log but grow snapshot\n"
               " bytes; torn/corrupt logs are always detected, never\n"
               " silently replayed; replication 2 re-pulls what replay\n"
               " lost, holding post-crash recall near the pre-crash line)\n";
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  const size_t n = p2prange::bench::CountFromArgs(argc, argv, 300, 40);
  p2prange::bench::Run(n);
  return 0;
}
