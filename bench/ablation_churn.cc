// Ablation: cache effectiveness under membership churn.
//
// The paper evaluates a static overlay; any real P2P deployment loses
// peers (and their cached descriptors and data) continuously. This
// bench runs the full protocol through the discrete-event churn
// simulator at several churn intensities, with and without descriptor
// replication, and reports per-phase match/complete rates — how well
// the self-repairing cache holds up.
#include <cstdlib>
#include <memory>

#include "bench/bench_args.h"
#include "bench/bench_util.h"
#include "sim/churn_sim.h"

namespace p2prange {
namespace bench {
namespace {

void RunScenario(double churn_hz, int replication, double recover_hz,
                 double duration_s, TablePrinter* table) {
  SystemConfig cfg;
  cfg.num_peers = 100;
  cfg.lsh = LshParams::Paper(HashFamilyType::kApproxMinwise, 42);
  cfg.criterion = MatchCriterion::kContainment;
  cfg.descriptor_replication = replication;
  cfg.seed = 42;
  auto sys = RangeCacheSystem::Make(
      cfg, MakeNumbersCatalog(10, kDomainLo, kDomainHi, 1));
  CHECK(sys.ok());

  auto gen = std::make_shared<UniformRangeGenerator>(kDomainLo, kDomainHi, 4242);
  ChurnScenarioConfig scenario;
  scenario.duration_s = duration_s;
  scenario.query_rate_hz = 4.0;
  scenario.join_rate_hz = churn_hz;
  scenario.leave_rate_hz = churn_hz;
  scenario.fail_fraction = 0.5;
  scenario.recover_rate_hz = recover_hz;
  scenario.stabilize_period_s = 15;
  scenario.seed = 42;
  ChurnSimulator sim(
      &*sys, [gen] { return PartitionKey{"Numbers", "key", gen->Next()}; },
      scenario);
  auto report = sim.Run(4);
  CHECK(report.ok()) << report.status();

  uint64_t queries = 0, matched = 0, complete = 0, churn_events = 0;
  uint64_t recoveries = 0, repaired = 0;
  for (const ChurnTimeSlice& s : report->slices) {
    queries += s.queries;
    matched += s.matched;
    complete += s.complete;
    churn_events += s.joins + s.departures;
    recoveries += s.recoveries;
    repaired += s.descriptors_repaired;
  }
  const ChurnTimeSlice& last = report->slices.back();
  table->AddRow(
      {TablePrinter::Fmt(churn_hz, 2), TablePrinter::Fmt(replication),
       TablePrinter::Fmt(recover_hz, 2),
       TablePrinter::Fmt(static_cast<uint64_t>(queries)),
       TablePrinter::Fmt(static_cast<uint64_t>(churn_events)),
       TablePrinter::Fmt(static_cast<uint64_t>(recoveries)),
       TablePrinter::Fmt(static_cast<uint64_t>(repaired)),
       TablePrinter::Fmt(
           100.0 * static_cast<double>(matched) / static_cast<double>(queries),
           1),
       TablePrinter::Fmt(100.0 * static_cast<double>(last.complete) /
                             static_cast<double>(std::max<uint64_t>(last.queries, 1)),
                         1),
       TablePrinter::Fmt(static_cast<uint64_t>(last.alive_at_end))});
}

void Run(double duration_s) {
  TablePrinter table({"churn rate (hz)", "replication", "recover (hz)",
                      "queries", "churn events", "recoveries",
                      "descr repaired", "% matched (all)",
                      "% complete (final phase)", "peers at end"});
  for (double churn : {0.0, 0.05, 0.2}) {
    for (int repl : {1, 3}) {
      RunScenario(churn, repl, /*recover_hz=*/0.0, duration_s, &table);
      if (churn == 0.0) break;  // replication is irrelevant without churn
      // Same scenario with durable crash recovery: abrupt departures
      // become transient crashes that replay their WAL and rejoin.
      RunScenario(churn, repl, /*recover_hz=*/churn, duration_s, &table);
    }
  }
  table.Print(std::cout,
              "Ablation: cache effectiveness under churn (" +
                  TablePrinter::Fmt(duration_s, 0) + "s simulated, 4 queries/s)");
  std::cout << "(expected: higher churn depresses match rates as departing\n"
               " peers take descriptors with them; replication recovers part\n"
               " of the loss; with a recover rate, abrupt departures replay\n"
               " their durable store and rejoin, keeping the overlay larger\n"
               " and the caches warmer)\n";
}

}  // namespace
}  // namespace bench
}  // namespace p2prange

int main(int argc, char** argv) {
  const double duration =
      p2prange::bench::ScaleFromArgs(argc, argv, 600.0, 30.0);
  p2prange::bench::Run(duration);
  return 0;
}
